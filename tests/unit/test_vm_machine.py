"""Unit tests for the virtual machine: semantics and fault behaviour."""

import pytest

from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_EVENT,
    HandlerDef,
    Instruction,
    Op,
    SlotDef,
)
from repro.dsl.compiler import compile_source
from repro.dsl.symbols import well_known_id
from repro.dsl.types import INT8, INT32, UINT8
from repro.vm.machine import (
    DriverInstance,
    ReturnValue,
    VirtualMachine,
    VmTrap,
)


def build_image(code_instructions, slots=(SlotDef(INT32), SlotDef(UINT8, 4)),
                n_params=1):
    out = bytearray()
    for op, args in code_instructions:
        out += Instruction(len(out), op, tuple(args)).encode()
    out += Instruction(len(out), Op.RET, ()).encode()
    return DriverImage(
        device_id=0,
        slots=tuple(slots),
        imports=(),
        handlers=(HandlerDef(HANDLER_KIND_EVENT, 0, 0, n_params),),
        code=bytes(out),
    )


def run(code, slots=(SlotDef(INT32), SlotDef(UINT8, 4)), args=(0,),
        signal_sink=None, return_sink=None):
    image = build_image(code, slots)
    instance = DriverInstance(image)
    vm = VirtualMachine()
    result = vm.execute(instance, image.handlers[0], args,
                        signal_sink=signal_sink, return_sink=return_sink)
    return instance, result


# -------------------------------------------------------------- driver source
def compile_and_run_read(source, device_id=1, event="read", args=()):
    """Compile real DSL source and execute one handler, capturing returns."""
    image = compile_source(source, device_id)
    instance = DriverInstance(image)
    vm = VirtualMachine()
    returned = []
    init = image.find_handler(HANDLER_KIND_EVENT, well_known_id("init"))
    vm.execute(instance, init, (), signal_sink=lambda *a: None)
    handler = image.find_handler(HANDLER_KIND_EVENT, well_known_id(event))
    vm.execute(instance, handler, args,
               signal_sink=lambda *a: None, return_sink=returned.append)
    return instance, returned


DRIVER_TEMPLATE = """\
int32_t x;
event init():
    x = 0;
event destroy():
    x = 0;
event read():
    return {expr};
"""


@pytest.mark.parametrize("expr,expected", [
    ("7 + 3", 10),
    ("7 - 13", -6),
    ("6 * -7", -42),
    ("7 / 2", 3),
    ("-7 / 2", -3),          # C truncation toward zero
    ("7 % -2", 1),           # sign follows the dividend
    ("-7 % 2", -1),
    ("1 << 10", 1024),
    ("-16 >> 2", -4),        # arithmetic shift
    ("12 & 10", 8),
    ("12 | 3", 15),
    ("12 ^ 10", 6),
    ("~0", -1),
    ("!0", 1),
    ("!5", 0),
    ("3 < 4", 1),
    ("4 <= 3", 0),
    ("4 == 4", 1),
    ("4 != 4", 0),
    ("1 and 2", 1),
    ("0 or 3", 1),
    ("0 and 1", 0),
    ("2147483647 + 1", -2147483648),  # 32-bit wraparound
])
def test_expression_semantics(expr, expected):
    _, returned = compile_and_run_read(DRIVER_TEMPLATE.format(expr=expr))
    assert returned == [ReturnValue(scalar=expected)]


def test_division_by_zero_traps():
    with pytest.raises(VmTrap, match="division by zero"):
        compile_and_run_read(DRIVER_TEMPLATE.format(expr="1 / 0"))


def test_store_truncates_to_declared_type():
    source = (
        "uint8_t small;\nint8_t signed8;\n"
        "event init():\n    small = 300;\n    signed8 = 200;\n"
        "event destroy():\n    small = 0;\n"
    )
    image = compile_source(source)
    instance = DriverInstance(image)
    vm = VirtualMachine()
    vm.execute(instance, image.find_handler(0, well_known_id("init")), ())
    checked_values = sorted(
        instance.scalar(slot) for slot in range(len(image.slots))
    )
    assert checked_values == [-56, 44]  # 200 as int8, 300 as uint8


def test_postfix_increment_yields_old_value_and_stores_new():
    source = (
        "int32_t x;\nuint8_t buf[4];\n"
        "event init():\n    x = 7;\n    buf[x++ - 7] = 9;\n"
        "event destroy():\n    x = 0;\n"
    )
    image = compile_source(source)
    instance = DriverInstance(image)
    vm = VirtualMachine()
    vm.execute(instance, image.find_handler(0, well_known_id("init")), ())
    x_slot = next(i for i, s in enumerate(image.slots) if not s.is_array)
    buf_slot = next(i for i, s in enumerate(image.slots) if s.is_array)
    assert instance.scalar(x_slot) == 8
    assert instance.array(buf_slot) == (9, 0, 0, 0)


def test_while_loop_executes():
    source = (
        "int32_t x, n;\n"
        "event init():\n"
        "    n = 0;\n"
        "    x = 0;\n"
        "    while n < 5:\n"
        "        x = x + n;\n"
        "        n++;\n"
        "event destroy():\n    x = 0;\n"
    )
    image = compile_source(source)
    instance = DriverInstance(image)
    VirtualMachine().execute(instance, image.find_handler(0, 0), ())
    values = {instance.scalar(i) for i in range(2)}
    assert 10 in values  # 0+1+2+3+4


def test_signal_sink_receives_args_in_order():
    signals = []
    run([(Op.PUSH8, (1,)), (Op.PUSH8, (2,)), (Op.SIG, (3, 4, 2))],
        signal_sink=lambda t, s, a: signals.append((t, s, a)))
    assert signals == [(3, 4, (1, 2))]


def test_return_array_payload():
    source = (
        "uint8_t buf[3];\n"
        "event init():\n    buf[0] = 65;\n    buf[1] = 66;\n    buf[2] = 67;\n"
        "event destroy():\n    buf[0] = 0;\n"
        "event read():\n    return buf;\n"
    )
    _, returned = compile_and_run_read(source)
    assert returned[0].is_array
    assert returned[0].to_payload() == b"ABC"


def test_return_value_payload_roundtrip():
    value = ReturnValue(scalar=-1234)
    assert ReturnValue.from_payload(value.to_payload(), as_array=False) == value


# ------------------------------------------------------------------ trapping
def test_stack_overflow_traps():
    code = [(Op.PUSH1, ())] * 40
    with pytest.raises(VmTrap, match="overflow"):
        run(code)


def test_stack_underflow_traps():
    with pytest.raises(VmTrap, match="underflow"):
        run([(Op.DROP, ())])


def test_array_index_out_of_bounds_traps():
    with pytest.raises(VmTrap, match="out of bounds"):
        run([(Op.PUSH8, (9,)), (Op.LDE, (1,))])


def test_scalar_array_slot_confusion_traps():
    with pytest.raises(VmTrap, match="is an array"):
        run([(Op.LDG, (1,))])
    with pytest.raises(VmTrap, match="not an array"):
        run([(Op.PUSH0, ()), (Op.LDE, (0,))])


def test_runaway_handler_traps():
    # JMPS -2 jumps back onto itself forever.
    code = [(Op.JMPS, (-2,))]
    vm = VirtualMachine(step_limit=1000)
    image = build_image(code)
    with pytest.raises(VmTrap, match="step limit"):
        vm.execute(DriverInstance(image), image.handlers[0], (0,))


def test_wrong_arg_count_traps():
    image = build_image([(Op.LDP, (0,))], n_params=1)
    with pytest.raises(VmTrap, match="expects 1 args"):
        VirtualMachine().execute(DriverInstance(image), image.handlers[0], ())


def test_param_out_of_range_traps():
    image = build_image([(Op.LDP, (3,))], n_params=1)
    with pytest.raises(VmTrap, match="parameter"):
        VirtualMachine().execute(DriverInstance(image), image.handlers[0], (1,))


def test_pc_off_end_traps():
    image = DriverImage(
        device_id=0, slots=(), imports=(),
        handlers=(HandlerDef(HANDLER_KIND_EVENT, 0, 0, 0),),
        code=Instruction(0, Op.NOP, ()).encode(),  # no RET
    )
    with pytest.raises(VmTrap, match="ran off"):
        VirtualMachine().execute(DriverInstance(image), image.handlers[0], ())


def test_instance_reset_zeroes_state():
    source = MIN = (
        "int32_t x;\nuint8_t a[2];\n"
        "event init():\n    x = 5;\n    a[0] = 7;\n"
        "event destroy():\n    x = 0;\n"
    )
    image = compile_source(source)
    instance = DriverInstance(image)
    VirtualMachine().execute(instance, image.find_handler(0, 0), ())
    instance.reset()
    assert all(
        (v == 0 if not isinstance(v, list) else all(e == 0 for e in v))
        for v in instance.globals
    )


def test_execution_result_reports_cycles_and_seconds():
    _, result = run([(Op.PUSH1, ())])
    assert result.steps == 2  # PUSH1 + RET
    assert result.cycles > 0
    assert result.seconds() == pytest.approx(result.cycles / 16e6)
