"""Unit tests for the trace compiler (superinstruction fusion).

Semantic equivalence across every opcode and trap is covered by
``test_vm_differential.py`` (which runs every differential case under
"trace" as well); this file tests the compilation machinery itself:
what fuses, what doesn't, the shared cache, and the env-var plumbing.
"""

from __future__ import annotations

import pytest

from repro.analysis.vmperf import _encode, _i, _image_for
from repro.dsl.bytecode import Op
from repro.vm import fastpath, tracecomp
from repro.vm.machine import DriverInstance, VirtualMachine, VmTrap


@pytest.fixture(autouse=True)
def fresh_caches():
    fastpath.clear_cache()
    tracecomp.clear_traces()
    yield
    fastpath.clear_cache()
    tracecomp.clear_traces()


def _loop_image(iterations=50):
    """A countdown loop with a long fusable body (the bench workload)."""
    body = (
        _i(Op.LDG, 0), _i(Op.PUSH8, 3), _i(Op.MUL), _i(Op.PUSH8, 7),
        _i(Op.ADD), _i(Op.LDP, 0), _i(Op.BXOR), _i(Op.STG, 0),
    )
    body_code = _encode(*body)
    code = _encode(
        _i(Op.PUSH16, iterations), _i(Op.STG, 7),
        *body,
        _i(Op.DECG, 7),
        _i(Op.JNZS, -(len(body_code) + 4)),
        _i(Op.RET),
    )
    return _image_for(code, n_params=1)


def _run(mode, image, args=()):
    vm = VirtualMachine(mode=mode)
    return vm.execute(DriverInstance(image), image.handlers[0], args)


def test_long_blocks_fuse():
    _run("trace", _loop_image(), (1,))
    stats = tracecomp.trace_stats()
    assert stats["images"] == 1
    assert stats["blocks"] >= 1
    assert stats["instructions"] >= tracecomp.MIN_FUSE_LEN


def test_short_blocks_do_not_fuse():
    image = _image_for(_encode(_i(Op.PUSH8, 1), _i(Op.RET)), n_params=0)
    _run("trace", image)
    assert tracecomp.trace_stats()["blocks"] == 0


def test_traced_results_match_reference():
    image = _loop_image()
    args = (0x5A5A,)
    traced = _run("trace", image, args)
    reference = _run("reference", image, args)
    assert (traced.cycles, traced.steps) == (reference.cycles,
                                             reference.steps)


def test_trap_parity_division_by_zero():
    code = _encode(_i(Op.PUSH8, 1), _i(Op.PUSH8, 0), _i(Op.DIV),
                   _i(Op.STG, 0), _i(Op.RET))
    image = _image_for(code, n_params=0)
    messages = {}
    for mode in ("trace", "reference"):
        with pytest.raises(VmTrap) as excinfo:
            _run(mode, image)
        messages[mode] = str(excinfo.value)
    assert messages["trace"] == messages["reference"]


def test_traced_translation_cached_across_vms_and_instances():
    image = _loop_image()
    for _ in range(4):
        _run("trace", image, (1,))
    stats = tracecomp.trace_stats()
    assert stats["images"] == 1
    assert stats["cached"] == 1


def test_env_var_promotes_fast_to_trace(monkeypatch):
    monkeypatch.setenv("REPRO_VM_TRACE", "1")
    assert VirtualMachine().mode == "trace"
    # An explicit mode always wins over the promotion.
    assert VirtualMachine(mode="fast").mode == "fast"
    monkeypatch.setenv("REPRO_VM_MODE", "reference")
    assert VirtualMachine().mode == "reference"


def test_clear_traces_resets_stats_and_cache():
    _run("trace", _loop_image(), (1,))
    assert tracecomp.trace_stats()["cached"] == 1
    tracecomp.clear_traces()
    stats = tracecomp.trace_stats()
    assert stats == {"images": 0, "blocks": 0, "instructions": 0,
                     "cached": 0}
