"""Unit tests: the shard profiler's collectors, merge and digest.

Uses a bare Simulator wrapped in a minimal fake deployment so event
and idle-gap attribution can be asserted against hand-scheduled
workloads, plus synthetic shard snapshots to pin the merge algebra
(associativity, shard-order independence, wall-plane exclusion).
"""

from __future__ import annotations

import pytest

from repro.profile.collector import (
    ShardProfiler,
    deterministic_view,
    layer_for,
    merge_profiles,
    merged_periodic_names,
    profile_digest,
)
from repro.profile.config import ProfileConfig
from repro.sim.kernel import NS_PER_MS, Simulator


class _FakeSpec:
    index = 0


class _FakeDeployment:
    """Just enough deployment for a ShardProfiler without VM things."""

    def __init__(self) -> None:
        self.sim = Simulator()
        self.spec = _FakeSpec()
        self.things = []


def _profiled(config=None):
    deployment = _FakeDeployment()
    profiler = ShardProfiler(deployment, config or ProfileConfig())
    return deployment.sim, profiler


# ------------------------------------------------------------------ config
def test_config_rejects_nonsense():
    with pytest.raises(ValueError):
        ProfileConfig(idle_threshold_ns=0)
    with pytest.raises(ValueError):
        ProfileConfig(events=False, vm=False, idle=False)
    with pytest.raises(ValueError):
        ProfileConfig(periodic_max_delays=0)


# ------------------------------------------------------------------ layers
def test_layer_for_maps_known_prefixes_and_protocol_markers():
    assert layer_for("fleet-read") == "workload"
    assert layer_for("router-dispatch") == "vm"
    assert layer_for("stack-send") == "net"
    assert layer_for("uart-tx-done") == "hw"
    assert layer_for("telemetry-sample") == "telemetry"
    assert layer_for("client-retransmit") == "protocol"
    assert layer_for("whatever") == "kernel"


# ------------------------------------------------------------ event counts
def test_profiler_counts_events_and_attributes_sim_gaps():
    sim, profiler = _profiled()
    sim.schedule(10, lambda: None, name="a")
    sim.schedule(30, lambda: None, name="b")
    sim.run()
    snap = profiler.snapshot()
    assert snap["events"]["a"]["count"] == 1
    assert snap["events"]["b"]["count"] == 1
    assert snap["events"]["a"]["sim_gap_ns"] == 10
    assert snap["events"]["b"]["sim_gap_ns"] == 20  # 30 - 10
    assert snap["events"]["a"]["wall_ns"] > 0


def test_attach_shadows_and_detach_restores_the_kernel_hot_paths():
    sim, profiler = _profiled()
    assert "step" in sim.__dict__ and "schedule_at" in sim.__dict__
    profiler.detach()
    assert "step" not in sim.__dict__
    assert sim.profiler is None
    # Data recorded before detach stays readable.
    assert profiler.snapshot()["shard"] == 0


# --------------------------------------------------------------- idle gaps
def test_idle_windows_charge_the_event_ending_the_gap():
    sim, profiler = _profiled(ProfileConfig(idle_threshold_ns=NS_PER_MS))
    sim.schedule(5 * NS_PER_MS, lambda: None, name="wakeup")
    sim.schedule(5 * NS_PER_MS + 10, lambda: None, name="follow")
    sim.run()
    snap = profiler.snapshot()
    by_name = snap["idle"]["by_name"]
    assert by_name == {"wakeup": {"windows": 1, "idle_ns": 5 * NS_PER_MS}}
    assert snap["idle"]["gap_count"] == 2  # both gaps histogrammed
    assert snap["idle"]["gap_total_ns"] == 5 * NS_PER_MS + 10


def test_periodic_classification_needs_few_delays_and_enough_firings():
    sim, profiler = _profiled(
        ProfileConfig(periodic_min_count=4, periodic_max_delays=2))
    # Fixed-interval periodic task: one distinct delay, many firings.
    handle = sim.every(NS_PER_MS, lambda: None, name="tick")
    # Aperiodic: distinct delay every time, same firing count.
    for index in range(8):
        sim.schedule(index * NS_PER_MS + index + 1, lambda: None,
                     name="jittery")
    sim.run_until(8 * NS_PER_MS)
    handle.cancel()
    assert profiler.periodic_names() == ["tick"]
    snap = profiler.snapshot()
    assert snap["schedule_delays"]["tick"]["delays"] == [NS_PER_MS]
    assert len(snap["schedule_delays"]["jittery"]["delays"]) > 2


# ------------------------------------------------------------------- merge
def _synthetic_snapshot(shard: int, count: int) -> dict:
    sim, profiler = _profiled()
    profiler.shard = shard
    for index in range(count):
        sim.schedule(index * 10 + 1, lambda: None, name="work")
    sim.run()
    return profiler.snapshot()


def test_merge_is_shard_order_independent_on_the_deterministic_plane():
    a = _synthetic_snapshot(0, 3)
    b = _synthetic_snapshot(1, 5)
    forward = merge_profiles([a, b])
    backward = merge_profiles([b, a])
    assert profile_digest(forward) == profile_digest(backward)
    assert forward["events"]["work"]["count"] == 8
    assert forward["shards"] == [0, 1]


def test_merge_skips_missing_shards_and_sums_idle_totals():
    a = _synthetic_snapshot(0, 2)
    merged = merge_profiles([None, a, None])
    assert merged["shards"] == [0]
    assert merged["idle"]["sim_time_total_ns"] == a["idle"]["sim_now_ns"]


# ------------------------------------------------------------------ digest
def test_digest_ignores_wall_clock_but_not_counts():
    a = _synthetic_snapshot(0, 4)
    b = _synthetic_snapshot(0, 4)  # same schedule, different wall times
    assert a["events"]["work"]["wall_ns"] != b["events"]["work"]["wall_ns"] \
        or True  # wall times may coincide; digest equality is the contract
    assert profile_digest(merge_profiles([a])) == \
        profile_digest(merge_profiles([b]))
    c = _synthetic_snapshot(0, 5)
    assert profile_digest(merge_profiles([a])) != \
        profile_digest(merge_profiles([c]))


def test_deterministic_view_strips_wall_keys_recursively():
    document = {
        "events": {"x": {"count": 1, "wall_ns": 5, "wall_hist": {}}},
        "nested": [{"wall_ns": 2, "keep": 3}],
    }
    view = deterministic_view(document)
    assert view == {"events": {"x": {"count": 1}}, "nested": [{"keep": 3}]}


def test_merged_periodic_names_round_trips_through_the_merge():
    sim, profiler = _profiled()
    handle = sim.every(NS_PER_MS, lambda: None, name="beat")
    sim.run_until(10 * NS_PER_MS)
    handle.cancel()
    merged = merge_profiles([profiler.snapshot()])
    assert "beat" in merged_periodic_names(merged)


# -------------------------------------------------------------- checkpoint
def test_profiler_state_round_trips_through_pickle():
    import pickle

    sim, profiler = _profiled()
    sim.schedule(7, lambda: None, name="x")
    sim.run()
    clone = pickle.loads(pickle.dumps(profiler))
    assert deterministic_view(clone.snapshot()) == \
        deterministic_view(profiler.snapshot())
