"""Unit tests for the bytecode format, compiler and disassembler."""

import pytest

from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_ERROR,
    HANDLER_KIND_EVENT,
    Instruction,
    Op,
    SlotDef,
    decode,
    instruction_size,
)
from repro.dsl.compiler import compile_source
from repro.dsl.disassembler import disassemble
from repro.dsl.errors import CompileError
from repro.dsl.sloc import count_c_sloc, count_sloc
from repro.dsl.symbols import well_known_id
from repro.dsl.types import UINT8

MINIMAL = "int32_t x;\nevent init():\n    x = 1;\nevent destroy():\n    x = 0;\n"


# ------------------------------------------------------------------ encoding
def test_instruction_encode_decode_roundtrip():
    cases = [
        Instruction(0, Op.PUSH16, (-300,)),
        Instruction(0, Op.SIG, (1, 2, 3)),
        Instruction(0, Op.JZ, (-5,)),
        Instruction(0, Op.LDEI, (4, 7)),
        Instruction(0, Op.RET, ()),
    ]
    blob = b"".join(i.encode() for i in cases)
    decoded = list(decode(blob))
    assert [(i.op, i.args) for i in decoded] == [(i.op, i.args) for i in cases]


def test_decode_rejects_bad_opcode():
    with pytest.raises(CompileError):
        list(decode(b"\xff"))


def test_decode_rejects_truncated_operands():
    with pytest.raises(CompileError):
        list(decode(bytes([Op.PUSH16.value, 0x01])))


def test_wrong_operand_count_rejected():
    with pytest.raises(CompileError):
        Instruction(0, Op.PUSH8, ()).encode()


def test_instruction_sizes():
    assert instruction_size(Op.RET) == 1
    assert instruction_size(Op.PUSH32) == 5
    assert instruction_size(Op.SIG) == 4
    assert instruction_size(Op.JMPS) == 2


# --------------------------------------------------------------------- image
def test_image_pack_unpack_roundtrip():
    image = compile_source(MINIMAL, device_id=0xAD1CBE01)
    again = DriverImage.unpack(image.pack())
    assert again.device_id == image.device_id
    assert again.slots == image.slots
    assert again.imports == image.imports
    assert again.handlers == image.handlers
    assert again.code == image.code


def test_image_rejects_bad_magic():
    with pytest.raises(CompileError):
        DriverImage.unpack(b"\x00\x00\x01" + b"\x00" * 16)


def test_image_rejects_trailing_bytes():
    blob = compile_source(MINIMAL).pack() + b"\x00"
    with pytest.raises(CompileError):
        DriverImage.unpack(blob)


def test_slot_ram_accounting():
    assert SlotDef(UINT8, 12).ram_bytes == 12
    assert SlotDef(UINT8).ram_bytes == 1
    image = compile_source("uint8_t a[12];\nint32_t x;\n" + MINIMAL[len("int32_t x;\n"):])
    assert image.ram_bytes == 12 + 4


# ------------------------------------------------------------------ compiler
def _handler_ops(image, name, kind=HANDLER_KIND_EVENT):
    handler = image.find_handler(kind, well_known_id(name))
    assert handler is not None
    ops = []
    for instruction in image.instructions():
        if instruction.offset >= handler.offset:
            ops.append(instruction.op)
            if instruction.op == Op.RET:
                break
    return ops


def test_compact_register_forms_used_for_hot_slots():
    image = compile_source(MINIMAL)
    assert Op.STG0 in [i.op for i in image.instructions()]
    assert Op.STG not in [i.op for i in image.instructions()]


def test_constant_array_index_uses_ldei():
    source = (
        "uint8_t a[4];\nint32_t x;\n"
        "event init():\n    x = a[2];\n"
        "event destroy():\n    x = 0;\n"
    )
    ops = [i.op for i in compile_source(source).instructions()]
    assert Op.LDEI in ops
    assert Op.LDE not in ops


def test_dynamic_array_index_uses_lde():
    source = (
        "uint8_t a[4];\nint32_t x;\n"
        "event init():\n    x = a[x];\n"
        "event destroy():\n    x = 0;\n"
    )
    ops = [i.op for i in compile_source(source).instructions()]
    assert Op.LDE in ops


def test_short_jumps_preferred():
    source = (
        "int32_t x;\n"
        "event init():\n    if x:\n        x = 1;\n"
        "event destroy():\n    x = 0;\n"
    )
    ops = [i.op for i in compile_source(source).instructions()]
    assert Op.JZS in ops
    assert Op.JZ not in ops


def test_long_jump_relaxation_for_big_blocks():
    # A then-branch of ~90 statements (~270+ bytes) forces a long JZ.
    body = "".join(f"        x = {n};\n" for n in range(200, 290))
    source = (
        "int32_t x;\n"
        "event init():\n    if x:\n" + body +
        "event destroy():\n    x = 0;\n"
    )
    image = compile_source(source)
    ops = [i.op for i in image.instructions()]
    assert Op.JZ in ops
    # And the jump lands exactly on the handler-terminating RET.
    list(decode(image.code))  # stream must stay well-formed


def test_push_width_selection():
    source = (
        "int32_t x;\n"
        "event init():\n    x = 0;\n    x = 1;\n    x = 100;\n"
        "    x = 1000;\n    x = 100000;\n    x = -100000;\n"
        "event destroy():\n    x = 0;\n"
    )
    ops = [i.op for i in compile_source(source).instructions()]
    for op in (Op.PUSH0, Op.PUSH1, Op.PUSH8, Op.PUSH16, Op.PUSH32):
        assert op in ops


def test_trailing_return_not_duplicated():
    source = (
        "int32_t x;\n"
        "event init():\n    x = 1;\n"
        "event destroy():\n    x = 0;\n"
        "event read():\n    return x;\n"
    )
    image = compile_source(source)
    read = image.find_handler(HANDLER_KIND_EVENT, well_known_id("read"))
    tail = [i.op for i in image.instructions() if i.offset >= read.offset]
    assert tail == [Op.LDG0, Op.RETV, Op.RET]


def test_signal_operands_encode_target_and_command():
    source = (
        "import adc;\nint32_t x;\n"
        "event init():\n    signal adc.read();\n"
        "event destroy():\n    x = 0;\n"
    )
    image = compile_source(source)
    sig = next(i for i in image.instructions() if i.op == Op.SIG)
    lib_id, command_index, argc = sig.args
    assert lib_id == 2          # adc
    assert command_index == 2   # commands are (init, reset, read)
    assert argc == 0


def test_error_handlers_in_dispatch_table():
    source = MINIMAL + "error timeOut():\n    x = 0;\n"
    image = compile_source(source)
    handler = image.find_handler(HANDLER_KIND_ERROR, well_known_id("timeOut"))
    assert handler is not None and handler.n_params == 0


# -------------------------------------------------------------- disassembler
def test_disassembly_is_readable():
    source = (
        "import uart;\nint32_t x;\n"
        "event init():\n    signal uart.reset();\n    signal this.later();\n"
        "event destroy():\n    x = 0;\n"
        "event later():\n    x = 2;\n"
    )
    text = disassemble(compile_source(source, device_id=0xAABBCCDD))
    assert "0xaabbccdd" in text
    assert "SIG uart.reset" in text
    assert "SIG this.later" in text
    assert "event init(0 params):" in text


# ----------------------------------------------------------------------- sloc
def test_sloc_skips_comments_and_blanks():
    source = "# comment\n\nx = 1;\n  # indented comment\ny = 2;\n"
    assert count_sloc(source) == 2


def test_c_sloc_handles_block_comments():
    source = "/* a\n * b\n */\nint x;\n// line\nint y; /* tail */\n"
    assert count_c_sloc(source) == 2
