"""Unit tests: gateway wire primitives and bridge determinism."""

import asyncio
import json

import pytest

from repro.fleet.scenario import SCENARIOS
from repro.gateway.bridge import (
    DEFAULT_QUANTUM_NS,
    GatewayBridge,
    Op,
    OpResult,
    RequestLog,
)
from repro.gateway import wire

SCENARIO = SCENARIOS["gateway"].scaled(things=4, shard_size=2, seed=5)


# ------------------------------------------------------------------- wire
def test_ws_accept_rfc6455_vector():
    # The worked example from RFC 6455 §1.3.
    assert wire.ws_accept("dGhlIHNhbXBsZSBub25jZQ==") == \
        "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="


def test_ws_frame_roundtrip_all_lengths():
    async def roundtrip(payload: bytes) -> bytes:
        frame = wire.ws_encode(payload)
        # Re-encode as a *masked* client frame for ws_read.
        mask = b"\x12\x34\x56\x78"
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        length = len(payload)
        if length < 126:
            head = bytes([0x81, 0x80 | length])
        elif length < 1 << 16:
            head = bytes([0x81, 0x80 | 126]) + length.to_bytes(2, "big")
        else:
            head = bytes([0x81, 0x80 | 127]) + length.to_bytes(8, "big")
        reader = asyncio.StreamReader()
        reader.feed_data(head + mask + masked)
        reader.feed_eof()
        opcode, decoded = await wire.ws_read(reader)
        assert opcode == wire.WS_OP_TEXT
        # Server frames are unmasked; verify the encoder's header too.
        assert frame.endswith(payload) and frame[0] == 0x81
        return decoded

    loop = asyncio.new_event_loop()
    try:
        for size in (0, 1, 125, 126, 300, 70_000):
            payload = bytes(range(256)) * (size // 256) + bytes(size % 256)
            payload = payload[:size]
            assert loop.run_until_complete(roundtrip(payload)) == payload
    finally:
        loop.close()


def test_ws_read_rejects_unmasked_client_frames():
    async def attempt():
        reader = asyncio.StreamReader()
        reader.feed_data(bytes([0x81, 0x03]) + b"abc")
        reader.feed_eof()
        await wire.ws_read(reader)

    loop = asyncio.new_event_loop()
    try:
        with pytest.raises(wire.WireError):
            loop.run_until_complete(attempt())
    finally:
        loop.close()


def test_http_request_parse_and_response_format():
    async def parse(raw: bytes):
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await wire.read_request(reader)

    loop = asyncio.new_event_loop()
    try:
        request = loop.run_until_complete(parse(
            b"POST /things/3/actions/install?x=1 HTTP/1.1\r\n"
            b"Host: h\r\nContent-Type: application/json\r\n"
            b"Content-Length: 19\r\n\r\n"
            b'{"driver": "relay"}'))
        assert request.method == "POST"
        assert request.json() == {"driver": "relay"}
        path, params = wire.split_target(request.path)
        assert path == "/things/3/actions/install"
        assert params == {"x": "1"}

        assert loop.run_until_complete(parse(b"")) is None
        with pytest.raises(wire.WireError):
            loop.run_until_complete(parse(b"BOGUS\r\n\r\n"))
        with pytest.raises(wire.WireError):
            loop.run_until_complete(parse(
                b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"))
    finally:
        loop.close()

    raw = wire.response_bytes(200, {"b": 2, "a": 1})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    # Canonical JSON: sorted keys, no spaces.
    assert body == b'{"a":1,"b":2}'
    assert f"Content-Length: {len(body)}".encode() in head


# ------------------------------------------------------------------ ops
def test_op_validation_and_log_roundtrip(tmp_path):
    with pytest.raises(ValueError):
        Op("teleport")
    op = Op("read", thing=3, name="tmp36")
    assert Op.from_json(op.to_json()) == op

    log = RequestLog()
    log.append(0, op, admitted_ns=12345)
    log.append(1, Op("list"), admitted_ns=0)
    path = tmp_path / "requests.json"
    log.save(path)
    loaded = RequestLog.load(path)
    assert loaded.entries == log.entries
    assert loaded.ops() == [op, Op("list")]


def test_opresult_status_classes():
    assert OpResult(200).ok
    assert not OpResult(404).ok
    assert not OpResult(504).ok


def test_bridge_rejects_unknown_pacing():
    with pytest.raises(ValueError):
        GatewayBridge(SCENARIO, pacing="ludicrous")


# ------------------------------------------------------------ determinism
def test_free_pacing_admission_is_a_function_of_op_order():
    ops = [Op("advance", value=1_000_000_000),
           Op("list"),
           Op("td", thing=0),
           Op("advance", value=50_000_000),
           Op("advance", value=50_000_000)]
    first = GatewayBridge.replay(SCENARIO, ops)
    second = GatewayBridge.replay(SCENARIO, ops)
    assert first.digest() == second.digest()
    assert first.log.entries == second.log.entries
    # Read-only ops are logged but never advance simulated time.
    list_entry = first.log.entries[1]
    assert list_entry["kind"] == "list" and list_entry["admitted_ns"] == 0


def test_sim_ops_advance_to_admission_instants():
    bridge = GatewayBridge.replay(SCENARIO, [])
    t0 = [d.sim.now_ns for d in bridge.deployments]
    assert all(t == 0 for t in t0)
    bridge._apply(Op("advance", value=3 * DEFAULT_QUANTUM_NS))
    clocks = [d.sim.now_ns for d in bridge.deployments]
    assert all(t == 3 * DEFAULT_QUANTUM_NS for t in clocks)
    # advance validates its horizon.
    assert bridge._apply(Op("advance")).status == 400
    assert bridge._apply(Op("advance", value=-5)).status == 400


def test_execute_without_thread_applies_inline():
    bridge = GatewayBridge(SCENARIO)
    result = bridge.execute(Op("list"))
    assert result.status == 200
    assert len(result.body["things"]) == 4
    assert len(bridge.log.entries) == 1
    # run_on_thread without a thread runs inline and is not logged.
    assert bridge.run_on_thread(lambda: 7) == 7
    assert len(bridge.log.entries) == 1
    bridge.close()


def test_submitted_ops_serialize_across_threads():
    bridge = GatewayBridge(SCENARIO).start()
    try:
        futures = [bridge.submit(Op("advance", value=10_000_000))
                   for _ in range(8)]
        results = [f.result(timeout=60.0) for f in futures]
        assert all(r.status == 200 for r in results)
        # Serialized: the log holds all 8 in submission order.
        assert [e["kind"] for e in bridge.log.entries] == ["advance"] * 8
        clocks = bridge.run_on_thread(
            lambda: [d.sim.now_ns for d in bridge.deployments])
        assert all(t == 80_000_000 for t in clocks)
    finally:
        bridge.close()
