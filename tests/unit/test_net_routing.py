"""Unit tests for topology, RPL DODAG construction and SMRF planning."""

import pytest

from repro.net.rpl import Dodag, MIN_HOP_RANK_INCREASE, ROOT_RANK, RplError
from repro.net.smrf import plan
from repro.net.topology import Topology, TopologyError


def line_topology(n=5):
    return Topology.line(range(n))


# ------------------------------------------------------------------- topology
def test_builders():
    mesh = Topology.full_mesh(range(4))
    assert all(mesh.are_neighbors(a, b)
               for a in range(4) for b in range(4) if a != b)
    star = Topology.star(0, [1, 2, 3])
    assert star.are_neighbors(0, 2)
    assert not star.are_neighbors(1, 2)


def test_from_positions_unit_disk():
    topo = Topology.from_positions(
        {0: (0, 0), 1: (5, 0), 2: (11, 0)}, radio_range=6.0
    )
    assert topo.are_neighbors(0, 1)
    assert topo.are_neighbors(1, 2)
    assert not topo.are_neighbors(0, 2)


def test_shortest_path_bfs():
    topo = line_topology()
    assert topo.shortest_path(0, 4) == [0, 1, 2, 3, 4]
    assert topo.hop_distance(0, 4) == 4
    assert topo.shortest_path(2, 2) == [2]


def test_disconnected_path_is_none():
    topo = Topology()
    topo.add_node(0)
    topo.add_node(1)
    assert topo.shortest_path(0, 1) is None


def test_self_link_rejected():
    with pytest.raises(TopologyError):
        Topology().connect(3, 3)


def test_unknown_node_rejected():
    with pytest.raises(TopologyError):
        line_topology().neighbors(99)


# ------------------------------------------------------------------------ RPL
def test_dodag_ranks_increase_per_hop():
    dodag = Dodag.build(line_topology(), root=0)
    assert dodag.rank[0] == ROOT_RANK
    for node in range(1, 5):
        assert dodag.rank[node] == ROOT_RANK + node * MIN_HOP_RANK_INCREASE
        assert dodag.parent[node] == node - 1


def test_dodag_path_to_root():
    dodag = Dodag.build(line_topology(), root=0)
    assert dodag.path_to_root(4) == [4, 3, 2, 1, 0]
    assert dodag.depth(4) == 4
    assert dodag.depth(0) == 0


def test_dodag_subtree():
    topo = Topology.star(0, [1, 2])
    topo.connect(2, 3)
    dodag = Dodag.build(topo, root=0)
    assert dodag.subtree(2) == {2, 3}
    assert dodag.subtree(0) == {0, 1, 2, 3}


def test_dodag_route_via_common_ancestor():
    topo = Topology.star(0, [1, 2])
    topo.connect(1, 3)
    topo.connect(2, 4)
    dodag = Dodag.build(topo, root=0)
    assert dodag.route(3, 4) == [3, 1, 0, 2, 4]
    assert dodag.hop_count(3, 4) == 4
    assert dodag.route(3, 3) == [3]


def test_dodag_requires_known_root():
    with pytest.raises(RplError):
        Dodag.build(line_topology(), root=42)


def test_dodag_unjoined_node_rejected():
    topo = Topology()
    topo.connect(0, 1)
    topo.add_node(9)  # isolated: never joins
    dodag = Dodag.build(topo, root=0)
    assert not dodag.joined(9)
    with pytest.raises(RplError):
        dodag.path_to_root(9)


# ----------------------------------------------------------------------- SMRF
def test_plan_from_root_floods_only_member_subtrees():
    topo = Topology.star(0, [1, 2, 3])
    topo.connect(2, 4)
    dodag = Dodag.build(topo, root=0)
    result = plan(dodag, sender=0, members={4})
    assert result.uplink == ()
    assert result.downlinks == ((0, 2), (2, 4))
    assert result.receivers == (4,)
    assert result.transmissions == 2


def test_plan_from_leaf_goes_up_then_down():
    topo = Topology.star(0, [1, 2])
    dodag = Dodag.build(topo, root=0)
    result = plan(dodag, sender=1, members={2})
    assert result.uplink == (1, 0)
    assert result.downlinks == ((0, 2),)
    assert result.transmissions == 2


def test_plan_skips_memberless_subtrees():
    topo = Topology.star(0, [1, 2, 3])
    dodag = Dodag.build(topo, root=0)
    result = plan(dodag, sender=0, members={3})
    assert (0, 1) not in result.downlinks
    assert (0, 2) not in result.downlinks


def test_root_membership_counts_as_receiver():
    topo = Topology.star(0, [1])
    dodag = Dodag.build(topo, root=0)
    result = plan(dodag, sender=1, members={0})
    assert result.receivers == (0,)
    assert result.downlinks == ()


def test_no_members_means_uplink_only():
    topo = Topology.star(0, [1])
    dodag = Dodag.build(topo, root=0)
    result = plan(dodag, sender=1, members=set())
    assert result.receivers == ()
    assert result.transmissions == 1  # still climbs to the root
