"""Unit tests: rolling checkpoint retention (``CheckpointPlan.keep``).

With ``keep=N`` a periodic-checkpoint run keeps only the newest N
checkpoint instants — each a self-contained ``at-<ns>/`` fleet
directory — and garbage-collects older ones as the run advances.
``resolve_fleet_dir`` makes resume pick the newest instant without the
caller naming it.
"""

from __future__ import annotations

import pytest

from repro.fleet.runner import CheckpointPlan, resume_scenario, run_scenario
from repro.fleet.scenario import SCENARIOS
from repro.snapshot.checkpoint import (
    CheckpointError,
    digest_document,
    instant_dir_name,
    resolve_fleet_dir,
)


def _scenario(seed=9):
    return SCENARIOS["smoke"].scaled(
        things=4, shard_size=2, duration_s=4.0, seed=seed)


def _at_dirs(root):
    return sorted(child.name for child in root.iterdir()
                  if child.is_dir() and child.name.startswith("at-"))


# ------------------------------------------------------------ dir naming
def test_instant_dir_names_sort_lexicographically_as_chronologically():
    times = [9, 1_000_000_000, 42_000, 123_456_789_012_345]
    names = [instant_dir_name(t) for t in times]
    assert sorted(names) == [instant_dir_name(t) for t in sorted(times)]
    assert instant_dir_name(1_000_000_000) == "at-000001000000000"


# -------------------------------------------------------------- retention
def test_keep_retains_only_the_last_n_instants(tmp_path):
    plan = CheckpointPlan(directory=str(tmp_path), every_s=1.0, keep=2)
    run_scenario(_scenario(), workers=1, checkpoint=plan)
    names = _at_dirs(tmp_path)
    assert len(names) == 2
    # The two newest instants of {1s, 2s, 3s} (instants stay strictly
    # inside the run: every_s=1.0 over 4s checkpoints at 1, 2 and 3).
    assert names == [instant_dir_name(2_000_000_000),
                     instant_dir_name(3_000_000_000)]
    for name in names:
        instant = tmp_path / name
        assert (instant / "fleet.json").exists()
        shard_dirs = sorted(p.name for p in instant.iterdir()
                            if p.is_dir())
        assert shard_dirs == ["shard-0000", "shard-0001"]
    # No flat shard dirs at the root: everything lives under instants.
    assert not (tmp_path / "shard-0000").exists()


def test_keep_larger_than_instant_count_keeps_everything(tmp_path):
    plan = CheckpointPlan(directory=str(tmp_path), every_s=1.0, keep=10)
    run_scenario(_scenario(), workers=1, checkpoint=plan)
    assert len(_at_dirs(tmp_path)) == 3  # instants at 1s, 2s and 3s


# ---------------------------------------------------------------- resolve
def test_resolve_fleet_dir_prefers_self_then_latest_instant(tmp_path):
    plan = CheckpointPlan(directory=str(tmp_path), every_s=1.0, keep=2)
    run_scenario(_scenario(), workers=1, checkpoint=plan)
    latest = tmp_path / instant_dir_name(3_000_000_000)
    assert resolve_fleet_dir(tmp_path) == latest
    # An instant dir resolves to itself.
    assert resolve_fleet_dir(latest) == latest


def test_resolve_fleet_dir_rejects_a_directory_without_checkpoints(
        tmp_path):
    with pytest.raises(CheckpointError):
        resolve_fleet_dir(tmp_path)


# ----------------------------------------------------------------- resume
@pytest.mark.parametrize("workers", [1, 2])
def test_resume_from_rolling_retention_matches_uninterrupted(
        tmp_path, workers):
    scenario = _scenario(11)
    baseline = run_scenario(scenario, workers=workers)
    plan = CheckpointPlan(directory=str(tmp_path), every_s=1.0, keep=2)
    run_scenario(scenario, workers=workers, checkpoint=plan)
    # resume_scenario resolves the newest instant (3s) and finishes
    # the run from there.
    resumed = resume_scenario(tmp_path, workers=workers)
    assert digest_document(resumed.merged) == \
        digest_document(baseline.merged)


def test_resume_from_an_explicit_older_instant(tmp_path):
    scenario = _scenario(13)
    baseline = run_scenario(scenario, workers=1)
    plan = CheckpointPlan(directory=str(tmp_path), every_s=1.0, keep=3)
    run_scenario(scenario, workers=1, checkpoint=plan)
    older = tmp_path / instant_dir_name(2_000_000_000)
    resumed = resume_scenario(older, workers=1)
    assert digest_document(resumed.merged) == \
        digest_document(baseline.merged)
