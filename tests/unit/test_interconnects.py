"""Unit tests for the ADC / I2C / SPI / UART bus models."""

import random

import pytest

from repro.hw.connector import (
    BusKind,
    COMMUNICATION_PINS,
    NOT_CONNECTED,
    bus_wire_count,
    pin_map_for,
)
from repro.interconnect.adc import AdcBus
from repro.interconnect.base import (
    BusBusyError,
    BusTimeoutError,
    InvalidConfigurationError,
    NackError,
)
from repro.interconnect.i2c import I2cBus
from repro.interconnect.spi import SpiBus
from repro.interconnect.uart import UartBus, UartConfig
from repro.sim.kernel import Simulator, ns_from_s


class Voltage:
    def __init__(self, volts):
        self.volts = volts

    def voltage_v(self):
        return self.volts


# ------------------------------------------------------------------ connector
def test_table1_pinouts():
    assert pin_map_for(BusKind.ADC).signal_on(10) == "Analog Signal"
    assert pin_map_for(BusKind.I2C).signal_on(11) == "SCL"
    assert pin_map_for(BusKind.SPI).signal_on(12) == "SCK"
    assert pin_map_for(BusKind.UART).signal_on(12) == NOT_CONNECTED


def test_bus_wire_counts():
    assert bus_wire_count(BusKind.ADC) == 1
    assert bus_wire_count(BusKind.I2C) == 2
    assert bus_wire_count(BusKind.SPI) == 3
    assert bus_wire_count(BusKind.UART) == 2
    assert len(COMMUNICATION_PINS) == 3


def test_non_communication_pin_rejected():
    with pytest.raises(ValueError):
        pin_map_for(BusKind.ADC).signal_on(5)


# ------------------------------------------------------------------------ ADC
def test_adc_quantizes_voltage():
    adc = AdcBus(noise_lsb=0.0, rng=random.Random(0))
    adc.attach(Voltage(1.65))
    transaction = adc.sample()
    assert transaction.value == pytest.approx(512, abs=1)
    assert transaction.duration_s == pytest.approx(13 / 125_000)
    assert transaction.energy_j > 0


def test_adc_clamps_out_of_range():
    adc = AdcBus(noise_lsb=0.0)
    adc.attach(Voltage(5.0))
    assert adc.sample().value == adc.max_count
    adc.detach()
    adc.attach(Voltage(-1.0))
    assert adc.sample().value == 0


def test_adc_counts_to_millivolts():
    adc = AdcBus(noise_lsb=0.0)
    assert adc.counts_to_millivolts(1023) == 3300
    assert adc.counts_to_millivolts(0) == 0
    with pytest.raises(ValueError):
        adc.counts_to_millivolts(2000)


def test_adc_rejects_bad_configuration():
    adc = AdcBus()
    with pytest.raises(InvalidConfigurationError):
        adc.configure(12, 3.3)
    with pytest.raises(InvalidConfigurationError):
        adc.configure(10, 5.0)


def test_adc_without_device_times_out():
    with pytest.raises(BusTimeoutError):
        AdcBus().sample()


def test_double_attach_rejected():
    adc = AdcBus()
    adc.attach(Voltage(1.0))
    with pytest.raises(BusBusyError):
        adc.attach(Voltage(2.0))


# ------------------------------------------------------------------------ I2C
class EchoSlave:
    def __init__(self, address=0x42):
        self.i2c_address = address
        self.written = b""

    def handle_write(self, data):
        self.written += data

    def handle_read(self, count):
        return bytes(range(count))


def test_i2c_write_and_read():
    bus = I2cBus()
    slave = EchoSlave()
    bus.attach(slave)
    bus.write(0x42, b"\x01\x02")
    assert slave.written == b"\x01\x02"
    transaction = bus.read(0x42, 3)
    assert transaction.value == b"\x00\x01\x02"


def test_i2c_timing_scales_with_bytes():
    bus = I2cBus(frequency_hz=100_000)
    bus.attach(EchoSlave())
    short = bus.read(0x42, 1).duration_s
    long = bus.read(0x42, 10).duration_s
    assert long > short
    # 9 bits per byte at 100 kHz.
    assert long - short == pytest.approx(9 * 9 / 100_000)


def test_i2c_nack_for_absent_address():
    bus = I2cBus()
    bus.attach(EchoSlave(0x42))
    with pytest.raises(NackError):
        bus.write(0x17, b"\x00")


def test_i2c_write_read_combines():
    bus = I2cBus()
    bus.attach(EchoSlave())
    transaction = bus.write_read(0x42, b"\xaa", 2)
    assert transaction.value == b"\x00\x01"


def test_i2c_duplicate_address_rejected():
    bus = I2cBus()
    bus.attach(EchoSlave(0x42))
    with pytest.raises(InvalidConfigurationError):
        bus.attach(EchoSlave(0x42))


def test_i2c_bad_frequency_rejected():
    with pytest.raises(InvalidConfigurationError):
        I2cBus(frequency_hz=123)


# ------------------------------------------------------------------------ SPI
class SpiEcho:
    def spi_transfer(self, mosi):
        return bytes(b ^ 0xFF for b in mosi)


def test_spi_full_duplex_transfer():
    bus = SpiBus(clock_hz=1_000_000)
    bus.attach(SpiEcho())
    transaction = bus.transfer(b"\x0f\xf0")
    assert transaction.value == b"\xf0\x0f"
    assert transaction.duration_s == pytest.approx(16 / 1_000_000)


def test_spi_validates_configuration():
    with pytest.raises(InvalidConfigurationError):
        SpiBus(clock_hz=100_000_000)
    with pytest.raises(InvalidConfigurationError):
        SpiBus(mode=7)


# ----------------------------------------------------------------------- UART
def test_uart_config_validation():
    with pytest.raises(InvalidConfigurationError):
        UartConfig(baud=1234).validate()
    with pytest.raises(InvalidConfigurationError):
        UartConfig(parity="X").validate()
    with pytest.raises(InvalidConfigurationError):
        UartConfig(stop_bits=3).validate()


def test_uart_byte_time_9600_8n1():
    config = UartConfig(baud=9600)
    assert config.bits_per_frame == 10
    assert config.byte_seconds == pytest.approx(10 / 9600)


def test_uart_device_bytes_arrive_spaced_on_the_sim():
    sim = Simulator()
    bus = UartBus(sim)
    arrivals = []
    bus.set_rx_handler(lambda byte: arrivals.append((sim.now_us, byte)))
    bus.device_transmit(b"AB")
    sim.run()
    assert [b for _, b in arrivals] == [0x41, 0x42]
    spacing_us = arrivals[1][0] - arrivals[0][0]
    assert spacing_us == pytest.approx(10 / 9600 * 1e6, rel=1e-3)


def test_uart_fifo_buffers_until_handler_armed():
    sim = Simulator()
    bus = UartBus(sim, rx_fifo_size=4)
    bus.device_transmit(b"xy")
    sim.run()
    got = []
    bus.set_rx_handler(got.append)
    assert bytes(got) == b"xy"


def test_uart_fifo_overflow_drops_and_counts():
    sim = Simulator()
    bus = UartBus(sim, rx_fifo_size=2)
    bus.device_transmit(b"abcd")
    sim.run()
    assert bus.overflow_count == 2


def test_uart_host_write_reaches_device_after_line_time():
    sim = Simulator()
    bus = UartBus(sim)

    class Sink:
        def __init__(self):
            self.data = b""
            self.at_us = None

        def on_host_write(self, data):
            self.data = data
            self.at_us = sim.now_us

    sink = Sink()
    bus.attach(sink)
    transaction = bus.host_write(b"hi")
    sim.run()
    assert sink.data == b"hi"
    assert sink.at_us == pytest.approx(transaction.duration_s * 1e6, rel=1e-3)


def test_uart_reset_restores_defaults():
    sim = Simulator()
    bus = UartBus(sim)
    bus.configure(UartConfig(baud=115200))
    bus.reset()
    assert bus.config.baud == 9600
