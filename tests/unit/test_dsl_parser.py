"""Unit tests for the DSL parser."""

import pytest

from repro.dsl import ast_nodes as ast
from repro.dsl.errors import ParseError
from repro.dsl.parser import parse

MINIMAL = """\
event init():
    x = 1;
"""


def test_minimal_program_shape():
    program = parse(MINIMAL)
    assert len(program.handlers) == 1
    handler = program.handlers[0]
    assert handler.kind == "event"
    assert handler.name == "init"
    assert isinstance(handler.body[0], ast.Assign)


def test_imports_and_globals():
    program = parse("import uart;\nuint8_t a, b[4];\nbool c = true;\n"
                    "event init():\n    a = 1;\n")
    assert [i.library for i in program.imports] == ["uart"]
    names = [(g.name, g.array_length) for g in program.globals]
    assert names == [("a", None), ("b", 4), ("c", None)]
    assert isinstance(program.globals[2].initializer, ast.BoolLiteral)


def test_array_initializer_rejected_by_grammar():
    with pytest.raises(ParseError):
        parse("uint8_t a[4] = 3;\nevent init():\n    a[0] = 1;\n")


def test_zero_length_array_rejected():
    with pytest.raises(ParseError):
        parse("uint8_t a[0];\nevent init():\n    a[0] = 1;\n")


def test_handler_params():
    program = parse("event newdata(char c, uint16_t n):\n    x = c;\n")
    params = program.handlers[0].params
    assert [(p.type.name, p.name) for p in params] == [
        ("char", "c"), ("uint16_t", "n")
    ]


def test_error_handler_kind():
    program = parse("error timeOut():\n    x = 1;\n")
    assert program.handlers[0].kind == "error"


def test_signal_targets_and_args():
    program = parse(
        "event init():\n"
        "    signal uart.init(9600, 1);\n"
        "    signal this.readDone();\n"
    )
    first, second = program.handlers[0].body
    assert isinstance(first, ast.Signal)
    assert first.target == "uart" and first.event == "init"
    assert len(first.args) == 2
    assert second.target == "this" and second.event == "readDone"


def test_return_forms():
    program = parse(
        "event a():\n    return;\n"
        "event b():\n    return x + 1;\n"
    )
    bare = program.handlers[0].body[0]
    valued = program.handlers[1].body[0]
    assert bare.value is None
    assert isinstance(valued.value, ast.BinaryOp)


def test_if_elif_else_desugars_to_nested_if():
    program = parse(
        "event a():\n"
        "    if x == 1:\n"
        "        y = 1;\n"
        "    elif x == 2:\n"
        "        y = 2;\n"
        "    else:\n"
        "        y = 3;\n"
    )
    statement = program.handlers[0].body[0]
    assert isinstance(statement, ast.If)
    assert len(statement.else_body) == 1
    nested = statement.else_body[0]
    assert isinstance(nested, ast.If)
    assert len(nested.else_body) == 1


def test_while_with_break_continue():
    program = parse(
        "event a():\n"
        "    while x < 10:\n"
        "        x++;\n"
        "        if x == 5:\n"
        "            break;\n"
        "        continue;\n"
    )
    loop = program.handlers[0].body[0]
    assert isinstance(loop, ast.While)
    assert isinstance(loop.body[1].then_body[0], ast.Break)
    assert isinstance(loop.body[2], ast.Continue)


def test_operator_precedence():
    program = parse("event a():\n    x = 1 + 2 * 3;\n")
    value = program.handlers[0].body[0].value
    assert value.op == "+"
    assert value.right.op == "*"


def test_shift_binds_looser_than_additive():
    program = parse("event a():\n    x = a + b << 2;\n")
    value = program.handlers[0].body[0].value
    assert value.op == "<<"
    assert value.left.op == "+"


def test_unary_not_and_or_forms():
    program = parse("event a():\n    if !(c == 1 or c == 2) and not d:\n        x = 1;\n")
    condition = program.handlers[0].body[0].condition
    assert condition.op == "and"
    assert isinstance(condition.left, ast.UnaryOp)
    assert condition.left.op == "!"
    assert condition.right.op == "!"  # `not` normalises to `!`


def test_postfix_increment_in_index():
    program = parse("event a():\n    buf[idx++] = c;\n")
    target = program.handlers[0].body[0].target
    assert isinstance(target, ast.IndexRef)
    assert isinstance(target.index, ast.PostfixOp)


def test_augmented_assignment():
    program = parse("event a():\n    x += 2;\n    y[1] <<= 3;\n")
    first, second = program.handlers[0].body
    assert first.op == "+="
    assert second.op == "<<="


def test_postfix_on_literal_rejected():
    with pytest.raises(ParseError):
        parse("event a():\n    5++;\n")


def test_assign_to_expression_rejected():
    with pytest.raises(ParseError):
        parse("event a():\n    x + 1 = 2;\n")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse("event a():\n    x = 1\n")


def test_missing_block_rejected():
    with pytest.raises(ParseError):
        parse("event a():\nx = 1;\n")


def test_junk_top_level_rejected():
    with pytest.raises(ParseError):
        parse("x = 1;\n")
