"""Unit tests for the pulse <-> byte identification codec."""

import random

import pytest

from repro.hw.components import Resistor
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import (
    CodecParams,
    DEFAULT_CODEC,
    IdentificationError,
    PulseDecoder,
    resistor_set_for_id,
)


def test_resistances_are_monotonic_in_byte():
    params = DEFAULT_CODEC
    values = [params.resistance_for_byte(b) for b in range(256)]
    assert values == sorted(values)
    assert values[0] == pytest.approx(9090.0)


def test_byte_out_of_range_rejected():
    with pytest.raises(ValueError):
        DEFAULT_CODEC.resistance_for_byte(256)


def test_pulse_lengths_are_short(paper_range=(100e-6, 0.15)):
    """The 'four short pulses' property: no pulse exceeds ~100 ms."""
    assert DEFAULT_CODEC.min_pulse_seconds > paper_range[0]
    assert DEFAULT_CODEC.max_pulse_seconds < paper_range[1]


def test_error_budget_within_guard():
    """Worst-case decode error must stay inside the guard band."""
    assert DEFAULT_CODEC.error_budget_fraction_of_bin() < DEFAULT_CODEC.guard_fraction


def test_decode_exact_nominal_pulses():
    params = DEFAULT_CODEC
    decoder = PulseDecoder(params)
    reference = params.nominal_pulse_seconds(0)
    for byte in (0, 1, 17, 128, 254, 255):
        pulse = params.nominal_pulse_seconds(byte)
        assert decoder.decode_byte(pulse, reference) == byte


def test_decode_id_from_four_pulses():
    params = DEFAULT_CODEC
    decoder = PulseDecoder(params)
    device = DeviceId.from_hex("0xad1cbe01")
    references = [params.nominal_pulse_seconds(0)] * 4
    pulses = [params.nominal_pulse_seconds(b) for b in device.to_bytes()]
    assert decoder.decode_id(pulses, references) == device


def test_decode_rejects_out_of_guard_pulse():
    params = DEFAULT_CODEC
    decoder = PulseDecoder(params)
    reference = params.nominal_pulse_seconds(0)
    # Halfway between two bins is outside any guard band.
    between = (params.nominal_pulse_seconds(10)
               + params.nominal_pulse_seconds(11)) / 2
    with pytest.raises(IdentificationError):
        decoder.decode_byte(between, reference)


def test_decode_rejects_nonpositive():
    decoder = PulseDecoder()
    with pytest.raises(IdentificationError):
        decoder.decode_byte(0.0, 1.0)


def test_decode_needs_exactly_four_pulses():
    decoder = PulseDecoder()
    with pytest.raises(IdentificationError):
        decoder.decode_id([1e-3] * 3, [1e-3] * 4)


def test_resistor_set_tool_matches_byte_encoding():
    device = DeviceId.from_hex("0x0a0bbf03")
    resistors = resistor_set_for_id(device)
    expected = [DEFAULT_CODEC.resistance_for_byte(b) for b in device.to_bytes()]
    assert list(resistors) == expected
    assert resistors.tolerance == DEFAULT_CODEC.peripheral_resistor_tolerance


def test_roundtrip_with_manufactured_parts():
    """Manufactured (toleranced) resistors still decode correctly."""
    rng = random.Random(5)
    params = DEFAULT_CODEC
    decoder = PulseDecoder(params)
    for _ in range(50):
        device = DeviceId(rng.getrandbits(32))
        references = [params.nominal_pulse_seconds(0)] * 4
        pulses = []
        for byte in device.to_bytes():
            part = Resistor.manufacture(
                params.resistance_for_byte(byte),
                params.peripheral_resistor_tolerance, rng,
            )
            pulses.append(
                params.multivibrator_k * part.actual_ohms * params.capacitor_farads
            )
        assert decoder.decode_id(pulses, references) == device


def test_empty_channel_timeout_exceeds_worst_pulse():
    params = DEFAULT_CODEC
    worst = params.max_pulse_seconds * (1 + params.capacitor_tolerance) \
        * (1 + params.peripheral_resistor_tolerance)
    assert params.empty_channel_timeout_seconds > worst


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        CodecParams(base_resistance_ohms=-1)
    with pytest.raises(ValueError):
        CodecParams(guard_fraction=0.6)
