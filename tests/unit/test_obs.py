"""Unit tests for the repro.obs tracing core and Chrome exporter."""

import json
import pickle
from pathlib import Path

from repro.obs.export import chrome_events, merge_traces
from repro.obs.report import collect_traces, critical_path, render_summary
from repro.obs.tracer import Tracer, install_tracer
from repro.sim.kernel import Simulator

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "golden_trace.json"


def make_tracer(sim=None, **kwargs):
    return Tracer(sim if sim is not None else Simulator(), **kwargs)


# ------------------------------------------------------------------ recording
def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer = make_tracer(limit=3)
    for index in range(5):
        tracer.instant(f"e{index}", "core")
    assert [event.name for event in tracer.events] == ["e2", "e3", "e4"]
    assert tracer.dropped == 2
    tracer.clear()
    assert tracer.events == ()
    assert tracer.dropped == 0


def test_category_gating_records_only_requested_categories():
    tracer = make_tracer(categories=("net",))
    assert tracer.enabled_for("net")
    assert not tracer.enabled_for("vm")
    assert not tracer.enabled_for("kernel")
    # None means everything, including the kernel firehose.
    assert make_tracer(categories=None).enabled_for("kernel")


def test_enable_category_reports_whether_it_changed_anything():
    tracer = make_tracer(categories=("net",))
    assert tracer.enable_category("proto") is True
    assert tracer.enable_category("proto") is False
    assert tracer.enabled_for("proto")
    tracer.disable_category("proto")
    assert not tracer.enabled_for("proto")


def test_span_end_is_idempotent_and_nesting_is_recorded():
    sim = Simulator()
    tracer = make_tracer(sim)
    outer = tracer.begin("outer", "core", 1)
    inner = tracer.begin("inner", "core", 1)
    inner.end()
    inner.end()  # double end: ignored
    outer.end()
    outer.end()
    phases = [(event.phase, event.name) for event in tracer.events]
    assert phases == [("B", "outer"), ("B", "inner"),
                      ("E", "inner"), ("E", "outer")]


def test_span_context_manager_closes_on_exit():
    tracer = make_tracer()
    with tracer.begin("op", "core", 1) as span:
        assert span.open
    assert not span.open
    assert [event.phase for event in tracer.events] == ["B", "E"]


def test_trace_ids_are_offset_by_the_shard_base():
    tracer = make_tracer(trace_id_base=(3 + 1) << 32)
    assert tracer.new_trace() == (4 << 32) + 1
    assert tracer.new_trace() == (4 << 32) + 2


def test_seq_bindings_evict_fifo_at_the_bound():
    from repro.obs import tracer as tracer_mod

    tracer = make_tracer()
    limit = tracer_mod._SEQ_BINDING_LIMIT
    for seq in range(limit + 10):
        tracer.bind_seq(seq, 1000 + seq)
    assert tracer.trace_for_seq(0) is None  # oldest evicted
    assert tracer.trace_for_seq(9) is None
    assert tracer.trace_for_seq(10) == 1010
    assert tracer.trace_for_seq(limit + 9) == 1000 + limit + 9


def test_tracks_get_stable_ids_from_one():
    tracer = make_tracer()
    assert tracer.track("a") == 1
    assert tracer.track("b") == 2
    assert tracer.track("a") == 1


def test_listeners_observe_recorded_events():
    tracer = make_tracer()
    seen = []
    tracer.add_listener(seen.append)
    tracer.instant("x", "core")
    tracer.remove_listener(seen.append)
    tracer.remove_listener(seen.append)  # idempotent
    tracer.instant("y", "core")
    assert [event.name for event in seen] == ["x"]


def test_snapshot_is_json_and_pickle_safe():
    tracer = make_tracer(label="shard-0")
    tracer.complete("slice", "net", tracer.track("t"), 100, args={"n": 1})
    snap = tracer.snapshot()
    assert pickle.loads(pickle.dumps(snap)) == snap
    # Payload bytes are only sanitised at export time.
    assert json.loads(json.dumps(snap)) == snap
    assert snap["label"] == "shard-0"
    assert snap["tracks"] == {"t": 1}


# --------------------------------------------------------------- kernel hooks
def test_attach_and_detach_swap_the_kernel_hot_paths():
    sim = Simulator()
    assert "step" not in sim.__dict__ and "schedule_at" not in sim.__dict__
    tracer = install_tracer(sim)
    assert sim.tracer is tracer
    assert sim.__dict__["step"] == sim._traced_step
    assert sim.__dict__["schedule_at"] == sim._traced_schedule_at
    sim.detach_tracer()
    assert sim.tracer is None
    assert "step" not in sim.__dict__ and "schedule_at" not in sim.__dict__


def test_kernel_propagates_the_current_trace_across_schedules():
    sim = Simulator()
    tracer = install_tracer(sim)
    seen = []

    def leaf():
        seen.append(tracer.current)

    def root():
        tracer.current = tracer.new_trace()
        sim.schedule(10, leaf)
        sim.schedule(20, leaf)

    sim.schedule(0, root)
    sim.schedule(50, leaf)  # scheduled outside any trace context
    sim.run()
    assert seen == [1, 1, None]
    assert tracer.current is None  # always reset after each event


def test_untraced_simulator_events_carry_no_trace_attribute():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(True))
    event = sim._queue[0][2]
    assert not hasattr(event, "trace_id")
    sim.run()
    assert fired == [True]


# ------------------------------------------------------------------- exporter
def _golden_session():
    """A fully scripted tracer session: byte-deterministic by design."""
    sim = Simulator()
    tracer = install_tracer(sim, limit=64, label="golden")
    track = tracer.track("worker")
    trace = tracer.new_trace()
    tracer.async_begin("client.read", "core", trace)
    tracer.complete("stack.send", "net", track, 2_000, ts_ns=1_000,
                    trace_id=trace, args={"payload": b"\x01\x02"})
    tracer.instant("thing.rx", "core", track, trace_id=trace)
    tracer.complete("adc.sample", "interconnect", track, 500, ts_ns=4_000,
                    trace_id=trace)
    tracer.async_end("client.read", "core", trace)
    return merge_traces([tracer.snapshot()])


def test_chrome_export_matches_the_golden_file():
    document = _golden_session()
    rendered = json.dumps(document, indent=1, sort_keys=True) + "\n"
    assert rendered == GOLDEN.read_text(), (
        "exporter output drifted from tests/data/golden_trace.json; if the "
        "change is intentional, regenerate the golden file")


def test_export_emits_metadata_flow_and_async_ids():
    document = _golden_session()
    events = document["traceEvents"]
    names = {(e["ph"], e["name"]) for e in events}
    assert ("M", "process_name") in names
    assert ("M", "thread_name") in names
    flows = [e for e in events if e.get("cat") == "trace"]
    assert [f["ph"] for f in flows] == ["s", "t"]  # one start, then steps
    assert all(f["id"] == "0x1" for f in flows)
    asyncs = [e for e in events if e["ph"] in ("b", "e")]
    assert [a["id"] for a in asyncs] == ["0x1", "0x1"]
    payload = next(e for e in events if e["name"] == "stack.send")
    assert payload["args"]["payload"] == "0102"  # bytes -> hex
    assert payload["dur"] == 2.0  # ns -> us


def test_merge_preserves_shard_order_and_reserves_missing_pids():
    snap = make_tracer(label="s2").snapshot()
    document = merge_traces([None, None, snap])
    pids = {event["pid"] for event in document["traceEvents"]}
    assert pids == {2}


_TELEMETRY_SNAP = {
    "series": [
        {"name": "fleet.reads_ok", "labels": {}, "kind": "counter",
         "unit": "", "help": "", "samples": [[1_000_000, 1.0],
                                             [2_000_000, 3.0]]},
        {"name": "fleet.energy_joules", "labels": {"node": "thing-0"},
         "kind": "gauge", "unit": "J", "help": "",
         "samples": [[1_000_000, 0.5]]},
    ],
}


def test_counter_events_render_telemetry_series_as_chrome_counters():
    from repro.obs.export import counter_events

    events = counter_events(_TELEMETRY_SNAP, pid=3)
    assert all(e["ph"] == "C" and e["pid"] == 3 for e in events)
    reads = [e for e in events if e["name"] == "fleet.reads_ok"]
    assert [e["ts"] for e in reads] == [1000.0, 2000.0]  # ns -> us
    assert [e["args"]["reads_ok"] for e in reads] == [1.0, 3.0]
    # Label sets decorate the track name (OpenMetrics style).
    labeled = [e for e in events if "{" in e["name"]]
    assert labeled and labeled[0]["name"] == \
        "fleet.energy_joules{node=thing-0}"


def test_merge_traces_embeds_telemetry_counters_on_the_shard_pid():
    snap = make_tracer(label="s0").snapshot()
    document = merge_traces([snap], telemetry=[_TELEMETRY_SNAP])
    counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 3
    assert {e["pid"] for e in counters} == {0}
    # Tracer events are untouched alongside.
    assert any(e["ph"] != "C" for e in document["traceEvents"])


# --------------------------------------------------------------------- report
def test_collect_traces_and_critical_path_reports_waits():
    document = _golden_session()
    traces = collect_traces(document)
    assert set(traces) == {1}
    summary = traces[1]
    assert summary.label == "client.read"
    assert summary.by_cat_us == {"net": 2.0, "interconnect": 0.5}
    path = critical_path(summary)
    assert [name for _, _, name, _ in path] == ["stack.send", "adc.sample"]
    rendered = render_summary(document)
    assert "client.read" in rendered
    assert "wait" in rendered  # the 1 us gap between the slices
