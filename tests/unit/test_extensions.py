"""Unit tests for the §9 future-work extensions: structured name space,
location-aware multicast groups, ablation harness plumbing."""

import pytest

from repro.core.namespace import (
    DeviceClass,
    MAX_PRODUCT,
    MAX_VENDOR,
    NamespaceError,
    StructuredId,
    VendorRegistry,
    is_structured,
)
from repro.hw.device_id import DeviceId
from repro.net.ipv6 import AddressError, Ipv6Address
from repro.net.multicast import (
    location_group,
    parse_group,
    parse_location_group,
    peripheral_group,
    stream_group,
)


# ---------------------------------------------------------- structured ids
def test_structured_id_roundtrip():
    sid = StructuredId(vendor=0x123, device_class=DeviceClass.TEMPERATURE,
                       product=0x3FF)
    device = sid.to_device_id()
    assert is_structured(device)
    assert StructuredId.from_device_id(device) == sid


def test_structured_id_field_limits():
    with pytest.raises(NamespaceError):
        StructuredId(MAX_VENDOR + 1, DeviceClass.GENERIC, 0)
    with pytest.raises(NamespaceError):
        StructuredId(0, DeviceClass.GENERIC, MAX_PRODUCT + 1)


def test_structured_ids_never_collide_with_reserved():
    for vendor in (0, MAX_VENDOR):
        for product in (0, MAX_PRODUCT):
            device = StructuredId(vendor, DeviceClass.RADIO, product).to_device_id()
            assert not device.is_reserved


def test_flat_legacy_id_rejected_by_parser():
    with pytest.raises(NamespaceError):
        StructuredId.from_device_id(DeviceId(0x00000001))
    # None of the paper-derived catalogue ids fall in the 0x7 scheme.
    for legacy in (0xAD1CBE01, 0x0A0BBF03, 0xBE03AF0E, 0xED3F0AC1, 0xED3FBDA1):
        assert not is_structured(DeviceId(legacy))


def test_structured_str_form():
    sid = StructuredId(5, DeviceClass.SWITCH, 9)
    assert str(sid) == "005:10:009"


def test_vendor_registry_allocation():
    registry = VendorRegistry()
    acme = registry.register_vendor("ACME")
    assert registry.register_vendor("ACME") == acme  # idempotent
    other = registry.register_vendor("Other")
    assert other != acme
    assert registry.vendor_name(acme) == "ACME"

    first = registry.allocate_product(acme, DeviceClass.TEMPERATURE)
    second = registry.allocate_product(acme, DeviceClass.TEMPERATURE)
    cross = registry.allocate_product(acme, DeviceClass.HUMIDITY)
    assert first.product == 0 and second.product == 1
    assert cross.product == 0  # product numbering is per class
    assert len(registry.products_of(acme)) == 3


def test_vendor_registry_errors():
    registry = VendorRegistry()
    with pytest.raises(NamespaceError):
        registry.register_vendor("")
    with pytest.raises(NamespaceError):
        registry.allocate_product(99, DeviceClass.GENERIC)


def test_structured_id_works_with_resistor_tool():
    """Backwards compatibility: structured ids encode like any other."""
    from repro.hw.idcodec import resistor_set_for_id

    device = StructuredId(7, DeviceClass.PRESSURE, 3).to_device_id()
    resistors = resistor_set_for_id(device)
    assert len(list(resistors)) == 4


# ---------------------------------------------------- location-aware groups
def test_location_group_distinct_per_zone():
    prefix = 0x20010DB80000
    a = location_group(prefix, 0xAD1CBE01, 1)
    b = location_group(prefix, 0xAD1CBE01, 2)
    plain = peripheral_group(prefix, 0xAD1CBE01)
    stream = stream_group(prefix, 0xAD1CBE01)
    assert len({a.value, b.value, plain.value, stream.value}) == 4


def test_location_group_parse_roundtrip():
    prefix = 0x20010DB80000
    group = location_group(prefix, 0xED3F0AC1, 0x7B)
    parsed = parse_location_group(group)
    assert parsed is not None
    info, zone = parsed
    assert zone == 0x7B
    assert info.peripheral_id == 0xED3F0AC1
    # And it is NOT a plain discovery group.
    assert parse_group(group) is None


def test_location_group_zone_range():
    with pytest.raises(AddressError):
        location_group(0, 1, 0x1000)
    with pytest.raises(AddressError):
        location_group(0, 1, -1)


def test_parse_location_group_rejects_other_addresses():
    assert parse_location_group(Ipv6Address.parse("ff02::1")) is None
    assert parse_location_group(peripheral_group(0, 1)) is None
    assert parse_location_group(stream_group(0, 1)) is None


# ------------------------------------------------------------- ablation glue
def test_compiler_options_shrink_images():
    from repro.dsl.compiler import CompilerOptions, compile_source
    from repro.drivers.catalog import CATALOG

    source = CATALOG["bmp180"].dsl_source()
    full = compile_source(source, 1).image_size
    plain = compile_source(source, 1, CompilerOptions(False, False, False)).image_size
    assert full < plain


def test_compiler_options_preserve_semantics():
    """Every option set produces a driver that computes the same result."""
    from repro.dsl.bytecode import HANDLER_KIND_EVENT
    from repro.dsl.compiler import CompilerOptions, compile_source
    from repro.dsl.symbols import well_known_id
    from repro.vm.machine import DriverInstance, VirtualMachine

    source = (
        "int32_t out;\nuint8_t buf[4];\n"
        "event init():\n"
        "    buf[0] = 7;\n"
        "    out = 0;\n"
        "    while out < 100:\n"
        "        out = out + buf[0];\n"
        "    out = out * 3 - buf[0];\n"
        "event destroy():\n    out = 0;\n"
    )
    results = set()
    for compact in (False, True):
        for short in (False, True):
            for immediate in (False, True):
                image = compile_source(
                    source, 1, CompilerOptions(compact, short, immediate)
                )
                instance = DriverInstance(image)
                handler = image.find_handler(
                    HANDLER_KIND_EVENT, well_known_id("init")
                )
                VirtualMachine().execute(instance, handler, (),
                                         signal_sink=lambda *a: None)
                results.add(instance.scalar(0))
    assert results == {105 * 3 - 7}


def test_ablation_ratiometric_is_decisive():
    from repro.analysis.ablation import decode_monte_carlo

    good = decode_monte_carlo(ratiometric=True, trials=60)
    bad = decode_monte_carlo(ratiometric=False, trials=60)
    assert good.failure_rate == 0.0
    assert bad.failure_rate > 0.5


def test_ablation_tolerance_sweep_monotone_in_the_tail():
    from repro.analysis.ablation import tolerance_sweep

    sweep = tolerance_sweep(tolerances=(0.005, 0.02), trials=60)
    assert sweep[0][1].failure_rate == 0.0
    assert sweep[1][1].failure_rate > 0.5
