"""Unit tests for 32-bit µPnP device identifiers."""

import pytest

from repro.hw.device_id import ALL_CLIENTS, ALL_PERIPHERALS, DeviceId


def test_bytes_roundtrip():
    device = DeviceId.from_bytes((0xAD, 0x1C, 0xBE, 0x01))
    assert device.value == 0xAD1CBE01
    assert device.to_bytes() == (0xAD, 0x1C, 0xBE, 0x01)


def test_hex_parsing_and_str():
    device = DeviceId.from_hex("0xed3f0ac1")
    assert str(device) == "0xed3f0ac1"
    assert DeviceId.from_hex("ed3f0ac1") == device


def test_wire_roundtrip():
    device = DeviceId(0x12345678)
    assert DeviceId.unpack(device.packed()) == device
    assert device.packed() == b"\x12\x34\x56\x78"


def test_reserved_addresses():
    assert DeviceId(ALL_PERIPHERALS).is_reserved
    assert DeviceId(ALL_CLIENTS).is_reserved
    assert not DeviceId(0xAD1CBE01).is_reserved


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        DeviceId(1 << 32)
    with pytest.raises(ValueError):
        DeviceId(-1)


def test_bad_byte_count_rejected():
    with pytest.raises(ValueError):
        DeviceId.from_bytes((1, 2, 3))
    with pytest.raises(ValueError):
        DeviceId.from_bytes((1, 2, 3, 300))
    with pytest.raises(ValueError):
        DeviceId.unpack(b"\x01\x02")


def test_ordering_is_by_value():
    assert DeviceId(1) < DeviceId(2)
