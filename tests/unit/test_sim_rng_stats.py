"""Unit tests for RNG streams and the statistics helpers."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.stats import percentile, summarize


def test_streams_are_deterministic_per_seed_and_name():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=1).stream("x").random()
    assert a == b


def test_different_names_are_independent():
    reg = RngRegistry(seed=1)
    xs = [reg.stream("x").random() for _ in range(3)]
    reg2 = RngRegistry(seed=1)
    reg2.stream("y").random()  # consuming another stream ...
    xs2 = [reg2.stream("x").random() for _ in range(3)]
    assert xs == xs2  # ... does not perturb this one


def test_same_stream_object_returned():
    reg = RngRegistry(seed=5)
    assert reg.stream("a") is reg.stream("a")


def test_fork_derives_distinct_deterministic_children():
    reg = RngRegistry(seed=9)
    child1 = reg.fork("node1").stream("s").random()
    child2 = reg.fork("node2").stream("s").random()
    assert child1 != child2
    assert RngRegistry(seed=9).fork("node1").stream("s").random() == child1


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.stdev == pytest.approx(1.2909944, rel=1e-6)


def test_summarize_single_value_has_zero_stdev():
    s = summarize([7.0])
    assert s.stdev == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_interpolates():
    data = [0.0, 10.0, 20.0, 30.0]
    assert percentile(data, 0) == 0.0
    assert percentile(data, 100) == 30.0
    assert percentile(data, 50) == 15.0


def test_percentile_validates():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
