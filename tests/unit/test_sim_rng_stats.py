"""Unit tests for RNG streams and the statistics helpers."""

import random

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.stats import Histogram, percentile, summarize


def test_streams_are_deterministic_per_seed_and_name():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=1).stream("x").random()
    assert a == b


def test_different_names_are_independent():
    reg = RngRegistry(seed=1)
    xs = [reg.stream("x").random() for _ in range(3)]
    reg2 = RngRegistry(seed=1)
    reg2.stream("y").random()  # consuming another stream ...
    xs2 = [reg2.stream("x").random() for _ in range(3)]
    assert xs == xs2  # ... does not perturb this one


def test_same_stream_object_returned():
    reg = RngRegistry(seed=5)
    assert reg.stream("a") is reg.stream("a")


def test_fork_derives_distinct_deterministic_children():
    reg = RngRegistry(seed=9)
    child1 = reg.fork("node1").stream("s").random()
    child2 = reg.fork("node2").stream("s").random()
    assert child1 != child2
    assert RngRegistry(seed=9).fork("node1").stream("s").random() == child1


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == 2.5
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.stdev == pytest.approx(1.2909944, rel=1e-6)


def test_summarize_single_value_has_zero_stdev():
    s = summarize([7.0])
    assert s.stdev == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_interpolates():
    data = [0.0, 10.0, 20.0, 30.0]
    assert percentile(data, 0) == 0.0
    assert percentile(data, 100) == 30.0
    assert percentile(data, 50) == 15.0


def test_percentile_validates():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_fork_streams_are_independent_of_parent_consumption():
    """Draining parent streams must not shift a fork's sequences, and
    vice versa — the fleet relies on this for shard determinism."""
    reg = RngRegistry(seed=3)
    baseline = RngRegistry(seed=3).fork("node").stream("churn").random()
    for _ in range(100):
        reg.stream("network").random()
    assert reg.fork("node").stream("churn").random() == baseline
    # And forking first does not perturb the parent's own streams.
    lhs = RngRegistry(seed=3)
    lhs.fork("node")
    rhs = RngRegistry(seed=3)
    assert lhs.stream("x").random() == rhs.stream("x").random()


def test_nested_forks_are_deterministic():
    a = RngRegistry(seed=7).fork("shard-0").fork("thing-3").stream("mfg")
    b = RngRegistry(seed=7).fork("shard-0").fork("thing-3").stream("mfg")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_summary_percentile_reuses_percentile_convention():
    s = summarize([0.0, 10.0, 20.0, 30.0])
    assert s.percentile(50) == percentile([0.0, 10.0, 20.0, 30.0], 50)
    assert s.percentile(0) == 0.0
    assert s.percentile(100) == 30.0


def test_summary_percentile_without_sample_raises():
    from repro.sim.stats import Summary

    bare = Summary(n=1, mean=1.0, stdev=0.0, minimum=1.0, maximum=1.0)
    with pytest.raises(ValueError):
        bare.percentile(50)


# ------------------------------------------------------------------ Histogram
def _filled(values, lo=1e-3, hi=10.0):
    hist = Histogram(lo, hi)
    for value in values:
        hist.observe(value)
    return hist


def test_histogram_counts_sum_and_extrema():
    hist = _filled([0.01, 0.1, 1.0, 5.0])
    assert hist.count == 4
    assert hist.total == pytest.approx(6.11)
    assert hist.minimum == 0.01
    assert hist.maximum == 5.0
    assert hist.mean == pytest.approx(6.11 / 4)


def test_histogram_under_and_overflow_buckets():
    hist = _filled([1e-6, 50.0], lo=1e-3, hi=10.0)
    assert hist.counts[0] == 1       # underflow
    assert hist.counts[-1] == 1      # overflow
    assert hist.percentile(0) == 1e-6
    assert hist.percentile(100) == 50.0


def test_histogram_merge_is_associative_and_commutative():
    rng = random.Random(11)
    parts = []
    for _ in range(3):
        parts.append(_filled([rng.lognormvariate(0.0, 1.0) * 0.05
                              for _ in range(500)]))
    a, b, c = parts
    assert a.merge(b).merge(c) == a.merge(b.merge(c))
    assert a.merge(b) == b.merge(a)
    assert a.merge(b).merge(c).count == 1500


def test_histogram_merge_rejects_mismatched_buckets():
    with pytest.raises(ValueError):
        Histogram(1e-3, 10.0).merge(Histogram(1e-3, 100.0))


def test_histogram_merge_identity_with_empty():
    hist = _filled([0.5, 0.7])
    empty = Histogram(1e-3, 10.0)
    assert hist.merge(empty) == hist
    assert empty.merge(hist) == hist


def test_histogram_percentile_tracks_exact_percentile():
    rng = random.Random(4)
    values = [rng.lognormvariate(0.0, 0.8) * 0.02 for _ in range(4000)]
    hist = _filled(values, lo=1e-4, hi=10.0)
    for q in (50, 90, 95, 99):
        exact = percentile(values, q)
        assert hist.percentile(q) == pytest.approx(exact, rel=0.35)


def test_histogram_empty_and_invalid_inputs():
    empty = Histogram(1e-3, 10.0)
    assert empty.count == 0
    with pytest.raises(ValueError):
        empty.percentile(50)
    with pytest.raises(ValueError):
        empty.mean
    with pytest.raises(ValueError):
        Histogram(0.0, 1.0)
    with pytest.raises(ValueError):
        _filled([1.0]).percentile(101)


def test_histogram_single_value():
    hist = _filled([0.25])
    assert hist.percentile(50) == pytest.approx(0.25, rel=1e-9)
    assert hist.percentile(0) == 0.25
    assert hist.percentile(100) == 0.25


def test_histogram_json_roundtrip():
    import json

    hist = _filled([0.001, 0.02, 0.3, 4.0, 100.0])
    data = json.loads(json.dumps(hist.to_json()))
    assert Histogram.from_json(data) == hist
    assert Histogram.from_json(json.loads(
        json.dumps(Histogram(1e-3, 10.0).to_json())
    )).count == 0
