"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    NS_PER_MS,
    NS_PER_S,
    SimulationError,
    Simulator,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append("c"))
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcd":
        sim.schedule(5, lambda n=name: fired.append(n))
    sim.run()
    assert fired == list("abcd")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7 * NS_PER_MS, lambda: seen.append(sim.now_ns))
    sim.run()
    assert seen == [7 * NS_PER_MS]
    assert sim.now_ms == 7.0


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now_ns))
        sim.schedule(5, inner)

    def inner():
        fired.append(("inner", sim.now_ns))

    sim.schedule(10, outer)
    sim.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_run_until_executes_boundary_event_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(20, lambda: fired.append(20))
    sim.schedule(30, lambda: fired.append(30))
    sim.run_until(20)
    assert fired == [10, 20]
    assert sim.now_ns == 20
    sim.run()
    assert fired == [10, 20, 30]


def test_run_for_is_relative():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run_until(100)
    fired = []
    sim.schedule(50, lambda: fired.append(sim.now_ns))
    sim.run_for(50)
    assert fired == [150]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(50)


def test_run_until_past_error_names_target_and_current_time():
    sim = Simulator()
    sim.run_until(100)
    with pytest.raises(SimulationError, match=r"50 ns.*now 100 ns"):
        sim.run_until(50)


def test_run_until_past_non_strict_clamps_instead_of_raising():
    sim = Simulator()
    fired = []
    sim.schedule(200, lambda: fired.append(sim.now_ns))
    sim.run_until(100)
    assert sim.run_until(50, strict=False) == 0
    assert sim.now_ns == 100  # clock never moves backwards
    sim.run_until(200)
    assert fired == [200]  # queue untouched by the clamped call


def test_call_soon_runs_at_current_instant_after_pending():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: (fired.append("first"),
                              sim.call_soon(lambda: fired.append("soon"))))
    sim.schedule(10, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first", "second", "soon"]
    assert sim.now_ns == 10


def test_max_events_bound():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_count() == 6


def test_trace_hook_sees_names():
    sim = Simulator()
    traced = []
    sim.add_trace_hook(lambda t, name: traced.append((t, name)))
    sim.schedule(5, lambda: None, name="hello")
    sim.run()
    assert traced == [(5, "hello")]


def test_drain_cancels_everything():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.drain()
    assert sim.pending_count() == 0
    assert sim.run() == 0


def test_run_until_with_cancelled_head_event():
    """A cancelled event at the head of the queue must not block or
    mis-advance run_until."""
    sim = Simulator()
    fired = []
    head = sim.schedule(5, lambda: fired.append("head"))
    sim.schedule(10, lambda: fired.append("tail"))
    head.cancel()
    assert sim.run_until(10) == 1
    assert fired == ["tail"]
    assert sim.now_ns == 10


def test_run_until_all_heads_cancelled_advances_clock():
    sim = Simulator()
    handles = [sim.schedule(i, lambda: None) for i in range(1, 4)]
    for handle in handles:
        handle.cancel()
    assert sim.run_until(50) == 0
    assert sim.now_ns == 50
    assert sim.pending_count() == 0


def test_drain_names_selectivity():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: fired.append("keep"), name="keep")
    sim.schedule(2, lambda: fired.append("drop-a"), name="drop")
    sim.schedule(3, lambda: fired.append("drop-b"), name="drop")
    sim.schedule(4, lambda: fired.append("other"), name="other")
    sim.drain(names=["drop"])
    assert sim.pending_count() == 2
    sim.run()
    assert fired == ["keep", "other"]


def test_drain_is_idempotent_and_counts_once():
    sim = Simulator()
    sim.schedule(1, lambda: None, name="x")
    sim.drain(names=["x"])
    sim.drain(names=["x"])  # same tombstone must not be counted twice
    assert sim.pending_count() == 0
    assert sim.run() == 0


def test_fifo_tie_break_survives_cancellation():
    """Equal-timestamp FIFO order is preserved when a middle event in
    the tie group is cancelled."""
    sim = Simulator()
    fired = []
    handles = [sim.schedule(7, lambda n=n: fired.append(n)) for n in "abcd"]
    handles[1].cancel()
    sim.run()
    assert fired == ["a", "c", "d"]


def test_pending_count_is_live_event_count():
    sim = Simulator()
    handles = [sim.schedule(i + 1, lambda: None) for i in range(10)]
    assert sim.pending_count() == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending_count() == 6
    handles[0].cancel()  # double-cancel must not double-count
    assert sim.pending_count() == 6
    sim.run()
    assert sim.pending_count() == 0


def test_cancellation_compacts_the_heap():
    """Tombstones are reclaimed lazily once they outnumber live events."""
    sim = Simulator()
    handles = [sim.schedule(1000 + i, lambda: None) for i in range(1000)]
    for handle in handles[:900]:
        handle.cancel()
    assert sim.pending_count() == 100
    # Compaction kicked in: the heap cannot still hold all 900 tombstones.
    assert len(sim._queue) < 300
    assert sim.run() == 100


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    handle = sim.schedule(1, lambda: None)
    other = sim.schedule(2, lambda: None)
    sim.run()
    handle.cancel()  # late cancel of an already-fired event
    assert sim.pending_count() == 0
    sim.schedule(5, lambda: None)
    assert sim.pending_count() == 1
    del other


def test_heap_entries_are_plain_key_tuples():
    """The heap stores ``(time_ns, seq, event)`` so ordering is decided
    by integer comparison alone — the event object itself must never be
    compared (``seq`` is unique per event)."""
    sim = Simulator()
    sim.schedule(5, lambda: None, name="a")
    sim.schedule(5, lambda: None, name="b")
    for entry in sim._queue:
        time_ns, seq, event = entry
        assert entry[:2] == (time_ns, seq) == (event.time_ns, event.seq)
    (_, seq_a, _), (_, seq_b, _) = sorted(sim._queue)
    assert seq_a < seq_b  # FIFO tie-break still encoded in the key


def test_scheduled_event_has_no_dict():
    """__slots__ keeps per-event memory flat at fleet scale."""
    sim = Simulator()
    sim.schedule(1, lambda: None)
    event = sim._queue[0][2]
    assert not hasattr(event, "__dict__")


def test_compaction_preserves_fifo_ties_and_exact_counts():
    """Heap rebuild after heavy cancellation must keep equal-timestamp
    FIFO order and an exact tombstone count."""
    sim = Simulator()
    fired = []
    keep = [sim.schedule(50, lambda n=n: fired.append(n)) for n in range(4)]
    doomed = [sim.schedule(10 + i, lambda: fired.append("x"))
              for i in range(40)]
    for handle in doomed:
        handle.cancel()  # triggers compaction (tombstones > live)
    assert sim._tombstones == 0  # compaction reset the counter exactly
    assert sim.pending_count() == 4
    sim.run()
    assert fired == [0, 1, 2, 3]
    del keep


def test_unit_conversions():
    assert ns_from_us(1.5) == 1_500
    assert ns_from_ms(2.5) == 2_500_000
    assert ns_from_s(0.001) == NS_PER_MS
    assert ns_from_s(1) == NS_PER_S


# ------------------------------------------------------------------- periodic
def test_every_fires_on_cadence_and_cancels():
    sim = Simulator()
    fired = []
    handle = sim.every(ns_from_s(1.0), lambda: fired.append(sim.now_ns),
                       name="tick")
    sim.run_until(ns_from_s(3.5))
    assert fired == [ns_from_s(1.0), ns_from_s(2.0), ns_from_s(3.0)]
    handle.cancel()
    sim.run_until(ns_from_s(10.0))
    assert len(fired) == 3
    handle.cancel()  # idempotent


def test_every_reschedules_before_callback_runs():
    """A callback that inspects the queue sees its own next tick — the
    periodic keeps itself alive without a trailing gap."""
    sim = Simulator()
    depths = []
    sim.every(ns_from_s(1.0), lambda: depths.append(sim.pending_count()),
              name="tick")
    sim.run_until(ns_from_s(2.0))
    assert all(depth >= 1 for depth in depths)


def test_every_rejects_non_positive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0, lambda: None)
    with pytest.raises(SimulationError):
        sim.every(-5, lambda: None)


def test_every_cancel_lets_run_terminate():
    sim = Simulator()
    handle = sim.every(ns_from_s(1.0), lambda: None, name="tick")
    sim.run_until(ns_from_s(2.0))
    handle.cancel()
    # With the periodic cancelled the queue drains completely.
    sim.run()
    assert sim.pending_count() == 0
