"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.plot import MARKERS, ascii_plot, figure12_ascii


def test_single_series_renders_with_axes():
    text = ascii_plot({"s": [(1, 1), (10, 100)]}, title="T")
    assert "T" in text
    assert "legend: * s" in text
    assert "+" + "-" * 10 in text  # the x axis


def test_log_axes_reject_nonpositive():
    with pytest.raises(ValueError):
        ascii_plot({"s": [(0, 1)]})
    with pytest.raises(ValueError):
        ascii_plot({"s": [(1, -1)]})


def test_linear_axes_allow_zero():
    text = ascii_plot({"s": [(0, 0), (5, 5)]}, log_x=False, log_y=False)
    assert "legend" in text


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"s": []})


def test_multiple_series_get_distinct_markers():
    series = {f"s{i}": [(1, 10 ** (i + 1)), (10, 10 ** (i + 1))]
              for i in range(3)}
    text = ascii_plot(series)
    for index in range(3):
        assert MARKERS[index] in text


def test_flat_series_does_not_crash():
    text = ascii_plot({"flat": [(1, 5), (100, 5)]})
    assert "flat" in text


def test_figure12_ascii_shows_all_four_curves():
    text = figure12_ascii()
    for label in ("USB host", "uPnP+ADC", "uPnP+I2C", "uPnP+UART"):
        assert label in text
    assert "Figure 12" in text
