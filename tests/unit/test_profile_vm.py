"""Unit tests: VM opcode heat recording and its offline analysis.

The load-bearing property is differential: per-pc hit arrays recorded
by the counting fastpath must equal the reference interpreter's,
trap-for-trap, over the full-ISA snippet corpus and randomized
structured programs.  Plus units for merge/decode/block analysis.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.analysis.vmperf import _SNIPPETS, _encode, _i, _image_for
from repro.dsl.bytecode import Op
from repro.profile.vmheat import (
    OpcodeHeatRecorder,
    basic_blocks,
    hot_blocks,
    merge_heat,
    opcode_totals,
)
from repro.vm.machine import DriverInstance, VirtualMachine, VmTrap

from .test_vm_differential import _random_program


def heat_for(mode, image, args=(), *, step_limit=2_000):
    """Execute handler 0 under *mode* with a recorder attached; return
    ``(outcome, recorder snapshot)`` for cross-engine comparison."""
    vm = VirtualMachine(mode=mode, step_limit=step_limit)
    recorder = OpcodeHeatRecorder()
    vm.attach_hit_recorder(recorder)
    instance = DriverInstance(image)
    try:
        result = vm.execute(instance, image.handlers[0], args)
        outcome = ("ok", result.steps)
    except VmTrap as trap:
        outcome = ("trap", str(trap))
    return outcome, recorder.snapshot()


def assert_heat_equivalent(image, args=(), **kwargs):
    ref = heat_for("reference", image, args, **kwargs)
    fast = heat_for("fast", image, args, **kwargs)
    assert fast == ref, (
        f"fastpath heat diverged from reference\n  ref:  {ref}\n"
        f"  fast: {fast}\n  code: {image.code.hex()}")
    return ref


# -------------------------------------------------------- differential
@pytest.mark.parametrize("op", sorted(_SNIPPETS, key=lambda o: o.value),
                         ids=lambda op: op.name)
def test_hit_counts_match_reference_for_every_opcode(op):
    scaffold, subject = _SNIPPETS[op]
    subjects = (subject,) if subject else ()
    code = _encode(*scaffold, *subjects, _i(Op.RET))
    (status, _), snap = assert_heat_equivalent(_image_for(code), args=(7,))
    assert status == "ok"
    assert snap["executions"] == 1
    # Every executed step landed in exactly one image's hit array.
    assert len(snap["images"]) == 1


@pytest.mark.parametrize("seed", range(12))
def test_hit_counts_match_reference_on_random_programs(seed):
    rng = random.Random(0xBEEF + seed)
    code = _random_program(rng)
    assert_heat_equivalent(_image_for(code), args=(seed,))


def test_hit_counts_match_reference_on_trapping_programs():
    # Runaway loop: both engines must charge identical hits up to the
    # step limit, including the pc that tripped it.
    code = _encode(_i(Op.JMPS, -2), _i(Op.RET))
    (status, message), _ = assert_heat_equivalent(
        _image_for(code), args=(0,), step_limit=50)
    assert status == "trap" and "step limit" in message
    # Stack underflow mid-program.
    code = _encode(_i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.DROP), _i(Op.RET))
    (status, _), _ = assert_heat_equivalent(_image_for(code), args=(0,))
    assert status == "trap"


def test_total_steps_equals_engine_step_count():
    code = _encode(_i(Op.PUSH8, 2), _i(Op.PUSH8, 3), _i(Op.ADD),
                   _i(Op.DROP), _i(Op.RET))
    vm = VirtualMachine(mode="fast")
    recorder = OpcodeHeatRecorder()
    vm.attach_hit_recorder(recorder)
    result = vm.execute(DriverInstance(_image_for(code)),
                        _image_for(code).handlers[0], (0,))
    assert recorder.total_steps == result.steps == 5
    assert recorder.executions == 1


# ----------------------------------------------------------- recorder
def test_recorder_aliases_identical_images_by_digest():
    code = _encode(_i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.RET))
    image_a = _image_for(code)
    image_b = _image_for(code)  # distinct object, same code bytes
    recorder = OpcodeHeatRecorder()
    assert recorder.hits_for(image_a) is recorder.hits_for(image_b)
    assert len(recorder.images) == 1


def test_recorder_pickle_drops_identity_cache_but_keeps_heat():
    code = _encode(_i(Op.RET))
    recorder = OpcodeHeatRecorder()
    recorder.hits_for(_image_for(code))[0] = 7
    recorder.executions = 3
    clone = pickle.loads(pickle.dumps(recorder))
    assert clone._by_id == {}
    assert clone.snapshot() == recorder.snapshot()


def test_detach_restores_the_uncounted_fast_loop():
    from repro.vm import fastpath

    vm = VirtualMachine(mode="fast")
    vm.attach_hit_recorder(OpcodeHeatRecorder())
    assert vm._execute_fast is not fastpath.execute_fast
    vm.detach_hit_recorder()
    assert vm._hit_recorder is None
    assert vm._execute_fast is fastpath.execute_fast


# -------------------------------------------------------------- merge
def _heat(code: bytes, hits):
    import hashlib

    return {"executions": 1,
            "images": {hashlib.sha1(code).hexdigest():
                       {"code": code.hex(), "hits": list(hits)}}}


def test_merge_heat_sums_hits_for_shared_images():
    code = _encode(_i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.RET))
    merged = merge_heat([_heat(code, [1, 0, 2, 1]),
                         _heat(code, [2, 0, 1, 1]), None])
    (entry,) = merged["images"].values()
    assert entry["hits"] == [3, 0, 3, 2]
    assert merged["executions"] == 2


def test_opcode_totals_names_ops_and_ranks_by_count():
    code = _encode(_i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.RET))
    totals = opcode_totals(_heat(code, [2, 0, 5, 1]))
    assert totals == {"DROP": 5, "PUSH8": 2, "RET": 1}
    assert list(totals) == ["DROP", "PUSH8", "RET"]  # ranked


# -------------------------------------------------------- basic blocks
def test_basic_blocks_split_at_branches_and_targets():
    # PUSH8 0; JZS +2 (over PUSH8); PUSH8 1; DROP; RET
    code = _encode(_i(Op.PUSH8, 0), _i(Op.JZS, 2),
                   _i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.RET))
    hits = [4, 0, 4, 0, 1, 0, 3, 4]
    blocks = basic_blocks(code, hits)
    offsets = [block["offset"] for block in blocks]
    assert offsets == [0, 4, 6]  # entry, fallthrough target, jump target
    entry = blocks[0]
    assert entry["ops"] == ["PUSH8", "JZS"]
    assert entry["count"] == 4  # min over the block's instructions
    assert blocks[1] == {"offset": 4, "ops": ["PUSH8"], "count": 1}


def test_hot_blocks_rank_by_steps_retired():
    code_a = _encode(_i(Op.PUSH8, 1), _i(Op.DROP), _i(Op.RET))
    code_b = _encode(_i(Op.RET))
    heat = merge_heat([_heat(code_a, [10, 0, 10, 10]),
                       _heat(code_b, [2])])
    ranked = hot_blocks(heat, top=5)
    assert ranked[0]["ops"] == ["PUSH8", "DROP", "RET"]
    assert ranked[0]["steps"] == 30  # 10 executions x 3 ops
    assert ranked[1]["steps"] == 2
    assert all("image" in block for block in ranked)
