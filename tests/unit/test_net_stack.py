"""Unit tests for the per-node network stack + network data plane."""

import pytest

from repro.net.ipv6 import Ipv6Address
from repro.net.link import LinkModel
from repro.net.multicast import peripheral_group
from repro.net.network import Network, NetworkError
from repro.net.stack import NetworkStack, StackError
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry


def three_node_net(loss=0.0):
    sim = Simulator()
    net = Network(sim, link=LinkModel(loss_probability=loss),
                  rng=RngRegistry(1))
    stacks = [NetworkStack(net, i) for i in range(3)]
    net.connect(0, 1)
    net.connect(1, 2)
    net.build_dodag(1)
    return sim, net, stacks


def test_addresses_derive_from_prefix_and_iid():
    sim, net, stacks = three_node_net()
    assert str(stacks[0].address) == "2001:db8::1"
    assert str(stacks[2].address) == "2001:db8::3"


def test_unicast_delivery_one_hop():
    sim, net, stacks = three_node_net()
    got = []
    stacks[1].bind(6030, lambda d: got.append(d))
    stacks[0].sendto(stacks[1].address, 6030, b"ping", src_port=6030)
    sim.run()
    assert len(got) == 1
    assert got[0].payload == b"ping"
    assert got[0].src == stacks[0].address
    assert net.stats.datagrams_delivered == 1


def test_unicast_multi_hop_takes_longer():
    sim, net, stacks = three_node_net()
    times = {}
    stacks[1].bind(6030, lambda d: times.setdefault("one", sim.now_s))
    stacks[2].bind(6030, lambda d: times.setdefault("two", sim.now_s))
    stacks[0].sendto(stacks[1].address, 6030, b"x", src_port=6030)
    sim.run()
    start = sim.now_ns
    stacks[0].sendto(stacks[2].address, 6030, b"x", src_port=6030)
    sim.run()
    assert times["two"] - times["one"] > 0  # crude: 2 hops cost more


def test_unknown_destination_counted_undeliverable():
    sim, net, stacks = three_node_net()
    stacks[0].sendto(Ipv6Address.parse("2001:db8::dead"), 6030, b"?",
                     src_port=6030)
    sim.run()
    assert net.stats.datagrams_undeliverable == 1


def test_loopback_to_self():
    sim, net, stacks = three_node_net()
    got = []
    stacks[0].bind(7000, lambda d: got.append(d.payload))
    stacks[0].sendto(stacks[0].address, 7000, b"me", src_port=7000)
    sim.run()
    assert got == [b"me"]


def test_multicast_reaches_all_members():
    sim, net, stacks = three_node_net()
    group = peripheral_group(net.prefix48, 0xAD1CBE01)
    got = []
    for stack in stacks[1:]:
        stack.bind(6030, lambda d, s=stack: got.append(s.node_id))
        stack.join_group(group)
    sim.run()
    stacks[0].sendto(group, 6030, b"mc", src_port=6030)
    sim.run()
    assert sorted(got) == [1, 2]
    assert net.stats.multicast_transmissions >= 2


def test_multicast_does_not_echo_to_sender():
    sim, net, stacks = three_node_net()
    group = peripheral_group(net.prefix48, 0x01020304)
    got = []
    stacks[0].bind(6030, lambda d: got.append("self"))
    stacks[0].join_group(group)
    sim.run()
    stacks[0].sendto(group, 6030, b"mc", src_port=6030)
    sim.run()
    assert got == []


def test_multicast_requires_dodag():
    sim = Simulator()
    net = Network(sim)
    stack = NetworkStack(net, 0)
    group = peripheral_group(net.prefix48, 1)
    stack.sendto(group, 6030, b"x", src_port=6030)
    with pytest.raises(NetworkError):
        sim.run()


def test_anycast_routes_to_nearest_member():
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(2))
    stacks = [NetworkStack(net, i) for i in range(4)]
    # line: 0 - 1 - 2 - 3 ; anycast members at 1 and 3.
    for a, b in ((0, 1), (1, 2), (2, 3)):
        net.connect(a, b)
    net.build_dodag(0)
    anycast = Ipv6Address.parse("2001:db8:aaaa::1")
    got = []
    for node in (1, 3):
        stacks[node].join_anycast(anycast)
        stacks[node].bind(6030, lambda d, n=node: got.append(n))
    stacks[0].sendto(anycast, 6030, b"hi", src_port=6030)
    sim.run()
    assert got == [1]  # nearest instance wins


def test_packet_loss_drops_datagrams():
    sim, net, stacks = three_node_net(loss=1.0)
    got = []
    stacks[1].bind(6030, lambda d: got.append(d))
    stacks[0].sendto(stacks[1].address, 6030, b"gone", src_port=6030)
    sim.run()
    assert got == []
    assert net.stats.frames_lost >= 1


def test_double_bind_rejected():
    sim, net, stacks = three_node_net()
    stacks[0].bind(6030, lambda d: None)
    with pytest.raises(StackError):
        stacks[0].bind(6030, lambda d: None)


def test_unbound_port_counts_no_socket():
    sim, net, stacks = three_node_net()
    stacks[0].sendto(stacks[1].address, 4444, b"x", src_port=4444)
    sim.run()
    assert stacks[1].stats.no_socket == 1


def test_group_join_takes_measured_time():
    sim, net, stacks = three_node_net()
    group = peripheral_group(net.prefix48, 5)
    done = []
    start = sim.now_s
    stacks[0].join_group(group, lambda: done.append(sim.now_s - start))
    sim.run()
    assert done[0] == pytest.approx(5.44e-3, abs=0.1e-3)
    assert group in stacks[0].groups()
    stacks[0].leave_group(group)
    assert group not in stacks[0].groups()
    assert net.group_members(group) == set()


def test_generate_group_address_takes_measured_time():
    sim, net, stacks = three_node_net()
    results = []
    start = sim.now_s
    stacks[0].generate_group_address(0xED3F0AC1,
                                     lambda g: results.append((g, sim.now_s - start)))
    sim.run()
    group, elapsed = results[0]
    assert group == peripheral_group(net.prefix48, 0xED3F0AC1)
    assert elapsed == pytest.approx(2.59e-3, abs=0.2e-3)


def test_duplicate_node_id_rejected():
    sim = Simulator()
    net = Network(sim)
    NetworkStack(net, 0)
    with pytest.raises(NetworkError):
        NetworkStack(net, 0)
