"""Unit tests for the event router, driver runtime and cost calibration."""

import pytest

from repro.dsl.compiler import compile_source
from repro.dsl.bytecode import Op
from repro.sim.kernel import Simulator
from repro.vm.cost import DEFAULT_COST, POP_CYCLES, PUSH_CYCLES
from repro.vm.machine import ReturnValue, VirtualMachine, VmTrap
from repro.vm.router import CallbackDelivery, EventRouter
from repro.vm.runtime import DriverRuntime


# ------------------------------------------------------------------- cost §6.2
def test_cost_calibration_matches_paper():
    assert DEFAULT_COST.average_instruction_seconds() * 1e6 == pytest.approx(
        39.7, abs=0.2
    )
    assert DEFAULT_COST.push_seconds * 1e6 == pytest.approx(11.1, abs=0.1)
    assert DEFAULT_COST.pop_seconds * 1e6 == pytest.approx(8.9, abs=0.1)
    assert DEFAULT_COST.router_dispatch_seconds * 1e6 == pytest.approx(
        77.79, abs=0.2
    )


def test_every_opcode_has_a_cost():
    for op in Op:
        assert DEFAULT_COST.cycles(op) > 0


# --------------------------------------------------------------------- router
def test_router_dispatches_fifo():
    sim = Simulator()
    router = EventRouter(sim)
    order = []
    for name in "abc":
        router.post(CallbackDelivery(lambda n=name: order.append(n), cycles=0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_error_events_prioritized():
    sim = Simulator()
    router = EventRouter(sim)
    order = []
    # Post regulars then an error before the router starts draining.
    router.post(CallbackDelivery(lambda: order.append("r1"), cycles=0))
    router.post(CallbackDelivery(lambda: order.append("r2"), cycles=0))
    router.post(CallbackDelivery(lambda: order.append("err"), cycles=0), error=True)
    sim.run()
    assert order[0] == "err"
    assert order[1:] == ["r1", "r2"]


def test_router_run_to_completion_serializes():
    """An event posted during a handler runs only after it completes."""
    sim = Simulator()
    router = EventRouter(sim)
    times = []

    def first():
        router.post(CallbackDelivery(lambda: times.append(("second", sim.now_us)),
                                     cycles=0))

    router.post(CallbackDelivery(first, cycles=16000))  # 1 ms handler
    sim.run()
    assert times[0][1] >= 1000.0  # second ran after first's 1 ms


def test_router_queue_limit_drops():
    sim = Simulator()
    router = EventRouter(sim, queue_limit=2)
    accepted = [router.post(CallbackDelivery(lambda: None, cycles=0))
                for _ in range(4)]
    assert accepted == [True, True, False, False]
    assert router.dropped == 2


def test_router_busy_time_matches_dispatch_cost():
    sim = Simulator()
    router = EventRouter(sim)
    router.post(CallbackDelivery(lambda: None, cycles=0))
    sim.run()
    assert router.stats.busy_seconds == pytest.approx(
        DEFAULT_COST.router_dispatch_seconds
    )


def test_router_records_traps_and_continues():
    sim = Simulator()
    router = EventRouter(sim)

    class Exploding:
        def execute(self):
            raise VmTrap("boom")

        def describe(self):
            return "exploding"

    survived = []
    router.post(Exploding())
    router.post(CallbackDelivery(lambda: survived.append(True), cycles=0))
    sim.run()
    assert router.stats.traps == ["exploding: boom"]
    assert survived == [True]


# -------------------------------------------------------------- driver runtime
COUNTER_DRIVER = """\
int32_t count;
event init():
    count = 100;
event destroy():
    count = 0;
event read():
    count++;
    return count;
event write(int32_t value):
    count = value;
"""


def make_runtime(source=COUNTER_DRIVER):
    sim = Simulator()
    router = EventRouter(sim)
    image = compile_source(source, device_id=5)
    runtime = DriverRuntime(image, {}, router, VirtualMachine())
    return sim, router, runtime


def test_activate_fires_init():
    sim, _, runtime = make_runtime()
    runtime.activate()
    sim.run()
    assert runtime.instance.scalar(0) == 100


def test_read_request_completes_with_returned_value():
    sim, _, runtime = make_runtime()
    runtime.activate()
    results = []
    assert runtime.request_read(results.append)
    sim.run()
    assert results == [ReturnValue(scalar=101)]
    assert runtime.pending_requests == 0


def test_reads_complete_fifo():
    sim, _, runtime = make_runtime()
    runtime.activate()
    results = []
    runtime.request_read(lambda rv: results.append(("first", rv.scalar)))
    runtime.request_read(lambda rv: results.append(("second", rv.scalar)))
    sim.run()
    assert results == [("first", 101), ("second", 102)]


def test_write_request_acks_on_completion():
    sim, _, runtime = make_runtime()
    runtime.activate()
    acks = []
    runtime.request_write(42, acks.append)
    sim.run()
    assert acks == [None]  # handler returned nothing: plain ack
    assert runtime.instance.scalar(0) == 42


def test_request_against_missing_handler_fails_fast():
    source = "int32_t x;\nevent init():\n    x = 1;\nevent destroy():\n    x = 0;\n"
    sim, _, runtime = make_runtime(source)
    runtime.activate()
    sim.run()
    assert not runtime.request_read(lambda rv: None)


def test_deactivate_fires_destroy_and_flushes_pending():
    sim, _, runtime = make_runtime()
    runtime.activate()
    sim.run()
    flushed = []
    # A read that will never return (driver is being torn down first).
    runtime._pending.append(flushed.append)
    runtime.deactivate()
    sim.run()
    assert flushed == [None]
    assert runtime.instance.scalar(0) == 0  # destroy ran


def test_unsolicited_return_counted():
    source = COUNTER_DRIVER + "event tick():\n    return count;\n"
    sim, _, runtime = make_runtime(source)
    runtime.activate()
    runtime.post_event("tick")
    sim.run()
    assert runtime.unsolicited_returns == 1


def test_unknown_event_name_raises():
    _, _, runtime = make_runtime()
    with pytest.raises(KeyError):
        runtime.post_event("nonexistentEvent")


def test_handler_execution_advances_simulated_time():
    sim, router, runtime = make_runtime()
    runtime.activate()
    sim.run()
    # init dispatch: router cost + a few instructions, at 16 MHz.
    assert sim.now_us > 77.0
    assert router.stats.dispatched == 1
