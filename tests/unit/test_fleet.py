"""Unit tests for the fleet scenario engine and its metrics core."""

import json
import pickle

import pytest

from repro.fleet.metrics import Metrics
from repro.fleet.runner import FleetResult, run_scenario, run_shard
from repro.fleet.scenario import SCENARIOS, ChurnProfile, FleetScenario

#: Small but real: every churn process fires at least once.
TINY = FleetScenario(
    name="tiny", things=4, shard_size=2, duration_s=6.0, seed=7,
    churn=ChurnProfile(churn_interval_s=2.0, discovery_interval_s=1.0,
                       hot_update_interval_s=3.0, read_interval_s=1.0),
)


# -------------------------------------------------------------------- metrics
def test_metrics_counters_and_gauges_merge_by_sum():
    a = Metrics()
    a.inc("x", 2)
    a.gauge("g").add(1.5)
    b = Metrics()
    b.inc("x", 3)
    b.inc("y")
    b.gauge("g").add(0.5)
    merged = Metrics.merge([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"x": 5, "y": 1}
    assert merged["gauges"]["g"] == 2.0


def test_metrics_histograms_merge_bucketwise():
    a = Metrics()
    b = Metrics()
    for value in (0.01, 0.02):
        a.observe("lat", value)
    b.observe("lat", 0.04)
    merged = Metrics.merge([a.snapshot(), b.snapshot()])
    hist = Metrics.histogram_from(merged, "lat")
    assert hist.count == 3
    assert Metrics.percentiles(merged, "lat") is not None
    assert Metrics.percentiles(merged, "missing") is None


def test_metrics_snapshot_is_json_and_pickle_safe():
    metrics = Metrics()
    metrics.inc("c")
    metrics.observe("h", 0.1)
    snap = metrics.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert pickle.loads(pickle.dumps(snap)) == snap


def test_merge_is_independent_of_grouping():
    snaps = []
    for i in range(4):
        m = Metrics()
        m.inc("n", i + 1)
        m.observe("h", 0.01 * (i + 1))
        snaps.append(m.snapshot())
    all_at_once = Metrics.merge(snaps)
    two_stage = Metrics.merge(
        [Metrics.merge(snaps[:2]), Metrics.merge(snaps[2:])]
    )
    assert all_at_once == two_stage


# ------------------------------------------------------------------- scenario
def test_scenario_sharding_covers_all_things_exactly_once():
    scenario = FleetScenario(things=55, shard_size=25)
    specs = scenario.shards()
    assert scenario.shard_count == 3
    assert [s.things for s in specs] == [25, 25, 5]
    assert [s.first_thing for s in specs] == [0, 25, 50]
    assert sum(s.things for s in specs) == scenario.things


def test_scenario_validation():
    with pytest.raises(ValueError):
        FleetScenario(things=0)
    with pytest.raises(ValueError):
        FleetScenario(duration_s=0)
    with pytest.raises(ValueError):
        FleetScenario(peripheral_mix=())


def test_shard_specs_are_pickle_safe():
    for spec in TINY.shards():
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


def test_named_scenarios_are_well_formed():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.shard_count >= 1


# --------------------------------------------------------------------- runner
def test_shard_runs_are_deterministic():
    spec = TINY.shards()[0]
    assert run_shard(spec) == run_shard(spec)


def test_shards_differ_from_each_other():
    first, second = TINY.shards()[:2]
    assert run_shard(first) != run_shard(second)


def test_run_scenario_end_to_end_serial():
    result = run_scenario(TINY, workers=1)
    assert isinstance(result, FleetResult)
    assert result.counter("identifications") >= TINY.things
    assert result.counter("sim.events") > 0
    assert result.counter("net.datagrams_sent") > 0
    assert result.counter("vm.events_dispatched") > 0
    assert result.merged["gauges"]["energy.things_joules"] > 0
    latencies = result.percentiles("latency.identification_s")
    assert latencies is not None and latencies[0] > 0
    assert len(result.shard_snapshots) == TINY.shard_count


def test_run_scenario_merged_metrics_independent_of_workers():
    serial = run_scenario(TINY, workers=1)
    parallel = run_scenario(TINY, workers=2)
    assert serial.merged == parallel.merged


def test_seed_changes_the_run():
    base = run_scenario(TINY, workers=1)
    other = run_scenario(TINY.scaled(seed=8), workers=1)
    assert base.merged != other.merged


# ------------------------------------------------------------------------ CLI
def test_cli_smoke(capsys, tmp_path):
    from repro.fleet.__main__ import main

    out_json = tmp_path / "fleet.json"
    code = main(["--scenario", "smoke", "--nodes", "4", "--shard-size", "2",
                 "--duration", "5", "--seed", "3", "--workers", "1",
                 "--json", str(out_json)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "identifications" in printed
    assert "latency percentiles" in printed
    document = json.loads(out_json.read_text())
    assert document["scenario"]["things"] == 4
    assert document["metrics"]["counters"]["identifications"] >= 4


def test_cli_list_and_unknown(capsys):
    from repro.fleet.__main__ import main

    assert main(["--list"]) == 0
    assert "smoke" in capsys.readouterr().out
    assert main(["--scenario", "nope"]) == 2


# ---------------------------------------------------------------- gauge modes
def test_gauge_modes_merge_sum_max_last():
    snaps = []
    for value in (3.0, 7.0, 5.0):
        m = Metrics()
        m.gauge("s").add(value)
        m.gauge("peak", mode="max").add(value)
        m.gauge("cfg", mode="last").add(value)
        snaps.append(m.snapshot())
    merged = Metrics.merge(snaps)
    assert merged["gauges"]["s"] == 15.0
    assert merged["gauges"]["peak"] == 7.0
    assert merged["gauges"]["cfg"] == 5.0  # highest shard index wins
    assert merged["gauge_modes"] == {"cfg": "last", "peak": "max"}


def test_gauge_mode_conflict_raises():
    m = Metrics()
    m.gauge("g", mode="max")
    with pytest.raises(ValueError):
        m.gauge("g", mode="sum")
    # Re-requesting with the same mode is fine.
    assert m.gauge("g", mode="max") is m.gauge("g", mode="max")


def test_gauge_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Metrics().gauge("g", mode="median")


def test_snapshot_omits_gauge_modes_when_all_sum():
    """Back-compat: sum-only snapshots keep the pre-mode shape, so old
    merged documents and their digests are unchanged."""
    m = Metrics()
    m.inc("c")
    m.gauge("g").add(1.0)
    snap = m.snapshot()
    assert "gauge_modes" not in snap
    merged = Metrics.merge([snap])
    assert "gauge_modes" not in merged


def test_merge_defaults_unlabelled_gauges_to_sum():
    """Snapshots from older code (no gauge_modes key) still sum."""
    merged = Metrics.merge([
        {"counters": {}, "gauges": {"g": 1.0}, "histograms": {}},
        {"counters": {}, "gauges": {"g": 2.0}, "histograms": {}},
    ])
    assert merged["gauges"]["g"] == 3.0
