"""Unit tests for checkpoint manifests, migrations, diff and fork."""

import json

import pytest

from repro.fleet.deployment import ShardDeployment
from repro.fleet.scenario import SCENARIOS
from repro.sim.kernel import ns_from_s
from repro.sim.rng import RngRegistry
from repro.snapshot.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    digest_document,
    load_shard,
    read_manifest,
    read_summary,
    save_shard,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.snapshot.diff import diff_documents, diff_lines
from repro.snapshot.migrate import register_state_migration, upgrade_state
from repro.snapshot.state import layer_schemas, schema_hash, shard_summary


def _small_deployment():
    scenario = SCENARIOS["smoke"].scaled(
        things=4, shard_size=4, duration_s=2.0)
    deployment = ShardDeployment(scenario.shards()[0])
    deployment.start()
    deployment.sim.run_until(ns_from_s(1.0))
    return deployment


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    directory = tmp_path_factory.mktemp("ckpt") / "shard-0000"
    deployment = _small_deployment()
    manifest = save_shard(deployment, directory, label="unit")
    return directory, deployment, manifest


def test_manifest_carries_format_version_and_schema_hashes(saved):
    directory, _, manifest = saved
    on_disk = json.loads((directory / "manifest.json").read_text())
    assert on_disk["format_version"] == FORMAT_VERSION
    assert on_disk["label"] == "unit"
    assert on_disk["layer_schemas"] == layer_schemas()
    # Every Checkpointable layer is represented with a content hash of
    # its schema, so any schema drift shows up in the manifest.
    assert {"sim", "vm", "net", "protocol", "hw", "core",
            "telemetry"} <= set(on_disk["layer_schemas"])
    for classes in on_disk["layer_schemas"].values():
        for entry in classes.values():
            assert len(entry["hash"]) == 16


def test_schema_hash_tracks_schema_content():
    class A:
        SNAPSHOT_SCHEMA = {"layer": "x", "version": 1, "fields": ("a",)}

    class B:
        SNAPSHOT_SCHEMA = {"layer": "x", "version": 2, "fields": ("a",)}

    assert schema_hash(A) != schema_hash(B)
    B.SNAPSHOT_SCHEMA = dict(A.SNAPSHOT_SCHEMA)
    assert schema_hash(A) == schema_hash(B)


def test_load_restores_equivalent_summary(saved):
    directory, deployment, _ = saved
    restored = load_shard(directory)
    assert digest_document(shard_summary(restored.deployment)) == \
        digest_document(shard_summary(deployment))
    assert restored.sim_time_ns == deployment.sim.now_ns


def test_corrupted_payload_is_rejected(saved, tmp_path):
    directory, _, _ = saved
    copy = tmp_path / "mangled"
    copy.mkdir()
    for name in ("manifest.json", "summary.json", "state.bin"):
        (copy / name).write_bytes((directory / name).read_bytes())
    blob = bytearray((copy / "state.bin").read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    (copy / "state.bin").write_bytes(bytes(blob))
    with pytest.raises(CheckpointError):
        load_shard(copy)


def test_future_format_version_is_rejected(saved, tmp_path):
    directory, _, _ = saved
    copy = tmp_path / "future"
    copy.mkdir()
    for name in ("manifest.json", "summary.json", "state.bin"):
        (copy / name).write_bytes((directory / name).read_bytes())
    manifest = json.loads((copy / "manifest.json").read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    (copy / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError):
        read_manifest(copy)


def test_v1_manifest_migrates(saved, tmp_path):
    directory, _, _ = saved
    copy = tmp_path / "v1"
    copy.mkdir()
    for name in ("manifest.json", "summary.json", "state.bin"):
        (copy / name).write_bytes((directory / name).read_bytes())
    manifest = json.loads((copy / "manifest.json").read_text())
    manifest["format_version"] = 1
    manifest["time_ns"] = manifest.pop("sim_time_ns")
    manifest.pop("label", None)
    (copy / "manifest.json").write_text(json.dumps(manifest))
    migrated = read_manifest(copy)
    assert migrated["format_version"] == FORMAT_VERSION
    assert "sim_time_ns" in migrated
    assert migrated["label"] == ""


def test_state_migration_hooks_chain():
    class Widget:
        SNAPSHOT_SCHEMA = {"layer": "test", "version": 3,
                           "fields": ("value",)}

    @register_state_migration(Widget, 1)
    def _v1_to_v2(state):
        state = dict(state)
        state["value"] = state.pop("val")
        return state

    @register_state_migration(Widget, 2)
    def _v2_to_v3(state):
        state = dict(state)
        state["value"] *= 10
        return state

    upgraded = upgrade_state(Widget, {"_schema": 1, "val": 4})
    assert upgraded["value"] == 40
    assert upgraded["_schema"] == 3
    # Current-version state passes through untouched.
    same = upgrade_state(Widget, {"_schema": 3, "value": 5})
    assert same["value"] == 5
    # State newer than the class is rejected, never silently loaded.
    with pytest.raises(CheckpointError):
        upgrade_state(Widget, {"_schema": 4, "value": 5})


def test_missing_migration_step_is_an_error():
    class Gadget:
        SNAPSHOT_SCHEMA = {"layer": "test", "version": 2,
                           "fields": ("value",)}

    with pytest.raises(CheckpointError):
        upgrade_state(Gadget, {"_schema": 1, "value": 1})


def test_scenario_round_trips_through_dict():
    scenario = SCENARIOS["smoke"].scaled(things=6, shard_size=3, seed=9)
    rebuilt = scenario_from_dict(scenario_to_dict(scenario))
    assert rebuilt == scenario


def test_diff_documents_buckets_changes():
    old = {"a": 1, "b": {"c": 2}, "gone": 3}
    new = {"a": 1, "b": {"c": 5}, "fresh": 4}
    diff = diff_documents(old, new)
    assert diff["changed"] == {"b.c": {"old": 2, "new": 5}}
    assert diff["removed"] == {"gone": 3}
    assert diff["added"] == {"fresh": 4}
    assert diff_documents(old, old) == {}


def test_diff_lines_are_bounded():
    old = {f"k{i}": i for i in range(50)}
    new = {f"k{i}": i + 1 for i in range(50)}
    lines = diff_lines(old, new, limit=5)
    assert len(lines) == 6  # 5 diffs + the overflow marker
    assert "more" in lines[-1]


def test_rng_registry_state_round_trip():
    reg = RngRegistry(seed=11)
    reg.stream("noise").random()
    child = reg.fork("node")
    child.stream("jitter").random()
    state = reg.snapshot_state()
    expected = reg.stream("noise").random()

    other = RngRegistry(seed=0)
    other.restore_state(state)
    assert other.stream("noise").random() == expected
    assert "node" in other.children()


def test_rng_restore_preserves_stream_identity():
    reg = RngRegistry(seed=3)
    stream = reg.stream("csma")
    stream.random()
    state = reg.snapshot_state()
    stream.random()  # advance past the snapshot
    reg.restore_state(state)
    # The registry rewound the *same object* — held references rewind.
    assert reg.stream("csma") is stream


def test_fork_is_cached():
    reg = RngRegistry(seed=5)
    assert reg.fork("client") is reg.fork("client")


def test_perturb_is_deterministic_and_divergent():
    def fresh():
        reg = RngRegistry(seed=21)
        reg.stream("a").random()
        reg.fork("kid").stream("b").random()
        return reg

    one, two, three = fresh(), fresh(), fresh()
    one.perturb("variant-0")
    two.perturb("variant-0")
    three.perturb("variant-1")
    assert one.stream("a").random() == two.stream("a").random()
    assert one.fork("kid").stream("b").random() == \
        two.fork("kid").stream("b").random()
    assert one.stream("a").random() != three.stream("a").random()
