"""Unit tests for passive component models."""

import random

import pytest

from repro.hw.components import Capacitor, ComponentError, Resistor


def test_resistor_defaults_actual_to_nominal():
    r = Resistor(1000.0)
    assert r.actual_ohms == 1000.0


def test_resistor_bounds():
    r = Resistor(1000.0, tolerance=0.05)
    assert r.bounds() == (950.0, 1050.0)


def test_actual_outside_tolerance_rejected():
    with pytest.raises(ComponentError):
        Resistor(1000.0, tolerance=0.01, actual_ohms=1020.0)


def test_nonpositive_value_rejected():
    with pytest.raises(ComponentError):
        Resistor(0.0)
    with pytest.raises(ComponentError):
        Capacitor(-1e-9)


def test_bad_tolerance_rejected():
    with pytest.raises(ComponentError):
        Resistor(100.0, tolerance=1.0)


def test_manufacture_stays_in_band():
    rng = random.Random(3)
    for _ in range(200):
        r = Resistor.manufacture(4700.0, 0.01, rng)
        lo, hi = r.bounds()
        assert lo <= r.actual_ohms <= hi


def test_manufacture_is_deterministic_for_seeded_rng():
    a = Resistor.manufacture(1e4, 0.01, random.Random(7)).actual_ohms
    b = Resistor.manufacture(1e4, 0.01, random.Random(7)).actual_ohms
    assert a == b


def test_preferred_snaps_to_series():
    r = Resistor.preferred(9111.0, "E96", rng=random.Random(1))
    assert r.nominal_ohms == pytest.approx(9090.0)
    assert r.tolerance == 0.01  # E96 convention


def test_capacitor_manufacture():
    c = Capacitor.manufacture(10e-9, 0.05, random.Random(2))
    lo, hi = c.bounds()
    assert lo <= c.actual_farads <= hi
