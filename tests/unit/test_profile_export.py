"""Unit tests: profile exports (collapsed / speedscope), reports, diffs.

Built over small synthetic profile snapshots so every export line can
be asserted byte-for-byte; determinism across shard input order is the
contract the CI smoke gate leans on.
"""

from __future__ import annotations

import json

import pytest

from repro.profile.collector import merge_profiles
from repro.profile.diff import diff_profiles
from repro.profile.export import (
    collapsed_stacks,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.profile.report import (
    idle_report,
    render_diff,
    render_report,
)
from repro.profile.config import ProfileConfig
from repro.sim.kernel import NS_PER_MS, Simulator


def _snapshot(shard: int, *, events: int = 3,
              interval_ns: int = 2 * NS_PER_MS) -> dict:
    """A real ShardProfiler snapshot from a tiny scripted workload."""
    from repro.profile.collector import ShardProfiler

    class _Spec:
        index = shard

    class _Deployment:
        def __init__(self) -> None:
            self.sim = Simulator()
            self.spec = _Spec()
            self.things = []

    deployment = _Deployment()
    profiler = ShardProfiler(deployment, ProfileConfig())
    sim = deployment.sim
    for index in range(events):
        sim.schedule((index + 1) * interval_ns, lambda: None,
                     name="fleet-read")
    sim.schedule(1, lambda: None, name="uart-tx")
    sim.run()
    return profiler.snapshot()


# ---------------------------------------------------------- collapsed
def test_collapsed_stacks_emit_shard_layer_name_lines():
    text = collapsed_stacks([_snapshot(0)], weight="count")
    lines = text.splitlines()
    assert "shard-0;workload;fleet-read 3" in lines
    assert "shard-0;hw;uart-tx 1" in lines
    assert text.endswith("\n")


def test_collapsed_stacks_count_plane_is_input_order_deterministic():
    a, b = _snapshot(0), _snapshot(1)
    assert collapsed_stacks([a, b], weight="count") == \
        collapsed_stacks([_snapshot(0), _snapshot(1)], weight="count")
    # Shard frames keep shards distinguishable in the merged graph.
    text = collapsed_stacks([a, b], weight="count")
    assert "shard-0;" in text and "shard-1;" in text


def test_collapsed_stacks_sim_plane_weights_are_gap_attributed():
    text = collapsed_stacks([_snapshot(0)], weight="sim")
    # First fleet-read gap is 2ms - 1ns (after uart-tx at t=1).
    line = next(l for l in text.splitlines() if "fleet-read" in l)
    assert int(line.rsplit(" ", 1)[1]) == 6 * NS_PER_MS - 1


def test_unknown_weight_plane_is_rejected():
    with pytest.raises(ValueError, match="unknown weight plane"):
        collapsed_stacks([_snapshot(0)], weight="bogus")


def test_none_shards_are_skipped_and_empty_export_is_empty():
    assert collapsed_stacks([None, None]) == ""


# ---------------------------------------------------------- speedscope
def test_speedscope_document_is_schema_shaped_and_weights_sum():
    document = speedscope_document([_snapshot(0)], weight="count")
    profile = document["profiles"][0]
    assert document["$schema"].startswith("https://www.speedscope.app")
    assert profile["type"] == "sampled"
    assert profile["unit"] == "none"
    assert len(profile["samples"]) == len(profile["weights"])
    assert profile["endValue"] == sum(profile["weights"]) == 4
    # Samples index into the shared frame table.
    n_frames = len(document["shared"]["frames"])
    assert all(0 <= i < n_frames
               for sample in profile["samples"] for i in sample)


def test_write_helpers_round_trip_through_files(tmp_path):
    snapshot = _snapshot(0)
    collapsed = tmp_path / "p.collapsed"
    speedscope = tmp_path / "p.speedscope.json"
    write_collapsed(str(collapsed), [snapshot], weight="count")
    write_speedscope(str(speedscope), [snapshot], weight="count")
    assert collapsed.read_text() == \
        collapsed_stacks([snapshot], weight="count")
    assert json.loads(speedscope.read_text()) == \
        speedscope_document([snapshot], weight="count")


# -------------------------------------------------------------- report
def test_render_report_covers_all_sections():
    merged = merge_profiles([_snapshot(0), _snapshot(1)])
    document = {"scenario": "smoke", "seed": 7, "digest": "d" * 64,
                "merged": merged, "shards": []}
    text = render_report(document)
    assert "scenario=smoke seed=7" in text
    assert "digest:" in text
    assert "hottest event kinds" in text
    assert "fleet-read" in text
    assert "idle-gap analysis" in text


def test_idle_report_sums_sim_time_across_shards():
    merged = merge_profiles([_snapshot(0), _snapshot(1)])
    report = idle_report(merged)
    # Two shards, each 6 ms of simulated time.
    assert report["sim_total_ns"] == 12 * NS_PER_MS
    assert report["windows"] == merged["idle"]["gap_count"]
    assert 0.0 <= report["skippable_fraction"] <= \
        report["idle_fraction"] <= 1.0
    assert report["projected_speedup"] >= 1.0


# ---------------------------------------------------------------- diff
def test_diff_of_identical_deterministic_planes_can_still_be_rendered():
    merged = merge_profiles([_snapshot(0)])
    diff = diff_profiles(merged, merged)
    assert diff["events"] == []  # same doc: nothing moved at all
    assert diff["opcodes"] == []
    assert diff["idle"]["idle_fraction_a"] == \
        diff["idle"]["idle_fraction_b"]
    assert "(no differences" in render_diff(diff)


def test_diff_ranks_events_by_count_movement_and_labels_documents():
    doc_a = {"scenario": "smoke", "seed": 1,
             "merged": merge_profiles([_snapshot(0, events=3)])}
    doc_b = {"scenario": "smoke", "seed": 2,
             "merged": merge_profiles([_snapshot(0, events=8)])}
    diff = diff_profiles(doc_a, doc_b)
    assert diff["label_a"] == "smoke/seed=1"
    assert diff["label_b"] == "smoke/seed=2"
    top = diff["events"][0]
    assert top["name"] == "fleet-read"
    assert (top["count_a"], top["count_b"]) == (3, 8)
    text = render_diff(diff)
    assert "smoke/seed=1 -> smoke/seed=2" in text
    assert "fleet-read" in text
    assert "idle fraction" in text
