"""Unit tests for DSL semantic analysis."""

import pytest

from repro.dsl.checker import check
from repro.dsl.errors import SemanticError
from repro.dsl.parser import parse
from repro.dsl.symbols import LOCAL_NAME_BASE, well_known_id

VALID_PREFIX = "event init():\n    x = 1;\nevent destroy():\n    x = 0;\n"


def check_source(source):
    return check(parse(source))


def test_minimal_valid_driver():
    checked = check_source("int32_t x;\n" + VALID_PREFIX)
    assert "x" in checked.globals
    assert checked.handler_for(0, "init") is not None


def test_init_and_destroy_required():
    with pytest.raises(SemanticError, match="destroy"):
        check_source("int32_t x;\nevent init():\n    x = 1;\n")
    with pytest.raises(SemanticError, match="init"):
        check_source("int32_t x;\nevent destroy():\n    x = 1;\n")


def test_unknown_import_rejected():
    with pytest.raises(SemanticError, match="unknown native library"):
        check_source("import nonsense;\nint32_t x;\n" + VALID_PREFIX)


def test_duplicate_import_rejected():
    with pytest.raises(SemanticError, match="duplicate import"):
        check_source("import uart;\nimport uart;\nint32_t x;\n" + VALID_PREFIX)


def test_import_exposes_constants():
    checked = check_source(
        "import uart;\nint32_t x;\n"
        "event init():\n    x = USART_PARITY_NONE;\n"
        "event destroy():\n    x = 0;\n"
    )
    assert checked.constants["USART_PARITY_NONE"] == 0


def test_undefined_name_rejected():
    with pytest.raises(SemanticError, match="undefined name"):
        check_source("int32_t x;\nevent init():\n    x = y;\n"
                     "event destroy():\n    x = 0;\n")


def test_redefinition_rejected():
    with pytest.raises(SemanticError, match="redefinition"):
        check_source("int32_t x;\nuint8_t x;\n" + VALID_PREFIX)


def test_constant_initializer_folded_and_truncated():
    checked = check_source("uint8_t x = 300;\n" + VALID_PREFIX)
    assert checked.globals["x"].initial_value == 44  # 300 mod 256


def test_non_constant_initializer_rejected():
    with pytest.raises(SemanticError, match="compile-time constant"):
        check_source("int32_t y;\nint32_t x = y;\n" + VALID_PREFIX)


def test_array_used_as_scalar_rejected():
    with pytest.raises(SemanticError, match="used as a scalar"):
        check_source("uint8_t a[4];\nint32_t x;\n"
                     "event init():\n    x = a;\n"
                     "event destroy():\n    x = 0;\n")


def test_whole_array_assignment_rejected():
    with pytest.raises(SemanticError, match="as a whole"):
        check_source("uint8_t a[4];\n"
                     "event init():\n    a = 1;\n"
                     "event destroy():\n    a[0] = 0;\n")


def test_indexing_scalar_rejected():
    with pytest.raises(SemanticError, match="not an array"):
        check_source("int32_t x;\nevent init():\n    x[0] = 1;\n"
                     "event destroy():\n    x = 0;\n")


def test_return_whole_array_allowed():
    checked = check_source(
        "uint8_t a[4];\n"
        "event init():\n    a[0] = 1;\n"
        "event destroy():\n    a[0] = 0;\n"
        "event read():\n    return a;\n"
    )
    read = checked.handler_for(0, "read")
    assert read.node.body[0].array_name == "a"


def test_assignment_to_parameter_rejected():
    with pytest.raises(SemanticError, match="parameter"):
        check_source("event newdata(char c):\n    c = 1;\n" + VALID_PREFIX.replace("x", "y").replace("int32_t y;\n", ""))


def test_parameter_shadowing_global_rejected():
    with pytest.raises(SemanticError, match="shadows"):
        check_source("int32_t c;\nevent newdata(char c):\n    c++;\n" + VALID_PREFIX.replace("x = 1", "c = 1").replace("x = 0", "c = 0"))


def test_signal_unknown_lib_command_rejected():
    with pytest.raises(SemanticError, match="no command"):
        check_source("import uart;\nint32_t x;\n"
                     "event init():\n    signal uart.frobnicate();\n"
                     "event destroy():\n    x = 0;\n")


def test_signal_wrong_arity_rejected():
    with pytest.raises(SemanticError, match="argument"):
        check_source("import uart;\nint32_t x;\n"
                     "event init():\n    signal uart.init(9600);\n"
                     "event destroy():\n    x = 0;\n")


def test_signal_this_requires_existing_handler():
    with pytest.raises(SemanticError, match="no such handler"):
        check_source("int32_t x;\n"
                     "event init():\n    signal this.missing();\n"
                     "event destroy():\n    x = 0;\n")


def test_signal_unimported_lib_rejected():
    with pytest.raises(SemanticError, match="not an imported library"):
        check_source("int32_t x;\n"
                     "event init():\n    signal uart.reset();\n"
                     "event destroy():\n    x = 0;\n")


def test_well_known_event_arity_checked():
    # uart emits newdata(char): a handler with 2 params is wrong.
    with pytest.raises(SemanticError, match="parameter"):
        check_source("import uart;\nint32_t x;\n"
                     "event newdata(char c, char d):\n    x = c;\n" + VALID_PREFIX)


def test_error_handler_with_params_rejected():
    with pytest.raises(SemanticError, match="no parameters"):
        check_source("int32_t x;\nerror timeOut(char c):\n    x = c;\n" + VALID_PREFIX)


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError, match="outside of a loop"):
        check_source("int32_t x;\nevent init():\n    break;\n"
                     "event destroy():\n    x = 0;\n")


def test_postfix_on_array_element_rejected():
    with pytest.raises(SemanticError, match="scalar globals only"):
        check_source("uint8_t a[4];\nint32_t x;\n"
                     "event init():\n    x = a[0]++;\n"
                     "event destroy():\n    x = 0;\n")


def test_custom_event_names_get_local_ids():
    checked = check_source(
        "int32_t x;\n"
        "event init():\n    signal this.phaseTwo();\n"
        "event destroy():\n    x = 0;\n"
        "event phaseTwo():\n    x = 2;\n"
    )
    assert checked.name_ids["phaseTwo"] >= LOCAL_NAME_BASE
    assert checked.name_ids["init"] == well_known_id("init")


def test_slots_allocated_by_access_frequency():
    checked = check_source(
        "int32_t rare, hot;\n"
        "event init():\n    hot = 1;\n    hot = hot + hot;\n    rare = 1;\n"
        "event destroy():\n    hot = 0;\n"
    )
    assert checked.globals["hot"].slot < checked.globals["rare"].slot


def test_arrays_sorted_after_scalars():
    checked = check_source(
        "uint8_t buf[4];\nint32_t x;\n"
        "event init():\n    buf[0] = 1;\n    buf[1] = 2;\n    buf[2] = 3;\n"
        "event destroy():\n    x = 0;\n"
    )
    assert checked.globals["x"].slot < checked.globals["buf"].slot
