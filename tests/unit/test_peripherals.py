"""Unit tests for the behavioural peripheral models."""

import pytest

from repro.interconnect.uart import UartBus
from repro.peripherals.base import Environment, UartDevice
from repro.peripherals.bmp180 import (
    Bmp180,
    CMD_PRESSURE_BASE,
    CMD_TEMPERATURE,
    Calibration,
    REG_CHIP_ID,
    REG_CTRL_MEAS,
    REG_OUT_MSB,
    REG_SOFT_RESET,
    compensate_pressure,
    compensate_temperature,
    uncompensated_pressure,
    uncompensated_temperature,
)
from repro.peripherals.hih4030 import Hih4030
from repro.peripherals.id20la import (
    Id20La,
    build_frame,
    checksum,
    verify_frame_payload,
)
from repro.peripherals.relay import Relay
from repro.peripherals.tmp36 import Tmp36
from repro.sim.kernel import Simulator


# ---------------------------------------------------------------- environment
def test_environment_defaults():
    env = Environment()
    assert env.current_temperature_c() == 21.0
    assert env.current_humidity_rh() == 45.0


def test_environment_diurnal_drift():
    clock = {"t": 0.0}
    env = Environment(temperature_c=20.0, diurnal_temp_amplitude_c=4.0,
                      clock=lambda: clock["t"])
    clock["t"] = Environment.SECONDS_PER_DAY / 4  # peak of the sine
    assert env.current_temperature_c() == pytest.approx(24.0)
    clock["t"] = 3 * Environment.SECONDS_PER_DAY / 4
    assert env.current_temperature_c() == pytest.approx(16.0)


def test_environment_clamps_humidity():
    assert Environment(humidity_rh=150.0).current_humidity_rh() == 100.0
    assert Environment(humidity_rh=-5.0).current_humidity_rh() == 0.0


# ---------------------------------------------------------------------- TMP36
def test_tmp36_transfer_function():
    env = Environment(temperature_c=25.0)
    assert Tmp36(env=env).voltage_v() == pytest.approx(0.75)
    env.temperature_c = 0.0
    assert Tmp36(env=env).voltage_v() == pytest.approx(0.5)


def test_tmp36_clamps_to_rated_range():
    assert Tmp36(env=Environment(temperature_c=500.0)).voltage_v() == \
        pytest.approx(0.5 + 0.01 * 125)


def test_tmp36_fixed_point_helper():
    assert Tmp36.millivolts_to_decidegrees(750) == 250


# -------------------------------------------------------------------- HIH4030
def test_hih4030_monotonic_in_humidity():
    env = Environment(humidity_rh=20.0)
    dry = Hih4030(env=env).voltage_v()
    env.humidity_rh = 80.0
    wet = Hih4030(env=env).voltage_v()
    assert wet > dry


def test_hih4030_fixed_point_matches_float_within_1pct():
    env = Environment(humidity_rh=55.0, temperature_c=25.0)
    sensor = Hih4030(env=env)
    mv = round(sensor.voltage_v() * 1000)
    tenths = Hih4030.millivolts_to_rh_tenths(mv)
    assert tenths / 10 == pytest.approx(55.0, abs=1.0)


# -------------------------------------------------------------------- ID-20LA
def test_id20la_checksum_is_xor_of_data_bytes():
    assert checksum("0A1B2C3D4E") == 0x0A ^ 0x1B ^ 0x2C ^ 0x3D ^ 0x4E


def test_id20la_frame_layout():
    frame = build_frame("0A1B2C3D4E")
    assert len(frame) == 16
    assert frame[0] == 0x02 and frame[-1] == 0x03
    assert frame[13:15] == b"\r\n"
    assert frame[1:13].decode() == "0A1B2C3D4E4E"


def test_id20la_verify_payload():
    frame = build_frame("DEADBEEF00")
    assert verify_frame_payload(frame[1:13].decode())
    assert not verify_frame_payload("DEADBEEF0000")
    assert not verify_frame_payload("short")


def test_id20la_rejects_bad_card_ids():
    with pytest.raises(ValueError):
        build_frame("XYZ")
    with pytest.raises(ValueError):
        checksum("0A1B")


def test_id20la_requires_bus_binding():
    reader = Id20La()
    with pytest.raises(RuntimeError):
        reader.present_card("0A1B2C3D4E")


def test_id20la_transmits_frame_over_uart():
    sim = Simulator()
    bus = UartBus(sim, rx_fifo_size=32)
    reader = Id20La()
    bus.attach(reader)
    reader.bind(bus)
    received = []
    bus.set_rx_handler(received.append)
    reader.present_card("0a1b2c3d4e")
    sim.run()
    assert bytes(received) == build_frame("0A1B2C3D4E")
    assert reader.frames_sent == 1
    assert reader.history == ["0A1B2C3D4E"]


# ---------------------------------------------------------------------- relay
def test_relay_write_and_read():
    relay = Relay()
    relay.handle_write(bytes([0x00, 1]))
    assert relay.state
    assert relay.handle_read(1) == b"\x01"
    relay.handle_write(bytes([0x00, 0]))
    assert not relay.state
    assert relay.switch_count == 2


def test_relay_same_state_write_does_not_count_switch():
    relay = Relay()
    relay.handle_write(bytes([0x00, 0]))
    assert relay.switch_count == 0


# --------------------------------------------------------------------- BMP180
def test_bmp180_datasheet_example():
    cal = Calibration()
    temperature, b5 = compensate_temperature(27898, cal)
    assert temperature == 150
    assert compensate_pressure(23843, b5, 0, cal) == 69964


def test_bmp180_inverse_roundtrip_all_oss():
    cal = Calibration()
    ut = uncompensated_temperature(21.0, cal)
    temperature, b5 = compensate_temperature(ut, cal)
    assert temperature == pytest.approx(210, abs=1)
    for oss in range(4):
        up = uncompensated_pressure(101_325.0, b5, oss, cal)
        assert compensate_pressure(up, b5, oss, cal) == pytest.approx(
            101_325, abs=3
        )


def test_bmp180_eeprom_roundtrip():
    cal = Calibration()
    assert Calibration.from_eeprom(cal.to_eeprom()) == cal
    with pytest.raises(ValueError):
        Calibration.from_eeprom(b"\x00" * 5)


def test_bmp180_chip_id_and_calibration_registers():
    device = Bmp180()
    device.handle_write(bytes([REG_CHIP_ID]))
    assert device.handle_read(1) == b"\x55"
    device.handle_write(bytes([0xAA]))
    assert device.handle_read(22) == Calibration().to_eeprom()


def test_bmp180_conversion_respects_time():
    clock = {"t": 0.0}
    env = Environment(temperature_c=25.0)
    device = Bmp180(env=env, clock=lambda: clock["t"])
    device.handle_write(bytes([REG_CTRL_MEAS, CMD_TEMPERATURE]))
    # Sco bit reads 1 while the conversion is pending.
    device.handle_write(bytes([REG_CTRL_MEAS]))
    assert device.handle_read(1)[0] & 0x20
    clock["t"] = 0.005  # past the 4.5 ms conversion
    assert not device.handle_read(1)[0] & 0x20
    device.handle_write(bytes([REG_OUT_MSB]))
    msb, lsb = device.handle_read(2)
    ut = (msb << 8) | lsb
    temperature, _ = compensate_temperature(ut, device.cal)
    assert temperature == pytest.approx(250, abs=1)


def test_bmp180_pressure_measurement_path():
    clock = {"t": 0.0}
    env = Environment(temperature_c=21.0, pressure_pa=98_000.0)
    device = Bmp180(env=env, clock=lambda: clock["t"])
    # Temperature first (establishes B5) ...
    device.handle_write(bytes([REG_CTRL_MEAS, CMD_TEMPERATURE]))
    clock["t"] = 0.005
    device.handle_write(bytes([REG_OUT_MSB]))
    msb, lsb = device.handle_read(2)
    _, b5 = compensate_temperature((msb << 8) | lsb, device.cal)
    # ... then pressure at oss=1.
    command = CMD_PRESSURE_BASE | (1 << 6)
    device.handle_write(bytes([REG_CTRL_MEAS, command]))
    clock["t"] = 0.020
    device.handle_write(bytes([REG_OUT_MSB]))
    b0, b1, b2 = device.handle_read(3)
    up = ((b0 << 16) | (b1 << 8) | b2) >> (8 - 1)
    assert compensate_pressure(up, b5, 1, device.cal) == pytest.approx(
        98_000, abs=5
    )


def test_bmp180_soft_reset_clears_output():
    device = Bmp180()
    device.handle_write(bytes([REG_CTRL_MEAS, CMD_TEMPERATURE]))
    device.handle_write(bytes([REG_SOFT_RESET, 0xB6]))
    device.handle_write(bytes([REG_OUT_MSB]))
    assert device.handle_read(3) == b"\x00\x00\x00"


def test_bmp180_conversion_time_table():
    device = Bmp180()
    assert device.conversion_time_s(CMD_TEMPERATURE) == pytest.approx(4.5e-3)
    assert device.conversion_time_s(CMD_PRESSURE_BASE | (3 << 6)) == \
        pytest.approx(25.5e-3)
    with pytest.raises(ValueError):
        device.conversion_time_s(0x00)


# ------------------------------------------------------------------ UART base
def test_uart_device_bind_lifecycle():
    device = UartDevice()
    assert not device.bound
    with pytest.raises(RuntimeError):
        device.transmit(b"x")
