"""Differential test: fastpath vs reference interpreter.

The fastpath's correctness bar is *exact* equivalence with the
reference interpreter — identical cycle counts, step counts, signals,
returns, global mutations and trap messages.  This suite drives both
engines over:

* the per-opcode snippet corpus from :mod:`repro.analysis.vmperf`
  (guaranteeing every opcode in the ISA is covered),
* seeded randomized structured programs (arithmetic, stores, forward
  diamonds, backward counted loops, SIG/RETV/RETA), with the final
  stack contents shipped out through a SIG so stacks are compared too,
* pure random byte soup (any behaviour is acceptable as long as both
  engines agree, trap-for-trap), and
* dedicated trap scenarios: stack over/underflow, division by zero,
  runaway handlers, bad slots, bad indices, invalid opcodes, truncated
  operands, jumps off both ends of the code.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.vmperf import _SNIPPETS, _encode, _i, _image_for
from repro.dsl.bytecode import (
    DriverImage,
    HANDLER_KIND_EVENT,
    HandlerDef,
    Op,
    SlotDef,
)
from repro.dsl.types import INT32, UINT8, UINT32
from repro.vm.machine import DriverInstance, VirtualMachine, VmTrap


def run_one(mode, image, args=(), *, stack_limit=32, step_limit=2_000):
    """Execute handler 0 under *mode*; return a comparable outcome."""
    vm = VirtualMachine(mode=mode, stack_limit=stack_limit,
                        step_limit=step_limit)
    instance = DriverInstance(image)
    signals = []
    returns = []
    try:
        result = vm.execute(
            instance,
            image.handlers[0],
            args,
            signal_sink=lambda t, s, a: signals.append((t, s, a)),
            return_sink=returns.append,
        )
        outcome = ("ok", result.cycles, result.steps)
    except VmTrap as trap:
        outcome = ("trap", str(trap))
    return outcome, signals, returns, instance.globals


def assert_equivalent(image, args=(), *, stack_limit=32, step_limit=2_000):
    ref = run_one("reference", image, args,
                  stack_limit=stack_limit, step_limit=step_limit)
    fast = run_one("fast", image, args,
                   stack_limit=stack_limit, step_limit=step_limit)
    assert fast == ref, (
        f"fastpath diverged from reference\n  ref:  {ref}\n  fast: {fast}\n"
        f"  code: {image.code.hex()}"
    )
    traced = run_one("trace", image, args,
                     stack_limit=stack_limit, step_limit=step_limit)
    assert traced == ref, (
        f"trace compilation diverged from reference\n  ref:   {ref}\n"
        f"  trace: {traced}\n  code: {image.code.hex()}"
    )
    return ref


# ------------------------------------------------------------ every opcode
@pytest.mark.parametrize("op", sorted(_SNIPPETS, key=lambda o: o.value),
                         ids=lambda op: op.name)
def test_every_opcode_matches_reference(op):
    scaffold, subject = _SNIPPETS[op]
    # Op.RET's corpus entry has no subject — it *is* the trailing RET.
    subjects = (subject,) if subject else ()
    code = _encode(*scaffold, *subjects, _i(Op.RET))
    outcome = assert_equivalent(_image_for(code), args=(7,))
    assert outcome[0][0] == "ok"


def test_snippet_corpus_covers_the_full_isa():
    assert set(_SNIPPETS) == set(Op), "vmperf corpus out of date"


# ------------------------------------------------- structured random programs
def _random_program(rng: random.Random):
    """A stack-aware random program over the vmperf slot layout
    (slots 0..7 int32 scalars, slot 8 a uint8[8] array)."""
    instrs = []
    depth = 0
    for _ in range(rng.randrange(8, 50)):
        roll = rng.random()
        if roll < 0.10 and depth >= 1:
            # forward diamond: conditionally skip a balanced block
            op = rng.choice((Op.JZS, Op.JNZS))
            block = _encode(_i(Op.PUSH8, rng.randrange(-128, 128)),
                            _i(Op.DROP))
            instrs.append(_i(op, len(block)))
            instrs.append(_i(Op.PUSH8, rng.randrange(-128, 128)))
            instrs.append(_i(Op.DROP))
            depth -= 1
            continue
        if roll < 0.15:
            # backward counted loop: slot 7 counts down to zero
            count = rng.randrange(1, 6)
            instrs.append(_i(Op.PUSH8, count))
            instrs.append(_i(Op.STG, 7))
            instrs.append(_i(Op.PUSH8, 1))   # dummy so DECG can't underflow
            instrs.append(_i(Op.DROP))
            instrs.append(_i(Op.DECG, 7))
            instrs.append(_i(Op.JNZS, -4))   # back to DECG
            continue
        if depth >= 2 and roll < 0.45:
            instrs.append(_i(rng.choice((
                Op.ADD, Op.SUB, Op.MUL, Op.BAND, Op.BOR, Op.BXOR,
                Op.SHL, Op.SHR, Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
                Op.DIV, Op.MOD,
            ))))
            depth -= 1
        elif depth >= 1 and roll < 0.60:
            choice = rng.randrange(5)
            if choice == 0:
                instrs.append(_i(Op.STG, rng.randrange(8)))
                depth -= 1
            elif choice == 1:
                instrs.append(_i(rng.choice((Op.NEG, Op.BINV, Op.LNOT))))
            elif choice == 2:
                instrs.append(_i(Op.DROP))
                depth -= 1
            elif choice == 3 and depth < 28:
                instrs.append(_i(Op.DUP))
                depth += 1
            else:
                # clamp to a valid array index, then LDE from slot 8
                instrs.append(_i(Op.PUSH8, 7))
                instrs.append(_i(Op.BAND))
                instrs.append(_i(Op.LDE, 8))
        elif depth < 26:
            choice = rng.randrange(7)
            if choice == 0:
                instrs.append(_i(Op.PUSH32, rng.randrange(-2**31, 2**31)))
            elif choice == 1:
                instrs.append(_i(Op.PUSH16, rng.randrange(-2**15, 2**15)))
            elif choice == 2:
                instrs.append(_i(Op.PUSH8, rng.randrange(-128, 128)))
            elif choice == 3:
                instrs.append(_i(Op.LDG, rng.randrange(8)))
            elif choice == 4:
                instrs.append(_i(Op.LDP, rng.randrange(2)))
            elif choice == 5:
                instrs.append(_i(rng.choice((Op.INCG, Op.DECG)),
                                 rng.randrange(8)))
            else:
                instrs.append(_i(Op.LDEI, 8, rng.randrange(8)))
            depth += 1
        else:
            instrs.append(_i(Op.NOP))
    # Ship the whole remaining stack out through the signal sink so the
    # differential covers final stack contents, then end cleanly.
    instrs.append(_i(Op.SIG, 0, 1, depth))
    instrs.append(_i(Op.RET))
    return _encode(*instrs)


@pytest.mark.parametrize("seed", range(200))
def test_randomized_structured_programs(seed):
    rng = random.Random(0xC0FFEE + seed)
    code = _random_program(rng)
    image = _image_for(code, n_params=2)
    args = (rng.randrange(-2**31, 2**31), rng.randrange(-2**31, 2**31))
    assert_equivalent(image, args)


@pytest.mark.parametrize("seed", range(300))
def test_random_byte_soup_agrees_trap_for_trap(seed):
    rng = random.Random(0xF00D + seed)
    code = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
    image = _image_for(code)
    assert_equivalent(image, args=(rng.randrange(-1000, 1000),),
                      step_limit=300)


# ------------------------------------------------------------- uint32 slots
def _u32_image(code: bytes) -> DriverImage:
    return DriverImage(
        device_id=0,
        slots=(SlotDef(UINT32), SlotDef(UINT32, 4), SlotDef(INT32)),
        imports=(),
        handlers=(HandlerDef(HANDLER_KIND_EVENT, 0, 0, 1),),
        code=code,
    )


def test_uint32_slots_wrap_identically_on_load():
    # Store -1 into a uint32 slot (kept as 0xFFFFFFFF), load it back
    # (wraps to -1 in the compute domain), and increment across the
    # 2**32 boundary.
    code = _encode(
        _i(Op.PUSH8, -1), _i(Op.STG, 0),
        _i(Op.LDG, 0), _i(Op.SIG, 0, 1, 1),
        _i(Op.INCG, 0), _i(Op.DROP),
        _i(Op.LDG, 0), _i(Op.RETV),
        _i(Op.PUSH0), _i(Op.PUSH8, -1), _i(Op.STE, 1),
        _i(Op.LDEI, 1, 0), _i(Op.SIG, 0, 2, 1),
        _i(Op.PUSH0), _i(Op.LDE, 1), _i(Op.SIG, 0, 3, 1),
        _i(Op.RET),
    )
    outcome, signals, returns, final_globals = assert_equivalent(
        _u32_image(code), args=(0,))
    assert outcome[0] == "ok"
    assert signals[0] == (0, 1, (-1,))          # uint32 load wraps
    assert final_globals[0] == 0                # 0xFFFFFFFF + 1 wrapped
    assert signals[1] == (0, 2, (-1,))          # uint32 array LDEI wraps
    assert signals[2] == (0, 3, (-1,))          # uint32 array LDE wraps


# ---------------------------------------------------------------- trap paths
def _trap_case(code: bytes, expected: str, *, image=None, args=(7,),
               stack_limit=32, step_limit=500):
    img = image if image is not None else _image_for(code)
    outcome, _, _, _ = assert_equivalent(
        img, args, stack_limit=stack_limit, step_limit=step_limit)
    assert outcome == ("trap", expected)


def test_trap_stack_overflow():
    _trap_case(_encode(*([_i(Op.PUSH1)] * 33), _i(Op.RET)),
               "operand stack overflow")


def test_trap_stack_underflow():
    _trap_case(_encode(_i(Op.DROP), _i(Op.RET)), "operand stack underflow")


def test_trap_underflow_takes_precedence_over_static_fault():
    # STG to a nonexistent slot pops before faulting; with an empty
    # stack both engines must report underflow, not the slot fault.
    _trap_case(_encode(_i(Op.STG, 200), _i(Op.RET)),
               "operand stack underflow")


def test_trap_division_by_zero():
    _trap_case(_encode(_i(Op.PUSH8, 5), _i(Op.PUSH0), _i(Op.DIV),
                       _i(Op.RET)),
               "division by zero")
    _trap_case(_encode(_i(Op.PUSH8, 5), _i(Op.PUSH0), _i(Op.MOD),
                       _i(Op.RET)),
               "division by zero")


def test_trap_runaway_handler():
    _trap_case(_encode(_i(Op.JMPS, -2)),
               "step limit exceeded (runaway handler)", step_limit=50)


def test_trap_slot_out_of_range():
    _trap_case(_encode(_i(Op.LDG, 200), _i(Op.RET)),
               "slot 200 out of range")


def test_trap_scalar_array_confusion():
    _trap_case(_encode(_i(Op.LDG, 8), _i(Op.RET)), "slot 8 is an array")
    _trap_case(_encode(_i(Op.PUSH0), _i(Op.LDE, 0), _i(Op.RET)),
               "slot 0 is not an array")
    _trap_case(_encode(_i(Op.RETA, 0), _i(Op.RET)),
               "slot 0 is not an array")


def test_trap_index_out_of_bounds():
    _trap_case(_encode(_i(Op.PUSH8, 99), _i(Op.LDE, 8), _i(Op.RET)),
               "index 99 out of bounds for slot 8")
    _trap_case(_encode(_i(Op.LDEI, 8, 99), _i(Op.RET)),
               "index 99 out of bounds for slot 8")
    # negative index via the stack
    _trap_case(_encode(_i(Op.PUSH8, -1), _i(Op.LDE, 8), _i(Op.RET)),
               "index -1 out of bounds for slot 8")


def test_trap_invalid_opcode_is_a_vmtrap_not_a_valueerror():
    _trap_case(bytes([0xFF]), "invalid opcode 0xff at pc 0")
    _trap_case(_encode(_i(Op.PUSH1)) + bytes([0x99]),
               "invalid opcode 0x99 at pc 1")


def test_trap_truncated_operands():
    _trap_case(bytes([Op.PUSH32.value, 0x01]),
               "truncated operands for PUSH32 at pc 0")
    _trap_case(bytes([Op.LDG.value]), "truncated operands for LDG at pc 0")


def test_trap_pc_runs_off_either_end():
    _trap_case(_encode(_i(Op.PUSH1)), "pc 1 ran off the end of code")
    _trap_case(_encode(_i(Op.JMPS, -10)),
               "pc -8 ran off the end of code")


def test_trap_parameter_out_of_range():
    _trap_case(_encode(_i(Op.LDP, 5), _i(Op.RET)),
               "parameter 5 out of range")


def test_trap_sig_argc_exceeds_stack():
    _trap_case(_encode(_i(Op.SIG, 0, 0, 5), _i(Op.RET)),
               "SIG argc exceeds stack depth")


def test_trap_wrong_arg_count_in_both_modes():
    image = _image_for(_encode(_i(Op.RET)), n_params=2)
    for mode in ("reference", "fast"):
        vm = VirtualMachine(mode=mode)
        with pytest.raises(VmTrap, match="handler expects 2 args, got 1"):
            vm.execute(DriverInstance(image), image.handlers[0], (1,))
