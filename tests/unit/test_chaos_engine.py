"""Unit tests: fault-plan validation and the chaos engine's injector."""

import random

import pytest

from repro.chaos.engine import ChaosEngine, ChaosStats
from repro.chaos.plan import (
    ClockSkew,
    FaultPlan,
    HotUnplug,
    LinkBurst,
    NodeCrash,
)
from repro.core.thing import Thing
from repro.drivers.catalog import make_peripheral_board
from repro.net.ipv6 import Ipv6Address
from repro.net.network import Network
from repro.net.packets import UdpDatagram
from repro.peripherals import Environment
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry

# ------------------------------------------------------------ validation


def test_burst_validation():
    with pytest.raises(ValueError):
        LinkBurst(start_s=2.0, end_s=2.0)
    with pytest.raises(ValueError):
        LinkBurst(start_s=0.0, end_s=1.0, drop_probability=1.5)
    with pytest.raises(ValueError):
        LinkBurst(start_s=0.0, end_s=1.0, corrupt_probability=-0.1)


def test_scheduled_fault_validation():
    with pytest.raises(ValueError):
        NodeCrash(thing=0, at_s=5.0, reboot_at_s=5.0)
    with pytest.raises(ValueError):
        HotUnplug(thing=0, channel=0, at_s=5.0, replug_at_s=4.0)
    with pytest.raises(ValueError):
        ClockSkew(thing=0, at_s=1.0, scale=0.0)


def test_plan_summary():
    plan = FaultPlan(
        name="p",
        bursts=(LinkBurst(start_s=0.0, end_s=1.0),),
        crashes=(NodeCrash(thing=0, at_s=1.0, reboot_at_s=2.0),
                 NodeCrash(thing=1, at_s=1.0)),
        unplugs=(HotUnplug(thing=0, channel=0, at_s=1.0, replug_at_s=2.0),),
        skews=(ClockSkew(thing=0, at_s=1.0),),
    )
    assert not plan.is_empty
    assert FaultPlan().is_empty
    # crash+reboot (2) + crash (1) + unplug+replug (2) + skew (1)
    assert plan.scheduled_fault_count() == 6
    assert plan.describe() == {
        "name": "p", "bursts": 1, "crashes": 2, "unplugs": 1, "skews": 1,
    }


# -------------------------------------------------------------- injector


def _engine(plan=None, things=(), seed=1):
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed))
    engine = ChaosEngine(sim, network, things, random.Random(seed))
    if plan is not None:
        engine.arm(plan)
    return sim, network, engine


def _datagram(payload=b"\x01hello"):
    return UdpDatagram(Ipv6Address(1), 9999, Ipv6Address(2), 9999, payload)


def _burst_plan(**kwargs):
    return FaultPlan(name="unit",
                     bursts=(LinkBurst(start_s=0.0, end_s=100.0, **kwargs),))


def test_drop_probability_one_drops_everything():
    sim, network, engine = _engine(_burst_plan(drop_probability=1.0))
    assert engine._inject(1, _datagram()) == []
    assert engine.stats.drops == 1
    assert [r.kind for r in engine.records] == ["drop"]


def test_corruption_mangles_type_byte_only():
    sim, network, engine = _engine(_burst_plan(corrupt_probability=1.0))
    copies = engine._inject(1, _datagram(b"\x05abc"))
    assert len(copies) == 1
    delay, mangled = copies[0]
    assert delay == 0.0
    assert mangled.payload == b"\xffabc"  # decoder must reject, not mutate
    assert engine.stats.corruptions == 1


def test_duplicate_emits_trailing_copy():
    plan = _burst_plan(duplicate_probability=1.0, duplicate_delay_s=0.07)
    sim, network, engine = _engine(plan)
    copies = engine._inject(1, _datagram())
    assert [delay for delay, _ in copies] == [0.0, 0.07]
    assert copies[0][1] is copies[1][1]
    assert engine.stats.duplicates == 1


def test_reorder_delays_the_datagram():
    plan = _burst_plan(reorder_probability=1.0, reorder_delay_s=0.09)
    sim, network, engine = _engine(plan)
    copies = engine._inject(1, _datagram())
    assert copies == [(0.09, copies[0][1])]
    assert engine.stats.reorders == 1


def test_outside_burst_window_passes_through():
    plan = FaultPlan(name="late", bursts=(
        LinkBurst(start_s=50.0, end_s=60.0, drop_probability=1.0),))
    sim, network, engine = _engine(plan)
    datagram = _datagram()
    assert engine._inject(1, datagram) == [(0.0, datagram)]
    assert engine.stats.total() == 0


def test_arm_twice_raises():
    sim, network, engine = _engine(_burst_plan(drop_probability=0.5))
    with pytest.raises(RuntimeError):
        engine.arm(_burst_plan(drop_probability=0.5))


def test_stats_total_counts_every_kind():
    stats = ChaosStats(drops=1, corruptions=2, duplicates=3, reorders=4,
                       crashes=5, reboots=6, unplugs=7, replugs=8, skews=9)
    assert stats.total() == 45
    assert stats.as_dict()["total"] == 45
    assert stats.as_dict()["unplugs_skipped"] == 0


# ------------------------------------------------------ scheduled faults


def _thing_world(seed=11):
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    thing = Thing(sim, network, 0, rng=rng.fork("thing"))
    network.connect(0, 1)
    network.build_dodag(0)
    return sim, network, thing


def test_crash_reboot_and_skew_fire_on_schedule():
    sim, network, thing = _thing_world()
    engine = ChaosEngine(sim, network, [thing], random.Random(1))
    engine.arm(FaultPlan(
        name="crash",
        crashes=(NodeCrash(thing=0, at_s=1.0, reboot_at_s=2.0),),
        skews=(ClockSkew(thing=0, at_s=3.0, scale=1.5),),
    ))
    sim.run_until(ns_from_s(1.5))
    assert thing.crashed
    sim.run_until(ns_from_s(2.5))
    assert not thing.crashed
    sim.run_until(ns_from_s(3.5))
    assert thing.timer_scale == 1.5
    assert [r.kind for r in engine.records] == ["crash", "reboot", "skew"]
    assert engine.stats.crashes == engine.stats.reboots == 1


def test_unplug_of_empty_channel_is_recorded_as_skipped():
    sim, network, thing = _thing_world()
    engine = ChaosEngine(sim, network, [thing], random.Random(1))
    engine.arm(FaultPlan(
        name="unplug",
        unplugs=(HotUnplug(thing=0, channel=0, at_s=1.0, replug_at_s=2.0),),
    ))
    sim.run_until(ns_from_s(3.0))
    assert engine.stats.unplugs == 0
    assert engine.stats.unplugs_skipped == 1
    assert engine.stats.replugs_skipped == 1


def test_unplug_and_replug_round_trip():
    sim, network, thing = _thing_world()
    env = Environment(temperature_c=20.0)
    board = make_peripheral_board("tmp36", env,
                                  rng=RngRegistry(5).stream("mfg"))
    channel = thing.plug(board)
    engine = ChaosEngine(sim, network, [thing], random.Random(1))
    engine.arm(FaultPlan(
        name="unplug",
        unplugs=(HotUnplug(thing=0, channel=channel, at_s=1.0,
                           replug_at_s=2.0),),
    ))
    sim.run_until(ns_from_s(1.5))
    assert thing.board.board_at(channel) is None
    sim.run_until(ns_from_s(2.5))
    assert thing.board.board_at(channel) is board
    assert engine.stats.unplugs == engine.stats.replugs == 1
