"""Edge-case tests across modules (limits, misuse, rare paths)."""

import pytest

from repro.dsl.checker import MAX_ARRAY_LENGTH
from repro.dsl.compiler import compile_source
from repro.dsl.errors import SemanticError
from repro.sim.kernel import Simulator


BASE = "event init():\n    x = 1;\nevent destroy():\n    x = 0;\n"


# ------------------------------------------------------------------ DSL limits
def test_array_length_limit_enforced():
    with pytest.raises(SemanticError, match="array too long"):
        compile_source(f"int32_t x;\nuint8_t big[{MAX_ARRAY_LENGTH + 1}];\n"
                       + BASE)


def test_array_at_limit_compiles():
    image = compile_source(
        f"int32_t x;\nuint8_t big[{MAX_ARRAY_LENGTH}];\n"
        "event init():\n    big[0] = 1;\n"
        "event destroy():\n    x = 0;\n"
    )
    assert image.ram_bytes >= MAX_ARRAY_LENGTH


def test_many_globals_compile():
    decls = "\n".join(f"int32_t v{i};" for i in range(50))
    body = "".join(f"    v{i} = {i};\n" for i in range(50))
    source = (f"{decls}\n"
              f"event init():\n{body}"
              "event destroy():\n    v0 = 0;\n")
    image = compile_source(source)
    assert len(image.slots) == 50


def test_deeply_nested_blocks_compile_and_run():
    from repro.dsl.bytecode import HANDLER_KIND_EVENT
    from repro.vm.machine import DriverInstance, VirtualMachine

    depth = 12
    lines = ["int32_t x;", "event init():"]
    for level in range(depth):
        lines.append("    " * (level + 1) + f"if x < {level + 1}:")
        lines.append("    " * (level + 2) + "x++;")
    lines.append("event destroy():")
    lines.append("    x = 0;")
    image = compile_source("\n".join(lines) + "\n")
    instance = DriverInstance(image)
    VirtualMachine().execute(instance, image.find_handler(HANDLER_KIND_EVENT, 0),
                             (), signal_sink=lambda *a: None)
    assert instance.scalar(0) == depth


# ------------------------------------------------------------------- sim edge
def test_simulator_interleaved_cancel_and_fire():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(10 + i, lambda i=i: fired.append(i))
               for i in range(10)]
    for handle in handles[::2]:
        handle.cancel()
    sim.run()
    assert fired == [1, 3, 5, 7, 9]


def test_simulator_event_scheduling_from_trace_hook_is_safe():
    sim = Simulator()
    seen = []
    sim.add_trace_hook(lambda t, name: seen.append(name))
    sim.schedule(1, lambda: None, name="only")
    sim.run()
    assert seen == ["only"]


# --------------------------------------------------------------- stack misuse
def test_stack_unbind_then_no_socket():
    from repro.net.network import Network
    from repro.net.stack import NetworkStack

    sim = Simulator()
    net = Network(sim)
    a = NetworkStack(net, 0)
    b = NetworkStack(net, 1)
    net.connect(0, 1)
    b.bind(6030, lambda d: None)
    b.unbind(6030)
    a.sendto(b.address, 6030, b"x", src_port=6030)
    sim.run()
    assert b.stats.no_socket == 1


# -------------------------------------------------------------- thing channels
def test_plug_into_occupied_channel_raises():
    from repro.drivers.catalog import make_peripheral_board
    from repro.hw.control_board import ChannelError
    from tests.integration.conftest import build_world

    world = build_world(seed=3)
    world.thing.plug(make_peripheral_board("tmp36",
                                           rng=world.rng.stream("a")),
                     channel=0)
    with pytest.raises(ChannelError):
        world.thing.plug(make_peripheral_board("bmp180",
                                               rng=world.rng.stream("b")),
                         channel=0)


def test_unplug_empty_channel_raises():
    from repro.hw.control_board import ChannelError
    from tests.integration.conftest import build_world

    world = build_world(seed=4)
    with pytest.raises(ChannelError):
        world.thing.unplug(2)


# --------------------------------------------------------------- manager edges
def test_manager_ignores_unmatched_replies():
    from repro.protocol.messages import DriverRemovalAck
    from repro.net.packets import UPNP_PORT
    from tests.integration.conftest import build_world

    from repro.hw.device_id import DeviceId

    world = build_world(seed=5)
    stray = DriverRemovalAck(999, DeviceId(1), 0)
    world.client.stack.sendto(world.manager.address, UPNP_PORT,
                              stray.encode(), src_port=UPNP_PORT)
    world.run(1.0)  # no exception, nothing pending: silently ignored
