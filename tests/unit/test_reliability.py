"""Unit tests: reliability primitives + bounded pending tables.

The bounded-table tests exercise the latent-leak fix: a request whose
reply never arrives must expire through its timeout, run its callback
exactly once with None, and leave the endpoint's pending dict empty.
"""

import random

import pytest

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import TMP36_ID, make_peripheral_board, populate_registry
from repro.net.network import Network
from repro.peripherals import Environment
from repro.protocol.reliability import (
    DEFAULT_INSTALL_RETRY,
    DEFAULT_RETRY,
    MISS,
    NO_RETRY,
    DuplicateCache,
    ReplyCache,
    RetryPolicy,
    request_key,
)
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry

# ----------------------------------------------------------- RetryPolicy


def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=6, base_backoff_s=0.5, multiplier=2.0,
                         max_backoff_s=3.0, jitter_frac=0.0)
    assert [policy.backoff_s(n) for n in range(1, 6)] == \
        [0.5, 1.0, 2.0, 3.0, 3.0]


def test_backoff_jitter_stays_within_fraction():
    policy = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, jitter_frac=0.2)
    rng = random.Random(3)
    for _ in range(100):
        delay = policy.backoff_s(1, rng)
        assert 0.8 <= delay <= 1.2


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.0)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0)


def test_canned_policies():
    assert not NO_RETRY.retransmits
    assert DEFAULT_RETRY.retransmits
    assert DEFAULT_INSTALL_RETRY.base_backoff_s > DEFAULT_RETRY.base_backoff_s
    assert NO_RETRY.worst_case_span_s() == 0.0


def test_worst_case_span_sums_jittered_backoffs():
    policy = RetryPolicy(max_attempts=3, base_backoff_s=1.0, multiplier=2.0,
                         max_backoff_s=10.0, jitter_frac=0.1)
    assert policy.worst_case_span_s() == pytest.approx((1.0 + 2.0) * 1.1)


# ------------------------------------------------------- DuplicateCache


def test_duplicate_cache_detects_and_bounds():
    cache = DuplicateCache(3)
    assert not cache.seen("a")
    assert cache.seen("a")
    assert not cache.seen("b")
    assert not cache.seen("c")
    assert not cache.seen("d")  # evicts "a" (FIFO)
    assert len(cache) == 3
    assert not cache.seen("a")  # wrapped seq: long evicted, fresh again
    with pytest.raises(ValueError):
        DuplicateCache(0)


# ----------------------------------------------------------- ReplyCache


def test_reply_cache_at_most_once_protocol():
    cache = ReplyCache(8)
    key = request_key(1, 9999, 42)
    assert cache.lookup(key) is MISS
    cache.begin(key)
    assert cache.lookup(key) is None       # in flight: drop the duplicate
    cache.complete(key, b"reply")
    assert cache.lookup(key) == b"reply"   # answered: re-send, no re-execute
    assert cache.hits == 2


def test_reply_cache_begin_never_downgrades_completed_entry():
    cache = ReplyCache(8)
    cache.complete("k", b"done")
    cache.begin("k")
    assert cache.lookup("k") == b"done"


def test_reply_cache_evicts_fifo():
    cache = ReplyCache(2)
    cache.complete("a", b"1")
    cache.complete("b", b"2")
    cache.complete("c", b"3")
    assert cache.lookup("a") is MISS
    assert cache.lookup("c") == b"3"


# ------------------------------------------------ bounded pending tables


def _world(*, with_manager=True, client_retry=None, manager_retry=None,
           install_retry=None, seed=42):
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    thing = Thing(sim, network, 0, rng=rng.fork("thing"),
                  install_retry=install_retry)
    client = Client(sim, network, 1, retry=client_retry)
    nodes = [0, 1]
    manager = None
    if with_manager:
        manager = Manager(sim, network, 2, registry, retry=manager_retry)
        nodes.append(2)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            network.connect(a, b)
    network.build_dodag(nodes[-1])
    return sim, network, thing, client, manager


def test_client_pending_table_drains_on_timeout():
    retry = RetryPolicy(max_attempts=3, base_backoff_s=0.2, multiplier=2.0,
                        max_backoff_s=1.0, jitter_frac=0.0)
    sim, network, thing, client, _ = _world(with_manager=False,
                                            client_retry=retry)
    thing.stack.set_down(True)  # the reply can never arrive
    outcomes = []
    client.read(thing.address, TMP36_ID, outcomes.append, timeout_s=2.0)
    assert client.pending_count() == 1
    sim.run_until(ns_from_s(10.0))
    assert outcomes == [None]  # exactly one surfaced timeout
    assert client.pending_count() == 0
    kinds = [e.kind for e in client.events]
    assert kinds.count("read-retransmit") == retry.max_attempts - 1
    assert kinds.count("read-timeout") == 1


def test_manager_pending_table_drains_on_timeout():
    sim, network, thing, client, manager = _world(
        manager_retry=RetryPolicy(max_attempts=2, base_backoff_s=0.3,
                                  multiplier=1.0, jitter_frac=0.0))
    thing.stack.set_down(True)
    outcomes = []
    manager.discover_drivers(thing.address, outcomes.append, timeout_s=1.5)
    assert manager.pending_count() == 1
    sim.run_until(ns_from_s(10.0))
    assert outcomes == [None]
    assert manager.pending_count() == 0
    assert manager.stats.timeouts == 1
    assert manager.stats.retransmits == 1


def test_thing_install_bookkeeping_drains_on_give_up():
    retry = RetryPolicy(max_attempts=2, base_backoff_s=0.3, multiplier=2.0,
                        max_backoff_s=1.0, jitter_frac=0.0)
    sim, network, thing, client, _ = _world(with_manager=False,
                                            install_retry=retry)
    env = Environment(temperature_c=21.0)
    board = make_peripheral_board("tmp36", env,
                                  rng=RngRegistry(7).stream("mfg"))
    thing.plug(board)  # no manager exists: the request can never be served
    sim.run_until(ns_from_s(10.0))
    assert thing.pending_installs() == 0
    kinds = [e.kind for e in thing.events]
    assert "driver-request-failed" in kinds
    assert kinds.count("driver-request-retransmit") == retry.max_attempts - 1
    assert not thing.drivers.has_driver(TMP36_ID)


def test_no_retry_policy_sends_exactly_once():
    sim, network, thing, client, _ = _world(with_manager=False,
                                            client_retry=NO_RETRY)
    thing.stack.set_down(True)
    outcomes = []
    client.read(thing.address, TMP36_ID, outcomes.append, timeout_s=1.0)
    sim.run_until(ns_from_s(5.0))
    assert outcomes == [None]
    kinds = [e.kind for e in client.events]
    assert kinds.count("read-retransmit") == 0
    assert client.pending_count() == 0
