"""Unit tests for the IEC 60063 preferred-value series."""

import math

import pytest

from repro.hw import eseries


def test_series_lengths():
    assert len(eseries.E12) == 12
    assert len(eseries.E24) == 24
    assert len(eseries.E96) == 96


def test_unknown_series_rejected():
    with pytest.raises(ValueError):
        eseries.series_values("E999")


def test_value_at_index_spans_decades():
    assert eseries.value_at_index(0) == pytest.approx(1.00)
    assert eseries.value_at_index(96) == pytest.approx(10.0)
    assert eseries.value_at_index(192) == pytest.approx(100.0)
    assert eseries.value_at_index(-96) == pytest.approx(0.1)


def test_index_of_value_inverts_value_at_index():
    for index in (-10, 0, 5, 95, 96, 200, 300):
        value = eseries.value_at_index(index)
        assert eseries.index_of_value(value) == index


def test_nearest_value_examples():
    assert eseries.nearest_value(9100.0) == pytest.approx(9090.0)
    assert eseries.nearest_value(10_000.0) == pytest.approx(10_000.0)
    assert eseries.nearest_value(99.0, "E12") == pytest.approx(100.0)


def test_nearest_value_rejects_nonpositive():
    with pytest.raises(ValueError):
        eseries.nearest_value(0.0)


def test_values_in_range_sorted_and_bounded():
    values = eseries.values_in_range(1000.0, 1500.0, "E96")
    assert values == sorted(values)
    assert all(1000.0 <= v <= 1500.0 for v in values)
    assert 1000.0 in values
    # E96 has 17 values per ~1.76 ratio... just check density is sane.
    assert 15 <= len(values) <= 18


def test_e96_step_ratio_is_near_constant():
    """Adjacent E96 values differ by ~2.43% — the codec's bin width."""
    table = list(eseries.E96) + [eseries.E96[0] * 10]
    ratios = [b / a for a, b in zip(table, table[1:])]
    assert min(ratios) > 1.015
    assert max(ratios) < 1.035
    geometric = eseries.E96_STEP_RATIO
    assert math.isclose(sum(ratios) / len(ratios), geometric, rel_tol=1e-3)


def test_worst_rounding_error_is_half_max_gap():
    worst = eseries.worst_rounding_error("E96")
    assert 0.008 < worst < 0.02


def test_is_preferred_value():
    assert eseries.is_preferred_value(9090.0)
    assert not eseries.is_preferred_value(9100.0)
