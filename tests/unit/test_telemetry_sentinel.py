"""Unit tests for the BENCH_*.json regression sentinel."""

import pytest

from repro.telemetry.sentinel import (
    DEFAULT_SENTINEL_RULES,
    SentinelRule,
    compare,
    flatten,
    report_lines,
)


def test_flatten_nested_dicts_and_lists():
    flat = flatten({"a": {"b": 1}, "c": [10, {"d": 2}]})
    assert flat == {"a.b": 1, "c.0": 10, "c.1.d": 2}


def test_rule_validation_and_matching():
    with pytest.raises(ValueError):
        SentinelRule("*", direction="sideways")
    with pytest.raises(ValueError):
        SentinelRule("*", tolerance=-0.1)
    rule = SentinelRule("*wall_s")
    assert rule.matches("sweep.0.wall_s")
    assert not rule.matches("sweep.0.events")


def test_lower_is_better_flags_increase_beyond_tolerance():
    rules = [SentinelRule("*wall_s", direction="lower", tolerance=0.10)]
    findings = compare({"wall_s": 1.0}, {"wall_s": 1.05}, rules)
    assert not findings[0].regression  # within tolerance
    findings = compare({"wall_s": 1.0}, {"wall_s": 1.2}, rules)
    assert findings[0].regression
    assert findings[0].change == pytest.approx(0.2)
    # Improvement never flags.
    findings = compare({"wall_s": 1.0}, {"wall_s": 0.5}, rules)
    assert not findings[0].regression


def test_higher_is_better_flags_decrease():
    rules = [SentinelRule("*rate", direction="higher", tolerance=0.10)]
    assert compare({"rate": 100}, {"rate": 80}, rules)[0].regression
    assert not compare({"rate": 100}, {"rate": 95}, rules)[0].regression
    assert not compare({"rate": 100}, {"rate": 200}, rules)[0].regression


def test_equal_mode_flags_any_change_even_non_numeric():
    rules = [SentinelRule("*digest", direction="equal")]
    findings = compare({"digest": "abc"}, {"digest": "abc"}, rules)
    assert not findings[0].regression
    findings = compare({"digest": "abc"}, {"digest": "xyz"}, rules)
    assert findings[0].regression
    assert findings[0].change is None


def test_unmatched_and_one_sided_leaves_are_skipped():
    rules = [SentinelRule("*wall_s")]
    findings = compare(
        {"wall_s": 1.0, "other": 5, "gone": 1},
        {"wall_s": 1.0, "other": 9, "new": 2},
        rules,
    )
    assert [f.path for f in findings] == ["wall_s"]


def test_first_matching_rule_wins():
    rules = [
        SentinelRule("special.wall_s", direction="lower", tolerance=1.0),
        SentinelRule("*wall_s", direction="lower", tolerance=0.0),
    ]
    findings = compare({"special": {"wall_s": 1.0}},
                       {"special": {"wall_s": 1.5}}, rules)
    assert not findings[0].regression  # loose specific rule applied


def test_zero_baseline_handled():
    rules = [SentinelRule("*wall_s", direction="lower", tolerance=0.1)]
    findings = compare({"wall_s": 0}, {"wall_s": 0}, rules)
    assert not findings[0].regression
    findings = compare({"wall_s": 0}, {"wall_s": 1.0}, rules)
    assert findings[0].regression


def test_default_rules_judge_real_scorecard_shape():
    base = {
        "sweep": [{"wall_s": 1.0, "events_per_s": 1000.0,
                   "merged_digest": "aa"}],
        "gate_passed": True,
    }
    current = {
        "sweep": [{"wall_s": 1.1, "events_per_s": 500.0,
                   "merged_digest": "bb"}],
        "gate_passed": True,
    }
    findings = compare(base, current, DEFAULT_SENTINEL_RULES)
    by_path = {f.path: f for f in findings}
    assert by_path["sweep.0.events_per_s"].regression  # halved
    assert by_path["sweep.0.merged_digest"].regression  # changed
    assert not by_path["sweep.0.wall_s"].regression  # within 25%
    assert not by_path["gate_passed"].regression


def test_report_lines_put_regressions_first():
    rules = [SentinelRule("*", direction="lower", tolerance=0.0)]
    findings = compare({"a": 1.0, "b": 1.0}, {"a": 1.0, "b": 2.0}, rules)
    lines = report_lines(findings)
    assert "REGRESS" in lines[0] and " b" in lines[0].split(":")[0]
