"""Unit tests for the BENCH_*.json regression sentinel."""

import pytest

from repro.telemetry.sentinel import (
    DEFAULT_SENTINEL_RULES,
    SentinelRule,
    compare,
    flatten,
    load_baseline_status,
    report_lines,
)


def test_flatten_nested_dicts_and_lists():
    flat = flatten({"a": {"b": 1}, "c": [10, {"d": 2}]})
    assert flat == {"a.b": 1, "c.0": 10, "c.1.d": 2}


def test_rule_validation_and_matching():
    with pytest.raises(ValueError):
        SentinelRule("*", direction="sideways")
    with pytest.raises(ValueError):
        SentinelRule("*", tolerance=-0.1)
    rule = SentinelRule("*wall_s")
    assert rule.matches("sweep.0.wall_s")
    assert not rule.matches("sweep.0.events")


def test_lower_is_better_flags_increase_beyond_tolerance():
    rules = [SentinelRule("*wall_s", direction="lower", tolerance=0.10)]
    findings = compare({"wall_s": 1.0}, {"wall_s": 1.05}, rules)
    assert not findings[0].regression  # within tolerance
    findings = compare({"wall_s": 1.0}, {"wall_s": 1.2}, rules)
    assert findings[0].regression
    assert findings[0].change == pytest.approx(0.2)
    # Improvement never flags.
    findings = compare({"wall_s": 1.0}, {"wall_s": 0.5}, rules)
    assert not findings[0].regression


def test_higher_is_better_flags_decrease():
    rules = [SentinelRule("*rate", direction="higher", tolerance=0.10)]
    assert compare({"rate": 100}, {"rate": 80}, rules)[0].regression
    assert not compare({"rate": 100}, {"rate": 95}, rules)[0].regression
    assert not compare({"rate": 100}, {"rate": 200}, rules)[0].regression


def test_equal_mode_flags_any_change_even_non_numeric():
    rules = [SentinelRule("*digest", direction="equal")]
    findings = compare({"digest": "abc"}, {"digest": "abc"}, rules)
    assert not findings[0].regression
    findings = compare({"digest": "abc"}, {"digest": "xyz"}, rules)
    assert findings[0].regression
    assert findings[0].change is None


def test_unmatched_and_one_sided_leaves_are_skipped():
    rules = [SentinelRule("*wall_s")]
    findings = compare(
        {"wall_s": 1.0, "other": 5, "gone": 1},
        {"wall_s": 1.0, "other": 9, "new": 2},
        rules,
    )
    assert [f.path for f in findings] == ["wall_s"]


def test_first_matching_rule_wins():
    rules = [
        SentinelRule("special.wall_s", direction="lower", tolerance=1.0),
        SentinelRule("*wall_s", direction="lower", tolerance=0.0),
    ]
    findings = compare({"special": {"wall_s": 1.0}},
                       {"special": {"wall_s": 1.5}}, rules)
    assert not findings[0].regression  # loose specific rule applied


def test_zero_baseline_handled():
    rules = [SentinelRule("*wall_s", direction="lower", tolerance=0.1)]
    findings = compare({"wall_s": 0}, {"wall_s": 0}, rules)
    assert not findings[0].regression
    findings = compare({"wall_s": 0}, {"wall_s": 1.0}, rules)
    assert findings[0].regression


def test_default_rules_judge_real_scorecard_shape():
    base = {
        "sweep": [{"wall_s": 1.0, "events_per_s": 1000.0,
                   "merged_digest": "aa"}],
        "gate_passed": True,
    }
    current = {
        "sweep": [{"wall_s": 1.1, "events_per_s": 500.0,
                   "merged_digest": "bb"}],
        "gate_passed": True,
    }
    findings = compare(base, current, DEFAULT_SENTINEL_RULES)
    by_path = {f.path: f for f in findings}
    assert by_path["sweep.0.events_per_s"].regression  # halved
    assert by_path["sweep.0.merged_digest"].regression  # changed
    assert not by_path["sweep.0.wall_s"].regression  # within 25%
    assert not by_path["gate_passed"].regression


def test_report_lines_put_regressions_first():
    rules = [SentinelRule("*", direction="lower", tolerance=0.0)]
    findings = compare({"a": 1.0, "b": 1.0}, {"a": 1.0, "b": 2.0}, rules)
    lines = report_lines(findings)
    assert "REGRESS" in lines[0] and " b" in lines[0].split(":")[0]


def test_baseline_status_ok(tmp_path):
    scorecard = tmp_path / "BENCH_x.json"
    scorecard.write_text('{"wall_s": 1.0}')
    status, document = load_baseline_status(str(scorecard))
    assert status == "ok"
    assert document == {"wall_s": 1.0}


def test_baseline_status_missing_file(tmp_path):
    status, document = load_baseline_status(str(tmp_path / "nope.json"))
    assert status == "missing"
    assert document is None


def test_baseline_status_missing_git_ref(tmp_path):
    # A ref/path that git cannot show is "missing", not a crash —
    # the normal state of the first run on a fresh branch.
    status, document = load_baseline_status(
        "BENCH_does_not_exist.json", ref="HEAD")
    assert status == "missing"
    assert document is None


@pytest.mark.parametrize("payload", [
    "not json at all {{{",
    '"a bare string"',
    "[1, 2, 3]",
])
def test_baseline_status_malformed(tmp_path, payload):
    scorecard = tmp_path / "BENCH_bad.json"
    scorecard.write_text(payload)
    status, document = load_baseline_status(str(scorecard))
    assert status == "malformed"
    assert document is None


def test_sentinel_cli_treats_no_baseline_as_clean(tmp_path, capsys):
    from repro.telemetry.__main__ import main

    scorecard = tmp_path / "BENCH_fresh.json"
    scorecard.write_text('{"wall_s": 1.0}')
    code = main(["sentinel", str(scorecard),
                 "--baseline", str(tmp_path / "absent.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "no baseline" in out
    assert "missing" in out


def test_sentinel_cli_flags_malformed_baseline_as_no_baseline(tmp_path,
                                                              capsys):
    from repro.telemetry.__main__ import main

    scorecard = tmp_path / "BENCH_fresh.json"
    scorecard.write_text('{"wall_s": 1.0}')
    broken = tmp_path / "broken.json"
    broken.write_text("{{{")
    code = main(["sentinel", str(scorecard), "--baseline", str(broken)])
    out = capsys.readouterr().out
    assert code == 0
    assert "malformed" in out
