"""Unit tests for the closure-capable snapshot codec."""

import random

import pytest

from repro.snapshot.codec import CODEC_VERSION, dumps_state, loads_state


def _roundtrip(value):
    return loads_state(dumps_state(value))


def test_plain_values_round_trip():
    value = {"a": [1, 2.5, "x"], "b": (None, True), "c": {3, 4}}
    assert _roundtrip(value) == value


def test_lambda_round_trips_with_captured_default():
    fn = lambda x, base=7: x + base  # noqa: E731
    restored = _roundtrip(fn)
    assert restored(3) == 10


def test_closure_over_local_state_round_trips():
    def make_counter():
        count = [0]

        def tick():
            count[0] += 1
            return count[0]

        return tick

    tick = make_counter()
    tick()
    tick()
    restored = _roundtrip(tick)
    # The restored closure carries the captured cell's value (2) and
    # keeps counting from there, independently of the original.
    assert restored() == 3
    assert tick() == 3


def test_self_referential_closure_round_trips():
    def make_recursive():
        def countdown(n):
            return [n] if n <= 0 else [n] + countdown(n - 1)

        return countdown

    restored = _roundtrip(make_recursive())
    assert restored(3) == [3, 2, 1, 0]


def test_shared_objects_keep_identity():
    rng = random.Random(7)
    holder = {"direct": rng, "closure": lambda: rng.random()}
    restored = _roundtrip(holder)
    # The closure's captured rng is the *same object* as the direct
    # reference — drawing through one advances the other.
    direct = restored["direct"]
    before = direct.getstate()
    restored["closure"]()
    assert direct.getstate() != before


def test_importable_functions_pickle_by_reference():
    from repro.sim.kernel import ns_from_s

    assert _roundtrip(ns_from_s) is ns_from_s


def test_modules_round_trip():
    import math

    assert _roundtrip(math) is math


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        loads_state(b"NOTASNAP" + b"\x00" * 16)


def test_truncated_payload_rejected():
    blob = dumps_state({"x": 1})
    with pytest.raises(Exception):
        loads_state(blob[:len(blob) // 2])


def test_codec_version_is_stamped():
    assert CODEC_VERSION == 1
    # The magic prefix carries the version byte; a different version
    # byte must be rejected rather than misdecoded.
    blob = dumps_state({})
    tampered = blob[:5] + bytes([blob[5] + 1]) + blob[6:]
    with pytest.raises(ValueError):
        loads_state(tampered)
