"""Snapshot round-trips of the kernel event heap — the edge cases.

Tombstoned (cancelled-but-queued) events, cancelled periodic handles
and FIFO tie-breaks at identical timestamps are the places a naive
serializer would silently reorder or resurrect work, so each gets an
explicit round-trip test.  Callbacks append to a log that travels in
the same pickle as the simulator, so the restored closures write to
the restored log.
"""

from repro.sim.kernel import NS_PER_MS, Simulator
from repro.snapshot.codec import dumps_state, loads_state


def _roundtrip(sim, log):
    return loads_state(dumps_state((sim, log)))


def test_pending_events_fire_in_original_order_after_restore():
    sim, log = Simulator(), []
    sim.schedule(3 * NS_PER_MS, lambda: log.append("c"))
    sim.schedule(1 * NS_PER_MS, lambda: log.append("a"))
    sim.schedule(2 * NS_PER_MS, lambda: log.append("b"))
    restored_sim, restored_log = _roundtrip(sim, log)
    restored_sim.run()
    assert restored_log == ["a", "b", "c"]
    assert log == []  # the original world is untouched


def test_same_time_events_keep_seq_fifo_order():
    sim, log = Simulator(), []
    for name in "abcdef":
        sim.schedule(5 * NS_PER_MS, lambda n=name: log.append(n))
    restored_sim, restored_log = _roundtrip(sim, log)
    restored_sim.run()
    assert restored_log == list("abcdef")


def test_seq_counter_survives_so_new_events_sort_after_old():
    sim, log = Simulator(), []
    sim.schedule(5 * NS_PER_MS, lambda: log.append("old"))
    restored_sim, restored_log = _roundtrip(sim, log)
    # A post-restore event at the same instant must fire *after* the
    # checkpointed one — the seq counter must not restart at zero.
    restored_sim.schedule(5 * NS_PER_MS, lambda: restored_log.append("new"))
    restored_sim.run()
    assert restored_log == ["old", "new"]


def test_tombstoned_events_stay_cancelled_after_restore():
    sim, log = Simulator(), []
    keep = []
    for name in "abc":
        keep.append(sim.schedule(NS_PER_MS, lambda n=name: log.append(n)))
    keep[1].cancel()
    assert sim._tombstones == 1
    restored_sim, restored_log = _roundtrip(sim, log)
    assert restored_sim._tombstones == 1
    assert restored_sim.pending_count() == 2
    restored_sim.run()
    assert restored_log == ["a", "c"]


def test_cancelled_periodic_handle_never_fires_after_restore():
    sim, log = Simulator(), []
    handle = sim.every(NS_PER_MS, lambda: log.append("tick"))
    sim.schedule(5 * NS_PER_MS, lambda: log.append("end"))
    handle.cancel()
    restored_sim, restored_log = _roundtrip(sim, log)
    restored_sim.run()
    assert restored_log == ["end"]


def test_live_periodic_handle_keeps_ticking_after_restore():
    sim, log = Simulator(), []
    sim.every(NS_PER_MS, lambda: log.append(sim.now_ns))
    sim.run_until(2 * NS_PER_MS)
    restored_sim, restored_log = _roundtrip(sim, log)
    restored_sim.run_until(4 * NS_PER_MS)
    # Two pre-checkpoint ticks, two post-restore ticks — but the
    # post-restore closure still reads the *restored* sim's clock
    # because the whole (sim, log, closure) graph restored together.
    assert restored_log == [NS_PER_MS, 2 * NS_PER_MS,
                            3 * NS_PER_MS, 4 * NS_PER_MS]
    assert log == [NS_PER_MS, 2 * NS_PER_MS]


def test_clock_and_drained_queue_round_trip():
    sim, log = Simulator(), []
    sim.schedule(7 * NS_PER_MS, lambda: log.append("x"))
    sim.run()
    restored_sim, restored_log = _roundtrip(sim, log)
    assert restored_sim.now_ns == 7 * NS_PER_MS
    assert restored_sim.pending_count() == 0
    assert restored_log == ["x"]
