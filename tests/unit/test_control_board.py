"""Unit tests for the multivibrator chain and the control board."""

import random

import pytest

from repro.hw.components import Resistor
from repro.hw.connector import BusKind
from repro.hw.control_board import ChannelError, ControlBoard
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import DEFAULT_CODEC
from repro.hw.multivibrator import Multivibrator, MultivibratorChain
from repro.hw.peripheral_board import PeripheralBoard


def _board(num_channels=3, seed=1):
    return ControlBoard(num_channels, rng=random.Random(seed))


def _peripheral(hex_id="0xad1cbe01", seed=2):
    return PeripheralBoard.manufacture(
        DeviceId.from_hex(hex_id), BusKind.ADC, rng=random.Random(seed)
    )


# -------------------------------------------------------------- multivibrator
def test_pulse_length_follows_t_equals_krc():
    from repro.hw.components import Capacitor

    stage = Multivibrator(Capacitor(10e-9), k=1.1, jitter_rel=0.0)
    resistor = Resistor(100_000.0)
    assert stage.pulse_seconds(resistor) == pytest.approx(1.1e-3)


def test_chain_needs_four_stages():
    with pytest.raises(ValueError):
        MultivibratorChain([])


def test_chain_burst_produces_four_pulses():
    chain = MultivibratorChain.build(10e-9, rng=random.Random(0))
    resistors = [Resistor(10_000.0)] * 4
    burst = chain.burst_seconds(resistors, random.Random(1))
    assert len(burst) == 4
    assert all(p > 0 for p in burst)


# ------------------------------------------------------------- control board
def test_connect_and_identify_single_peripheral():
    board = _board()
    peripheral = _peripheral()
    channel = board.connect(peripheral)
    assert channel == 0
    report = board.run_identification()
    assert report.identified() == {0: peripheral.device_id}
    assert report.errors() == {}


def test_identification_reports_all_channels():
    board = _board()
    report = board.run_identification()
    assert len(report.channels) == 3
    assert all(not c.occupied for c in report.channels)
    assert report.identified() == {}


def test_empty_channels_cost_the_timeout():
    board = _board()
    report = board.run_identification()
    timeout = DEFAULT_CODEC.empty_channel_timeout_seconds
    for channel in report.channels:
        assert channel.duration_s == pytest.approx(timeout)


def test_identification_energy_follows_duration():
    board = _board()
    board.connect(_peripheral())
    report = board.run_identification()
    expected = board.active_draw.energy_joules(report.total_seconds)
    assert report.energy_joules == pytest.approx(expected)
    assert board.meter.get("identification") == pytest.approx(expected)


def test_multiple_peripherals_identified_on_their_channels():
    board = _board()
    first = _peripheral("0xad1cbe01", seed=3)
    second = _peripheral("0x0a0bbf03", seed=4)
    board.connect(first, channel=2)
    board.connect(second, channel=0)
    report = board.run_identification()
    assert report.identified() == {2: first.device_id, 0: second.device_id}


def test_connect_occupied_channel_rejected():
    board = _board()
    board.connect(_peripheral(), channel=1)
    with pytest.raises(ChannelError):
        board.connect(_peripheral("0x00000001", seed=9), channel=1)


def test_connect_when_full_rejected():
    board = _board(num_channels=1)
    board.connect(_peripheral())
    with pytest.raises(ChannelError):
        board.connect(_peripheral("0x00000002", seed=8))


def test_disconnect_empty_channel_rejected():
    board = _board()
    with pytest.raises(ChannelError):
        board.disconnect(0)


def test_channel_out_of_range_rejected():
    board = _board()
    with pytest.raises(ChannelError):
        board.board_at(7)


def test_interrupt_fires_on_connect_and_disconnect():
    board = _board()
    seen = []
    board.on_interrupt(lambda channel, connected: seen.append((channel, connected)))
    channel = board.connect(_peripheral())
    board.disconnect(channel)
    assert seen == [(channel, True), (channel, False)]


def test_free_channel_tracking():
    board = _board(num_channels=2)
    assert board.free_channel() == 0
    board.connect(_peripheral(), channel=0)
    assert board.free_channel() == 1
    board.connect(_peripheral("0x01020304", seed=6), channel=1)
    assert board.free_channel() is None
    assert board.occupied_channels() == [0, 1]


def test_needs_at_least_one_channel():
    with pytest.raises(ChannelError):
        ControlBoard(0)


def test_identification_is_repeatable_for_same_board():
    board = _board()
    board.connect(_peripheral())
    first = board.run_identification().identified()
    second = board.run_identification().identified()
    assert first == second
