"""Unit tests for the kernel's closed-form idle fast-forward tier.

Every test here is a parity test at heart: a fast-forwarded run must be
indistinguishable — counts, float accumulators, clock, sequence
counter, pending events, subsequent event order — from the same run
stepped event by event.  The only observable difference permitted is
the ``ff_windows``/``ff_events`` statistics.
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import NS_PER_MS, Simulator
from repro.snapshot.codec import dumps_state, loads_state


class Sampler:
    """A certified periodic task: LCG state + float accumulator, with a
    bulk variant whose cumulative effect is bit-exact."""

    def __init__(self, seed: int) -> None:
        self.x = seed & 0x7FFFFFFF
        self.count = 0
        self.total = 0
        self.energy = 0.0

    def tick(self) -> None:
        self.x = (self.x * 1103515245 + 12345) & 0x7FFFFFFF
        self.count += 1
        self.total += self.x >> 20
        self.energy += 1.8e-6

    def apply(self, n: int) -> None:
        x = self.x
        total = self.total
        energy = self.energy
        for _ in range(n):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
            total += x >> 20
            energy += 1.8e-6
        self.x = x
        self.count += n
        self.total = total
        self.energy = energy

    def state(self) -> tuple:
        return (self.x, self.count, self.total, self.energy)


def _world(*, fast_forward: bool, barrier_ms: int = 50,
           cancel_at: int = 0):
    """A small duty-cycled world: two independent certified samplers,
    one ordered certified observer, one uncertified barrier chain."""
    sim = Simulator()
    a = Sampler(11)
    b = Sampler(23)
    observations = []
    barriers = []

    sim.every(7 * NS_PER_MS, a.tick, name="sampler-a",
              fast_forward=True, bulk=a.apply)
    handle_b = sim.every(13 * NS_PER_MS, b.tick, name="sampler-b",
                         fast_forward=True, bulk=b.apply)

    def observe():
        observations.append((sim.now_ns, a.count, b.count, a.total))
        if cancel_at and len(observations) == cancel_at:
            handle_b.cancel()

    sim.every(29 * NS_PER_MS, observe, name="observer",
              fast_forward=True, independent=False)

    def barrier():
        barriers.append(sim.now_ns)
        sim.schedule(barrier_ms * NS_PER_MS, barrier, name="barrier")

    sim.schedule(barrier_ms * NS_PER_MS, barrier, name="barrier")
    if fast_forward:
        sim.enable_fast_forward()
    return sim, a, b, observations, barriers


def _observable(sim, a, b, observations, barriers) -> tuple:
    return (sim.now_ns, sim._seq, sim.pending_count(),
            a.state(), b.state(), observations, barriers)


def test_fast_forward_matches_stepping_exactly():
    horizon = 2_000 * NS_PER_MS
    off = _world(fast_forward=False)
    on = _world(fast_forward=True)
    off[0].run_until(horizon)
    on[0].run_until(horizon)
    assert _observable(*on) == _observable(*off)
    assert on[0].ff_windows > 0
    assert on[0].ff_events > 0
    assert off[0].ff_windows == 0


def test_fast_forward_preserves_future_event_order():
    # After identical horizons, the next events must pop in the same
    # (time, seq) order — the sequence counter emulation is exact.
    horizon = 500 * NS_PER_MS
    worlds = [_world(fast_forward=ff) for ff in (False, True)]
    orders = []
    for sim, *_ in worlds:
        sim.run_until(horizon)
        # Step the continuation event-by-event in both worlds so the
        # recorded (time, name) stream is directly comparable.
        sim._ff_enabled = False
        popped = []
        sim.add_trace_hook(
            lambda t, name, log=popped: log.append((t, name)),
            bulk=lambda t, name, n, log=popped: log.append((t, name, n)))
        sim.run_until(horizon + 100 * NS_PER_MS)
        orders.append(popped)
    assert orders[0] == orders[1]


def test_ordered_observer_sees_merged_order_inside_windows():
    # The observer reads both samplers' counters; every observation must
    # reflect exactly the occurrences at strictly earlier (time, seq).
    off = _world(fast_forward=False, barrier_ms=400)
    on = _world(fast_forward=True, barrier_ms=400)
    off[0].run_until(1_200 * NS_PER_MS)
    on[0].run_until(1_200 * NS_PER_MS)
    assert on[3] == off[3]
    assert on[0].ff_windows > 0


def test_cancel_during_skip_stops_cancelled_handle_exactly():
    # The ordered observer cancels sampler-b mid-window: occurrences of
    # b past the cancellation instant must not be applied, even though
    # the window was planned before the cancel ran.
    horizon = 1_500 * NS_PER_MS
    off = _world(fast_forward=False, cancel_at=10)
    on = _world(fast_forward=True, cancel_at=10)
    off[0].run_until(horizon)
    on[0].run_until(horizon)
    assert _observable(*on) == _observable(*off)
    assert on[0].ff_windows > 0
    # b really was cancelled mid-run, not at the end.
    assert on[2].count < on[1].count


def test_cancelled_before_window_never_fires():
    sim = Simulator()
    s = Sampler(5)
    handle = sim.every(NS_PER_MS, s.tick, name="s",
                       fast_forward=True, bulk=s.apply)
    sim.enable_fast_forward()
    handle.cancel()
    sim.run_until(100 * NS_PER_MS)
    assert s.count == 0
    assert sim.ff_events == 0


def test_cohort_and_exact_paths_agree(monkeypatch):
    # Force the per-occurrence emulation path and compare against the
    # cohort-compressed planner on a cohort-friendly world (many
    # same-interval handles registered back to back).
    def build(exact_only: bool):
        sim = Simulator()
        samplers = [Sampler(3 + i) for i in range(8)]
        for i, s in enumerate(samplers):
            sim.every(5 * NS_PER_MS, s.tick, name=f"s{i}",
                      fast_forward=True, bulk=s.apply)
        chain = []

        def barrier():
            chain.append(sim.now_ns)
            sim.schedule(120 * NS_PER_MS, barrier, name="barrier")

        sim.schedule(120 * NS_PER_MS, barrier, name="barrier")
        sim.enable_fast_forward()
        if exact_only:
            monkeypatch.setattr(
                Simulator, "_ff_cohorts",
                lambda self, *args, **kwargs: None)
        sim.run_until(1_000 * NS_PER_MS)
        monkeypatch.undo()
        return (sim.now_ns, sim._seq, sim.pending_count(),
                [s.state() for s in samplers], chain,
                sim.ff_windows, sim.ff_events)

    assert build(False) == build(True)


def test_suppression_marker_keeps_tiny_windows_correct():
    # Barriers every 3 ms against a 2 ms sampler: windows are tiny, so
    # the suppression marker engages; results must still match stepping.
    def build(ff: bool):
        sim = Simulator()
        s = Sampler(7)
        sim.every(2 * NS_PER_MS, s.tick, name="s",
                  fast_forward=True, bulk=s.apply)
        hits = []

        def barrier():
            hits.append(sim.now_ns)
            sim.schedule(3 * NS_PER_MS, barrier, name="barrier")

        sim.schedule(3 * NS_PER_MS, barrier, name="barrier")
        if ff:
            sim.enable_fast_forward()
        sim.run_until(200 * NS_PER_MS)
        return (sim.now_ns, sim._seq, s.state(), hits)

    assert build(True) == build(False)


def test_max_events_disables_fast_forward():
    sim, *_ = _world(fast_forward=True)
    sim.run_until(500 * NS_PER_MS, max_events=10_000)
    assert sim.ff_windows == 0


def test_uncertified_queue_never_fast_forwards():
    sim = Simulator()
    count = [0]
    sim.every(NS_PER_MS, lambda: count.__setitem__(0, count[0] + 1),
              name="plain")
    sim.enable_fast_forward()
    sim.run_until(50 * NS_PER_MS)
    assert sim.ff_windows == 0
    assert count[0] == 50


def test_checkpoint_mid_run_rederives_windows():
    # Snapshot a fast-forwarding world mid-run, restore it, and finish:
    # the resumed half must re-derive its own windows and land on the
    # same observable state as the uninterrupted run.
    full = _world(fast_forward=True)
    full[0].run_until(2_000 * NS_PER_MS)

    half = _world(fast_forward=True)
    sim, a, b, observations, barriers = half
    sim.run_until(730 * NS_PER_MS)
    restored_sim, restored_a, restored_b, restored_obs, restored_bar = (
        loads_state(dumps_state((sim, a, b, observations, barriers))))
    restored_sim.run_until(2_000 * NS_PER_MS)
    assert _observable(restored_sim, restored_a, restored_b,
                       restored_obs, restored_bar) == _observable(*full)
    assert restored_sim.ff_windows > sim.ff_windows


def test_batched_dispatch_preserves_order():
    def build(batch: bool):
        sim = Simulator()
        log = []
        for t in (5, 5, 5, 9, 9):
            for i in range(4):
                sim.schedule(t * NS_PER_MS,
                             lambda t=t, i=i: log.append((t, i, sim.now_ns)),
                             name="burst")
        sim.schedule(7 * NS_PER_MS, lambda: log.append(("mid", sim.now_ns)),
                     name="other")
        if batch:
            sim.register_batch("burst")
        sim.run()
        return log

    assert build(True) == build(False)


def test_periodic_handle_restores_from_pre_ff_checkpoints():
    # __setstate__ must default the certification slots when they are
    # absent (checkpoints written before the fast-forward tier).
    sim = Simulator()
    handle = sim.every(NS_PER_MS, lambda: None, name="old")
    state = handle.__reduce_ex__(2)
    handle.__setstate__((None, {"_interval_ns": 42}))
    assert handle._ff is False
    assert handle._independent is True
    assert handle._bulk is None
    assert handle._interval_ns == 42
    assert state  # silences the unused-variable lint

def test_stochastic_chains_act_as_ff_barriers():
    # Pins the fast-forward tier's structural limitation: a plain
    # (uncertified) self-rescheduling chain — the shape of the fleet's
    # churn/read/discovery processes, whose RNG draws cannot be
    # certified — bounds every candidate window.  When such a chain
    # fires more often than the certified period, no window ever fits
    # a certified event and the kernel must skip nothing, while still
    # matching the stepped run exactly.
    def build(ff: bool):
        sim = Simulator()
        sampler = Sampler(31)
        sim.every(5 * NS_PER_MS, sampler.tick, name="certified",
                  fast_forward=True, bulk=sampler.apply)
        state = [77]
        fires = []

        def stochastic():
            # LCG-driven pseudo-random gap in [1, 4] ms, like churn.
            state[0] = (state[0] * 1103515245 + 12345) & 0x7FFFFFFF
            fires.append(sim.now_ns)
            gap = NS_PER_MS * (1 + state[0] % 4)
            sim.schedule(gap, stochastic, name="stochastic")

        sim.schedule(NS_PER_MS, stochastic, name="stochastic")
        if ff:
            sim.enable_fast_forward()
        sim.run_until(1_000 * NS_PER_MS)
        return sim, sampler, fires

    on_sim, on_sampler, on_fires = build(True)
    off_sim, off_sampler, off_fires = build(False)
    assert on_sampler.state() == off_sampler.state()
    assert on_fires == off_fires
    assert (on_sim.now_ns, on_sim._seq) == (off_sim.now_ns, off_sim._seq)
    # The limitation itself: every window is cut short by the next
    # stochastic event, so nothing was skippable.
    assert on_sim.ff_windows == 0
    assert on_sim.ff_events == 0


def test_fleet_shard_ff_is_starved_by_churn_processes():
    # The same limitation observed at fleet scale: a gateway-hosted
    # shard with fast-forward enabled still executes nearly every event
    # one at a time, because the churn/discovery/read chains are
    # uncertified barriers scattered through the timeline.  This is the
    # measured reason `repro.gateway` free pacing cannot cheaply leap
    # the fleet between requests — if chain certification ever lands,
    # this pin should break and be renegotiated.
    from repro.fleet.scenario import SCENARIOS
    from repro.fleet.deployment import ShardDeployment

    scenario = SCENARIOS["gateway"].scaled(
        things=4, shard_size=4, seed=9, fast_forward=True)
    deployment = ShardDeployment(scenario.shards()[0])
    deployment.start()
    sim = deployment.sim
    assert sim._ff_enabled
    executed = sim.run_until(5_000 * NS_PER_MS)
    assert executed > 0
    # Fewer than 2% of events were analytically skipped: the certified
    # load (telemetry sampling) is starved of windows by the chains.
    assert sim.ff_events <= 0.02 * (executed + sim.ff_events)
