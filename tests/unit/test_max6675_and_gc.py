"""Unit tests: MAX6675 SPI peripheral, its driver, registry GC."""

import pytest

from repro.core.registry import AddressStatus, Registry, RegistryError
from repro.hw.connector import BusKind
from repro.peripherals.base import Environment
from repro.peripherals.max6675 import (
    CONVERSION_S,
    Max6675,
    decode_frame,
    encode_frame,
)


# --------------------------------------------------------------------- frames
def test_frame_encoding_quarter_degrees():
    frame = encode_frame(25.25)
    temp, fault = decode_frame(frame)
    assert temp == 25.25
    assert not fault


def test_frame_open_circuit_flag():
    _, fault = decode_frame(encode_frame(100.0, open_circuit=True))
    assert fault


def test_frame_clamps_to_range():
    assert decode_frame(encode_frame(-10.0))[0] == 0.0
    assert decode_frame(encode_frame(2000.0))[0] == 1023.75


@pytest.mark.parametrize("temp", [0.0, 0.25, 100.5, 310.25, 1023.75])
def test_frame_roundtrip_exact_quarters(temp):
    assert decode_frame(encode_frame(temp))[0] == temp


# --------------------------------------------------------------------- device
def test_spi_transfer_shifts_msb_then_lsb():
    device = Max6675(env=Environment(temperature_c=100.0))
    data = device.spi_transfer(b"\x00\x00")
    frame = (data[0] << 8) | data[1]
    assert decode_frame(frame)[0] == 100.0


def test_conversion_latching_respects_conversion_time():
    clock = {"t": 0.0}
    env = Environment(temperature_c=20.0)
    device = Max6675(env=env, clock=lambda: clock["t"])
    first = device.spi_transfer(b"\x00\x00")
    env.temperature_c = 400.0
    clock["t"] = CONVERSION_S / 2  # too soon: previous frame re-shifts
    second = device.spi_transfer(b"\x00\x00")
    assert second == first
    clock["t"] = CONVERSION_S * 2
    third = device.spi_transfer(b"\x00\x00")
    frame = (third[0] << 8) | third[1]
    assert decode_frame(frame)[0] == 400.0


def test_driver_compiles_and_is_in_catalog():
    from repro.drivers.catalog import CATALOG, MAX6675_ID

    spec = CATALOG["max6675"]
    assert spec.bus is BusKind.SPI
    image = spec.compile()
    assert image.device_id == MAX6675_ID.value
    assert 4 in image.imports  # spi lib


def test_driver_open_circuit_returns_sentinel():
    from repro.drivers.catalog import CATALOG
    from repro.interconnect.spi import SpiBus
    from repro.sim.kernel import Simulator
    from repro.vm.driver_manager import DriverManager
    from repro.vm.router import EventRouter

    sim = Simulator()
    router = EventRouter(sim)
    manager = DriverManager(sim, router)
    manager.install(CATALOG["max6675"].compile())
    bus = SpiBus()
    bus.attach(Max6675(open_circuit=True))
    manager.activate(0, CATALOG["max6675"].device_id, bus)
    results = []
    manager.read(CATALOG["max6675"].device_id,
                 lambda rv: results.append(rv.scalar))
    sim.run()
    assert results == [-9999]


# ------------------------------------------------------------------------- GC
def _allocate(registry, name):
    return registry.request_address(
        name=name, organization="o", email="e@t", url="https://t/x",
        bus=BusKind.ADC,
    )


GOOD = "int32_t x;\nevent init():\n    x = 1;\nevent destroy():\n    x = 0;\n"


def test_gc_reclaims_provisional_keeps_permanent():
    registry = Registry()
    stale = _allocate(registry, "stale")
    kept = _allocate(registry, "kept")
    registry.upload_driver(kept.device_id, GOOD)
    victims = registry.collect_garbage()
    assert [v.device_id for v in victims] == [stale.device_id]
    assert registry.record(stale.device_id) is None
    assert registry.record(kept.device_id).status is AddressStatus.PERMANENT


def test_gc_grace_window_preserves_newest():
    registry = Registry()
    old = _allocate(registry, "old")
    new = _allocate(registry, "new")
    victims = registry.collect_garbage(keep_newest=1)
    assert [v.device_id for v in victims] == [old.device_id]
    assert registry.record(new.device_id) is not None


def test_gc_reclaimed_address_can_be_reallocated():
    registry = Registry()
    record = _allocate(registry, "transient")
    registry.collect_garbage()
    again = registry.request_address(
        name="other", organization="o", email="e@t", url="https://t/y",
        bus=BusKind.I2C, preferred_id=record.device_id,
    )
    assert again.device_id == record.device_id


def test_gc_validates_arguments():
    with pytest.raises(RegistryError):
        Registry().collect_garbage(keep_newest=-1)
