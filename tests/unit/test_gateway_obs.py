"""Unit tests for repro.gateway.obs: decomposition, journal, flight.

All recording here goes through the public API with explicit ``now_ns``
overrides, so every assertion is exact — no sleeping, no sockets.
"""

import json

import pytest

from repro.gateway.bridge import Op, OpResult
from repro.gateway.obs import (
    COMPONENTS,
    DEFAULT_GATEWAY_SLOS,
    GatewayObsConfig,
    GatewayObservability,
)
from repro.telemetry.export import to_openmetrics, validate_openmetrics
from repro.telemetry.sentinel import DEFAULT_SENTINEL_RULES


def _result(status=200, admitted_ns=0, sim_latency_ns=0, trace_id=None):
    return OpResult(status=status, body={}, admitted_ns=admitted_ns,
                    sim_latency_ns=sim_latency_ns, trace_id=trace_id)


def _record(obs, index, *, kind="read", queue_ms=1.0, exec_ms=2.0,
            status=200, admitted_ns=0, sim_latency_ns=0, trace_id=None,
            now_ns=None):
    return obs.record_op(
        index,
        Op(kind, thing=0, name="temp", request_id=f"req-{index}"),
        _result(status=status, admitted_ns=admitted_ns,
                sim_latency_ns=sim_latency_ns, trace_id=trace_id),
        queue_wait_ns=int(queue_ms * 1e6),
        sim_exec_ns=int(exec_ms * 1e6),
        now_ns=now_ns if now_ns is not None else (index + 1) * 1_000_000)


class TestConfig:
    def test_defaults(self):
        config = GatewayObsConfig()
        assert config.enabled
        assert config.flight_dir is None
        assert config.slos == DEFAULT_GATEWAY_SLOS
        assert config.journal_size == 32
        assert config.ring_size == 256

    def test_frozen(self):
        with pytest.raises(Exception):
            GatewayObsConfig().enabled = False


class TestDecomposition:
    def test_record_op_math(self):
        obs = GatewayObservability()
        record = _record(obs, 0, queue_ms=1.5, exec_ms=2.25,
                         admitted_ns=10, sim_latency_ns=1_000_000,
                         trace_id=7)
        assert record["queue_wait_ms"] == pytest.approx(1.5)
        assert record["sim_exec_ms"] == pytest.approx(2.25)
        assert record["wall_ms"] == pytest.approx(3.75)
        assert record["reply_write_ms"] is None
        assert record["request_id"] == "req-0"
        assert record["trace_id"] == 7
        assert record["admitted_ns"] == 10

    def test_reply_mutates_shared_record(self):
        obs = GatewayObservability()
        record = _record(obs, 0)
        obs.record_reply(record, reply_ns=4_000_000)
        assert record["reply_write_ms"] == pytest.approx(4.0)
        # The journal holds the same dict, so /debug/ops sees it too.
        assert obs.journal_snapshot()[0]["reply_write_ms"] == \
            pytest.approx(4.0)

    def test_error_counting(self):
        obs = GatewayObservability()
        _record(obs, 0, status=200)
        _record(obs, 1, status=504)
        _record(obs, 2, status=404)  # client errors are not 5xx errors
        summary = obs.summary()["kinds"]["read"]
        assert summary["count"] == 3
        assert summary["errors"] == 1

    def test_summary_percentiles(self):
        obs = GatewayObservability()
        for i in range(100):
            _record(obs, i, queue_ms=0.0, exec_ms=float(i + 1))
        stats = obs.summary()["kinds"]["read"]["sim_exec_ms"]
        assert stats["count"] == 100
        assert stats["max"] == pytest.approx(100.0)
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
        assert set(COMPONENTS) < set(obs.summary()["kinds"]["read"])


class TestJournalAndRing:
    def test_journal_keeps_worst_n(self):
        obs = GatewayObservability(GatewayObsConfig(journal_size=4))
        for i in range(20):
            _record(obs, i, queue_ms=0.0, exec_ms=float(i))
        worst = obs.journal_snapshot()
        assert len(worst) == 4
        assert [r["index"] for r in worst] == [19, 18, 17, 16]

    def test_ring_bounded(self):
        obs = GatewayObservability(GatewayObsConfig(ring_size=8))
        for i in range(32):
            _record(obs, i)
        assert len(obs.ring) == 8
        assert obs.ring[0]["index"] == 24


class TestTwoPlanes:
    def test_deterministic_view_excludes_wall_plane(self):
        obs = GatewayObservability()
        _record(obs, 0, admitted_ns=1_000, sim_latency_ns=2_000_000)
        obs.record_stream_dropped(1, now_ns=5)
        view = obs.deterministic_view()
        names = {s["name"] for s in view["series"]}
        assert names == {"gateway_sim_ops_total", "gateway_sim_latency_ms"}
        # Sim-plane timestamps are simulated time, not wall time.
        latency = next(s for s in view["series"]
                       if s["name"] == "gateway_sim_latency_ms")
        assert latency["samples"] == [[2_001_000, 2.0]]

    def test_unadmitted_ops_stay_off_the_sim_plane(self):
        obs = GatewayObservability()
        _record(obs, 0, admitted_ns=0, sim_latency_ns=0)  # e.g. list/td
        assert obs.deterministic_view()["series"] == []

    def test_deterministic_view_is_replay_stable(self):
        def run():
            obs = GatewayObservability()
            for i in range(5):
                _record(obs, i, admitted_ns=(i + 1) * 1_000,
                        sim_latency_ns=500_000, now_ns=i * 7_777_777)
            return json.dumps(obs.deterministic_view(), sort_keys=True)
        assert run() == run()

    def test_openmetrics_exposition_is_valid(self):
        obs = GatewayObservability(op_kinds=("read", "write"))
        _record(obs, 0, admitted_ns=10, sim_latency_ns=1_000)
        obs.record_reply(obs.ring[0], reply_ns=100_000)
        obs.record_stream_dropped(2, now_ns=50)
        text = to_openmetrics(obs.bank.snapshot())
        assert validate_openmetrics(text) == []
        assert "gateway_queue_wait_ms" in text
        assert "gateway_stream_dropped_total" in text


class TestFlightRecorder:
    IMPOSSIBLE = ("always: gateway_op_wall_ms.p95 < 0.000001 window=60",)

    def test_dump_on_degraded(self, tmp_path):
        obs = GatewayObservability(GatewayObsConfig(
            flight_dir=str(tmp_path), slos=self.IMPOSSIBLE,
            slo_check_interval_s=0.0))
        _record(obs, 0, trace_id=42)
        report = obs.maybe_check_slo(
            context=lambda: {"pacing": "free"},
            trace_lookup=lambda ids: {str(i): [{"name": "x"}] for i in ids},
            now_ns=1)
        assert report.status == "degraded"
        assert len(obs.flight_dumps) == 1
        flight = json.loads((tmp_path / "flight-0000.json").read_text())
        assert flight["reason"] == "slo-degraded"
        assert flight["requests"][0]["request_id"] == "req-0"
        assert flight["traces"]["42"] == [{"name": "x"}]
        assert flight["context"] == {"pacing": "free"}
        assert flight["slo"]["status"] == "degraded"

    def test_disarm_until_recovery(self, tmp_path):
        obs = GatewayObservability(GatewayObsConfig(
            flight_dir=str(tmp_path), slos=self.IMPOSSIBLE,
            slo_check_interval_s=0.0))
        _record(obs, 0)
        obs.maybe_check_slo(now_ns=1)
        obs.maybe_check_slo(now_ns=2)  # still degraded: no second dump
        assert len(obs.flight_dumps) == 1
        # Recovery re-arms: wipe the breach by using a fresh rule window.
        obs._rules = ()
        assert obs.maybe_check_slo(now_ns=3) is None

    def test_flight_limit(self, tmp_path):
        obs = GatewayObservability(GatewayObsConfig(
            flight_dir=str(tmp_path), slos=self.IMPOSSIBLE,
            slo_check_interval_s=0.0, flight_limit=1))
        _record(obs, 0)
        obs.maybe_check_slo(now_ns=1)
        obs._armed = True  # simulate recovery + new breach
        obs.maybe_check_slo(now_ns=2)
        assert len(obs.flight_dumps) == 1

    def test_no_dir_means_no_dump(self):
        obs = GatewayObservability(GatewayObsConfig(
            slos=self.IMPOSSIBLE, slo_check_interval_s=0.0))
        _record(obs, 0)
        report = obs.maybe_check_slo(now_ns=1)
        assert report.status == "degraded"
        assert obs.flight_dumps == []

    def test_interval_gating(self, tmp_path):
        obs = GatewayObservability(GatewayObsConfig(
            flight_dir=str(tmp_path), slos=self.IMPOSSIBLE,
            slo_check_interval_s=1.0))
        _record(obs, 0)
        assert obs.maybe_check_slo(now_ns=10).status == "degraded"
        # Within the 1 s interval: skipped entirely.
        assert obs.maybe_check_slo(now_ns=500_000_000) is None
        assert obs.maybe_check_slo(now_ns=2_000_000_000) is not None


class TestStreamDropped:
    def test_counter_recorded(self):
        obs = GatewayObservability()
        obs.record_stream_dropped(3, now_ns=9)
        assert obs.summary()["stream_dropped"] == 3
        snap = obs.bank.snapshot()
        series = next(s for s in snap["series"]
                      if s["name"] == "gateway_stream_dropped_total")
        assert series["samples"][-1][1] == 3


def test_sentinel_rules_cover_decomposition():
    paths = ("load.queue_wait_p95_ms", "load.sim_exec_p95_ms",
             "obs_overhead.obs_overhead_ratio")
    for path in paths:
        rule = next((r for r in DEFAULT_SENTINEL_RULES
                     if r.matches(path)), None)
        assert rule is not None, path
        assert rule.direction == "lower"
