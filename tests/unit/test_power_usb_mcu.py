"""Unit tests for energy metering, the USB baseline and the MCU model."""

import pytest

from repro.hw.power import EnergyMeter, PowerDraw
from repro.hw.usb_baseline import SECONDS_PER_YEAR, UsbHostModel
from repro.mcu.footprint import DEFAULT_FOOTPRINT, FootprintModel
from repro.mcu.spec import ATMEGA128RFA1


def test_power_draw_energy():
    draw = PowerDraw(current_a=7e-3, voltage_v=3.3)
    assert draw.watts == pytest.approx(23.1e-3)
    assert draw.energy_joules(2.0) == pytest.approx(46.2e-3)


def test_power_draw_rejects_negative_duration():
    with pytest.raises(ValueError):
        PowerDraw(1e-3).energy_joules(-1.0)


def test_meter_accumulates_by_category():
    meter = EnergyMeter()
    meter.add("a", 1.0)
    meter.add("a", 2.0)
    meter.add("b", 0.5)
    assert meter.get("a") == 3.0
    assert meter.total() == 3.5
    assert meter.by_category() == {"a": 3.0, "b": 0.5}
    meter.reset()
    assert meter.total() == 0.0


def test_meter_rejects_negative():
    with pytest.raises(ValueError):
        EnergyMeter().add("x", -1.0)


# ------------------------------------------------------------------ USB host
def test_usb_idle_dominates_annual_energy():
    usb = UsbHostModel()
    yearly = usb.annual_energy_joules(60.0)
    idle_only = usb.idle_draw.energy_joules(SECONDS_PER_YEAR)
    assert yearly > idle_only
    assert yearly < idle_only * 1.1  # enumerations are a small correction
    # The paper's Figure 12 puts USB at ~1e6 J/year.
    assert 5e5 < yearly < 2e6


def test_usb_energy_validates_inputs():
    usb = UsbHostModel()
    with pytest.raises(ValueError):
        usb.annual_energy_joules(0)
    with pytest.raises(ValueError):
        usb.energy_joules(-1.0)


# ----------------------------------------------------------------------- MCU
def test_cycles_and_seconds_convert():
    assert ATMEGA128RFA1.cycles_to_seconds(16_000_000) == pytest.approx(1.0)
    assert ATMEGA128RFA1.seconds_to_cycles(1e-6) == 16


def test_mcu_resource_fractions():
    assert ATMEGA128RFA1.flash_bytes == 131072
    assert ATMEGA128RFA1.ram_bytes == 16384
    assert ATMEGA128RFA1.flash_fraction(14231) == pytest.approx(0.1086, abs=1e-3)


# --------------------------------------------------------------- Table 2 model
def test_footprint_matches_paper_within_tolerance():
    """Every Table 2 row within 5%; totals within 1%."""
    paper = {
        "Peripheral Controller": (2243, 465),
        "µPnP Virtual Machine": (7028, 450),
        "ADC Native Library": (2034, 268),
        "UART Native Library": (466, 15),
        "I2C Native Library": (436, 18),
        "µPnP Network Stack": (2024, 302),
    }
    for row in DEFAULT_FOOTPRINT.breakdown():
        flash, ram = paper[row.name]
        assert row.flash_bytes == pytest.approx(flash, rel=0.05)
        assert row.ram_bytes == pytest.approx(ram, rel=0.05)
    totals = DEFAULT_FOOTPRINT.totals()
    assert totals.flash_bytes == pytest.approx(14231, rel=0.01)
    assert totals.ram_bytes == pytest.approx(1518, rel=0.01)


def test_footprint_responds_to_design_changes():
    """The model is structural: growing a buffer grows the footprint."""
    bigger_stack = FootprintModel(operand_stack_slots=64)
    assert (bigger_stack.virtual_machine().ram_bytes
            > DEFAULT_FOOTPRINT.virtual_machine().ram_bytes)
    more_messages = FootprintModel(message_types=20)
    assert (more_messages.network_stack().flash_bytes
            > DEFAULT_FOOTPRINT.network_stack().flash_bytes)


def test_footprint_total_fits_the_mcu():
    totals = DEFAULT_FOOTPRINT.totals()
    assert totals.flash_bytes < ATMEGA128RFA1.flash_bytes
    assert totals.ram_bytes < ATMEGA128RFA1.ram_bytes


def test_render_table_mentions_all_components():
    text = DEFAULT_FOOTPRINT.render_table()
    for name in ("Peripheral Controller", "Virtual Machine", "Total"):
        assert name in text


# ------------------------------------------------------- snapshots and merging
def test_energy_meter_snapshot_is_sorted_and_detached():
    meter = EnergyMeter()
    meter.add("net", 2.0)
    meter.add("mcu", 1.0)
    snap = meter.snapshot()
    assert list(snap) == ["mcu", "net"]
    snap["mcu"] = 99.0
    assert meter.by_category()["mcu"] == 1.0


def test_energy_meter_merge_sums_categories():
    a = EnergyMeter()
    a.add("mcu", 1.0)
    a.add("net", 0.5)
    b = EnergyMeter()
    b.add("mcu", 2.0)
    b.add("bus", 0.25)
    merged = EnergyMeter.merge([a.snapshot(), b.snapshot()])
    assert merged == {"bus": 0.25, "mcu": 3.0, "net": 0.5}
    assert list(merged) == ["bus", "mcu", "net"]


def test_energy_meter_merge_total_matches_sum_of_totals():
    meters = []
    for i in range(3):
        meter = EnergyMeter()
        meter.add("mcu", 0.1 * (i + 1))
        meter.add(f"cat{i}", 1.0)
        meters.append(meter)
    merged = EnergyMeter.merge(m.snapshot() for m in meters)
    assert sum(merged.values()) == pytest.approx(
        sum(m.total() for m in meters))


def test_energy_meter_merge_empty_iterable():
    assert EnergyMeter.merge([]) == {}
