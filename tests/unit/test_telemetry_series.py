"""Unit tests for telemetry time series and the shard-order merge."""

import json

import pytest

from repro.telemetry.series import (
    EXEMPLAR_LIMIT,
    SeriesBank,
    TimeSeries,
    iter_series,
    series_key,
)


# ----------------------------------------------------------------- TimeSeries
def test_series_records_and_reads_back():
    ts = TimeSeries("x", kind="counter")
    ts.record(0, 1.0)
    ts.record(1_000_000_000, 2.5)
    assert len(ts) == 2
    assert ts.samples == ((0, 1.0), (1_000_000_000, 2.5))
    assert ts.last == (1_000_000_000, 2.5)


def test_series_ring_bound_evicts_oldest_and_counts_drops():
    ts = TimeSeries("x", capacity=3)
    for i in range(5):
        ts.record(i, float(i))
    assert ts.samples == ((2, 2.0), (3, 3.0), (4, 4.0))
    assert ts.dropped == 2


def test_series_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TimeSeries("x", kind="histogram")
    with pytest.raises(ValueError):
        TimeSeries("x", merge="avg")
    with pytest.raises(ValueError):
        TimeSeries("x", capacity=0)


def test_series_exemplars_capped():
    ts = TimeSeries("x")
    for i in range(EXEMPLAR_LIMIT + 10):
        ts.record(i, float(i), trace_id=i)
    assert len(ts.exemplars) == EXEMPLAR_LIMIT
    # Oldest evicted first.
    assert ts.exemplars[0][2] == 10
    assert ts.exemplars[-1][2] == EXEMPLAR_LIMIT + 9


def test_series_key_is_label_order_independent():
    assert series_key("x", {"a": "1", "b": "2"}) == \
        series_key("x", {"b": "2", "a": "1"})
    assert series_key("x", None) == ("x",)
    assert series_key("x", {}) == ("x",)


# ------------------------------------------------------------------ SeriesBank
def test_bank_get_or_create_is_stable():
    bank = SeriesBank()
    a = bank.series("x", kind="counter")
    b = bank.series("x")
    assert a is b
    c = bank.series("x", labels={"shard": "1"})
    assert c is not a
    assert len(bank) == 2
    assert bank.get("x") is a
    assert bank.get("x", {"shard": "1"}) is c
    assert bank.get("missing") is None


def test_bank_snapshot_sorted_and_json_safe():
    bank = SeriesBank()
    bank.series("b").record(0, 1.0)
    bank.series("a", labels={"k": "v"}).record(0, 2.0)
    snap = bank.snapshot()
    names = [s["name"] for s in snap["series"]]
    assert names == ["a", "b"]
    json.dumps(snap)  # must not raise


def _snap(*records, name="x", merge="sum", labels=None):
    bank = SeriesBank()
    ts = bank.series(name, kind="counter", merge=merge, labels=labels)
    for t, v in records:
        ts.record(t, v)
    return bank.snapshot()


def test_merge_sum_aligns_timestamps_pointwise():
    merged = SeriesBank.merge([
        _snap((0, 1.0), (1, 2.0)),
        _snap((0, 10.0), (1, 20.0)),
    ])
    (series,) = merged["series"]
    assert series["samples"] == [[0, 11.0], [1, 22.0]]


def test_merge_max_and_last_modes():
    merged = SeriesBank.merge([
        _snap((0, 5.0), merge="max"),
        _snap((0, 3.0), merge="max"),
    ])
    assert merged["series"][0]["samples"] == [[0, 5.0]]
    merged = SeriesBank.merge([
        _snap((0, 5.0), merge="last"),
        _snap((0, 3.0), merge="last"),
    ])
    assert merged["series"][0]["samples"] == [[0, 3.0]]


def test_merge_unions_disjoint_timestamps_in_order():
    merged = SeriesBank.merge([
        _snap((0, 1.0), (2, 3.0)),
        _snap((1, 10.0)),
    ])
    assert merged["series"][0]["samples"] == [[0, 1.0], [1, 10.0],
                                             [2, 3.0]]


def test_merge_keeps_labelled_series_separate():
    merged = SeriesBank.merge([
        _snap((0, 1.0), labels={"shard": "0"}),
        _snap((0, 2.0), labels={"shard": "1"}),
    ])
    assert len(merged["series"]) == 2
    values = {tuple(s["labels"].items()): s["samples"][0][1]
              for s in merged["series"]}
    assert values == {(("shard", "0"),): 1.0, (("shard", "1"),): 2.0}


def test_merge_skips_none_snapshots_and_sums_dropped():
    a = _snap((0, 1.0))
    a["series"][0]["dropped"] = 3
    b = _snap((0, 1.0))
    b["series"][0]["dropped"] = 4
    merged = SeriesBank.merge([None, a, None, b])
    assert merged["series"][0]["dropped"] == 7


def test_merge_is_associative_with_shard_order():
    """Merging [a, b, c] equals merge([merge([a, b]), c]) — the
    property process pools rely on."""
    snaps = [_snap((0, float(i)), (1, float(i * 2))) for i in range(3)]
    all_at_once = SeriesBank.merge(snaps)
    staged = SeriesBank.merge([SeriesBank.merge(snaps[:2]), snaps[2]])
    assert json.dumps(all_at_once, sort_keys=True) == \
        json.dumps(staged, sort_keys=True)


def test_iter_series_filters_by_name():
    bank = SeriesBank()
    bank.series("a").record(0, 1.0)
    bank.series("b", labels={"x": "1"}).record(0, 2.0)
    bank.series("b", labels={"x": "2"}).record(0, 3.0)
    doc = bank.snapshot()
    assert len(list(iter_series(doc))) == 3
    assert len(list(iter_series(doc, "b"))) == 2
    assert list(iter_series(doc, "missing")) == []
