"""Unit tests for the fastpath translation layer itself: the
translate-once cache, mode selection, and env-var plumbing.  Semantic
equivalence with the reference interpreter is covered exhaustively by
``test_vm_differential.py``."""

from __future__ import annotations

import pytest

from repro.analysis.vmperf import _encode, _i, _image_for
from repro.dsl.bytecode import DriverImage, Op
from repro.vm import fastpath
from repro.vm.machine import DriverInstance, VirtualMachine

_CODE = _encode(_i(Op.PUSH8, 2), _i(Op.PUSH8, 3), _i(Op.ADD),
                _i(Op.STG, 0), _i(Op.RET))


@pytest.fixture(autouse=True)
def fresh_cache():
    fastpath.clear_cache()
    yield
    fastpath.clear_cache()


def _run(vm, image, args=()):
    return vm.execute(DriverInstance(image), image.handlers[0], args)


def test_translation_happens_once_per_image():
    image = _image_for(_CODE, n_params=0)
    vm = VirtualMachine(mode="fast")
    _run(vm, image)
    assert fastpath.cache_size() == 1
    for _ in range(5):
        _run(vm, image)
    assert fastpath.cache_size() == 1


def test_translation_shared_across_vms_and_instances():
    image = _image_for(_CODE, n_params=0)
    for _ in range(3):
        _run(VirtualMachine(mode="fast"), image)
    assert fastpath.cache_size() == 1


def test_translation_shared_across_reinstalls_of_equal_code():
    # A hot-update that re-ships byte-identical code must not create a
    # second translation, even through a fresh unpack of the blob.
    image = _image_for(_CODE, n_params=0)
    blob = image.pack()
    reinstalled = DriverImage.unpack(blob)
    reinstalled_again = DriverImage.unpack(bytes(blob))
    vm = VirtualMachine(mode="fast")
    _run(vm, image)
    _run(vm, reinstalled)
    _run(vm, reinstalled_again)
    assert fastpath.cache_size() == 1


def test_distinct_code_gets_distinct_translations():
    a = _image_for(_CODE, n_params=0)
    b = _image_for(_encode(_i(Op.PUSH1), _i(Op.STG, 0), _i(Op.RET)),
                   n_params=0)
    vm = VirtualMachine(mode="fast")
    _run(vm, a)
    _run(vm, b)
    assert fastpath.cache_size() == 2


def test_reference_mode_never_translates():
    image = _image_for(_CODE, n_params=0)
    vm = VirtualMachine(mode="reference")
    assert vm.mode == "reference"
    _run(vm, image)
    assert fastpath.cache_size() == 0


def test_default_mode_is_fast():
    assert VirtualMachine().mode == "fast"


def test_env_var_overrides_default_mode(monkeypatch):
    monkeypatch.setenv("REPRO_VM_MODE", "reference")
    assert VirtualMachine().mode == "reference"
    # An explicit mode argument still wins over the environment.
    assert VirtualMachine(mode="fast").mode == "fast"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown VM mode"):
        VirtualMachine(mode="turbo")


def test_translation_covers_every_byte_offset():
    # Jump targets may land mid-instruction in corrupt images, so the
    # table must have an entry for every byte offset, not just the
    # offsets a linear decode visits.
    image = _image_for(_CODE, n_params=0)
    translation = fastpath.translate(image, VirtualMachine().profile)
    assert translation.n == len(_CODE)
    assert len(translation.table) == len(_CODE)
