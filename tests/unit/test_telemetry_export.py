"""Unit tests for telemetry exporters, incl. the OpenMetrics grammar."""

import json
import re

import pytest

from repro.telemetry.series import SeriesBank
from repro.telemetry.export import (
    sanitize_name,
    to_csv,
    to_jsonl,
    to_openmetrics,
    validate_openmetrics,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _document():
    bank = SeriesBank()
    c = bank.series("reads_ok_total", kind="counter",
                    help="Completed reads", unit="")
    c.record(0, 0.0)
    c.record(1_000_000_000, 3.0, trace_id=42)
    g = bank.series("queue_depth", kind="gauge",
                    labels={"shard": "0"}, help="Depth")
    g.record(0, 2.0)
    g.record(1_000_000_000, 5.0)
    e = bank.series("energy_joules_total", kind="counter", unit="joules",
                    labels={"category": "mcu"})
    e.record(0, 0.125)
    return bank.snapshot()


# ------------------------------------------------------------ exposition text
def test_openmetrics_passes_own_validator():
    text = to_openmetrics(_document(), history=True)
    assert validate_openmetrics(text) == []


def test_openmetrics_structure_names_help_type_eof():
    text = to_openmetrics(_document(), history=True)
    lines = text.splitlines()
    # Terminates with exactly one EOF, as the final line.
    assert lines[-1] == "# EOF"
    assert lines.count("# EOF") == 1
    # Every metric name satisfies the exposition charset.
    for line in lines:
        if line.startswith("#"):
            keyword, name = line.split(" ")[1:3] if line != "# EOF" \
                else (None, None)
            if keyword in ("TYPE", "UNIT", "HELP"):
                assert _METRIC_NAME.match(name), name
            continue
        name = line.split("{")[0].split(" ")[0]
        assert _METRIC_NAME.match(name), name
    # Counters: TYPE on the bare family, samples carry _total.
    assert "# TYPE repro_reads_ok counter" in lines
    assert any(l.startswith("repro_reads_ok_total ") for l in lines)
    # HELP present for the documented series.
    assert "# HELP repro_reads_ok Completed reads" in lines
    # Gauges keep their name and labels.
    assert any(l.startswith('repro_queue_depth{shard="0"}')
               for l in lines)
    # UNIT emitted when the name carries the unit suffix.
    assert "# UNIT repro_energy_joules joules" in lines


def test_openmetrics_exemplar_rides_last_counter_sample():
    text = to_openmetrics(_document(), history=True)
    exemplar_lines = [l for l in text.splitlines() if "trace_id" in l]
    assert len(exemplar_lines) == 1
    assert exemplar_lines[0].startswith("repro_reads_ok_total ")
    assert '# {trace_id="42"}' in exemplar_lines[0]


def test_openmetrics_latest_only_by_default():
    text = to_openmetrics(_document())
    sample_lines = [l for l in text.splitlines()
                    if not l.startswith("#")]
    # One sample per series, at the newest timestamp.
    assert len(sample_lines) == 3
    assert validate_openmetrics(text) == []


def test_openmetrics_escapes_label_values():
    bank = SeriesBank()
    bank.series("x", labels={"path": 'a"b\\c\nd'}).record(0, 1.0)
    text = to_openmetrics(bank.snapshot(), history=True)
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    assert validate_openmetrics(text) == []


def test_sanitize_name_coerces_charset():
    assert sanitize_name("reads.ok-total") == "reads_ok_total"
    assert _METRIC_NAME.match(sanitize_name("9lives"))
    assert sanitize_name("x", prefix="repro") == "repro_x"


# ------------------------------------------------------------------ validator
def test_validator_rejects_missing_eof():
    assert validate_openmetrics("# TYPE x gauge\nx 1 0\n")


def test_validator_rejects_content_after_eof():
    errors = validate_openmetrics("# TYPE x gauge\nx 1 0\n# EOF\nx 2 1\n")
    assert any("after # EOF" in e for e in errors)


def test_validator_rejects_bad_metric_name():
    errors = validate_openmetrics("# TYPE x gauge\n9bad 1 0\n# EOF\n")
    assert any("malformed sample" in e for e in errors)


def test_validator_rejects_sample_without_type():
    errors = validate_openmetrics("orphan 1 0\n# EOF\n")
    assert any("precedes its TYPE" in e for e in errors)


def test_validator_rejects_malformed_metadata_and_labels():
    errors = validate_openmetrics("# TIPO x gauge\n# EOF\n")
    assert any("malformed metadata" in e for e in errors)
    errors = validate_openmetrics(
        '# TYPE x gauge\nx{9bad="v"} 1 0\n# EOF\n')
    assert any("label" in e for e in errors)


def test_validator_accepts_minimal_valid_document():
    assert validate_openmetrics(
        "# TYPE up gauge\nup 1 0\n# EOF\n") == []


# ----------------------------------------------------------------- jsonl, csv
def test_jsonl_one_object_per_sample():
    text = to_jsonl(_document())
    rows = [json.loads(line) for line in text.splitlines()]
    assert len(rows) == 5
    assert {"name", "labels", "kind", "t_s", "value"} <= set(rows[0])
    assert any(r["labels"] == {"shard": "0"} for r in rows)


def test_csv_header_and_rows():
    text = to_csv(_document())
    lines = text.splitlines()
    assert lines[0] == "name,labels,t_s,value"
    assert len(lines) == 6
    assert any(line.startswith("queue_depth,shard=0,") for line in lines)
