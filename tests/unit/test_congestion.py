"""Unit tests for the CSMA congestion model (uncongested vs busy medium)."""

import random

import pytest

from repro.net.link import LinkModel


def _mean_delay(link, samples=400, seed=5):
    rng = random.Random(seed)
    return sum(link.csma_delay_s(rng) for _ in range(samples)) / samples


def test_zero_congestion_stays_in_base_window():
    link = LinkModel()
    rng = random.Random(1)
    for _ in range(200):
        assert link.csma_min_s <= link.csma_delay_s(rng) <= link.csma_max_s


def test_congestion_increases_mean_backoff():
    idle = _mean_delay(LinkModel(busy_probability=0.0))
    busy = _mean_delay(LinkModel(busy_probability=0.6))
    saturated = _mean_delay(LinkModel(busy_probability=0.95))
    assert idle < busy < saturated


def test_backoff_is_bounded_by_max_backoffs():
    link = LinkModel(busy_probability=1.0, max_backoffs=3)
    rng = random.Random(2)
    worst_window = link.csma_max_s * (1 + 2 + 4 + 8)
    for _ in range(200):
        assert link.csma_delay_s(rng) <= worst_window + link.csma_max_s


def test_congestion_defaults_off():
    assert LinkModel().busy_probability == 0.0
