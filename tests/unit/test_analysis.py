"""Unit tests for the experiment harnesses: every paper claim's *shape*."""

import pytest

from repro.analysis.drivers import PAPER_TABLE3, summarize_table3
from repro.analysis.energy import (
    Figure12Model,
    identification_energy_samples,
    transaction_energy_joules,
)
from repro.analysis.footprint import PAPER_TABLE2
from repro.analysis.identification import run_study
from repro.analysis.network import run_table4
from repro.analysis.report import render_table
from repro.analysis.vmperf import (
    measure_instructions,
    measure_router_event_us,
    router_scaling_series,
)
from repro.hw.connector import BusKind


# ----------------------------------------------------------------- rendering
def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-name" in text


# ----------------------------------------------------------- §6.1 / Figure 12
def test_identification_energy_in_paper_band():
    samples = identification_energy_samples(trials=10)
    assert all(1e-3 < s < 10e-3 for s in samples)  # paper: 2.48-6.756 mJ


def test_transaction_energy_ordering():
    """ADC conversions are cheapest; UART frames are the most expensive —
    that ordering produces Figure 12's divergence at low change rates."""
    adc = transaction_energy_joules(BusKind.ADC)
    i2c = transaction_energy_joules(BusKind.I2C)
    uart = transaction_energy_joules(BusKind.UART)
    assert adc < i2c < uart


def test_figure12_shape():
    model = Figure12Model(identification_trials=8)
    series = model.all_series(intervals_min=(1, 60, 10_000, 1_000_000))
    usb = [p.mean_joules for p in series["USB host"]]
    upnp_adc = [p.mean_joules for p in series["uPnP+ADC"]]
    upnp_uart = [p.mean_joules for p in series["uPnP+UART"]]
    # USB is flat (idle-dominated); µPnP decreases with fewer changes.
    assert max(usb) / min(usb) < 1.2
    assert upnp_adc == sorted(upnp_adc, reverse=True)
    # µPnP beats USB by >= 4 orders of magnitude at hourly changes (§6.1).
    assert usb[1] / upnp_adc[1] > 1e4
    # Interconnect curves diverge at the communication floor.
    assert upnp_uart[-1] / upnp_adc[-1] > 10


def test_figure12_error_bars_from_resistor_selection():
    model = Figure12Model(identification_trials=12)
    point = model.upnp_series(BusKind.ADC, [1])[0]
    assert point.std_joules > 0
    assert point.min_joules < point.mean_joules < point.max_joules


# ------------------------------------------------------------------ §6.1 study
def test_identification_study_overlaps_paper_band():
    study = run_study(repeats=2)
    assert study.decode_failures == 0
    assert study.duration_s.maximum > 0.220  # reaches into the paper band
    assert study.duration_s.minimum < 0.300
    assert 1e-3 < study.energy_j.minimum < study.energy_j.maximum < 10e-3


# -------------------------------------------------------------------- Table 3
def test_table3_headline_claims():
    summary = summarize_table3()
    assert 0.35 <= summary.average_sloc_saving <= 0.7   # paper: 52%
    assert 0.7 <= summary.average_bytes_saving <= 0.97  # paper: 94%
    # The DSL wins SLoC on every single driver.
    for row in summary.rows:
        assert row.dsl_sloc < row.native_sloc


def test_table3_paper_reference_is_complete():
    assert set(PAPER_TABLE3) == {"tmp36", "hih4030", "id20la", "bmp180"}


# ----------------------------------------------------------------------- §6.2
def test_instruction_measurement_matches_calibration():
    timings = measure_instructions(repeats=30)
    mean_us = sum(t.seconds for t in timings) / len(timings) * 1e6
    assert mean_us == pytest.approx(39.7, abs=0.5)


def test_router_event_cost_and_linear_scaling():
    assert measure_router_event_us(events=50) == pytest.approx(77.79, abs=0.5)
    series = router_scaling_series(counts=(10, 100, 200))
    per_event = [total_ms / count for count, total_ms in series]
    assert max(per_event) / min(per_event) < 1.01  # linear


# -------------------------------------------------------------------- Table 4
def test_table4_rows_within_ten_percent_of_paper():
    result = run_table4(trials=5)
    paper = {
        "Generate Multicast Address": 2.59e-3,
        "Join Multicast Group": 5.44e-3,
        "Request driver": 53.91e-3,
        "Install Driver": 59.50e-3,
        "Advertise Peripheral": 45.37e-3,
    }
    for name, expected in paper.items():
        assert result.rows[name].mean == pytest.approx(expected, rel=0.10)


def test_table2_reference_totals():
    assert PAPER_TABLE2["Total"] == (14231, 1518)
