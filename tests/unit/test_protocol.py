"""Unit tests for TLV encoding and the 17 protocol messages."""

import pytest

from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.protocol.messages import (
    Data,
    DriverAdvertisement,
    DriverDiscovery,
    DriverInstallRequest,
    DriverRemovalAck,
    DriverRemovalRequest,
    DriverUpload,
    MsgType,
    PeripheralDiscovery,
    PeripheralEntry,
    ProtocolError,
    ReadRequest,
    SequenceCounter,
    SolicitedAdvertisement,
    StreamClosed,
    StreamData,
    StreamEstablished,
    StreamRequest,
    UnsolicitedAdvertisement,
    WriteAck,
    WriteRequest,
    decode_message,
)
from repro.protocol.tlv import Tlv, TlvError, TlvType, decode_tlvs, encode_tlvs, find


# ------------------------------------------------------------------------ TLV
def test_tlv_roundtrip():
    tlvs = [Tlv.text(TlvType.LABEL, "TMP36"), Tlv.byte(TlvType.CHANNEL, 2)]
    blob = encode_tlvs(tlvs)
    decoded, offset = decode_tlvs(blob)
    assert decoded == tlvs
    assert offset == len(blob)


def test_tlv_accessors():
    assert Tlv.text(1, "abc").as_text() == "abc"
    assert Tlv.byte(2, 7).as_byte() == 7
    with pytest.raises(TlvError):
        Tlv(1, b"ab").as_byte()


def test_tlv_find():
    tlvs = [Tlv.byte(TlvType.CHANNEL, 1), Tlv.byte(TlvType.BUS, 0)]
    assert find(tlvs, TlvType.BUS).as_byte() == 0
    assert find(tlvs, TlvType.VENDOR) is None


def test_tlv_truncation_rejected():
    with pytest.raises(TlvError):
        decode_tlvs(b"\x01\x05")       # header cut short
    with pytest.raises(TlvError):
        decode_tlvs(b"\x01\x05\x08ab")  # value cut short
    with pytest.raises(TlvError):
        decode_tlvs(b"")                # no count byte


def test_tlv_limits():
    with pytest.raises(TlvError):
        Tlv(300, b"")
    with pytest.raises(TlvError):
        Tlv(1, b"x" * 300)


# ------------------------------------------------------------------- messages
DEVICE = DeviceId(0xAD1CBE01)

ALL_MESSAGES = [
    UnsolicitedAdvertisement(1, (PeripheralEntry(DEVICE, (Tlv.byte(3, 1),)),)),
    PeripheralDiscovery(2, DEVICE, (Tlv.text(1, "any"),)),
    SolicitedAdvertisement(3, (PeripheralEntry(DEVICE),)),
    DriverInstallRequest(4, DEVICE),
    DriverUpload(5, DEVICE, b"\x01" * 80),
    DriverDiscovery(6),
    DriverAdvertisement(7, (DEVICE, DeviceId(7))),
    DriverRemovalRequest(8, DEVICE),
    DriverRemovalAck(9, DEVICE, 0),
    ReadRequest(10, DEVICE),
    Data(11, DEVICE, b"\x00\x00\x00\xe1", False),
    StreamRequest(12, DEVICE, 2000),
    StreamEstablished(13, DEVICE, Ipv6Address.parse("ff3e:30:2001:db8::1")),
    StreamData(14, DEVICE, b"ABC", True),
    StreamClosed(15, DEVICE),
    WriteRequest(16, DEVICE, -5),
    WriteAck(17, DEVICE, 1),
]


@pytest.mark.parametrize("message", ALL_MESSAGES,
                         ids=[type(m).__name__ for m in ALL_MESSAGES])
def test_every_message_roundtrips(message):
    assert decode_message(message.encode()) == message


def test_message_numbering_matches_paper():
    """Types (1)..(17) in the order of Figures 10 and 11."""
    assert MsgType.UNSOLICITED_ADVERTISEMENT == 1
    assert MsgType.PERIPHERAL_DISCOVERY == 2
    assert MsgType.SOLICITED_ADVERTISEMENT == 3
    assert MsgType.DRIVER_INSTALL_REQUEST == 4
    assert MsgType.DRIVER_UPLOAD == 5
    assert MsgType.DRIVER_DISCOVERY == 6
    assert MsgType.DRIVER_ADVERTISEMENT == 7
    assert MsgType.DRIVER_REMOVAL_REQUEST == 8
    assert MsgType.DRIVER_REMOVAL_ACK == 9
    assert MsgType.READ_REQUEST == 10
    assert MsgType.DATA == 11
    assert MsgType.STREAM_REQUEST == 12
    assert MsgType.STREAM_ESTABLISHED == 13
    assert MsgType.STREAM_DATA == 14
    assert MsgType.STREAM_CLOSED == 15
    assert MsgType.WRITE_REQUEST == 16
    assert MsgType.WRITE_ACK == 17
    assert len(MsgType) == 17


def test_data_scalar_value_signed():
    message = Data(1, DEVICE, (-42).to_bytes(4, "big", signed=True), False)
    assert message.scalar_value() == -42


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_message(b"")
    with pytest.raises(ProtocolError):
        decode_message(b"\x63\x00\x01")  # unknown type 99
    with pytest.raises(ProtocolError):
        decode_message(ReadRequest(1, DEVICE).encode() + b"\x00")  # trailing


def test_decode_rejects_truncated_bodies():
    blob = DriverUpload(5, DEVICE, b"x" * 10).encode()
    with pytest.raises(ProtocolError):
        decode_message(blob[:-3])


def test_sequence_numbers_wrap():
    counter = SequenceCounter(0xFFFE)
    assert [counter.next() for _ in range(3)] == [0xFFFE, 0xFFFF, 0x0000]


def test_seq_out_of_range_rejected():
    with pytest.raises(ProtocolError):
        ReadRequest(70000, DEVICE)


def test_advertisement_device_ids_helper():
    message = ALL_MESSAGES[0]
    assert message.device_ids() == [DEVICE]
