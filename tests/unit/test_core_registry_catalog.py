"""Unit tests for the global address space and the driver catalogue."""

import pytest

from repro.core.registry import AddressStatus, Registry, RegistryError
from repro.drivers.catalog import (
    CATALOG,
    TABLE3_DRIVERS,
    make_peripheral_board,
    populate_registry,
    spec_for_id,
)
from repro.drivers.native_model import estimate_native_bytes, uses_float
from repro.hw.connector import BusKind
from repro.hw.device_id import DeviceId

GOOD_DRIVER = """\
int32_t x;
event init():
    x = 1;
event destroy():
    x = 0;
"""

REQUEST = dict(
    name="Widget",
    organization="ACME",
    email="dev@acme.test",
    url="https://acme.test/widget",
    bus=BusKind.ADC,
)


# ------------------------------------------------------------------- registry
def test_allocation_is_provisional_until_driver_upload():
    registry = Registry()
    record = registry.request_address(**REQUEST)
    assert record.status is AddressStatus.PROVISIONAL
    registry.upload_driver(record.device_id, GOOD_DRIVER)
    assert registry.record(record.device_id).status is AddressStatus.PERMANENT
    assert registry.driver_image(record.device_id) is not None
    assert registry.permanent_ids() == [record.device_id]


def test_allocation_is_deterministic():
    a = Registry().request_address(**REQUEST).device_id
    b = Registry().request_address(**REQUEST).device_id
    assert a == b


def test_missing_fields_rejected():
    registry = Registry()
    with pytest.raises(RegistryError):
        registry.request_address("", "o", "e", "u", bus=BusKind.ADC)


def test_preferred_id_collision_rejected():
    registry = Registry()
    record = registry.request_address(**REQUEST)
    with pytest.raises(RegistryError):
        registry.request_address(
            name="Other", organization="o", email="e", url="u",
            bus=BusKind.I2C, preferred_id=record.device_id,
        )


def test_reserved_ids_never_allocated():
    registry = Registry()
    with pytest.raises(RegistryError):
        registry.request_address(
            name="Bad", organization="o", email="e", url="u",
            bus=BusKind.ADC, preferred_id=DeviceId(0xFFFFFFFF),
        )


def test_invalid_driver_rejected_and_stays_provisional():
    registry = Registry()
    record = registry.request_address(**REQUEST)
    with pytest.raises(RegistryError, match="driver rejected"):
        registry.upload_driver(record.device_id, "event init():\n    x = ;\n")
    assert registry.record(record.device_id).status is AddressStatus.PROVISIONAL


def test_upload_for_unallocated_id_rejected():
    with pytest.raises(RegistryError):
        Registry().upload_driver(DeviceId(0x12345678), GOOD_DRIVER)


def test_resistor_set_requires_allocation():
    registry = Registry()
    with pytest.raises(RegistryError):
        registry.resistor_set_for(DeviceId(0x01020304))
    record = registry.request_address(**REQUEST)
    resistors = registry.resistor_set_for(record.device_id)
    assert len(list(resistors)) == 4


def test_registry_persistence_roundtrip(tmp_path):
    registry = Registry()
    record = registry.request_address(**REQUEST)
    registry.upload_driver(record.device_id, GOOD_DRIVER)
    path = tmp_path / "registry.json"
    registry.save(path)
    loaded = Registry.load(path)
    assert loaded.record(record.device_id).status is AddressStatus.PERMANENT
    assert loaded.driver_image(record.device_id).device_id == record.device_id.value


# ------------------------------------------------------------------ catalogue
def test_catalog_covers_paper_prototypes():
    assert set(TABLE3_DRIVERS) <= set(CATALOG)
    assert len(CATALOG) >= 5  # four prototypes + relay actuator


def test_all_catalog_drivers_compile_with_their_ids():
    for key, spec in CATALOG.items():
        image = spec.compile()
        assert image.device_id == spec.device_id.value
        assert image.image_size > 0
        assert spec.dsl_sloc() > 0


def test_spec_for_id_lookup():
    spec = CATALOG["tmp36"]
    assert spec_for_id(spec.device_id) is spec
    assert spec_for_id(0x00000000) is None


def test_populate_registry_uploads_everything():
    registry = Registry()
    populate_registry(registry)
    for spec in CATALOG.values():
        assert registry.driver_image(spec.device_id) is not None
        assert registry.record(spec.device_id).status is AddressStatus.PERMANENT
    # Idempotent.
    populate_registry(registry)


def test_make_peripheral_board_wires_device():
    board = make_peripheral_board("bmp180")
    assert board.device_id == CATALOG["bmp180"].device_id
    assert board.bus is BusKind.I2C
    assert board.device is not None


def test_unknown_board_key_rejected():
    with pytest.raises(KeyError):
        make_peripheral_board("nonexistent")


# ----------------------------------------------------------------- size model
def test_float_detection_ignores_comments():
    assert uses_float("float x = 1.5f;")
    assert not uses_float("/* 0.5 volts */ int x; // 2.5 mA\n")


def test_softfloat_penalty_dominates():
    with_float = estimate_native_bytes("float f;", 50)
    without = estimate_native_bytes("int f;", 50)
    assert with_float.flash_bytes - without.flash_bytes > 2000


def test_catalog_native_estimates_match_paper_shape():
    """Float ADC drivers are several KB; integer bus drivers are <1 KB."""
    tmp36 = CATALOG["tmp36"].native_estimate().flash_bytes
    bmp180 = CATALOG["bmp180"].native_estimate().flash_bytes
    assert tmp36 > 2500
    assert bmp180 < 1000
    assert CATALOG["relay"].native_estimate() is None
