"""Unit tests for IPv6 addresses and the µPnP multicast schema."""

import pytest

from repro.hw.device_id import ALL_CLIENTS, ALL_PERIPHERALS, DeviceId
from repro.net.ipv6 import AddressError, Ipv6Address, network_prefix48
from repro.net.multicast import (
    all_clients_group,
    all_peripherals_group,
    parse_group,
    peripheral_group,
    stream_group,
)

PREFIX48 = network_prefix48("2001:db8::")


# ----------------------------------------------------------------------- IPv6
def test_parse_full_form():
    address = Ipv6Address.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
    assert address.value == 0x20010DB8000000000000000000000001


def test_parse_compressed_forms():
    assert Ipv6Address.parse("::") == Ipv6Address(0)
    assert Ipv6Address.parse("::1") == Ipv6Address(1)
    assert Ipv6Address.parse("2001:db8::1") == \
        Ipv6Address.parse("2001:0db8:0:0:0:0:0:1")


def test_rfc5952_formatting_rules():
    # Longest zero run compressed; leftmost on tie; lowercase hex.
    assert str(Ipv6Address.parse("2001:db8:0:0:1:0:0:1")) == "2001:db8::1:0:0:1"
    # A single zero group is NOT compressed.
    assert str(Ipv6Address.parse("2001:db8:0:1:1:1:1:1")) == "2001:db8:0:1:1:1:1:1"
    assert str(Ipv6Address.parse("FF3E:0030::1")) == "ff3e:30::1"


def test_parse_rejects_malformed():
    for bad in ("", ":::", "1::2::3", "2001:db8", "2001:db8::fffff",
                "g001:db8::1", "1:2:3:4:5:6:7:8:9"):
        with pytest.raises(AddressError):
            Ipv6Address.parse(bad)


def test_str_parse_roundtrip():
    for text in ("::", "::1", "fe80::1", "ff3e:30:2001:db8::ed3f:ac1",
                 "2001:db8:aaaa::1"):
        address = Ipv6Address.parse(text)
        assert Ipv6Address.parse(str(address)) == address


def test_groups_and_bytes_roundtrip():
    address = Ipv6Address.parse("2001:db8::42")
    assert Ipv6Address.from_groups(address.groups()) == address
    assert Ipv6Address.from_bytes(address.packed()) == address


def test_classification():
    assert Ipv6Address.parse("ff3e:30::1").is_multicast
    assert not Ipv6Address.parse("2001:db8::1").is_multicast
    assert Ipv6Address.parse("fe80::1").is_link_local
    assert Ipv6Address(0).is_unspecified


def test_prefix_operations():
    address = Ipv6Address.parse("2001:db8:1234::1")
    prefix = Ipv6Address.parse("2001:db8:1234::")
    assert address.matches_prefix(prefix, 48)
    assert not address.matches_prefix(Ipv6Address.parse("2001:db9::"), 48)
    assert address.with_interface_id(7).low64() == 7


# ------------------------------------------------------------ multicast schema
def test_schema_matches_paper_example():
    """§5.1: peripheral 0xed3f0ac1 in 2001:db8::/48 maps to
    ff3e:30:2001:db8::ed3f:0ac1 (Figure 10)."""
    group = peripheral_group(PREFIX48, DeviceId(0xED3F0AC1))
    assert group == Ipv6Address.parse("ff3e:30:2001:db8::ed3f:0ac1")


def test_schema_field_layout():
    group = peripheral_group(PREFIX48, DeviceId(0x12345678))
    assert group.value >> 96 == 0xFF3E0030
    assert (group.value >> 48) & ((1 << 48) - 1) == PREFIX48
    assert (group.value >> 32) & 0xFFFF == 0
    assert group.value & 0xFFFFFFFF == 0x12345678


def test_reserved_groups():
    assert all_peripherals_group(PREFIX48).value & 0xFFFFFFFF == ALL_PERIPHERALS
    assert all_clients_group(PREFIX48).value & 0xFFFFFFFF == ALL_CLIENTS


def test_parse_group_roundtrip():
    group = peripheral_group(PREFIX48, DeviceId(0xAD1CBE01))
    info = parse_group(group)
    assert info is not None
    assert info.network_prefix48 == PREFIX48
    assert info.device_id == DeviceId(0xAD1CBE01)
    assert not info.is_all_clients


def test_parse_group_rejects_non_upnp_addresses():
    assert parse_group(Ipv6Address.parse("ff02::1")) is None
    assert parse_group(Ipv6Address.parse("2001:db8::1")) is None


def test_stream_group_is_distinct_but_related():
    device = DeviceId(0xAD1CBE01)
    discovery = peripheral_group(PREFIX48, device)
    stream = stream_group(PREFIX48, device)
    assert stream != discovery
    assert stream.value & 0xFFFFFFFF == device.value
    assert parse_group(stream) is None  # pad field set -> not a discovery group


def test_prefix_must_fit_48_bits():
    with pytest.raises(AddressError):
        peripheral_group(1 << 48, DeviceId(1))
