"""Unit tests for native bindings, driver manager and peripheral controller."""

import random

import pytest

from repro.dsl.compiler import compile_source
from repro.hw.connector import BusKind
from repro.hw.control_board import ControlBoard
from repro.hw.device_id import DeviceId
from repro.hw.peripheral_board import PeripheralBoard
from repro.interconnect.adc import AdcBus
from repro.interconnect.i2c import I2cBus
from repro.interconnect.spi import SpiBus
from repro.interconnect.uart import UartBus
from repro.peripherals.relay import Relay
from repro.sim.kernel import Simulator, ns_from_s
from repro.vm.driver_manager import DriverManager, DriverManagerError
from repro.vm.machine import VirtualMachine
from repro.vm.native.bindings import (
    AdcBinding,
    I2cBinding,
    SpiBinding,
    UartBinding,
    binding_for,
)
from repro.vm.peripheral_controller import PeripheralController
from repro.vm.router import EventRouter
from repro.vm.runtime import DriverRuntime


class FakeRuntime:
    """Captures events a binding posts toward its driver."""

    def __init__(self):
        self.events = []

    def post_event(self, name, args=(), *, error=False, after=None):
        self.events.append((name, tuple(args), error))
        if after:
            after()


class Volts:
    def __init__(self, v):
        self.v = v

    def voltage_v(self):
        return self.v


# ------------------------------------------------------------------- bindings
def test_binding_factory_matches_lib_to_bus():
    sim = Simulator()
    assert isinstance(binding_for(1, sim, UartBus(sim)), UartBinding)
    assert isinstance(binding_for(2, sim, AdcBus()), AdcBinding)
    assert isinstance(binding_for(3, sim, I2cBus()), I2cBinding)
    assert isinstance(binding_for(4, sim, SpiBus()), SpiBinding)
    assert binding_for(2, sim, UartBus(sim)) is None  # mismatched bus


def test_adc_binding_read_emits_data_later():
    sim = Simulator()
    bus = AdcBus(noise_lsb=0.0, rng=random.Random(0))
    bus.attach(Volts(3.3))
    binding = AdcBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(2, ())  # read
    assert runtime.events == []  # split-phase: nothing yet
    sim.run()
    assert runtime.events == [("data", (1023,), False)]


def test_adc_binding_bad_config_emits_error():
    sim = Simulator()
    binding = AdcBinding(sim, AdcBus())
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(0, (13, 3300))  # bad resolution
    sim.run()
    assert runtime.events == [("invalidConfiguration", (), True)]


def test_adc_binding_busy_rejects_second_read():
    sim = Simulator()
    bus = AdcBus(noise_lsb=0.0, rng=random.Random(0))
    bus.attach(Volts(1.0))
    binding = AdcBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(2, ())
    binding.invoke(2, ())  # second before completion
    sim.run()
    names = [n for n, _, _ in runtime.events]
    assert names.count("busInUse") == 1
    assert names.count("data") == 1


def test_i2c_binding_read_emits_bytes_then_done():
    sim = Simulator()
    bus = I2cBus()
    bus.attach(Relay())
    binding = I2cBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(list(binding.spec.commands).index("read"), (0x20, 1))
    sim.run()
    assert runtime.events == [("newdata", (0,), False), ("readDone", (), False)]


def test_i2c_binding_nack_for_wrong_address():
    sim = Simulator()
    bus = I2cBus()
    bus.attach(Relay())
    binding = I2cBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(list(binding.spec.commands).index("write1"), (0x55, 1))
    sim.run()
    assert runtime.events == [("nack", (), True)]


def test_uart_binding_write_emits_write_done():
    sim = Simulator()
    bus = UartBus(sim)

    class Sink:
        def on_host_write(self, data):
            pass

    bus.attach(Sink())
    binding = UartBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(list(binding.spec.commands).index("write"), (0x41,))
    sim.run()
    assert runtime.events == [("writeDone", (), False)]


def test_uart_binding_read_is_idempotent():
    sim = Simulator()
    bus = UartBus(sim)
    binding = UartBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    read_index = list(binding.spec.commands).index("read")
    binding.invoke(read_index, ())
    binding.invoke(read_index, ())
    bus.device_transmit(b"z")
    sim.run()
    assert runtime.events == [("newdata", (0x7A,), False)]


def test_release_disarms_emission():
    sim = Simulator()
    bus = AdcBus(noise_lsb=0.0, rng=random.Random(0))
    bus.attach(Volts(1.0))
    binding = AdcBinding(sim, bus)
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(2, ())
    binding.release()  # driver unplugged while conversion in flight
    sim.run()
    assert runtime.events == []


def test_invalid_command_index_emits_error():
    sim = Simulator()
    binding = SpiBinding(sim, SpiBus())
    runtime = FakeRuntime()
    binding.claim(runtime)
    binding.invoke(99, ())
    sim.run()
    assert runtime.events == [("invalidConfiguration", (), True)]


# ------------------------------------------------------------- driver manager
from repro.drivers.catalog import CATALOG

RELAY_DRIVER = CATALOG["relay"].dsl_source()


def manager_fixture():
    sim = Simulator()
    router = EventRouter(sim)
    manager = DriverManager(sim, router, VirtualMachine())
    image = compile_source(RELAY_DRIVER, device_id=0xED3FBDA1)
    manager.install(image)
    bus = I2cBus()
    relay = Relay()
    bus.attach(relay)
    return sim, manager, bus, relay


def test_install_and_activate_lifecycle():
    sim, manager, bus, relay = manager_fixture()
    assert manager.has_driver(0xED3FBDA1)
    runtime = manager.activate(0, 0xED3FBDA1, bus)
    sim.run()
    assert runtime.active
    assert manager.active_channels() == {0: 0xED3FBDA1}
    assert manager.runtime_for(0xED3FBDA1) is runtime
    assert manager.deactivate(0)
    assert manager.active_channels() == {}


def test_activate_without_driver_raises():
    sim, manager, bus, _ = manager_fixture()
    with pytest.raises(DriverManagerError):
        manager.activate(0, 0xDEADBEEF, bus)


def test_activate_occupied_channel_raises():
    sim, manager, bus, _ = manager_fixture()
    manager.activate(0, 0xED3FBDA1, bus)
    with pytest.raises(DriverManagerError):
        manager.activate(0, 0xED3FBDA1, bus)


def test_write_reaches_the_actuator():
    sim, manager, bus, relay = manager_fixture()
    manager.activate(0, 0xED3FBDA1, bus)
    sim.run()
    acks = []
    assert manager.write(0xED3FBDA1, 1, acks.append)
    sim.run()
    assert relay.state
    assert len(acks) == 1


def test_remove_deactivates_first():
    sim, manager, bus, _ = manager_fixture()
    manager.activate(0, 0xED3FBDA1, bus)
    sim.run()
    assert manager.remove(0xED3FBDA1)
    assert manager.active_channels() == {}
    assert not manager.has_driver(0xED3FBDA1)
    assert not manager.remove(0xED3FBDA1)  # second removal is a no-op


def test_failed_requests_counted():
    sim, manager, bus, _ = manager_fixture()
    assert not manager.read(0x12345678, lambda rv: None)
    assert manager.stats.failed_requests == 1


# ------------------------------------------------------ peripheral controller
def test_controller_reports_added_and_removed():
    sim = Simulator()
    board = ControlBoard(rng=random.Random(1))
    controller = PeripheralController(sim, board)
    outcomes = []
    controller.on_change(outcomes.append)
    peripheral = PeripheralBoard.manufacture(
        DeviceId.from_hex("0xad1cbe01"), BusKind.ADC, rng=random.Random(2)
    )
    channel = board.connect(peripheral)
    sim.run()
    assert outcomes[-1].added == {channel: peripheral.device_id}
    board.disconnect(channel)
    sim.run()
    assert outcomes[-1].removed == {channel: peripheral.device_id}
    assert outcomes[-1].connected == {}


def test_interrupts_during_identification_coalesce():
    sim = Simulator()
    board = ControlBoard(rng=random.Random(1))
    controller = PeripheralController(sim, board)
    outcomes = []
    controller.on_change(outcomes.append)
    first = PeripheralBoard.manufacture(
        DeviceId.from_hex("0x01020304"), BusKind.ADC, rng=random.Random(3)
    )
    second = PeripheralBoard.manufacture(
        DeviceId.from_hex("0x0a0b0c0d"), BusKind.I2C, rng=random.Random(4)
    )
    board.connect(first)   # starts a round
    board.connect(second)  # arrives mid-round -> coalesced follow-up
    sim.run()
    assert controller.rounds_run == 2
    assert len(outcomes[-1].connected) == 2


def test_boot_trigger_scans_preconnected_peripherals():
    sim = Simulator()
    board = ControlBoard(rng=random.Random(1))
    peripheral = PeripheralBoard.manufacture(
        DeviceId.from_hex("0xbe03af0e"), BusKind.UART, rng=random.Random(5)
    )
    # Connected before the controller existed (no interrupt seen).
    board.connect(peripheral)
    controller = PeripheralController(sim, board)
    outcomes = []
    controller.on_change(outcomes.append)
    controller.trigger()
    sim.run()
    assert outcomes[-1].connected == {0: peripheral.device_id}
