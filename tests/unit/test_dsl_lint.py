"""Unit tests for the driver linter (§9 automated validation)."""

import pytest

from repro.drivers.catalog import CATALOG
from repro.dsl.lint import lint_source

BASE = "event init():\n    x = 1;\nevent destroy():\n    x = 0;\n"


def rules(source):
    return {w.rule for w in lint_source(source)}


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_drivers_lint_clean(key):
    assert lint_source(CATALOG[key].dsl_source()) == []


def test_missing_completion_handler_detected():
    source = (
        "import adc;\nint32_t x;\n"
        "event init():\n    signal adc.read();\n"
        "event destroy():\n    x = 0;\n"
        "error invalidConfiguration():\n    x = 0;\n"
        "error busInUse():\n    x = 0;\n"
        "error timeOut():\n    x = 0;\n"
    )
    assert "missing-completion-handler" in rules(source)


def test_unhandled_error_detected():
    source = "import uart;\nint32_t x;\n" + BASE
    found = rules(source)
    assert "unhandled-error" in found


def test_unused_variable_detected():
    source = "int32_t x;\nint32_t ghost;\n" + BASE
    warnings = lint_source(source)
    assert any(w.rule == "unused-variable" and "ghost" in w.message
               for w in warnings)


def test_augmented_assignment_counts_as_read():
    source = ("int32_t x;\n"
              "event init():\n    x += 1;\n"
              "event destroy():\n    x = 0;\n")
    assert "unused-variable" not in rules(source)


def test_read_never_returns_detected():
    source = (
        "int32_t x;\n"
        "event init():\n    x = 1;\n"
        "event destroy():\n    x = 0;\n"
        "event read():\n    x = 2;\n"
    )
    assert "read-never-returns" in rules(source)


def test_read_with_deferred_return_is_clean():
    """Listing-1 style: read() starts I/O; a later handler returns."""
    assert "read-never-returns" not in rules(CATALOG["id20la"].dsl_source())


def test_missing_busy_guard_detected():
    source = (
        "import adc;\nint32_t x;\n"
        "event init():\n    x = 0;\n"
        "event destroy():\n    x = 0;\n"
        "event read():\n    signal adc.read();\n"
        "event data(uint16_t counts):\n    return counts;\n"
        "error invalidConfiguration():\n    x = 0;\n"
        "error busInUse():\n    x = 0;\n"
        "error timeOut():\n    x = 0;\n"
    )
    assert "missing-busy-guard" in rules(source)


def test_registry_stores_lint_report():
    from repro.core.registry import Registry
    from repro.hw.connector import BusKind

    registry = Registry()
    record = registry.request_address(
        name="W", organization="o", email="e@t", url="https://t",
        bus=BusKind.ADC,
    )
    source = "int32_t x;\nint32_t ghost;\n" + BASE
    registry.upload_driver(record.device_id, source)
    report = registry.lint_report(record.device_id)
    assert any(w.rule == "unused-variable" for w in report)
