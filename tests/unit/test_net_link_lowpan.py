"""Unit tests for the 802.15.4 link model and 6LoWPAN adaptation."""

import random

import pytest

from repro.net.link import (
    LinkModel,
    MAC_OVERHEAD_BYTES,
    MAC_PAYLOAD_LIMIT,
    PHY_OVERHEAD_BYTES,
)
from repro.net.lowpan import (
    COMPRESSED_HEADERS_BYTES,
    DEFAULT_LOWPAN,
    FRAG1_HEADER_BYTES,
    FRAGN_HEADER_BYTES,
    LowpanModel,
)


def test_airtime_scales_with_size():
    link = LinkModel()
    assert link.airtime_s(0) == pytest.approx(
        (PHY_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES) * 8 / 250_000
    )
    assert link.airtime_s(100) > link.airtime_s(10)


def test_airtime_rejects_oversize_frames():
    with pytest.raises(ValueError):
        LinkModel().airtime_s(MAC_PAYLOAD_LIMIT + 1)


def test_frame_delay_includes_backoff_and_turnaround():
    link = LinkModel()
    rng = random.Random(1)
    delay = link.frame_delay_s(50, rng)
    assert delay > link.airtime_s(50) + link.turnaround_s


def test_csma_delay_within_window():
    link = LinkModel()
    rng = random.Random(2)
    for _ in range(100):
        delay = link.csma_delay_s(rng)
        assert link.csma_min_s <= delay <= link.csma_max_s


def test_loss_probability():
    lossy = LinkModel(loss_probability=1.0)
    assert lossy.frame_lost(random.Random(1))
    lossless = LinkModel(loss_probability=0.0)
    assert not lossless.frame_lost(random.Random(1))


# -------------------------------------------------------------------- 6LoWPAN
def test_small_datagram_fits_one_frame():
    sizes = DEFAULT_LOWPAN.frame_payload_sizes(20)
    assert sizes == [20 + COMPRESSED_HEADERS_BYTES]


def test_compression_off_costs_full_headers():
    model = LowpanModel(compression=False)
    assert model.header_bytes == 48
    assert model.frame_count(20) == 1
    assert model.frame_payload_sizes(20) == [68]


def test_large_datagram_fragments():
    sizes = DEFAULT_LOWPAN.frame_payload_sizes(200)
    assert len(sizes) > 1
    assert all(size <= MAC_PAYLOAD_LIMIT for size in sizes)


def test_fragment_payloads_cover_exactly_the_datagram():
    for payload in (0, 50, 96, 97, 150, 400, 1000):
        sizes = DEFAULT_LOWPAN.frame_payload_sizes(payload)
        datagram = DEFAULT_LOWPAN.header_bytes + payload
        if len(sizes) == 1:
            assert sizes[0] == datagram
        else:
            carried = (sizes[0] - FRAG1_HEADER_BYTES) + sum(
                s - FRAGN_HEADER_BYTES for s in sizes[1:]
            )
            assert carried == datagram
            # All fragments except the last carry multiples of 8 bytes.
            assert (sizes[0] - FRAG1_HEADER_BYTES) % 8 == 0
            for size in sizes[1:-1]:
                assert (size - FRAGN_HEADER_BYTES) % 8 == 0


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        DEFAULT_LOWPAN.frame_payload_sizes(-1)


def test_total_link_bytes_exceed_payload():
    assert DEFAULT_LOWPAN.total_link_bytes(300) > 300
