"""Unit tests: disassembler coverage over the full catalogue, DSL value
types, and driver-image invariants shared by every shipped driver."""

import pytest

from repro.drivers.catalog import CATALOG
from repro.dsl.bytecode import HANDLER_KIND_EVENT, Op, decode
from repro.dsl.disassembler import disassemble
from repro.dsl.symbols import (
    NATIVE_LIBS,
    WELL_KNOWN_NAMES,
    name_for_id,
    well_known_id,
)
from repro.dsl.types import (
    BOOL,
    BY_CODE,
    BY_NAME,
    INT8,
    INT16,
    INT32,
    UINT8,
    UINT16,
    UINT32,
    type_named,
    wrap32,
)


# ------------------------------------------------------------------ DSL types
@pytest.mark.parametrize("vtype,value,expected", [
    (UINT8, 256, 0),
    (UINT8, -1, 255),
    (INT8, 128, -128),
    (INT8, -129, 127),
    (UINT16, 65536, 0),
    (INT16, 40000, 40000 - 65536),
    (UINT32, -1, 0xFFFFFFFF),
    (INT32, 2**31, -(2**31)),
    (BOOL, 3, 3),  # bool stores as a byte; nonzero is truthy
])
def test_truncation_c_semantics(vtype, value, expected):
    assert vtype.truncate(value) == expected


def test_type_ranges():
    assert (INT8.min_value, INT8.max_value) == (-128, 127)
    assert (UINT16.min_value, UINT16.max_value) == (0, 65535)
    assert (INT32.min_value, INT32.max_value) == (-(2**31), 2**31 - 1)


def test_type_lookup_tables_consistent():
    for name, vtype in BY_NAME.items():
        assert type_named(name) is vtype
        assert BY_CODE[vtype.code] is vtype
    with pytest.raises(ValueError):
        type_named("float64_t")


def test_wrap32():
    assert wrap32(2**31) == -(2**31)
    assert wrap32(-(2**31) - 1) == 2**31 - 1
    assert wrap32(42) == 42


# --------------------------------------------------------------- symbol names
def test_well_known_names_are_stable_and_unique():
    assert len(set(WELL_KNOWN_NAMES)) == len(WELL_KNOWN_NAMES)
    assert well_known_id("init") == 0
    assert well_known_id("destroy") == 1
    assert well_known_id("somethingCustom") is None


def test_name_for_id_resolves_local_names():
    assert name_for_id(0) == "init"
    assert name_for_id(128, ("phaseTwo",)) == "phaseTwo"
    assert name_for_id(200) == "name_200"


def test_native_lib_ids_unique_and_stable():
    ids = [lib.lib_id for lib in NATIVE_LIBS.values()]
    assert sorted(ids) == [1, 2, 3, 4]
    assert NATIVE_LIBS["uart"].lib_id == 1
    assert NATIVE_LIBS["adc"].lib_id == 2


# ----------------------------------------------- catalogue-wide image checks
@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_driver_disassembles_fully(key):
    image = CATALOG[key].compile()
    text = disassemble(image)
    # Every instruction appears in the listing; handlers are labelled.
    assert len(text.splitlines()) > len(image.handlers)
    assert f"{image.device_id:#010x}" in text
    for handler in image.handlers:
        kind = "error" if handler.kind else "event"
        assert f"{kind} " in text


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_driver_code_is_well_formed(key):
    image = CATALOG[key].compile()
    instructions = list(decode(image.code))
    # Instruction stream tiles the code exactly.
    assert instructions[0].offset == 0
    end = instructions[-1].offset + instructions[-1].size
    assert end == len(image.code)
    # Every handler offset is an instruction boundary.
    boundaries = {i.offset for i in instructions}
    for handler in image.handlers:
        assert handler.offset in boundaries
    # Every handler's reachable tail terminates in RET.
    assert instructions[-1].op == Op.RET


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_driver_declares_init_and_destroy(key):
    image = CATALOG[key].compile()
    assert image.find_handler(HANDLER_KIND_EVENT, well_known_id("init"))
    assert image.find_handler(HANDLER_KIND_EVENT, well_known_id("destroy"))


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_driver_jumps_stay_in_code(key):
    image = CATALOG[key].compile()
    size = len(image.code)
    for instruction in image.instructions():
        if instruction.op in (Op.JMP, Op.JZ, Op.JNZ, Op.JMPS, Op.JZS, Op.JNZS):
            target = instruction.offset + instruction.size + instruction.args[0]
            assert 0 <= target < size


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_driver_slot_operands_valid(key):
    image = CATALOG[key].compile()
    n_slots = len(image.slots)
    for instruction in image.instructions():
        if instruction.op in (Op.LDG, Op.STG, Op.INCG, Op.DECG):
            assert instruction.args[0] < n_slots
            assert not image.slots[instruction.args[0]].is_array
        elif instruction.op in (Op.LDE, Op.STE, Op.RETA):
            assert image.slots[instruction.args[0]].is_array
        elif instruction.op == Op.LDEI:
            slot, index = instruction.args
            assert image.slots[slot].is_array
            assert index < image.slots[slot].length
