"""Unit tests for the DSL lexer."""

import pytest

from repro.dsl.errors import LexError
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def test_simple_statement_tokens():
    tokens = tokenize("idx = 0;\n")
    assert [t.type for t in tokens] == [
        TokenType.NAME, TokenType.ASSIGN, TokenType.INT,
        TokenType.SEMICOLON, TokenType.NEWLINE, TokenType.EOF,
    ]


def test_keywords_and_types_are_distinguished():
    tokens = tokenize("event init uint8_t foo signal this\n")
    assert [t.type for t in tokens[:6]] == [
        TokenType.KW_EVENT, TokenType.NAME, TokenType.TYPE,
        TokenType.NAME, TokenType.KW_SIGNAL, TokenType.KW_THIS,
    ]


def test_hex_and_decimal_literals():
    tokens = tokenize("0x0d 255\n")
    assert tokens[0].value == "0x0d"
    assert tokens[1].value == "255"


def test_malformed_hex_rejected():
    with pytest.raises(LexError):
        tokenize("0x\n")


def test_comments_and_blank_lines_invisible():
    source = "# leading comment\n\nx = 1; # trailing\n"
    assert types(source) == [
        TokenType.NAME, TokenType.ASSIGN, TokenType.INT,
        TokenType.SEMICOLON, TokenType.NEWLINE, TokenType.EOF,
    ]


def test_indentation_produces_indent_dedent():
    source = "event a():\n    x = 1;\nevent b():\n    x = 2;\n"
    sequence = types(source)
    assert sequence.count(TokenType.INDENT) == 2
    assert sequence.count(TokenType.DEDENT) == 2


def test_nested_blocks_dedent_in_order():
    source = (
        "event a():\n"
        "    if x:\n"
        "        y = 1;\n"
        "    z = 2;\n"
    )
    sequence = types(source)
    assert sequence.count(TokenType.INDENT) == 2
    assert sequence.count(TokenType.DEDENT) == 2


def test_dedent_emitted_at_eof():
    sequence = types("event a():\n    x = 1;")
    assert sequence[-2] == TokenType.DEDENT


def test_inconsistent_dedent_rejected():
    source = "event a():\n        x = 1;\n    y = 2;\n"
    with pytest.raises(LexError):
        tokenize(source)


def test_implicit_line_joining_inside_parens():
    source = "signal uart.init(9600,\n    1, 2);\n"
    sequence = types(source)
    # No NEWLINE or INDENT inside the parenthesised argument list.
    assert sequence.count(TokenType.NEWLINE) == 1
    assert TokenType.INDENT not in sequence


def test_unbalanced_brackets_rejected():
    with pytest.raises(LexError):
        tokenize("x = (1;\n")
    with pytest.raises(LexError):
        tokenize("x = 1);\n")


def test_multi_character_operators_are_greedy():
    source = "a <<= 1; b == c; d != e; f++;\n"
    sequence = types(source)
    assert TokenType.LSHIFTASSIGN in sequence
    assert TokenType.EQ in sequence
    assert TokenType.NE in sequence
    assert TokenType.PLUSPLUS in sequence


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("x = $;\n")


def test_positions_reported():
    tokens = tokenize("   abc\n")
    name = next(t for t in tokens if t.type == TokenType.NAME)
    assert name.line == 1
    assert name.column == 4
