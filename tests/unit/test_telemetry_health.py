"""Unit tests for the declarative health/SLO engine."""

import json

import pytest

from repro.telemetry.series import SeriesBank
from repro.telemetry.health import (
    DEFAULT_RULES,
    HealthReport,
    SloRule,
    evaluate,
    evaluate_rule,
    horizon_ns,
)

NS = 1_000_000_000


def _doc(samples, name="m", kind="gauge", labels=None, extra=()):
    bank = SeriesBank()
    ts = bank.series(name, kind=kind, labels=labels)
    for t_s, v in samples:
        ts.record(int(t_s * NS), v)
    for other_name, other_samples in extra:
        other = bank.series(other_name, kind="counter")
        for t_s, v in other_samples:
            other.record(int(t_s * NS), v)
    return bank.snapshot()


# --------------------------------------------------------------------- SloRule
def test_rule_validates_fields():
    with pytest.raises(ValueError):
        SloRule("r", "m", aggregate="median")
    with pytest.raises(ValueError):
        SloRule("r", "m", op="!=")
    with pytest.raises(ValueError):
        SloRule("r", "m", window_s=0)


def test_rule_parse_grammar():
    rule = SloRule.parse("duty: radio_duty_cycle.p95 < 1% window=10")
    assert rule.name == "duty"
    assert rule.series == "radio_duty_cycle"
    assert rule.aggregate == "p95"
    assert rule.op == "<"
    assert rule.threshold == pytest.approx(0.01)
    assert rule.window_s == 10.0

    ratio = SloRule.parse("done: ok_total/sent_total >= 99%")
    assert ratio.ratio_to == "sent_total"
    assert ratio.aggregate == "delta"
    assert ratio.threshold == pytest.approx(0.99)

    plain = SloRule.parse("q: depth.max < 5000")
    assert plain.aggregate == "max"
    assert plain.threshold == 5000.0
    assert plain.window_s == 10.0  # default

    with pytest.raises(ValueError):
        SloRule.parse("not a rule")


# ------------------------------------------------------------------ aggregates
def test_last_aggregate_judges_worst_label_set():
    bank = SeriesBank()
    bank.series("q", labels={"shard": "0"}).record(NS, 1.0)
    bank.series("q", labels={"shard": "1"}).record(NS, 9.0)
    doc = bank.snapshot()
    # op "<" judges the max across label sets (worst case).
    rule = SloRule("r", "q", aggregate="last", op="<", threshold=5.0,
                   window_s=10.0)
    result = evaluate_rule(rule, doc)
    assert result.windows[0].value == 9.0
    assert not result.ok
    # op ">" judges the min across label sets.
    rule = SloRule("r", "q", aggregate="last", op=">", threshold=0.5,
                   window_s=10.0)
    assert evaluate_rule(rule, doc).windows[0].value == 1.0


def test_percentile_and_mean_aggregates():
    doc = _doc([(i, float(i)) for i in range(10)])
    rule = SloRule("r", "m", aggregate="p95", op="<", threshold=100.0,
                   window_s=20.0)
    result = evaluate_rule(rule, doc)
    assert result.windows[0].value == pytest.approx(8.55)
    rule = SloRule("r", "m", aggregate="mean", op="<", threshold=100.0,
                   window_s=20.0)
    assert evaluate_rule(rule, doc).windows[0].value == pytest.approx(4.5)


def test_delta_aggregate_is_windowed_counter_increase():
    doc = _doc([(0, 0.0), (5, 10.0), (15, 25.0)], kind="counter")
    rule = SloRule("r", "m", aggregate="delta", op=">=", threshold=0.0,
                   window_s=10.0)
    result = evaluate_rule(rule, doc)
    # Window [0,10): 10-0; window [10,15]: 25-10.
    assert [w.value for w in result.windows] == [10.0, 15.0]


def test_ratio_skips_windows_with_zero_denominator():
    doc = _doc(
        [(0, 0.0), (5, 8.0), (15, 8.0), (25, 8.0)], name="ok",
        kind="counter",
        extra=[("sent", [(0, 0.0), (5, 10.0), (15, 10.0), (25, 10.0)])],
    )
    rule = SloRule("r", "ok", ratio_to="sent", op=">=", threshold=0.9,
                   window_s=10.0)
    result = evaluate_rule(rule, doc)
    # Only the first window moved traffic; later windows are skipped,
    # not counted as healthy.
    assert len(result.windows) == 1
    assert result.windows[0].value == pytest.approx(0.8)
    assert result.status == "degraded"


def test_scale_multiplies_before_comparison():
    doc = _doc([(0, 0.0), (9, 2.0)], kind="counter")
    rule = SloRule("r", "m", aggregate="delta", op="<", threshold=1.0,
                   window_s=10.0, scale=0.25)
    result = evaluate_rule(rule, doc)
    assert result.windows[0].value == pytest.approx(0.5)
    assert result.ok


# -------------------------------------------------------------------- statuses
def test_status_ok_degraded_recovered_no_data():
    rule = SloRule("r", "m", aggregate="last", op="<", threshold=5.0,
                   window_s=10.0)
    ok = evaluate_rule(rule, _doc([(5, 1.0), (15, 2.0)]))
    assert ok.status == "ok" and ok.ok

    degraded = evaluate_rule(rule, _doc([(5, 1.0), (15, 9.0)]))
    assert degraded.status == "degraded" and not degraded.ok
    assert len(degraded.degraded_windows) == 1

    recovered = evaluate_rule(rule, _doc([(5, 9.0), (15, 1.0)]))
    assert recovered.status == "recovered" and not recovered.ok

    empty = evaluate_rule(rule, {"series": []})
    assert empty.status == "no-data"


def test_report_status_is_worst_and_dict_is_json_safe():
    doc = _doc([(5, 9.0), (15, 9.0)])
    rules = (
        SloRule("good", "m", aggregate="last", op=">", threshold=0.0),
        SloRule("bad", "m", aggregate="last", op="<", threshold=5.0),
    )
    report = evaluate(rules, doc)
    assert isinstance(report, HealthReport)
    assert report.status == "degraded"
    assert not report.ok
    data = report.as_dict()
    json.dumps(data)
    assert set(data["rules"]) == {"good", "bad"}
    assert data["rules"]["bad"]["status"] == "degraded"


def test_horizon_is_latest_sample():
    assert horizon_ns(_doc([(3, 1.0), (7, 1.0)])) == 7 * NS
    assert horizon_ns({"series": []}) == 0


def test_default_rules_parseable_and_evaluate_empty():
    report = evaluate(DEFAULT_RULES, {"series": []})
    assert report.status == "no-data"
