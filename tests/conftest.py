"""Repo-wide pytest plumbing: stdlib-only asyncio test support.

The container has no pytest-asyncio, so ``async def`` tests marked
``@pytest.mark.asyncio`` are executed here: each test gets a fresh
event loop (created, run, closed per test — no loop state leaks
between tests).  Unmarked async tests fail loudly instead of silently
returning an un-awaited coroutine.
"""

import asyncio
import inspect

import pytest


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    test_fn = pyfuncitem.obj
    if not inspect.iscoroutinefunction(test_fn):
        return None
    if pyfuncitem.get_closest_marker("asyncio") is None:
        raise pytest.UsageError(
            f"{pyfuncitem.nodeid} is async but lacks @pytest.mark.asyncio")
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(test_fn(**kwargs))
    finally:
        loop.close()
    return True
