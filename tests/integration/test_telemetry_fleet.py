"""Integration tests: telemetry across fleet shards, chaos and the wire.

Covers the tentpole acceptance criteria: merged series byte-identical
across 1, 2 and 8 workers; a mid-run loss burst producing degraded
*and* recovered health windows; and reliability counters cross-checked
against the network's own delivered-datagram log on seeded lossy runs.
"""

import json
from collections import Counter

import pytest

from repro.chaos.campaign import CAMPAIGNS, run_campaign
from repro.chaos.engine import ChaosEngine
from repro.chaos.plan import FaultPlan, LinkBurst
from repro.fleet.deployment import ShardDeployment
from repro.fleet.runner import run_scenario
from repro.fleet.scenario import ChurnProfile, FleetScenario
from repro.protocol import messages as proto
from repro.sim.kernel import ns_from_s
from repro.telemetry import (
    TelemetryConfig,
    evaluate,
    DEFAULT_RULES,
    to_openmetrics,
    validate_openmetrics,
)

#: Small fleet, several shards — enough parallelism to catch any
#: worker-count dependence in the merge.
SCENARIO = FleetScenario(
    name="telemetry-it", things=8, shard_size=2, duration_s=6.0, seed=11,
    churn=ChurnProfile(churn_interval_s=2.0, discovery_interval_s=1.0,
                       hot_update_interval_s=3.0, read_interval_s=1.0),
    telemetry=TelemetryConfig(cadence_s=1.0),
)


# ----------------------------------------------------------- merge determinism
def test_merged_series_byte_identical_across_1_2_8_workers():
    blobs = {}
    for workers in (1, 2, 8):
        result = run_scenario(SCENARIO, workers=workers)
        blobs[workers] = json.dumps(result.telemetry_document(),
                                    sort_keys=True)
    assert blobs[1] == blobs[2] == blobs[8]


def test_telemetry_does_not_change_workload_counters():
    """Sampling is read-only: the enabled run's merged metrics equal the
    disabled run's except ``sim.events`` (the sampling ticks)."""
    with_telemetry = run_scenario(SCENARIO, workers=1).merged
    disabled = SCENARIO.scaled(telemetry=None)
    without = run_scenario(disabled, workers=1).merged
    on = dict(with_telemetry["counters"])
    off = dict(without["counters"])
    assert on.pop("sim.events") > off.pop("sim.events")
    assert on == off
    assert with_telemetry["gauges"] == without["gauges"]
    assert with_telemetry["histograms"] == without["histograms"]


def test_disabled_mode_attaches_nothing():
    spec = SCENARIO.scaled(telemetry=None).shards()[0]
    deployment = ShardDeployment(spec)
    assert deployment.telemetry is None
    snapshot = deployment.run().snapshot()
    assert "telemetry" not in snapshot


# ------------------------------------------------------------- document shape
def test_document_covers_every_layer_and_validates():
    result = run_scenario(SCENARIO, workers=1)
    document = result.telemetry_document()
    names = {series["name"] for series in document["series"]}
    assert {"energy_joules_total", "energy_category_joules_total",
            "radio_tx_bytes_total", "radio_rx_bytes_total",
            "radio_duty_cycle", "reads_sent_total",
            "reliability_retransmits_total", "pending_requests",
            "kernel_queue_depth", "vm_queue_depth",
            "vm_cycles_total", "sim_events_total"} <= names
    # Level gauges keep per-shard trajectories for every shard.
    shards = {series["labels"].get("shard")
              for series in document["series"]
              if series["name"] == "kernel_queue_depth"}
    assert shards == {"0", "1", "2", "3"}
    assert validate_openmetrics(
        to_openmetrics(document, history=True)) == []


def test_per_node_series_and_energy_consistency():
    scenario = SCENARIO.scaled(
        telemetry=TelemetryConfig(cadence_s=1.0, per_node=True))
    result = run_scenario(scenario, workers=1)
    document = result.telemetry_document()
    node_series = [series for series in document["series"]
                   if series["name"] == "node_energy_joules_total"]
    assert len(node_series) == scenario.things
    # Per-node energies sum to the fleet total at the final timestamp.
    fleet = next(series for series in document["series"]
                 if series["name"] == "energy_joules_total")
    total = sum(series["samples"][-1][1] for series in node_series)
    assert total == pytest.approx(fleet["samples"][-1][1])
    # And the final telemetry sample agrees with the end-of-run gauge.
    assert fleet["samples"][-1][1] == pytest.approx(
        result.merged["gauges"]["energy.things_joules"])


def test_trace_exemplars_attach_to_advancing_counters():
    scenario = SCENARIO.scaled(trace=True)
    result = run_scenario(scenario, workers=1)
    document = result.telemetry_document()
    exemplars = [series for series in document["series"]
                 if series.get("exemplars")]
    assert exemplars, "traced run should attach exemplars"
    text = to_openmetrics(document, history=True)
    assert "trace_id" in text
    assert validate_openmetrics(text) == []


# -------------------------------------------------------------- chaos + health
def test_burst_campaign_shows_degradation_then_recovery():
    result = run_campaign(CAMPAIGNS["burst"], seed=1)
    health = result.verdict["health"]
    rule = health["rules"]["read_completion"]
    assert rule["degraded"] >= 1, "loss burst must crater a window"
    assert rule["status"] == "recovered"
    assert health["status"] == "recovered"
    assert result.violations == 0
    # The degraded windows overlap the burst (t in [10s, 18s]).
    bad = [w for w in rule["windows"] if not w["ok"]]
    assert any(w["t0_s"] < 18.0 and w["t1_s"] > 10.0 for w in bad)


def test_campaign_verdict_health_is_seed_reproducible():
    a = run_campaign(CAMPAIGNS["burst"], seed=2).verdict
    b = run_campaign(CAMPAIGNS["burst"], seed=2).verdict
    assert a["digest"] == b["digest"]
    assert a["health"] == b["health"]


# ------------------------------------------- reliability counters vs the wire
def _request_identity(datagram):
    """(src, dst, type, seq) for reliability-carrying messages."""
    payload = datagram.payload
    if not payload:
        return None
    try:
        message = proto.decode_message(payload)
    except proto.ProtocolError:
        return None
    seq = getattr(message, "seq", None)
    if seq is None:
        return None
    return (datagram.src.value, str(datagram.dst), payload[0], seq)


#: Message types (re)transmitted by the reliability layer's sender side:
#: client reads/streams, Thing install requests, manager uploads.
_REQUEST_TYPES = {
    proto.MsgType.READ_REQUEST.value,
    proto.MsgType.STREAM_REQUEST.value,
    proto.MsgType.DRIVER_INSTALL_REQUEST.value,
    proto.MsgType.DRIVER_UPLOAD.value,
}


@pytest.mark.parametrize("seed", [1, 5])
def test_reliability_counters_match_delivered_datagram_log(seed):
    """On a loss-only plan, every wire-level duplicate of a request-type
    datagram is either a reliability retransmission or the manager
    re-answering a duplicate install request — the counters must account
    for the wire log exactly, and the telemetry series must agree with
    the metrics counter."""
    campaign = CAMPAIGNS["lossy"]
    spec = campaign.scenario.scaled(seed=seed).shards()[0]
    deployment = ShardDeployment(spec)
    engine = ChaosEngine(
        deployment.sim, deployment.network, deployment.things,
        deployment.rng.fork("chaos").stream("inject"),
    )
    sent = Counter()
    delivered = Counter()

    def on_sent(src_id, datagram):
        del src_id
        identity = _request_identity(datagram)
        if identity is not None:
            sent[identity] += 1

    def on_delivered(node_id, datagram):
        del node_id
        identity = _request_identity(datagram)
        if identity is not None:
            delivered[identity] += 1

    deployment.network.add_monitor(on_sent)
    deployment.network.add_delivery_monitor(on_delivered)
    horizon_s = spec.scenario.duration_s + campaign.grace_s
    engine.arm(FaultPlan(name="loss", bursts=(
        LinkBurst(start_s=0.0, end_s=horizon_s, drop_probability=0.30),
    )))
    deployment.start()
    deployment.sim.run_until(ns_from_s(spec.scenario.duration_s))
    deployment.sim.drain(ShardDeployment.CHURN_EVENT_NAMES)
    deployment.sim.run_until(ns_from_s(horizon_s))
    deployment.finalize()
    engine.disarm()

    counters = deployment.metrics.snapshot()["counters"]
    retransmits = counters.get("reliability.retransmits", 0)
    dup_installs = counters.get("manager.duplicate_install_requests", 0)
    assert retransmits > 0, "30% loss must force retransmissions"

    # Loss never invents datagrams: for unicast request traffic,
    # deliveries <= transmissions, identity by identity.  (Multicast
    # discoveries legitimately deliver one send to many nodes.)
    for identity, count in delivered.items():
        if identity[2] in _REQUEST_TYPES:
            assert count <= sent[identity]

    wire_duplicates = sum(
        count - 1 for identity, count in sent.items()
        if count > 1 and identity[2] in _REQUEST_TYPES
    )
    assert wire_duplicates == retransmits + dup_installs

    # The telemetry trajectory's final value agrees with the counter.
    series = deployment.telemetry.bank.get("reliability_retransmits_total")
    assert series is not None
    assert series.last[1] == retransmits
