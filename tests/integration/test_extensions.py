"""Integration tests for the §9 extensions in the full system."""

import pytest

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import TMP36_ID, make_peripheral_board, populate_registry
from repro.net.network import Network
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry


def zoned_world(seed=31):
    """Two Things with TMP36s in different zones + one client."""
    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    kitchen = Thing(sim, net, 0, rng=rng.fork("kitchen"), zone=1)
    garage = Thing(sim, net, 1, rng=rng.fork("garage"), zone=2)
    client = Client(sim, net, 2)
    manager = Manager(sim, net, 3, registry)
    for a in range(4):
        for b in range(a + 1, 4):
            net.connect(a, b)
    net.build_dodag(3)
    kitchen.plug(make_peripheral_board("tmp36", rng=rng.stream("m1")))
    garage.plug(make_peripheral_board("tmp36", rng=rng.stream("m2")))
    sim.run_for(ns_from_s(4.0))
    return sim, net, kitchen, garage, client


def test_zoned_things_join_location_groups():
    sim, net, kitchen, garage, client = zoned_world()
    from repro.net.multicast import location_group

    assert net.group_members(location_group(net.prefix48, TMP36_ID, 1)) == {0}
    assert net.group_members(location_group(net.prefix48, TMP36_ID, 2)) == {1}
    assert kitchen.events_of("location-group-joined")


def test_zone_scoped_discovery_filters_by_location():
    sim, net, kitchen, garage, client = zoned_world()
    found_kitchen, found_garage, found_all = [], [], []
    client.discover(TMP36_ID, lambda r: found_kitchen.extend(r), zone=1)
    sim.run_for(ns_from_s(2.0))
    client.discover(TMP36_ID, lambda r: found_garage.extend(r), zone=2)
    sim.run_for(ns_from_s(2.0))
    client.discover(TMP36_ID, lambda r: found_all.extend(r))
    sim.run_for(ns_from_s(2.0))
    assert [f.thing for f in found_kitchen] == [kitchen.address]
    assert [f.thing for f in found_garage] == [garage.address]
    assert {f.thing for f in found_all} == {kitchen.address, garage.address}


def test_discovery_in_empty_zone_finds_nothing():
    sim, net, kitchen, garage, client = zoned_world()
    found = []
    client.discover(TMP36_ID, lambda r: found.extend(r), zone=7)
    sim.run_for(ns_from_s(2.0))
    assert found == []


def test_unplug_leaves_location_group():
    sim, net, kitchen, garage, client = zoned_world()
    from repro.net.multicast import location_group

    kitchen.unplug(0)
    sim.run_for(ns_from_s(2.0))
    assert net.group_members(location_group(net.prefix48, TMP36_ID, 1)) == set()


def test_structured_id_end_to_end():
    """A vendor allocates a structured id; the whole pipeline runs on it."""
    from repro.core.namespace import DeviceClass, VendorRegistry
    from repro.hw.connector import BusKind
    from repro.hw.peripheral_board import PeripheralBoard
    from repro.peripherals.tmp36 import Tmp36

    sim = Simulator()
    net = Network(sim, rng=RngRegistry(8))
    rng = RngRegistry(8)
    registry = Registry()
    vendors = VendorRegistry()
    vendor = vendors.register_vendor("Example Sensing Co.")
    structured = vendors.allocate_product(vendor, DeviceClass.TEMPERATURE)
    device_id = structured.to_device_id()

    record = registry.request_address(
        name="SM-300", organization="Example Sensing Co.",
        email="dev@example.test", url="https://example.test/sm300",
        bus=BusKind.ADC, preferred_id=device_id,
    )
    registry.upload_driver(device_id, (
        "import adc;\nbool busy;\n"
        "event init():\n"
        "    signal adc.init(ADC_RES_10BIT, ADC_REF_VDD);\n"
        "    busy = false;\n"
        "event destroy():\n    signal adc.reset();\n"
        "event read():\n"
        "    if !busy:\n        busy = true;\n        signal adc.read();\n"
        "event data(uint16_t counts):\n"
        "    busy = false;\n"
        "    return counts * 3300 / 1023 - 500;\n"
    ))

    thing = Thing(sim, net, 0, rng=rng.fork("t"))
    client = Client(sim, net, 1)
    manager = Manager(sim, net, 2, registry)
    for a, b in ((0, 1), (0, 2), (1, 2)):
        net.connect(a, b)
    net.build_dodag(2)

    from repro.peripherals.base import Environment

    board = PeripheralBoard.manufacture(
        device_id, BusKind.ADC, device=Tmp36(env=Environment(temperature_c=19.0)),
        rng=rng.stream("mfg"),
    )
    thing.plug(board)
    sim.run_for(ns_from_s(3.0))
    values = []
    client.read(thing.address, device_id, values.append)
    sim.run_for(ns_from_s(2.0))
    assert values[0].value == pytest.approx(190, abs=6)
