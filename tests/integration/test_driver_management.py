"""Integration: manager-driven driver discovery, removal, proactive push."""

import pytest

from repro.drivers.catalog import BMP180_ID, TMP36_ID, make_peripheral_board


def test_manager_discovers_installed_drivers(world):
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    inventories = []
    world.manager.discover_drivers(world.thing.address, inventories.append)
    world.run(2.0)
    assert inventories == [[TMP36_ID]]
    assert world.manager.known_inventories[world.thing.address.value] == (TMP36_ID,)


def test_manager_removes_driver_remotely(world):
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    statuses = []
    world.manager.remove_driver(world.thing.address, TMP36_ID, statuses.append)
    world.run(2.0)
    assert statuses == [0]
    assert not world.thing.drivers.has_driver(TMP36_ID)
    assert world.thing.drivers.active_channels() == {}


def test_removing_absent_driver_reports_failure(world):
    world.run(0.5)
    statuses = []
    world.manager.remove_driver(world.thing.address, BMP180_ID, statuses.append)
    world.run(2.0)
    assert statuses == [1]


def test_proactive_push_preinstalls_driver(world):
    assert world.manager.push_driver(world.thing.address, TMP36_ID)
    world.run(2.0)
    assert world.thing.drivers.has_driver(TMP36_ID)
    # A later plug then needs no install request at all.
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    assert world.manager.stats.install_requests == 0
    assert world.thing.drivers.active_channels() != {}


def test_push_unknown_driver_fails(world):
    from repro.hw.device_id import DeviceId

    assert not world.manager.push_driver(world.thing.address, DeviceId(0x999))


def test_discover_drivers_timeout_for_dead_thing(world):
    from repro.net.ipv6 import Ipv6Address

    results = []
    world.manager.discover_drivers(Ipv6Address.parse("2001:db8::99"),
                                   results.append, timeout_s=0.5)
    world.run(2.0)
    assert results == [None]


def test_anycast_reaches_nearest_manager_replica():
    """Two manager replicas on one anycast address (§5, [3])."""
    from tests.integration.conftest import build_world
    from repro.core.manager import Manager

    world = build_world(seed=5)
    # Second replica, farther from the Thing (behind the client).
    replica = Manager(world.sim, world.network, 9, world.registry)
    world.network.connect(1, 9)
    world.network.build_dodag(2)
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    # Only the nearest replica (node 2, one hop) serves the request.
    assert world.manager.stats.install_requests == 1
    assert replica.stats.install_requests == 0
    assert world.thing.drivers.has_driver(TMP36_ID)
