"""Integration: discovery, read, write and stream over the network."""

import pytest

from repro.drivers.catalog import (
    BMP180_ID,
    HIH4030_ID,
    ID20LA_ID,
    RELAY_ID,
    TMP36_ID,
    make_peripheral_board,
)
from repro.hw.device_id import ALL_PERIPHERALS, DeviceId
from repro.peripherals import Environment


def plug(world, kind, env=None):
    board = make_peripheral_board(kind, env, rng=world.rng.stream("mfg"))
    world.thing.plug(board)
    return board


# ------------------------------------------------------------------ discovery
def test_discovery_finds_matching_peripheral(world):
    plug(world, "tmp36")
    world.run(3.0)
    found = []
    world.client.discover(TMP36_ID, lambda res: found.extend(res))
    world.run(2.0)
    assert [f.device_id for f in found] == [TMP36_ID]
    assert found[0].thing == world.thing.address


def test_discovery_is_filtered_by_peripheral_type(world):
    plug(world, "tmp36")
    world.run(3.0)
    found = []
    # Nobody carries a BMP180, so its group has no members -> silence.
    world.client.discover(BMP180_ID, lambda res: found.extend(res))
    world.run(2.0)
    assert found == []


def test_discovery_of_all_peripherals_group(world):
    plug(world, "tmp36")
    plug(world, "bmp180")
    world.run(4.0)
    # Join the all-peripherals group on the Thing side is not part of the
    # paper; discovery of ALL uses the reserved id against a known Thing.
    found = []
    world.client.discover(DeviceId(ALL_PERIPHERALS),
                          lambda res: found.extend(res))
    world.run(2.0)
    # No Thing joined the reserved group, so multicast reaches nobody.
    assert found == []


def test_discovery_tlvs_carry_channel_and_label(world):
    from repro.protocol.tlv import TlvType, find

    plug(world, "tmp36")
    world.run(3.0)
    found = []
    world.client.discover(TMP36_ID, lambda res: found.extend(res))
    world.run(2.0)
    tlvs = list(found[0].entry.tlvs)
    assert find(tlvs, TlvType.CHANNEL) is not None
    assert "TMP36" in find(tlvs, TlvType.LABEL).as_text()


# ----------------------------------------------------------------- read/write
def test_remote_read_returns_sensor_value(world):
    env = Environment(temperature_c=30.0)
    plug(world, "tmp36", env)
    world.run(3.0)
    results = []
    world.client.read(world.thing.address, TMP36_ID, results.append)
    world.run(2.0)
    assert results[0].value == pytest.approx(300, abs=6)


def test_remote_read_bmp180_full_pipeline(world):
    env = Environment(temperature_c=21.0, pressure_pa=99_000.0)
    plug(world, "bmp180", env)
    world.run(3.0)
    results = []
    world.client.read(world.thing.address, BMP180_ID, results.append)
    world.run(3.0)
    assert results[0].value == pytest.approx(99_000, abs=10)


def test_remote_read_humidity(world):
    env = Environment(humidity_rh=62.0, temperature_c=25.0)
    plug(world, "hih4030", env)
    world.run(3.0)
    results = []
    world.client.read(world.thing.address, HIH4030_ID, results.append)
    world.run(2.0)
    assert results[0].value / 10 == pytest.approx(62.0, abs=1.5)


def test_remote_read_rfid_array(world):
    board = plug(world, "id20la")
    world.run(3.0)
    results = []
    world.client.read(world.thing.address, ID20LA_ID, results.append,
                      timeout_s=10.0)
    world.run(0.5)
    board.device.present_card("0123456789")
    world.run(3.0)
    assert results[0].is_array
    assert bytes(results[0].payload)[:10].decode() == "0123456789"


def test_read_unknown_device_fails_cleanly(world):
    plug(world, "tmp36")
    world.run(3.0)
    results = []
    world.client.read(world.thing.address, BMP180_ID, results.append)
    world.run(2.0)
    assert results[0] is not None and not results[0].ok


def test_read_timeout_when_thing_unreachable(world):
    from repro.net.ipv6 import Ipv6Address

    results = []
    world.client.read(Ipv6Address.parse("2001:db8::77"), TMP36_ID,
                      results.append, timeout_s=0.5)
    world.run(2.0)
    assert results == [None]


def test_remote_write_actuates_relay(world):
    board = plug(world, "relay")
    world.run(3.0)
    acks = []
    world.client.write(world.thing.address, RELAY_ID, 1, acks.append)
    world.run(2.0)
    assert acks == [0]
    assert board.device.state
    world.client.write(world.thing.address, RELAY_ID, 0, acks.append)
    world.run(2.0)
    assert acks == [0, 0]
    assert not board.device.state


def test_write_to_sensor_without_write_handler_nacks(world):
    plug(world, "tmp36")
    world.run(3.0)
    acks = []
    world.client.write(world.thing.address, TMP36_ID, 5, acks.append)
    world.run(2.0)
    assert acks == [1]  # status 1 = failed


def test_relay_read_back(world):
    plug(world, "relay")
    world.run(3.0)
    acks, values = [], []
    world.client.write(world.thing.address, RELAY_ID, 1, acks.append)
    world.run(2.0)
    world.client.read(world.thing.address, RELAY_ID, values.append)
    world.run(2.0)
    assert values[0].value == 1


# -------------------------------------------------------------------- streams
def test_stream_lifecycle(world):
    env = Environment(temperature_c=25.0)
    plug(world, "tmp36", env)
    world.run(3.0)
    samples = []
    handles = []
    world.client.stream(
        world.thing.address, TMP36_ID, samples.append,
        interval_ms=1000, on_established=handles.append,
    )
    world.run(5.5)
    assert handles and handles[0] is not None
    assert 4 <= len(samples) <= 6
    assert all(s.value == pytest.approx(250, abs=6) for s in samples)

    handles[0].cancel()
    world.run(1.0)
    count = len(samples)
    world.run(4.0)
    assert len(samples) == count  # no samples after unsubscribe


def test_stream_closed_when_peripheral_unplugged(world):
    env = Environment(temperature_c=25.0)
    board = plug(world, "tmp36", env)
    world.run(3.0)
    closed = []
    samples = []
    world.client.stream(world.thing.address, TMP36_ID, samples.append,
                        interval_ms=1000, on_closed=lambda: closed.append(True))
    world.run(3.5)
    assert samples
    world.thing.unplug(0)
    world.run(3.0)
    assert closed == [True]


def test_stream_to_missing_peripheral_times_out(world):
    plug(world, "tmp36")
    world.run(3.0)
    outcomes = []
    world.client.stream(world.thing.address, BMP180_ID,
                        lambda s: None, interval_ms=500,
                        on_established=outcomes.append, timeout_s=1.0)
    world.run(3.0)
    assert outcomes == [None]


def test_stream_refcounting_two_subscribers(world):
    """Two clients share one stream; the Thing closes it only when the
    last subscriber leaves (messages 12-15 refcount semantics)."""
    from repro.core.client import Client

    env = Environment(temperature_c=25.0)
    plug(world, "tmp36", env)
    world.run(3.0)
    second = Client(world.sim, world.network, 9)
    world.network.connect(9, 0)
    world.network.connect(9, 2)
    world.network.build_dodag(2)

    first_samples, second_samples = [], []
    handles = {}
    world.client.stream(world.thing.address, TMP36_ID, first_samples.append,
                        interval_ms=1000,
                        on_established=lambda h: handles.setdefault("a", h))
    second.stream(world.thing.address, TMP36_ID, second_samples.append,
                  interval_ms=1000,
                  on_established=lambda h: handles.setdefault("b", h))
    world.run(4.0)
    assert first_samples and second_samples

    # First subscriber leaves: the stream keeps flowing for the second.
    handles["a"].cancel()
    world.run(1.0)
    first_count = len(first_samples)
    second_count = len(second_samples)
    world.run(3.0)
    assert len(first_samples) == first_count
    assert len(second_samples) > second_count

    # Last subscriber leaves: the Thing stops the stream entirely.
    handles["b"].cancel()
    world.run(1.0)
    final = len(second_samples)
    world.run(3.0)
    assert len(second_samples) == final
    assert world.thing.events_of("stream-stopped")
