"""Integration: the full plug-and-play pipeline of the paper."""

import pytest

from repro.drivers.catalog import TMP36_ID, make_peripheral_board
from repro.peripherals import Environment

PIPELINE = (
    "identification",
    "identified",
    "group-generated",
    "group-joined",
    "driver-requested",
    "driver-upload-received",
    "driver-installed",
    "driver-activated",
    "advertised",
)


def plug_tmp36(world, temperature=21.0):
    env = Environment(temperature_c=temperature)
    board = make_peripheral_board("tmp36", env, rng=world.rng.stream("mfg"))
    channel = world.thing.plug(board)
    return board, channel, env


def test_pipeline_event_order(world):
    plug_tmp36(world)
    world.run(3.0)
    kinds = [e.kind for e in world.thing.events]
    assert kinds == list(PIPELINE)
    times = [e.time_s for e in world.thing.events]
    assert times == sorted(times)


def test_identification_lands_in_paper_band(world):
    plug_tmp36(world)
    world.run(3.0)
    report_ms = float(world.thing.events_of("identification")[0].detail[:-2])
    assert 90 <= report_ms <= 330  # §6.1: the paper band is 220-300 ms


def test_driver_comes_from_manager(world):
    plug_tmp36(world)
    world.run(3.0)
    assert world.manager.stats.install_requests == 1
    assert world.manager.stats.uploads == 1
    assert world.thing.drivers.has_driver(TMP36_ID)


def test_thing_joins_peripheral_group(world):
    from repro.net.multicast import peripheral_group

    plug_tmp36(world)
    world.run(3.0)
    group = peripheral_group(world.network.prefix48, TMP36_ID)
    assert world.network.group_members(group) == {0}


def test_client_sees_unsolicited_advertisement(world):
    adverts = []
    world.client.on_advertisement(lambda src, entries: adverts.append(entries))
    plug_tmp36(world)
    world.run(3.0)
    assert len(adverts) == 1
    assert adverts[0][0].device_id == TMP36_ID


def test_replug_reuses_cached_driver(world):
    _, channel, _ = plug_tmp36(world)
    world.run(3.0)
    world.thing.unplug(channel)
    world.run(2.0)
    requests_before = world.manager.stats.install_requests
    plug_tmp36(world)
    world.run(3.0)
    # The driver is already in the local repository: no second request.
    assert world.manager.stats.install_requests == requests_before
    assert world.thing.events_of("driver-activated")


def test_unplug_tears_down_and_advertises(world):
    from repro.net.multicast import peripheral_group

    adverts = []
    world.client.on_advertisement(lambda src, entries: adverts.append(entries))
    _, channel, _ = plug_tmp36(world)
    world.run(3.0)
    world.thing.unplug(channel)
    world.run(2.0)
    assert adverts[-1] == []  # departure advertised with an empty list
    group = peripheral_group(world.network.prefix48, TMP36_ID)
    assert world.network.group_members(group) == set()
    assert world.thing.drivers.active_channels() == {}


def test_three_peripherals_on_one_thing(world):
    for kind in ("tmp36", "bmp180", "id20la"):
        board = make_peripheral_board(kind, rng=world.rng.stream("mfg"))
        world.thing.plug(board)
    world.run(6.0)
    assert len(world.thing.connected_peripherals()) == 3
    assert len(world.thing.drivers.active_channels()) == 3
    assert not world.thing.router.stats.traps


def test_unknown_peripheral_without_driver_stays_pending(world):
    from repro.hw.connector import BusKind
    from repro.hw.device_id import DeviceId
    from repro.hw.peripheral_board import PeripheralBoard

    board = PeripheralBoard.manufacture(
        DeviceId(0x71717171), BusKind.ADC, rng=world.rng.stream("mfg")
    )
    world.thing.plug(board)
    world.run(3.0)
    assert world.manager.stats.unknown_driver_requests == 1
    assert world.thing.drivers.active_channels() == {}
    assert not world.thing.events_of("driver-activated")


def test_energy_is_metered_per_category(world):
    plug_tmp36(world)
    world.run(3.0)
    categories = world.thing.meter.by_category()
    assert categories["identification"] > 0
    assert categories["mcu"] > 0
    assert categories["net-cpu"] > 0
