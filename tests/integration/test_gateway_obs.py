"""Integration tests for request-scoped gateway observability.

Covers the ISSUE-10 acceptance surface end to end: ``X-Request-Id``
threading into a connected wire->queue->sim trace, a golden-file gate
on the gateway trace envelope, obs-on/off replay-digest parity, 504
deadline observability, slow-WS-consumer drop accounting, the live
``/metrics`` exposition, and an induced SLO breach producing a flight
dump that carries the offending requests' traces.
"""

import asyncio
import base64
import json
from pathlib import Path

import pytest

from repro.fleet.scenario import SCENARIOS
from repro.gateway.bridge import GatewayBridge, Op
from repro.gateway.loadgen import HttpPool, discover_targets
from repro.gateway.obs import GatewayObsConfig
from repro.gateway.server import GatewayServer
from repro.gateway.wire import ws_accept
from repro.obs.export import filter_events, merge_traces
from repro.obs.report import request_index
from repro.telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    validate_openmetrics,
)

WARMUP_NS = 2_000_000_000

GOLDEN = (Path(__file__).resolve().parent.parent / "data"
          / "golden_gateway_trace.json")


def _traced_scenario():
    return SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11,
                                       trace=True)


def _trace_snapshots(bridge):
    return bridge.run_on_thread(
        lambda: [d.sim.tracer.snapshot() for d in bridge.deployments])


async def _up(scenario, **bridge_kwargs):
    bridge = GatewayBridge(scenario, **bridge_kwargs)
    server = await GatewayServer(bridge).start()
    await asyncio.wrap_future(bridge.submit(Op("advance", value=WARMUP_NS)))
    return bridge, server, HttpPool(server.host, server.port, 2)


# --------------------------------------------------------------------- tracing
@pytest.mark.asyncio
async def test_request_id_threads_into_connected_trace():
    """Satellite (c): an inbound X-Request-Id is echoed, lands in the
    result body's trace id, and the exported trace connects the gateway
    envelope to in-fleet layers (wire -> queue -> sim)."""
    bridge, server, pool = await _up(_traced_scenario())
    try:
        targets = await discover_targets(pool, 8, probe=True)
        thing, prop = targets[0]
        status, headers, body = await pool.request(
            "GET", f"/things/{thing}/properties/{prop}",
            headers={"X-Request-Id": "e2e-req-7"}, with_headers=True,
            timeout_s=60.0)
        assert status == 200
        assert headers["x-request-id"] == "e2e-req-7"
        trace_id = body["sim"]["trace_id"]
        assert isinstance(trace_id, int)

        merged = merge_traces(_trace_snapshots(bridge))
        assert request_index(merged).get("e2e-req-7") == [trace_id]
        events = filter_events(merged, trace_id=trace_id)
        cats = {e["cat"] for e in events}
        assert "gateway" in cats, cats
        assert cats & {"core", "net", "proto"}, (
            f"gateway trace not connected into the fleet layers: {cats}")
        names = {e["name"] for e in events if e["cat"] == "gateway"}
        assert "gateway.read" in names and "gateway.admit" in names
        await pool.close()
    finally:
        await server.close()
        bridge.close()


@pytest.mark.asyncio
async def test_generated_request_ids_are_unique_and_echoed():
    bridge, server, pool = await _up(_traced_scenario())
    try:
        seen = set()
        for _ in range(3):
            status, headers, _ = await pool.request(
                "GET", "/things", with_headers=True)
            assert status == 200
            seen.add(headers["x-request-id"])
        assert len(seen) == 3
        await pool.close()
    finally:
        await server.close()
        bridge.close()


# ----------------------------------------------------------------- golden file
def _golden_document():
    """Gateway-category trace events of a fixed, inline replay.

    Free pacing makes the whole document a pure function of
    ``(scenario, ops)``: sim timestamps, admission slots and trace ids
    are all deterministic, so the export can be golden-filed.
    """
    scenario = SCENARIOS["gateway"].scaled(things=4, shard_size=2, seed=7,
                                           trace=True)
    ops = [
        Op("advance", value=2_000_000_000),
        Op("install", thing=0, name="relay", request_id="golden-1"),
        Op("install", thing=1, name="warp-core", request_id="golden-2"),
        Op("install", thing=2, name="max6675", request_id="golden-3"),
        Op("advance", value=500_000_000),
    ]
    bridge = GatewayBridge.replay(scenario, ops)
    snapshots = [d.sim.tracer.snapshot() for d in bridge.deployments]
    merged = merge_traces(snapshots)
    return {"gateway": filter_events(merged, cat="gateway")}


def test_gateway_trace_envelope_matches_golden_file():
    document = _golden_document()
    rendered = json.dumps(document, indent=1, sort_keys=True) + "\n"
    assert rendered == GOLDEN.read_text(), (
        "gateway trace envelope drifted from "
        "tests/data/golden_gateway_trace.json; if the change is "
        "intentional, regenerate the golden file with "
        "tests/integration/test_gateway_obs.py::_golden_document")


def test_golden_trace_carries_request_ids_and_statuses():
    document = _golden_document()
    events = document["gateway"]
    assert events, "golden replay must produce gateway spans"
    ids = {(e.get("args") or {}).get("request_id") for e in events}
    # golden-2 is a catalogue-miss 404: rejected before admission, so
    # it never touches the sim and correctly emits no gateway span.
    assert {"golden-1", "golden-3"} <= ids
    assert "golden-2" not in ids
    statuses = {(e.get("args") or {}).get("status") for e in events
                if e["ph"] == "e"}
    assert statuses == {200}


# ------------------------------------------------------------ replay parity
@pytest.mark.asyncio
async def test_replay_digest_parity_obs_on_off():
    """The determinism contract of the tentpole: observability on or
    off, traced or not, the replayed digest is byte-identical and the
    sim-plane metrics view is a pure function of the request log."""
    bridge, server, pool = await _up(_traced_scenario())
    try:
        targets = await discover_targets(pool, 8, probe=True)
        for i in range(6):
            thing, prop = targets[i % len(targets)]
            await pool.request(
                "GET", f"/things/{thing}/properties/{prop}",
                headers={"X-Request-Id": f"parity-{i}"}, timeout_s=60.0)
        await pool.close()
        digest = bridge.run_on_thread(bridge.digest)
        live_view = bridge.run_on_thread(
            lambda: json.dumps(bridge.obs.deterministic_view(),
                               sort_keys=True))
        ops = bridge.log.ops()
    finally:
        await server.close()
        bridge.close()

    bare = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)
    replay_off = GatewayBridge.replay(
        bare, ops, obs=GatewayObsConfig(enabled=False))
    replay_on = GatewayBridge.replay(bare, ops)
    assert replay_off.obs is None
    assert replay_off.digest() == digest
    assert replay_on.digest() == digest
    assert json.dumps(replay_on.obs.deterministic_view(),
                      sort_keys=True) == live_view


# ------------------------------------------------------- deadline observability
@pytest.mark.asyncio
async def test_504_reports_op_target_and_sim_cost():
    """Satellite (b): an op-deadline 504 names the op and target and
    reports the simulated nanoseconds burned; the slow-op journal keeps
    the same request with its decomposition and request id."""
    bridge, server, pool = await _up(_traced_scenario())
    try:
        targets = await discover_targets(pool, 8, probe=True)
        thing, prop = targets[0]
        deployment, local = bridge._things[thing]
        bridge.run_on_thread(
            lambda: deployment.things[local].stack.set_down(True))

        status, body = await pool.request(
            "GET", f"/things/{thing}/properties/{prop}",
            headers={"X-Request-Id": "doomed-1"}, timeout_s=60.0)
        assert status == 504
        assert body["op"] == "read"
        assert body["thing"] == thing
        assert body["property"] == prop
        assert body["sim_ns_consumed"] > 0

        status, debug = await pool.request("GET", "/debug/ops")
        assert status == 200
        entry = next(r for r in debug["slowest"]
                     if r["request_id"] == "doomed-1")
        assert entry["status"] == 504
        assert entry["sim_latency_ns"] == body["sim_ns_consumed"]
        assert entry["queue_wait_ms"] is not None
        await pool.close()
    finally:
        await server.close()
        bridge.close()


# ------------------------------------------------------------- stream drops
@pytest.mark.asyncio
async def test_slow_ws_consumer_drops_are_counted_and_surfaced():
    """Satellite (a): a consumer that never reads overflows its
    depth-1 stream queue; the silent-drop counter surfaces in /healthz,
    /metrics and the obs summary instead of vanishing."""
    scenario = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)
    bridge = GatewayBridge(scenario)
    server = await GatewayServer(bridge, stream_queue_depth=1).start()
    pool = HttpPool(server.host, server.port, 2)
    try:
        reader, writer = await asyncio.open_connection(
            server.host, server.port)
        key = base64.b64encode(b"0123456789abcdef").decode()
        writer.write(
            (f"GET /stream HTTP/1.1\r\nHost: {server.host}\r\n"
             "Upgrade: websocket\r\nConnection: Upgrade\r\n"
             f"Sec-WebSocket-Key: {key}\r\n"
             "Sec-WebSocket-Version: 13\r\n\r\n").encode())
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert ws_accept(key).encode() in head

        # Never read a frame; burst telemetry through the bridge until
        # the depth-1 queue overflows.
        dropped = 0
        for _ in range(20):
            await asyncio.wrap_future(
                bridge.submit(Op("advance", value=2_000_000_000)))
            status, health = await pool.request("GET", "/healthz")
            assert status == 200
            dropped = health["stream_dropped"]
            if dropped > 0:
                break
        assert dropped > 0, "slow consumer never overflowed the queue"
        assert server.stats.stream_dropped == dropped

        status, _, text = await pool.request(
            "GET", "/metrics", with_headers=True)
        assert status == 200
        assert "gateway_stream_dropped_total" in text
        status, debug = await pool.request("GET", "/debug/ops")
        assert debug["summary"]["stream_dropped"] == dropped
        writer.close()
        await pool.close()
    finally:
        await server.close()
        bridge.close()


# ----------------------------------------------------------------- /metrics
@pytest.mark.asyncio
async def test_metrics_endpoint_serves_valid_openmetrics(gateway_server):
    server = await gateway_server()
    pool = HttpPool(server.host, server.port, 2)
    targets = await discover_targets(pool, 8, probe=True)
    thing, prop = targets[0]
    await pool.request("GET", f"/things/{thing}/properties/{prop}",
                       timeout_s=60.0)

    status, headers, text = await pool.request(
        "GET", "/metrics", with_headers=True)
    assert status == 200
    assert headers["content-type"] == OPENMETRICS_CONTENT_TYPE
    assert isinstance(text, str)
    assert validate_openmetrics(text) == []
    # Decomposition series, both planes, plus fleet telemetry ride-along.
    for name in ("gateway_ops_total", "gateway_queue_wait_ms",
                 "gateway_sim_exec_ms", "gateway_op_wall_ms",
                 "gateway_sim_latency_ms"):
        assert name in text, name
    await pool.close()
    await server.close()


# ------------------------------------------------------------ flight recorder
@pytest.mark.asyncio
async def test_induced_slo_degradation_dumps_flight_with_traces(tmp_path):
    """Acceptance: degrade the SLO during a live run; the flight dump
    must exist and carry the offending requests' traces."""
    config = GatewayObsConfig(
        flight_dir=str(tmp_path),
        slos=("impossible: gateway_sim_latency_ms.p95 < 0.000001 "
              "window=1",),
        slo_check_interval_s=0.0)
    bridge, server, pool = await _up(_traced_scenario(), obs=config)
    try:
        # Unprobed discovery keeps the victim reads as the first
        # admitted (sim-touching) ops, so the breach that arms the dump
        # is attributable to them.
        targets = await discover_targets(pool, 8)
        hits = 0
        for i, (thing, prop) in enumerate(targets):
            status, _ = await pool.request(
                "GET", f"/things/{thing}/properties/{prop}",
                headers={"X-Request-Id": f"victim-{i}"}, timeout_s=60.0)
            hits += status == 200
            if hits >= 2:
                break
        assert hits, "no readable property in the warm fleet"
        status, health = await pool.request("GET", "/healthz")
        assert health["slo"] == "degraded"
        dumps = sorted(tmp_path.glob("flight-*.json"))
        assert dumps, "degraded SLO must produce a flight dump"
        flight = json.loads(dumps[0].read_text())
        assert flight["reason"] == "slo-degraded"
        assert flight["slo"]["status"] == "degraded"
        traced = [r for r in flight["requests"]
                  if r.get("trace_id") is not None]
        assert traced, "dump must include the offending requests"
        assert any(r["request_id"].startswith("victim-") for r in traced)
        for record in traced:
            assert flight["traces"].get(str(record["trace_id"])), \
                "every traced request ships its trace events"
        assert flight["context"]["pacing"] == "free"
        await pool.close()
    finally:
        await server.close()
        bridge.close()
