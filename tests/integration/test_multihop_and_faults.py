"""Integration: multi-hop topologies, packet loss and fault behaviour."""

import pytest

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import TMP36_ID, make_peripheral_board, populate_registry
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.peripherals import Environment
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry


def line_world(hops=3, loss=0.0, seed=11):
    """manager(0) - relay nodes ... - thing(last); client hangs off root."""
    sim = Simulator()
    net = Network(sim, link=LinkModel(loss_probability=loss),
                  rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    manager = Manager(sim, net, 0, registry)
    client = Client(sim, net, 1)
    net.connect(0, 1)
    things = []
    previous = 0
    for index in range(hops):
        node_id = 2 + index
        things.append(Thing(sim, net, node_id, rng=rng.fork(f"t{node_id}")))
        net.connect(previous, node_id)
        previous = node_id
    net.build_dodag(0)
    return sim, net, registry, manager, client, things, rng


def test_ota_install_across_multiple_hops():
    sim, net, registry, manager, client, things, rng = line_world(hops=3)
    far_thing = things[-1]  # 3 hops from the manager
    far_thing.plug(make_peripheral_board("tmp36", rng=rng.stream("m")))
    sim.run_for(ns_from_s(6.0))
    assert far_thing.drivers.has_driver(TMP36_ID)
    assert far_thing.events_of("driver-activated")


def test_multihop_install_slower_than_one_hop():
    def request_duration(hops):
        sim, net, registry, manager, client, things, rng = line_world(hops=hops)
        thing = things[-1]
        thing.plug(make_peripheral_board("tmp36", rng=rng.stream("m")))
        sim.run_for(ns_from_s(8.0))
        requested = thing.events_of("driver-requested")[0].time_s
        received = thing.events_of("driver-upload-received")[0].time_s
        return received - requested

    assert request_duration(3) > request_duration(1)


def test_multicast_discovery_across_hops():
    sim, net, registry, manager, client, things, rng = line_world(hops=3)
    things[-1].plug(make_peripheral_board("tmp36", rng=rng.stream("m")))
    sim.run_for(ns_from_s(6.0))
    found = []
    client.discover(TMP36_ID, lambda res: found.extend(res), timeout_s=2.0)
    sim.run_for(ns_from_s(4.0))
    assert [f.thing for f in found] == [things[-1].address]


def test_advertisements_travel_down_the_tree_to_clients():
    sim, net, registry, manager, client, things, rng = line_world(hops=2)
    adverts = []
    client.on_advertisement(lambda src, entries: adverts.append(src))
    things[-1].plug(make_peripheral_board("tmp36", rng=rng.stream("m")))
    sim.run_for(ns_from_s(6.0))
    assert adverts == [things[-1].address]


def test_total_packet_loss_driver_never_arrives():
    sim, net, registry, manager, client, things, rng = line_world(
        hops=1, loss=1.0
    )
    thing = things[0]
    thing.plug(make_peripheral_board("tmp36", rng=rng.stream("m")))
    sim.run_for(ns_from_s(5.0))
    assert thing.events_of("driver-requested")  # the Thing tried
    assert not thing.drivers.has_driver(TMP36_ID)
    assert net.stats.frames_lost > 0


def test_moderate_loss_read_eventually_times_out_or_succeeds():
    sim, net, registry, manager, client, things, rng = line_world(
        hops=1, loss=0.3, seed=13
    )
    thing = things[0]
    env = Environment(temperature_c=20.0)
    thing.plug(make_peripheral_board("tmp36", env, rng=rng.stream("m")))
    sim.run_for(ns_from_s(8.0))
    outcomes = []
    for _ in range(5):
        client.read(thing.address, TMP36_ID, outcomes.append, timeout_s=1.5)
        sim.run_for(ns_from_s(2.0))
    assert len(outcomes) == 5  # every request resolved: reply or timeout
    successes = [o for o in outcomes if o is not None and o.ok]
    if thing.drivers.has_driver(TMP36_ID):
        assert successes  # when the driver made it, some reads succeed


def test_corrupted_driver_image_rejected(world):
    """A manager serving a corrupted image must not crash the Thing."""
    from repro.protocol.messages import DriverUpload
    from repro.net.packets import UPNP_PORT

    world.run(0.2)
    bad = DriverUpload(1, TMP36_ID, b"\xde\xad\xbe\xef" * 10)
    world.manager.stack.sendto(world.thing.address, UPNP_PORT, bad.encode(),
                               src_port=UPNP_PORT)
    world.run(2.0)
    assert world.thing.events_of("driver-rejected")
    assert not world.thing.drivers.has_driver(TMP36_ID)


def test_garbage_datagram_ignored(world):
    from repro.net.packets import UPNP_PORT

    world.run(0.2)
    world.client.stack.sendto(world.thing.address, UPNP_PORT,
                              b"\xff\x00garbage", src_port=UPNP_PORT)
    world.run(1.0)
    assert world.thing.events_of("bad-message")
