"""Checkpoint/restore digest parity — the ISSUE 6 acceptance gate.

A shard checkpointed at T and resumed must finish byte-identical to
the uninterrupted run: same merged metrics digest, same telemetry
document, same chaos verdict.  Exercised over several seeds, with and
without worker-pool fan-out, because both the serial and process paths
must restore through the same pickle-safe surface.
"""

import pytest

from repro.fleet.runner import CheckpointPlan, resume_scenario, run_scenario
from repro.fleet.scenario import SCENARIOS
from repro.snapshot.checkpoint import digest_document
from repro.telemetry.config import TelemetryConfig


def _scenario(seed, telemetry=None):
    return SCENARIOS["smoke"].scaled(
        things=6, shard_size=3, duration_s=4.0, seed=seed,
        telemetry=telemetry,
    )


@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("workers", [1, 2])
def test_resume_matches_uninterrupted_run(tmp_path, seed, workers):
    scenario = _scenario(seed)
    ckpt = tmp_path / f"ckpt-{seed}-{workers}"
    baseline = run_scenario(scenario, workers=workers)
    checkpointed = run_scenario(
        scenario, workers=workers,
        checkpoint=CheckpointPlan(directory=str(ckpt), at_s=2.0),
    )
    resumed = resume_scenario(ckpt, workers=workers)
    want = digest_document(baseline.merged)
    assert digest_document(checkpointed.merged) == want
    assert digest_document(resumed.merged) == want


def test_telemetry_fleet_parity(tmp_path):
    scenario = _scenario(5, telemetry=TelemetryConfig(cadence_s=1.0))
    ckpt = tmp_path / "ckpt-telemetry"
    baseline = run_scenario(scenario, workers=2)
    run_scenario(scenario, workers=2,
                 checkpoint=CheckpointPlan(directory=str(ckpt), at_s=2.0))
    resumed = resume_scenario(ckpt, workers=2)
    assert digest_document(resumed.merged) == \
        digest_document(baseline.merged)
    assert digest_document(resumed.telemetry_document()) == \
        digest_document(baseline.telemetry_document())


def test_periodic_checkpoints_resume_from_the_last(tmp_path):
    scenario = _scenario(3)
    ckpt = tmp_path / "ckpt-every"
    baseline = run_scenario(scenario, workers=1)
    run_scenario(scenario, workers=1,
                 checkpoint=CheckpointPlan(directory=str(ckpt), every_s=1.0))
    resumed = resume_scenario(ckpt, workers=1)
    assert digest_document(resumed.merged) == \
        digest_document(baseline.merged)


@pytest.mark.parametrize("name,seed", [("lossy", 2), ("burst", 1)])
def test_chaos_verdict_unchanged_by_checkpoint_roundtrip(name, seed):
    """The mid-campaign snapshot/restore swap must not perturb the
    campaign outcome: the verdict (minus the roundtrip invariant entry
    itself and the digest that covers it) is identical either way."""
    from repro.chaos.campaign import CAMPAIGNS, run_campaign

    def stripped(verdict):
        verdict = dict(verdict)
        verdict.pop("digest", None)
        invariants = dict(verdict.get("invariants", {}))
        invariants.pop("checkpoint-roundtrip", None)
        verdict["invariants"] = invariants
        return verdict

    campaign = CAMPAIGNS[name]
    with_check = run_campaign(campaign, seed, snapshot_check=True)
    without = run_campaign(campaign, seed, snapshot_check=False)
    roundtrip = with_check.verdict["invariants"]["checkpoint-roundtrip"]
    assert roundtrip["ok"], roundtrip["violations"]
    assert stripped(with_check.verdict) == stripped(without.verdict)
    assert with_check.verdict["violations"] == \
        without.verdict["violations"]
