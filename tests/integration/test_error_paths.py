"""Integration: the prioritized error-event path end to end (§4.1).

Error events from native libraries must reach the driver's ``error``
handlers ahead of queued regular events, and a driver responding to an
error with ``signal this.destroy()`` must end up cleanly deconfigured.
"""

import pytest

from repro.dsl.compiler import compile_source
from repro.interconnect.adc import AdcBus
from repro.interconnect.uart import UartBus
from repro.sim.kernel import Simulator
from repro.vm.driver_manager import DriverManager
from repro.vm.router import EventRouter

BAD_CONFIG_DRIVER = """\
import adc;

int32_t state;

event init():
    state = 1;
    # 12-bit resolution is not supported: the native library raises
    # invalidConfiguration as a prioritized error event.
    signal adc.init(12, ADC_REF_VDD);

event destroy():
    state = 0;
    signal adc.reset();

event read():
    signal adc.read();

event data(uint16_t counts):
    return counts;

error invalidConfiguration():
    signal this.destroy();
"""

ERROR_PRIORITY_DRIVER = """\
import adc;

uint8_t log[8];
uint8_t idx;

event init():
    idx = 0;

event destroy():
    idx = 0;

event tick():
    log[idx++] = 1;

error invalidConfiguration():
    log[idx++] = 9;
"""


class Volts:
    def voltage_v(self):
        return 1.0


def runtime_for(source, bus=None):
    sim = Simulator()
    router = EventRouter(sim)
    manager = DriverManager(sim, router)
    image = compile_source(source, device_id=0x42)
    manager.install(image)
    if bus is None:
        bus = AdcBus()
        bus.attach(Volts())
    runtime = manager.activate(0, 0x42, bus)
    return sim, router, manager, runtime


def test_invalid_configuration_triggers_destroy_chain():
    sim, router, manager, runtime = runtime_for(BAD_CONFIG_DRIVER)
    sim.run()
    # init set state=1, the error handler signalled destroy -> state=0.
    assert runtime.instance.scalar(0) == 0
    assert router.stats.errors_dispatched == 1
    assert not router.stats.traps


def test_error_events_overtake_queued_regular_events():
    sim, router, manager, runtime = runtime_for(ERROR_PRIORITY_DRIVER)
    sim.run()
    # Queue three regular ticks, then an error, before draining.
    for _ in range(3):
        runtime.post_event("tick")
    runtime.post_event("invalidConfiguration", error=True)
    sim.run()
    log_slot = next(
        i for i, s in enumerate(runtime.instance.image.slots) if s.is_array
    )
    entries = [v for v in runtime.instance.array(log_slot) if v]
    # The error (9) was dispatched before the queued ticks (1).
    assert entries[0] == 9
    assert entries[1:] == [1, 1, 1]


def test_uart_timeout_error_resets_driver_state():
    from repro.drivers.catalog import CATALOG

    sim = Simulator()
    router = EventRouter(sim)
    manager = DriverManager(sim, router)
    image = compile_source(CATALOG["id20la"].dsl_source(), 0xBE03AF0E)
    manager.install(image)
    bus = UartBus(sim)
    runtime = manager.activate(0, 0xBE03AF0E, bus)
    sim.run()
    pending = []
    runtime.request_read(pending.append)
    sim.run()
    # Listing 1's timeOut handler: busy = false; idx = 0.
    runtime.post_event("timeOut", error=True)
    sim.run()
    busy_slot = next(
        i for i, s in enumerate(image.slots)
        if not s.is_array and s.type.name == "bool"
    )
    assert runtime.instance.scalar(busy_slot) == 0
    # The driver accepts a new read afterwards (busy was cleared).
    assert runtime.request_read(pending.append)
    sim.run()
    assert not router.stats.traps
