"""Integration: chaos campaigns, graceful degradation, differential replay.

Covers the PR's acceptance criteria end to end: under the 30% loss
campaign at least 99% of client reads and driver installs complete via
retransmission with zero duplicate side effects, a crashed mote leaves
its neighbours unaffected and re-advertises after reboot, and the same
(campaign, seed) replays to a byte-identical verdict.
"""

import pytest

from repro.chaos.__main__ import SMOKE_SEEDS
from repro.chaos.campaign import CAMPAIGNS, run_campaign
from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import TMP36_ID, make_peripheral_board, populate_registry
from repro.net.network import Network
from repro.peripherals import Environment
from repro.protocol.reliability import RetryPolicy
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry

# ------------------------------------------------- acceptance: 30% loss


def test_lossy_campaign_meets_99_percent_completion():
    """Aggregated over the smoke seeds: >=99% reads and installs land."""
    reads_sent = reads_ok = requests = installs = failures = 0
    for seed in SMOKE_SEEDS:
        result = run_campaign(CAMPAIGNS["lossy"], seed)
        assert result.violations == 0, result.verdict["invariants"]
        rec = result.verdict["recoveries"]
        assert rec["retransmits"] > 0  # recovery really went through retry
        reads_sent += rec["reads_sent"]
        reads_ok += rec["reads_ok"]
        requests += rec["driver_requests"]
        installs += rec["driver_installs"]
        failures += rec["driver_request_failures"]
    assert reads_sent > 0 and requests > 0
    assert reads_ok / reads_sent >= 0.99
    assert installs >= requests - failures
    assert failures / requests <= 0.01


def test_mayhem_campaign_recovers_from_compound_faults():
    result = run_campaign(CAMPAIGNS["mayhem"], 1)
    assert result.violations == 0, result.verdict["invariants"]
    injected = result.verdict["faults"]["injected"]
    assert injected["crashes"] == injected["reboots"] == 1
    assert injected["drops"] > 0
    rec = result.verdict["recoveries"]
    assert rec["reads_ok"] > 0
    # The crashed mote (shard-local thing 0) came back and re-advertised.
    thing = result.deployments[0].things[0]
    kinds = [e.kind for e in thing.events]
    assert "crashed" in kinds and "rebooted" in kinds
    reboot_s = thing.events_of("rebooted")[0].time_s
    assert any(e.kind == "advertised" and e.time_s > reboot_s
               for e in thing.events)


# ------------------------------------------------- differential replay


def test_campaign_replay_is_byte_identical():
    first = run_campaign(CAMPAIGNS["lossy"], 7, trace=True)
    second = run_campaign(CAMPAIGNS["lossy"], 7, trace=True)
    assert first.to_json() == second.to_json()
    assert first.digest == second.digest
    assert first.verdict["trace_digest"] == second.verdict["trace_digest"]


def test_different_seeds_diverge():
    a = run_campaign(CAMPAIGNS["lossy"], 1)
    b = run_campaign(CAMPAIGNS["lossy"], 2)
    assert a.digest != b.digest


# --------------------------------------------- graceful degradation


def _two_thing_world(seed=42):
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    retry = RetryPolicy(max_attempts=2, base_backoff_s=0.4, multiplier=2.0,
                        max_backoff_s=1.0, jitter_frac=0.0)
    things = [
        Thing(sim, network, node, rng=rng.fork(f"thing{node}"))
        for node in (0, 1)
    ]
    client = Client(sim, network, 2, retry=retry)
    manager = Manager(sim, network, 3, registry)
    nodes = [0, 1, 2, 3]
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            network.connect(a, b)
    network.build_dodag(3)
    for index, thing in enumerate(things):
        board = make_peripheral_board(
            "tmp36", Environment(temperature_c=20.0 + index),
            rng=rng.fork(f"mfg{index}").stream("mfg"),
        )
        thing.plug(board)
    sim.run_until(ns_from_s(3.0))  # both pipelines complete
    return sim, network, things, client, manager


def test_crashed_mote_does_not_disturb_neighbours():
    sim, network, things, client, manager = _two_thing_world()
    assert all(t.drivers.has_driver(TMP36_ID) for t in things)
    things[0].crash()

    healthy, dead = [], []
    client.read(things[1].address, TMP36_ID, healthy.append, timeout_s=2.0)
    client.read(things[0].address, TMP36_ID, dead.append, timeout_s=2.0)
    sim.run_until(ns_from_s(8.0))

    assert len(healthy) == 1 and healthy[0] is not None and healthy[0].ok
    assert dead == [None]  # surfaced as a timeout, not silence
    assert client.pending_count() == 0


def test_reboot_restores_service_with_fresh_advertisement():
    sim, network, things, client, manager = _two_thing_world()
    advertisements = []
    client.on_advertisement(
        lambda source, entries: advertisements.append((source, entries)))
    things[0].crash()
    sim.run_until(ns_from_s(5.0))

    things[0].reboot()
    sim.run_until(ns_from_s(10.0))
    # Re-identification found the still-attached board and re-advertised.
    sources = [source for source, _ in advertisements]
    assert things[0].address in sources
    entries = [e for source, es in advertisements
               if source == things[0].address for e in es]
    assert any(entry.device_id == TMP36_ID for entry in entries)

    # Service is actually restored, driver reloaded from flash.
    results = []
    client.read(things[0].address, TMP36_ID, results.append, timeout_s=2.0)
    sim.run_until(ns_from_s(15.0))
    assert len(results) == 1 and results[0] is not None and results[0].ok


def test_crash_during_outage_drops_requests_silently_until_timeout():
    sim, network, things, client, manager = _two_thing_world()
    things[0].crash()
    outcomes = []
    manager.discover_drivers(things[0].address, outcomes.append,
                             timeout_s=1.0)
    sim.run_until(ns_from_s(6.0))
    assert outcomes == [None]
    assert manager.pending_count() == 0
    assert things[0].stack.stats.dropped_down > 0
