"""Integration: hardware-level fault injection at the identification layer.

Also documents a real limitation of passive-component identification:
with the default guard band (0.5 bins, i.e. guards tiling the whole
log-space), a resistor drifted by exactly one E96 step decodes
*silently* to the neighbouring identifier — detection of mis-stuffed
boards requires either out-of-range faults or a tighter guard.
"""

import random

import pytest

from repro.hw.components import Resistor
from repro.hw.connector import BusKind
from repro.hw.control_board import ControlBoard
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC, resistor_set_for_id
from repro.hw.peripheral_board import PeripheralBoard

DEVICE = DeviceId(0x11223344)


def board_with_fault(factor: float, *, stage: int = 2, seed: int = 3):
    """A board whose stage-*stage* resistor is scaled by *factor*."""
    rng = random.Random(seed)
    nominal = resistor_set_for_id(DEVICE)
    parts = []
    for index, ohms in enumerate(nominal):
        if index == stage:
            broken = ohms * factor
            parts.append(Resistor(broken, tolerance=0.99, actual_ohms=broken))
        else:
            parts.append(Resistor.manufacture(ohms, 0.005, rng))
    return PeripheralBoard(DEVICE, BusKind.ADC, tuple(parts), label="damaged")


def test_out_of_range_fault_is_rejected_not_misidentified():
    """A resistor hundreds of times out of band exceeds the last bin's guard: the
    decoder rejects the channel instead of inventing an identifier."""
    board = ControlBoard(rng=random.Random(1))
    channel = board.connect(board_with_fault(500.0))
    report = board.run_identification()
    assert channel not in report.identified()
    assert channel in report.errors()
    assert "bins away" in report.errors()[channel]


def test_one_bin_drift_silently_misidentifies():
    """Documented limitation: with guards tiling the space, a one-E96-step
    drift decodes to the adjacent byte — a plausible-but-wrong id."""
    board = ControlBoard(rng=random.Random(2))
    one_step = (DEFAULT_CODEC.resistance_for_byte(0x34)
                / DEFAULT_CODEC.resistance_for_byte(0x33))
    channel = board.connect(board_with_fault(one_step))
    report = board.run_identification()
    decoded = report.identified().get(channel)
    assert decoded is not None
    assert decoded != DEVICE
    assert decoded == DeviceId(0x11223444)  # third byte off by one


def test_tighter_guard_detects_the_same_drift():
    """Halving the guard creates a dead zone mid-bin: a half-step drift
    is then *rejected* instead of silently accepted."""
    params = CodecParams(guard_fraction=0.25)
    board = ControlBoard(params=params, rng=random.Random(3))
    half_step = (DEFAULT_CODEC.resistance_for_byte(0x34)
                 / DEFAULT_CODEC.resistance_for_byte(0x33)) ** 0.5
    channel = board.connect(board_with_fault(half_step))
    report = board.run_identification()
    assert channel not in report.identified()
    assert channel in report.errors()


def test_thing_ignores_rejected_peripheral():
    from tests.integration.conftest import build_world

    world = build_world(seed=17)
    world.thing.board.connect(board_with_fault(500.0))
    world.run(3.0)
    assert world.thing.events_of("identification")
    assert not world.thing.events_of("identified")
    assert world.thing.drivers.active_channels() == {}


def test_healthy_neighbor_unaffected_by_damaged_board():
    from repro.drivers.catalog import TMP36_ID, make_peripheral_board
    from tests.integration.conftest import build_world

    world = build_world(seed=18)
    world.thing.board.connect(board_with_fault(500.0), channel=1)
    world.thing.plug(make_peripheral_board("tmp36",
                                           rng=world.rng.stream("m")),
                     channel=0)
    world.run(3.0)
    assert world.thing.connected_peripherals() == {0: TMP36_ID}
    assert list(world.thing.drivers.active_channels()) == [0]
