"""End-to-end gateway tests: a real fleet behind a real HTTP server.

Every test boots the 8-Thing ``gateway`` scenario behind a
:class:`GatewayServer` on an ephemeral port, in-process, and talks to
it over actual sockets — TD fetches, property reads, action invokes,
error paths, WebSocket streaming, and the replay-determinism contract.
"""

import asyncio
import base64
import json

import pytest

from repro.gateway.bridge import GatewayBridge, Op
from repro.gateway.loadgen import HttpPool, discover_targets
from repro.gateway.wire import ws_accept

WARMUP_NS = 2_000_000_000


async def _client(server) -> HttpPool:
    return HttpPool(server.host, server.port, 2)


@pytest.mark.asyncio
async def test_directory_and_thing_descriptions(gateway_server):
    server = await gateway_server()
    pool = await _client(server)
    status, directory = await pool.request("GET", "/things")
    assert status == 200
    things = directory["things"]
    assert len(things) == 8
    assert things[0]["id"] == "urn:upnp:thing:0"
    assert things[0]["href"] == "/things/0"

    status, td = await pool.request("GET", "/things/0")
    assert status == 200
    assert td["@context"].startswith("https://www.w3.org/")
    assert td["id"] == "urn:upnp:thing:0"
    assert td["securityDefinitions"]["nosec_sc"]["scheme"] == "nosec"
    # The install action is always advertised; its enum is the catalogue.
    install = td["actions"]["install"]
    assert "relay" in install["input"]["properties"]["driver"]["enum"]
    # Every property points at a live endpoint under this thing.
    for name, prop in td["properties"].items():
        assert prop["forms"][0]["href"] == f"/things/0/properties/{name}"
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_property_read_and_error_paths(gateway_server):
    server = await gateway_server()
    pool = await _client(server)
    targets = await discover_targets(pool, 8, probe=True)
    assert targets, "warm fleet exposes at least one readable property"
    thing, prop = targets[0]

    status, body = await pool.request(
        "GET", f"/things/{thing}/properties/{prop}")
    assert status == 200
    assert body["property"] == prop
    assert isinstance(body["value"], int)
    assert body["sim"]["latency_ns"] > 0

    # Unknown property: service-level 404, never a sim-side exception.
    status, body = await pool.request(
        "GET", f"/things/{thing}/properties/definitely-not-a-sensor")
    assert status == 404
    # Unknown thing, malformed thing id, unknown route.
    assert (await pool.request("GET", "/things/999"))[0] == 404
    assert (await pool.request("GET", "/things/zeppelin"))[0] == 404
    assert (await pool.request("GET", "/nope"))[0] == 404
    # Wrong method on a GET route.
    assert (await pool.request("POST", "/nowhere"))[0] == 404
    assert (await pool.request("PUT", "/things"))[0] == 405
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_action_invocation(gateway_server):
    server = await gateway_server()
    pool = await _client(server)

    status, body = await pool.request(
        "POST", "/things/3/actions/install", body={"driver": "relay"})
    assert status == 200 and body["installed"] is True

    # Re-install is idempotent (dup-upload suppression on the Thing).
    status, body = await pool.request(
        "POST", "/things/3/actions/install", body={"driver": "relay"})
    assert status == 200

    status, _ = await pool.request(
        "POST", "/things/3/actions/install", body={"driver": "warp-core"})
    assert status == 404
    status, _ = await pool.request(
        "POST", "/things/3/actions/install", body={})
    assert status == 400
    # Write action against a board that is not plugged: 404.
    status, _ = await pool.request(
        "POST", "/things/3/actions/relay-write", body={"value": 1})
    assert status in (200, 404)  # depends on whether churn plugged a relay
    # Write without an integer value: 400 before touching the sim.
    status, _ = await pool.request(
        "POST", "/things/3/actions/relay-write", body={"value": "high"})
    assert status == 400
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_crashed_thing_times_out(gateway_server):
    server = await gateway_server()
    bridge = server.bridge
    pool = await _client(server)
    targets = await discover_targets(pool, 8, probe=True)
    thing, prop = targets[0]
    # Chaos hook: silence the Thing's radio behind the service's back.
    # (A full crash() also detaches peripherals, which the bridge would
    # correctly answer with 404; a downed stack keeps the board plugged
    # so the read is legal but never answered — the 504 path.)
    deployment, local = bridge._things[thing]
    bridge.run_on_thread(
        lambda: deployment.things[local].stack.set_down(True))

    status, body = await pool.request(
        "GET", f"/things/{thing}/properties/{prop}", timeout_s=60.0)
    assert status == 504
    assert "timed out" in body["error"]
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_healthz(gateway_server):
    server = await gateway_server(warmup_ns=0)
    pool = await _client(server)
    status, body = await pool.request("GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["things"] == 8
    assert body["pacing"] == "free"
    assert body["streams"] == 0
    # The silent-drop counter is surfaced (satellite of ISSUE 10) and
    # the health body names the SLO verdict when observability is on.
    assert body["stream_dropped"] == 0
    assert body["requests"] >= 1
    assert body["slo"] in ("no-data", "ok", "recovered", "degraded")
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_websocket_stream_delivers_fleet_events(gateway_server):
    server = await gateway_server()
    reader, writer = await asyncio.open_connection(server.host, server.port)
    key = base64.b64encode(b"0123456789abcdef").decode()
    writer.write(
        (f"GET /stream HTTP/1.1\r\nHost: {server.host}\r\n"
         "Upgrade: websocket\r\nConnection: Upgrade\r\n"
         f"Sec-WebSocket-Key: {key}\r\n"
         "Sec-WebSocket-Version: 13\r\n\r\n").encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b"101 Switching Protocols" in head
    assert ws_accept(key).encode() in head

    # Drive the fleet: one advance generates telemetry samples and
    # (via churn/reads processes) thing events.
    pool = await _client(server)
    await asyncio.wrap_future(
        server.bridge.submit(Op("advance", value=2_000_000_000)))
    targets = await discover_targets(pool, 8)
    if targets:
        await pool.request("GET",
                           f"/things/{targets[0][0]}/properties/"
                           f"{targets[0][1]}", timeout_s=60.0)

    async def read_frame():
        first, second = await reader.readexactly(2)
        length = second & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        payload = await reader.readexactly(length)
        return first & 0x0F, payload

    seen_types = set()
    for _ in range(50):
        opcode, payload = await asyncio.wait_for(read_frame(), timeout=30.0)
        assert opcode == 0x1
        message = json.loads(payload)
        seen_types.add(message["type"])
        if {"telemetry-sample", "client-event"} <= seen_types:
            break
    assert "telemetry-sample" in seen_types
    assert "client-event" in seen_types

    writer.close()
    await pool.close()
    await server.close()


@pytest.mark.asyncio
async def test_recorded_request_log_replays_to_identical_digest(
        gateway_scenario):
    from repro.gateway.server import GatewayServer

    bridge = GatewayBridge(gateway_scenario)
    server = await GatewayServer(bridge).start()
    pool = await _client(server)
    await asyncio.wrap_future(bridge.submit(Op("advance", value=WARMUP_NS)))
    # A concurrent burst: arrival interleaving on the loop is whatever
    # it is — the bridge's serialization is what replay reproduces.
    targets = await discover_targets(pool, 8, probe=True)
    jobs = []
    for i in range(20):
        thing, prop = targets[i % len(targets)]
        jobs.append(pool.request(
            "GET", f"/things/{thing}/properties/{prop}", timeout_s=60.0))
    jobs.append(pool.request("POST", "/things/5/actions/install",
                             body={"driver": "max6675"}))
    results = await asyncio.gather(*jobs)
    assert all(status in (200, 404, 504) for status, _ in results)
    await pool.close()
    await server.close()

    digest = bridge.run_on_thread(bridge.digest)
    ops = bridge.log.ops()
    bridge.close()

    replayed = GatewayBridge.replay(gateway_scenario, ops)
    assert replayed.digest() == digest
    assert [e["admitted_ns"] for e in replayed.log.entries] == \
        [e["admitted_ns"] for e in bridge.log.entries]
