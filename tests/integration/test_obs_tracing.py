"""Integration: cross-layer causal tracing, fleet trace merge, CLIs."""

import json

from repro.drivers.catalog import TMP36_ID, make_peripheral_board
from repro.fleet.runner import run_scenario
from repro.fleet.scenario import ChurnProfile, FleetScenario
from repro.obs.export import chrome_events
from repro.obs.smoke import read_trace_layers, traced_read
from repro.obs.tracer import install_tracer
from repro.protocol.trace import ProtocolTracer

#: Two shards so the merge actually has something to order.
TRACED_FLEET = FleetScenario(
    name="traced", things=4, shard_size=2, duration_s=6.0, seed=7,
    churn=ChurnProfile(churn_interval_s=2.0, discovery_interval_s=1.0,
                       hot_update_interval_s=3.0, read_interval_s=1.0),
    trace=True, trace_limit=20_000,
)


# --------------------------------------------------------------- causal chain
def test_one_client_read_becomes_one_multi_layer_trace():
    document, info = traced_read(hops=2)
    assert info["result"] is not None and info["result"].ok
    assert info["read_trace_id"] is not None
    # The single trace tree crosses client core, net, VM and the bus.
    assert {"net", "vm", "interconnect"} <= info["layers"]


def test_more_hops_mean_more_net_hop_slices_in_the_same_trace():
    def hop_slices(hops):
        document, info = traced_read(hops=hops)
        trace_id = info["read_trace_id"]
        return sum(
            1
            for event in document["traceEvents"]
            if event.get("ph") == "X" and event.get("name") == "net.hop"
            and event.get("args", {}).get("trace_id") == trace_id
        )

    one, three = hop_slices(1), hop_slices(3)
    assert one >= 2          # request + reply cross the radio at least once
    assert three > one       # every extra relay adds hops to the same trace


def test_trace_ids_ride_seq_numbers_across_the_wire(world):
    tracer = install_tracer(world.sim)
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(4.0)
    tracer.clear()
    results = []
    world.client.read(world.thing.address, TMP36_ID, results.append)
    world.run(2.0)
    assert results and results[0].ok
    trace_id, layers = read_trace_layers(
        {"traceEvents": chrome_events(tracer.snapshot())})
    # The Thing adopted the client's trace id from the message seq:
    # its rx instant and the VM/bus slices all belong to the read trace.
    assert trace_id is not None
    assert {"net", "vm", "interconnect"} <= layers


# ----------------------------------------------------------- tracer lifetimes
def test_protocol_tracer_installs_and_close_detaches(world):
    assert world.sim.tracer is None
    with ProtocolTracer(world.network) as tracer:
        assert world.sim.tracer is not None
        world.thing.plug(
            make_peripheral_board("tmp36", rng=world.rng.stream("m")))
        world.run(3.0)
        assert tracer.numbers() == [4, 5, 1]
    # close() uninstalled the tracer it created and restored the kernel.
    assert world.sim.tracer is None
    assert "step" not in world.sim.__dict__
    tracer.close()  # idempotent


def test_protocol_tracer_reuses_an_existing_tracer(world):
    existing = install_tracer(world.sim)
    tracer = ProtocolTracer(world.network)
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    assert tracer.numbers() == [4, 5, 1]
    tracer.close()
    assert world.sim.tracer is existing  # not ours to uninstall
    assert existing.enabled_for("proto")  # was already on; left alone


def test_network_remove_monitor_is_idempotent(world):
    seen = []

    class Monitor:
        def on_send(self, *args, **kwargs):
            seen.append(args)

    monitor = Monitor()
    world.network.add_monitor(monitor)
    world.network.remove_monitor(monitor)
    world.network.remove_monitor(monitor)  # second remove: no error
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    assert seen == []


# ----------------------------------------------------------------- fleet runs
def test_fleet_trace_merge_is_identical_for_any_worker_count():
    serial = run_scenario(TRACED_FLEET, workers=1)
    parallel = run_scenario(TRACED_FLEET, workers=2)
    assert serial.trace_document() == parallel.trace_document()
    # Shard traces exist and pids follow shard order.
    document = serial.trace_document()
    assert len(serial.shard_traces) == TRACED_FLEET.shard_count
    assert all(snap is not None for snap in serial.shard_traces)
    pids = sorted({event["pid"] for event in document["traceEvents"]})
    assert pids == [0, 1]


def test_untraced_fleet_has_no_shard_traces():
    result = run_scenario(TRACED_FLEET.scaled(trace=False), workers=1)
    assert result.shard_traces == [None, None]
    assert result.trace_document()["traceEvents"] == []


def test_fleet_cli_writes_a_loadable_trace(tmp_path, capsys):
    from repro.fleet.__main__ import main

    out = tmp_path / "fleet-trace.json"
    code = main(["--scenario", "smoke", "--nodes", "4", "--duration", "6",
                 "--trace", str(out)])
    assert code == 0
    document = json.loads(out.read_text())
    assert document["traceEvents"]
    assert "trace:" in capsys.readouterr().out


def test_obs_smoke_cli_passes_and_writes_the_trace(tmp_path, capsys):
    from repro.obs.__main__ import main

    out = tmp_path / "read-trace.json"
    assert main(["smoke", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["traceEvents"]
    assert main(["report", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "client.read" in stdout
    assert "critical path:" in stdout
