"""Integration tests: the cross-layer profiler over real fleet runs.

Covers the tentpole acceptance criteria end to end: merged profile
digests byte-identical across worker counts for several seeds, the
idle-gap report stable across a checkpoint/restore round-trip, the
profiler leaving workload counters untouched, and the ``repro.profile``
/ ``repro.fleet --profile`` CLIs producing the promised artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet.runner import CheckpointPlan, resume_scenario, run_scenario
from repro.fleet.scenario import ChurnProfile, FleetScenario
from repro.profile import (
    DEFAULT_PROFILE,
    deterministic_view,
    idle_report,
    merge_profiles,
    profile_digest,
)

#: Small fleet, several shards — enough parallelism to catch any
#: worker-count dependence in the merge.
SCENARIO = FleetScenario(
    name="profile-it", things=8, shard_size=2, duration_s=5.0, seed=21,
    churn=ChurnProfile(churn_interval_s=2.0, discovery_interval_s=1.0,
                       hot_update_interval_s=3.0, read_interval_s=1.0),
    profile=DEFAULT_PROFILE,
)


# ----------------------------------------------------------- determinism
@pytest.mark.parametrize("seed", [1, 7, 21])
def test_profile_digest_byte_identical_across_worker_counts(seed):
    scenario = SCENARIO.scaled(seed=seed)
    digests = {}
    for workers in (1, 2):
        result = run_scenario(scenario, workers=workers)
        digests[workers] = profile_digest(result.profile_document())
    assert digests[1] == digests[2]


def test_profile_collects_all_three_layers():
    result = run_scenario(SCENARIO, workers=1)
    merged = result.profile_document()
    assert merged["shards"] == [0, 1, 2, 3]
    assert merged["events"]  # kernel events recorded
    assert merged["vm"]["executions"] > 0  # opcode heat recorded
    assert merged["vm"]["images"]
    report = idle_report(merged)
    assert report["windows"] > 0
    assert 0.0 < report["idle_fraction"] <= 1.0
    assert report["periodic_names"]  # discovery/read timers classify


def test_profiling_does_not_change_workload_counters():
    """Profiling is read-only: enabled and disabled runs produce the
    same merged workload metrics, byte for byte."""
    enabled = run_scenario(SCENARIO, workers=1).merged
    disabled = run_scenario(SCENARIO.scaled(profile=None), workers=1).merged
    assert json.dumps(enabled, sort_keys=True, default=str) == \
        json.dumps(disabled, sort_keys=True, default=str)


# ------------------------------------------------------------ checkpoint
def test_idle_gap_report_stable_across_checkpoint_restore(tmp_path):
    baseline = run_scenario(SCENARIO, workers=1)
    run_scenario(SCENARIO, workers=1,
                 checkpoint=CheckpointPlan(directory=str(tmp_path),
                                           at_s=2.5))
    resumed = resume_scenario(tmp_path, workers=1)
    merged_a = baseline.profile_document()
    merged_b = resumed.profile_document()
    assert profile_digest(merged_a) == profile_digest(merged_b)
    assert idle_report(merged_a) == idle_report(merged_b)
    # The full deterministic plane survives, not just the digest.
    assert deterministic_view(merged_a) == deterministic_view(merged_b)


def test_profile_survives_rolling_retention_resume(tmp_path):
    baseline = run_scenario(SCENARIO, workers=2)
    run_scenario(SCENARIO, workers=2,
                 checkpoint=CheckpointPlan(directory=str(tmp_path),
                                           every_s=1.0, keep=2))
    resumed = resume_scenario(tmp_path, workers=2)
    assert profile_digest(resumed.profile_document()) == \
        profile_digest(baseline.profile_document())


# ------------------------------------------------------------------ CLIs
def test_profile_cli_run_writes_all_artifacts(tmp_path, capsys):
    from repro.profile.__main__ import main

    out = tmp_path / "prof"
    rc = main(["run", "--scenario", "smoke", "--nodes", "4",
               "--shard-size", "2", "--duration", "3", "--seed", "5",
               "--out", str(out), "--weight", "count"])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "hottest event kinds" in stdout
    assert "idle-gap analysis" in stdout
    document = json.loads((out / "profile.json").read_text())
    assert document["digest"] == profile_digest(document["merged"])
    assert (out / "profile.collapsed").read_text().strip()
    speedscope = json.loads((out / "profile.speedscope.json").read_text())
    assert speedscope["profiles"][0]["samples"]

    # report / diff subcommands re-render saved documents.
    assert main(["report", str(out / "profile.json")]) == 0
    assert main(["diff", str(out / "profile.json"),
                 str(out / "profile.json")]) == 0
    stdout = capsys.readouterr().out
    assert "profile diff" in stdout


def test_profile_cli_smoke_gate_passes(capsys):
    from repro.profile.__main__ import main

    assert main(["smoke", "--seeds", "1", "--duration", "3"]) == 0
    stdout = capsys.readouterr().out
    assert "profile smoke passed" in stdout


def test_fleet_cli_profile_flag_prints_report_and_writes_out(
        tmp_path, capsys):
    from repro.fleet.__main__ import main

    out = tmp_path / "prof"
    rc = main(["--scenario", "smoke", "--nodes", "4", "--shard-size", "2",
               "--duration", "3", "--seed", "5", "--profile",
               "--profile-out", str(out)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "profile:" in stdout
    assert "digest:" in stdout
    assert (out / "profile.json").exists()
    assert (out / "profile.collapsed").exists()
    assert (out / "profile.speedscope.json").exists()
