"""Integration: the traced message flows match Figures 10 and 11."""

import pytest

from repro.drivers.catalog import RELAY_ID, TMP36_ID, make_peripheral_board
from repro.protocol.messages import MsgType
from repro.protocol.trace import ProtocolTracer


def test_figure11_driver_management_flow(world):
    """Plug-in drives messages (4) request, (5) upload, (1) advertisement."""
    tracer = ProtocolTracer(world.network)
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    assert tracer.numbers() == [4, 5, 1]
    request, upload, advert = tracer.messages
    assert request.addressing == "unicast"         # to the manager anycast
    assert upload.addressing == "unicast"
    assert advert.addressing == "multicast/all-clients"
    # Sequence numbers associate the request and its upload (§5.2).
    assert upload.message.seq == request.message.seq


def test_figure10_discovery_flow(world):
    """Discovery: (2) multicast to the peripheral group, (3) unicast back."""
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    tracer = ProtocolTracer(world.network)
    found = []
    world.client.discover(TMP36_ID, found.extend)
    world.run(2.0)
    assert tracer.numbers() == [2, 3]
    discovery, solicited = tracer.messages
    assert discovery.addressing == "multicast/peripheral"
    assert solicited.addressing == "unicast"
    assert solicited.dst == world.client.address
    assert solicited.message.seq == discovery.message.seq


def test_figure11_read_and_write_flows(world):
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("a")))
    world.thing.plug(make_peripheral_board("relay", rng=world.rng.stream("b")))
    world.run(4.0)
    tracer = ProtocolTracer(world.network)
    world.client.read(world.thing.address, TMP36_ID, lambda r: None)
    world.run(2.0)
    world.client.write(world.thing.address, RELAY_ID, 1, lambda s: None)
    world.run(2.0)
    assert tracer.numbers() == [10, 11, 16, 17]
    assert all(t.addressing == "unicast" for t in tracer.messages)


def test_figure11_stream_flow(world):
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    tracer = ProtocolTracer(world.network)
    handles = []
    world.client.stream(world.thing.address, TMP36_ID, lambda s: None,
                        interval_ms=1000, on_established=handles.append)
    world.run(3.3)
    world.thing.unplug(0)
    world.run(2.0)
    numbers = tracer.numbers()
    # (12) stream request, (13) established, (14)xN data, ..., (15) closed.
    assert numbers[0] == 12
    assert numbers[1] == 13
    assert numbers.count(14) >= 2
    assert 15 in numbers
    established = tracer.of_type(MsgType.STREAM_ESTABLISHED)[0]
    data = tracer.of_type(MsgType.STREAM_DATA)[0]
    assert data.dst == established.message.group  # data goes to the group


def test_trace_render_is_readable(world):
    tracer = ProtocolTracer(world.network)
    world.thing.plug(make_peripheral_board("tmp36", rng=world.rng.stream("m")))
    world.run(3.0)
    text = tracer.render(title="Figure 11 flow")
    assert "Driver installation request" in text
    assert "Unsolicited peripheral advertisement" in text
    assert "multicast/all-clients" in text
