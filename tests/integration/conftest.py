"""Shared fixtures: a one-hop µPnP world with Thing, Client and Manager."""

from dataclasses import dataclass

import pytest

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import populate_registry
from repro.net.network import Network
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry


@dataclass
class World:
    sim: Simulator
    network: Network
    registry: Registry
    thing: Thing
    client: Client
    manager: Manager
    rng: RngRegistry

    def run(self, seconds: float) -> None:
        self.sim.run_for(ns_from_s(seconds))


def build_world(seed: int = 42, extra_things: int = 0) -> World:
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    thing = Thing(sim, network, 0, rng=rng.fork("thing0"))
    client = Client(sim, network, 1)
    manager = Manager(sim, network, 2, registry)
    nodes = [0, 1, 2]
    for index in range(extra_things):
        node_id = 3 + index
        Thing(sim, network, node_id, rng=rng.fork(f"thing{node_id}"))
        nodes.append(node_id)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            network.connect(a, b)
    network.build_dodag(2)
    return World(sim, network, registry, thing, client, manager, rng)


@pytest.fixture
def world() -> World:
    return build_world()


@pytest.fixture
def gateway_scenario():
    """A small, deterministic fleet for gateway end-to-end tests."""
    from repro.fleet.scenario import SCENARIOS

    return SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)


@pytest.fixture
def gateway_server(gateway_scenario):
    """A started GatewayServer on an ephemeral 127.0.0.1 port.

    Async fixture pattern without pytest-asyncio: yields a factory the
    (async) test awaits to get the running server; teardown closes the
    server and bridge on the test's own loop via the returned closer.
    """
    from repro.gateway.bridge import GatewayBridge, Op
    from repro.gateway.server import GatewayServer

    bridge = GatewayBridge(gateway_scenario)
    server = GatewayServer(bridge)

    async def up(warmup_ns: int = 2_000_000_000) -> GatewayServer:
        import asyncio

        await server.start()
        if warmup_ns:
            await asyncio.wrap_future(
                bridge.submit(Op("advance", value=warmup_ns)))
        return server

    try:
        yield up
    finally:
        # Normal tests close the server inside their own loop; this is
        # the crashed-test path, where best-effort socket close is all
        # that is still possible (the test's loop is already gone).
        if server._server is not None:
            try:
                server._server.close()
            except RuntimeError:
                pass
        bridge.close()
