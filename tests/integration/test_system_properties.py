"""Integration: cross-cutting system properties — determinism, driver
hot-update, concurrent clients, energy accounting consistency."""

import pytest

from repro.drivers.catalog import RELAY_ID, TMP36_ID, make_peripheral_board
from repro.peripherals import Environment
from tests.integration.conftest import build_world


# ---------------------------------------------------------------- determinism
def _run_scenario(seed):
    world = build_world(seed=seed)
    env = Environment(temperature_c=24.0)
    board = make_peripheral_board("tmp36", env, rng=world.rng.stream("mfg"))
    world.thing.plug(board)
    world.run(3.0)
    values = []
    world.client.read(world.thing.address, TMP36_ID,
                      lambda r: values.append(r.value if r else None))
    world.run(2.0)
    events = [(e.time_s, e.kind) for e in world.thing.events]
    return events, values, world.sim.now_ns


def test_same_seed_is_bit_for_bit_reproducible():
    first = _run_scenario(123)
    second = _run_scenario(123)
    assert first == second


def test_different_seeds_differ_in_timing():
    events_a, _, _ = _run_scenario(123)
    events_b, _, _ = _run_scenario(124)
    # Same pipeline, different tolerance/jitter draws.
    assert [k for _, k in events_a] == [k for _, k in events_b]
    assert [t for t, _ in events_a] != [t for t, _ in events_b]


# ------------------------------------------------------------ driver updates
def test_driver_hot_update_reactivates_live_instances(world):
    env = Environment(temperature_c=25.0)
    board = make_peripheral_board("tmp36", env, rng=world.rng.stream("m"))
    world.thing.plug(board)
    world.run(3.0)

    # Vendor ships an updated driver: returns hundredths of a degree.
    updated = (
        "import adc;\nbool busy;\n"
        "event init():\n"
        "    signal adc.init(ADC_RES_10BIT, ADC_REF_VDD);\n"
        "    busy = false;\n"
        "event destroy():\n    signal adc.reset();\n"
        "event read():\n"
        "    if !busy:\n        busy = true;\n        signal adc.read();\n"
        "event data(uint16_t counts):\n"
        "    busy = false;\n"
        "    return (counts * 3300 / 1023 - 500) * 10;\n"
    )
    world.registry.upload_driver(TMP36_ID, updated)
    assert world.manager.push_driver(world.thing.address, TMP36_ID)
    world.run(2.0)

    values = []
    world.client.read(world.thing.address, TMP36_ID,
                      lambda r: values.append(r.value))
    world.run(2.0)
    assert values[0] == pytest.approx(2500, abs=60)  # hundredths now
    # Still exactly one active driver on the channel.
    assert list(world.thing.drivers.active_channels().values()) == [TMP36_ID.value]


# ---------------------------------------------------------- concurrent access
def test_two_clients_share_one_peripheral(world):
    from repro.core.client import Client

    env = Environment(temperature_c=23.0)
    world.thing.plug(make_peripheral_board("tmp36", env,
                                           rng=world.rng.stream("m")))
    world.run(3.0)
    second = Client(world.sim, world.network, 9)
    world.network.connect(9, 0)
    world.network.connect(9, 2)
    world.network.build_dodag(2)

    from repro.sim.kernel import ns_from_s

    results = {}
    world.client.read(world.thing.address, TMP36_ID,
                      lambda r: results.setdefault("first", r.value))
    # Spaced past the first request's completion: the Listing-1-style
    # driver serialises itself with a busy flag (see the test below).
    world.sim.schedule(
        ns_from_s(0.5),
        lambda: second.read(world.thing.address, TMP36_ID,
                            lambda r: results.setdefault("second", r.value)),
    )
    world.run(3.0)
    assert set(results) == {"first", "second"}
    for value in results.values():
        assert value == pytest.approx(230, abs=6)


def test_simultaneous_reads_one_drops_on_busy_guard(world):
    """Listing-1-style drivers guard themselves with a busy flag: a
    request arriving mid-conversion is silently dropped and the client
    times out — the retry burden is the client's (§4.1 semantics)."""
    env = Environment(temperature_c=23.0)
    world.thing.plug(make_peripheral_board("tmp36", env,
                                           rng=world.rng.stream("m")))
    world.run(3.0)
    outcomes = []
    # Two requests from the same client in the same instant: the second
    # read event reaches the driver while busy is still set.
    world.client.read(world.thing.address, TMP36_ID, outcomes.append,
                      timeout_s=2.0)
    world.client.read(world.thing.address, TMP36_ID, outcomes.append,
                      timeout_s=2.0)
    world.run(5.0)
    values = [r.value for r in outcomes if r is not None and r.ok]
    timeouts = [r for r in outcomes if r is None]
    assert len(outcomes) == 2
    assert len(values) >= 1  # at least one read succeeds
    # Whatever was dropped surfaced as a clean timeout, not a hang.
    assert len(values) + len(timeouts) == 2


def test_interleaved_read_and_write_on_two_peripherals(world):
    env = Environment(temperature_c=20.0)
    world.thing.plug(make_peripheral_board("tmp36", env,
                                           rng=world.rng.stream("a")))
    relay_board = make_peripheral_board("relay", rng=world.rng.stream("b"))
    world.thing.plug(relay_board)
    world.run(4.0)

    outcomes = []
    world.client.read(world.thing.address, TMP36_ID,
                      lambda r: outcomes.append(("t", r.value)))
    world.client.write(world.thing.address, RELAY_ID, 1,
                       lambda s: outcomes.append(("w", s)))
    world.run(3.0)
    assert ("w", 0) in outcomes
    assert any(k == "t" and v == pytest.approx(200, abs=6)
               for k, v in outcomes)
    assert relay_board.device.state


# ------------------------------------------------------------------- energy
def test_energy_scales_with_plug_events(world):
    board = make_peripheral_board("tmp36", rng=world.rng.stream("m"))
    world.thing.plug(board)
    world.run(3.0)
    after_one = world.thing.meter.get("identification")
    world.thing.unplug(0)
    world.run(2.0)
    world.thing.plug(make_peripheral_board("tmp36",
                                           rng=world.rng.stream("m2")))
    world.run(3.0)
    after_three = world.thing.meter.get("identification")
    # Three identification rounds ran (plug, unplug, plug): ~3x one round.
    assert after_three > 2.5 * after_one / 1.0 * 0.8
    assert world.thing.controller.rounds_run == 3


def test_radio_silence_costs_nothing(world):
    """With no peripherals and no traffic, the Thing's meter stays ~0."""
    world.run(5.0)
    assert world.thing.meter.total() < 1e-6
