"""Fast-forward / trace-compilation differential suite — the ISSUE 8
acceptance gate.

The speed tiers must be invisible in every deterministic artifact: a
fleet run with closed-form idle fast-forward (or trace-compiled VM
dispatch) enabled must produce byte-identical merged metrics to the
same run without it, for any seed and any worker count; and a run
checkpointed at an instant that falls inside what would otherwise be a
skipped window must resume by *re-deriving* its windows, landing on the
same digest as the uninterrupted run.
"""

import os

import pytest

from repro.fleet.runner import CheckpointPlan, resume_scenario, run_scenario
from repro.fleet.scenario import SCENARIOS
from repro.snapshot.checkpoint import digest_document


def _duty(seed, **overrides):
    return SCENARIOS["duty"].scaled(
        things=4, shard_size=2, duration_s=4.0, seed=seed, **overrides,
    )


@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("workers", [1, 2])
def test_fast_forward_is_digest_neutral(seed, workers):
    off = run_scenario(_duty(seed), workers=workers)
    on = run_scenario(_duty(seed, fast_forward=True), workers=workers)
    assert digest_document(on.merged) == digest_document(off.merged)
    assert on.sim_events == off.sim_events
    assert on.ff_windows_skipped > 0
    assert on.ff_events_skipped > 0
    assert off.ff_windows_skipped == 0


@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("workers", [1, 2])
def test_trace_mode_is_digest_neutral(seed, workers):
    plain = run_scenario(_duty(seed), workers=workers)
    os.environ["REPRO_VM_TRACE"] = "1"
    try:
        traced = run_scenario(_duty(seed), workers=workers)
    finally:
        os.environ.pop("REPRO_VM_TRACE", None)
    assert digest_document(traced.merged) == digest_document(plain.merged)


def test_stacked_tiers_are_digest_neutral():
    # Fast-forward + trace compilation together, against neither.
    plain = run_scenario(_duty(3), workers=1)
    os.environ["REPRO_VM_TRACE"] = "1"
    try:
        stacked = run_scenario(_duty(3, fast_forward=True), workers=1)
    finally:
        os.environ.pop("REPRO_VM_TRACE", None)
    assert digest_document(stacked.merged) == digest_document(plain.merged)
    assert stacked.ff_events_skipped > 0


@pytest.mark.parametrize("workers", [1, 2])
def test_checkpoint_inside_window_resumes_by_rederiving(tmp_path, workers):
    # 2.013 s sits between sampler cadences (50/100 ms grids), i.e.
    # strictly inside what an uninterrupted run covers with one skipped
    # window.  The checkpoint event is a barrier, so the interrupted
    # run splits that window; the resumed half must re-derive its own
    # windows — not replay recorded ones — and still converge.
    scenario = _duty(9, fast_forward=True)
    baseline = run_scenario(scenario, workers=workers)
    ckpt = tmp_path / f"ckpt-{workers}"
    run_scenario(scenario, workers=workers,
                 checkpoint=CheckpointPlan(directory=str(ckpt), at_s=2.013))
    resumed = resume_scenario(ckpt, workers=workers)
    assert digest_document(resumed.merged) == digest_document(baseline.merged)
    assert resumed.ff_windows_skipped > 0
    # And the whole stack is still digest-neutral vs never
    # fast-forwarding at all.
    off = run_scenario(_duty(9), workers=workers)
    assert digest_document(resumed.merged) == digest_document(off.merged)
