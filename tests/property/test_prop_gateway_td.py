"""Property tests: Thing Description generation and gateway routing.

The TD layer's contract is that descriptions are an *honest,
byte-stable projection* of the driver catalogue: every affordance maps
to a handler the compiled driver actually exports, serialization
round-trips losslessly, and names outside the projection are rejected
at the service layer — never forwarded into the simulation.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.drivers.catalog import CATALOG
from repro.dsl.bytecode import HANDLER_KIND_EVENT
from repro.dsl.symbols import well_known_id
from repro.fleet.scenario import SCENARIOS
from repro.gateway.bridge import GatewayBridge, Op
from repro.gateway.thing_description import (
    INSTALL_ACTION,
    driver_affordances,
    thing_description,
)

KEYS = sorted(CATALOG)


def _handler_exports(spec, name):
    image = spec.compile()
    return image.find_handler(HANDLER_KIND_EVENT,
                              well_known_id(name)) is not None


# ------------------------------------------------------- affordance honesty
@given(st.sampled_from(KEYS))
@settings(max_examples=50)
def test_affordances_match_compiled_driver_exports(key):
    spec = CATALOG[key]
    affordances = driver_affordances(key, spec)
    readable = _handler_exports(spec, "read")
    writable = _handler_exports(spec, "write")
    # A property iff the driver exports read; its stream event rides it.
    assert (key in affordances["properties"]) == readable
    assert (f"{key}-stream" in affordances["events"]) == readable
    # A write action iff the driver exports write.
    assert (f"{key}-write" in affordances["actions"]) == writable
    if readable:
        prop = affordances["properties"][key]
        assert prop["readOnly"] == (not writable)
        assert prop["upnp:deviceId"] == str(spec.device_id)


@given(st.integers(min_value=0, max_value=10_000),
       st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.sampled_from(KEYS)),
                max_size=4, unique_by=lambda pair: pair[0]))
@settings(max_examples=100)
def test_td_affordances_cover_exactly_the_plugged_catalogue(thing_id, plugs):
    peripherals = [(ch, CATALOG[key].device_id) for ch, key in plugs]
    td = thing_description(thing_id, peripherals)
    plugged = {key for _, key in plugs}
    readable = {k for k in plugged if _handler_exports(CATALOG[k], "read")}
    writable = {k for k in plugged if _handler_exports(CATALOG[k], "write")}
    assert set(td["properties"]) == readable
    assert set(td["events"]) == {f"{k}-stream" for k in readable}
    assert set(td["actions"]) == \
        {f"{k}-write" for k in writable} | {INSTALL_ACTION}
    assert td["id"] == f"urn:upnp:thing:{thing_id}"
    # Duplicate board types merge: channels listed, affordance single.
    for key in readable:
        expected = sorted(ch for ch, k in plugs if k == key)
        assert td["properties"][key]["upnp:channels"] == expected


# ------------------------------------------------------------ serialization
@given(st.integers(min_value=0, max_value=10_000),
       st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.sampled_from(KEYS)),
                max_size=4, unique_by=lambda pair: pair[0]))
@settings(max_examples=100)
def test_td_json_stable_under_reserialization(thing_id, plugs):
    peripherals = [(ch, CATALOG[key].device_id) for ch, key in plugs]
    first = json.dumps(thing_description(thing_id, peripherals),
                       sort_keys=True)
    # Re-generation is deterministic...
    again = json.dumps(thing_description(thing_id, peripherals),
                       sort_keys=True)
    assert first == again
    # ...and a decode/encode round-trip is the identity.
    assert json.dumps(json.loads(first), sort_keys=True) == first


# ---------------------------------------------------- unknown names are 404
_SCENARIO = SCENARIOS["gateway"].scaled(things=4, shard_size=4, seed=3)
_BRIDGE = None


def _bridge():
    # One threadless fleet for the whole module: hypothesis drives
    # hundreds of reads through it; read-only 404 paths never mutate it.
    global _BRIDGE
    if _BRIDGE is None:
        _BRIDGE = GatewayBridge.replay(_SCENARIO, [])
    return _BRIDGE


@given(st.text(min_size=0, max_size=30),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=200, deadline=None)
def test_unknown_property_names_404_never_raise(name, thing):
    bridge = _bridge()
    before = [d.sim.now_ns for d in bridge.deployments]
    result = bridge._apply(Op("read", thing=thing, name=name))
    if name in CATALOG:
        # A real key may be plugged (any bridged status) or not (404).
        assert result.status in (200, 404, 504)
    else:
        assert result.status == 404
        # Rejected at the service layer: simulated time never moved.
        assert [d.sim.now_ns for d in bridge.deployments] == before


@given(st.text(min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_unknown_drivers_and_things_404(name):
    bridge = _bridge()
    if name not in CATALOG:
        assert bridge._apply(
            Op("install", thing=0, name=name)).status == 404
    # Out-of-range thing ids 404 for every op kind.
    for kind in ("td", "read", "write", "install"):
        result = bridge._apply(Op(kind, thing=10_000, name=name, value=1))
        assert result.status == 404
