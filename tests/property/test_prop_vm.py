"""Property tests: compiled expression evaluation matches C semantics.

Random arithmetic expressions are compiled through the full DSL
pipeline and executed on the VM; the result must equal a reference
evaluation implementing C's int32 semantics (wraparound, truncating
division, arithmetic shifts).
"""

from hypothesis import assume, given, settings, strategies as st

from repro.dsl.bytecode import HANDLER_KIND_EVENT
from repro.dsl.compiler import compile_source
from repro.dsl.symbols import well_known_id
from repro.dsl.types import wrap32
from repro.vm.machine import DriverInstance, VirtualMachine


# --------------------------------------------------- expression tree strategy
def c_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a, b):
    return a - c_div(a, b) * b


_BINOPS = {
    "+": lambda a, b: wrap32(a + b),
    "-": lambda a, b: wrap32(a - b),
    "*": lambda a, b: wrap32(a * b),
    "/": lambda a, b: wrap32(c_div(a, b)) if b != 0 else None,
    "%": lambda a, b: wrap32(c_mod(a, b)) if b != 0 else None,
    "&": lambda a, b: wrap32(a & b),
    "|": lambda a, b: wrap32(a | b),
    "^": lambda a, b: wrap32(a ^ b),
    "<<": lambda a, b: wrap32(a << (b & 31)),
    ">>": lambda a, b: wrap32(a >> (b & 31)),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
}

_UNOPS = {
    "-": lambda a: wrap32(-a),
    "~": lambda a: wrap32(~a),
    "!": lambda a: int(not a),
}

literals = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def exprs(depth=3):
    if depth == 0:
        return literals.map(lambda v: (str(v) if v >= 0 else f"({v})", v))
    sub = exprs(depth - 1)

    def combine_binary(args):
        op, (ltext, lval), (rtext, rval) = args
        value = _BINOPS[op](lval, rval)
        assume(value is not None)  # skip division by zero
        return (f"({ltext} {op} {rtext})", value)

    def combine_unary(args):
        op, (text, val) = args
        return (f"({op}{text})", _UNOPS[op](val))

    return st.one_of(
        sub,
        st.tuples(st.sampled_from(sorted(_BINOPS)), sub, sub).map(combine_binary),
        st.tuples(st.sampled_from(sorted(_UNOPS)), sub).map(combine_unary),
    )


TEMPLATE = """\
int32_t out;
event init():
    out = {expr};
event destroy():
    out = 0;
"""


@given(exprs(depth=3))
@settings(max_examples=300, deadline=None)
def test_compiled_expressions_match_c_semantics(case):
    text, expected = case
    image = compile_source(TEMPLATE.format(expr=text))
    instance = DriverInstance(image)
    vm = VirtualMachine(stack_limit=128)
    handler = image.find_handler(HANDLER_KIND_EVENT, well_known_id("init"))
    vm.execute(instance, handler, (), signal_sink=lambda *a: None)
    assert instance.scalar(0) == expected, text


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_compiled_summation_loop(values):
    """A while-loop summation over an array matches Python's sum."""
    n = len(values)
    stores = "".join(
        f"    buf[{i}] = {v if v >= 0 else f'(0 - {abs(v)})'};\n"
        for i, v in enumerate(values)
    )
    source = (
        f"int32_t out, i;\nint32_t buf[{n}];\n"
        "event init():\n"
        f"{stores}"
        "    out = 0;\n"
        "    i = 0;\n"
        f"    while i < {n}:\n"
        "        out = out + buf[i];\n"
        "        i++;\n"
        "event destroy():\n    out = 0;\n"
    )
    image = compile_source(source)
    instance = DriverInstance(image)
    handler = image.find_handler(HANDLER_KIND_EVENT, well_known_id("init"))
    VirtualMachine(step_limit=10**6).execute(
        instance, handler, (), signal_sink=lambda *a: None
    )
    out_slot = next(
        i for i, s in enumerate(image.slots) if not s.is_array
    )
    # `out` is the most-accessed scalar, so it owns slot 0.
    assert instance.scalar(0) == sum(values)


@given(st.binary(max_size=300))
@settings(max_examples=200)
def test_image_unpack_never_crashes_on_fuzz(blob):
    """Arbitrary bytes either parse to a valid image or raise CompileError."""
    from repro.dsl.bytecode import DriverImage
    from repro.dsl.errors import CompileError

    try:
        image = DriverImage.unpack(blob)
    except CompileError:
        return
    assert image.pack() == blob
