"""Property tests: the unparser round-trips to identical driver images."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.drivers.catalog import CATALOG
from repro.dsl.compiler import compile_source
from repro.dsl.parser import parse
from repro.dsl.unparse import unparse, unparse_expr


@pytest.mark.parametrize("key", sorted(CATALOG))
def test_catalog_drivers_roundtrip_to_identical_images(key):
    """parse -> unparse -> parse -> compile produces the same bytes."""
    source = CATALOG[key].dsl_source()
    original = compile_source(source, 1)
    normalised = unparse(parse(source))
    again = compile_source(normalised, 1)
    assert again.code == original.code
    assert again.handlers == original.handlers
    assert again.slots == original.slots
    # Unparsing is idempotent once normalised.
    assert unparse(parse(normalised)) == normalised


def test_unparse_preserves_else_and_loops():
    source = (
        "int32_t x;\n"
        "event init():\n"
        "    while x < 10:\n"
        "        if x == 5:\n"
        "            break;\n"
        "        else:\n"
        "            x++;\n"
        "        continue;\n"
        "event destroy():\n    x = 0;\n"
    )
    normalised = unparse(parse(source))
    assert compile_source(normalised, 1).code == compile_source(source, 1).code


def test_unparse_keeps_right_associative_parens():
    source = (
        "int32_t x;\n"
        "event init():\n    x = 100 - (10 - 1);\n"
        "event destroy():\n    x = 0;\n"
    )
    normalised = unparse(parse(source))
    assert "100 - (10 - 1)" in normalised
    assert compile_source(normalised, 1).code == compile_source(source, 1).code


# ---------------------------------------------------- random expression trees
literals = st.integers(min_value=-1000, max_value=1000)


def expr_sources(depth=3):
    if depth == 0:
        return literals.map(lambda v: str(v) if v >= 0 else f"(0 - {abs(v)})")
    sub = expr_sources(depth - 1)
    binary = st.tuples(
        st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                         "==", "!=", "<", "<=", ">", ">=", "and", "or"]),
        sub, sub,
    ).map(lambda t: f"({t[1]} {t[0]} {t[2]})")
    unary = st.tuples(st.sampled_from(["-", "~", "!"]), sub).map(
        lambda t: f"({t[0]}{t[1]})"
    )
    return st.one_of(sub, binary, unary)


TEMPLATE = (
    "int32_t out;\n"
    "event init():\n    out = {expr};\n"
    "event destroy():\n    out = 0;\n"
)


@given(expr_sources())
@settings(max_examples=200, deadline=None)
def test_random_expressions_roundtrip(expr_text):
    source = TEMPLATE.format(expr=expr_text)
    original = compile_source(source, 1)
    normalised = unparse(parse(source))
    assert compile_source(normalised, 1).code == original.code
