"""Property tests: reliability primitives and chaos-campaign invariants.

The campaign-level properties execute a miniature fleet under a
hypothesis-drawn fault plan and assert the chaos invariants hold for
*any* plan: every request resolves (reply or surfaced timeout), no
retransmitted install executes twice, pending tables drain to empty,
and a replay of the same (plan, seed) produces a byte-identical digest.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chaos.campaign import (
    Campaign,
    LOSSY_INSTALL_RETRY,
    LOSSY_RETRY,
    run_campaign,
)
from repro.chaos.plan import FaultPlan, LinkBurst, NodeCrash
from repro.protocol.reliability import (
    MISS,
    DuplicateCache,
    ReplyCache,
    RetryPolicy,
)
from repro.fleet.scenario import ChurnProfile, FleetScenario

# ----------------------------------------------------------- primitives

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_backoff_s=st.floats(min_value=0.01, max_value=4.0),
    multiplier=st.floats(min_value=1.0, max_value=3.0),
    max_backoff_s=st.floats(min_value=0.01, max_value=16.0),
    jitter_frac=st.floats(min_value=0.0, max_value=0.5),
)


@given(policies, st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=200)
def test_backoff_capped_and_jitter_bounded(policy, attempt, seed):
    base = policy.backoff_s(attempt)
    assert base <= policy.max_backoff_s
    jittered = policy.backoff_s(attempt, random.Random(seed))
    assert jittered >= base * (1.0 - policy.jitter_frac)
    assert jittered <= base * (1.0 + policy.jitter_frac)


@given(policies)
@settings(max_examples=200)
def test_worst_case_span_dominates_every_schedule(policy):
    rng = random.Random(7)
    span = sum(
        policy.backoff_s(attempt, rng)
        for attempt in range(1, policy.max_attempts)
    )
    assert span <= policy.worst_case_span_s() + 1e-9


@given(st.integers(min_value=1, max_value=64),
       st.lists(st.integers(min_value=0, max_value=300), max_size=400))
@settings(max_examples=200)
def test_duplicate_cache_bounded_and_detects_recent_repeats(capacity, keys):
    cache = DuplicateCache(capacity)
    window = []
    for key in keys:
        was_recent = key in window
        assert cache.seen(key) == was_recent
        assert len(cache) <= capacity
        if not was_recent:
            window.append(key)
            if len(window) > capacity:
                window.pop(0)


@given(st.integers(min_value=1, max_value=32),
       st.lists(st.tuples(st.integers(0, 100),
                          st.sampled_from(["begin", "complete"])),
                max_size=200))
@settings(max_examples=200)
def test_reply_cache_bounded_and_at_most_once(capacity, ops):
    cache = ReplyCache(capacity)
    for key, op in ops:
        if op == "begin":
            before = cache.lookup(key)
            cache.begin(key)
            if before is not MISS and isinstance(before, bytes):
                # begin() never downgrades a completed entry to in-flight
                assert cache.lookup(key) == before
        else:
            cache.complete(key, bytes([key % 256]))
            assert cache.lookup(key) == bytes([key % 256])
        assert len(cache) <= capacity


# ------------------------------------------------------------ campaigns

_PROP_CHURN = ChurnProfile(
    read_timeout_s=15.0,
    read_interval_s=1.0,
    churn_interval_s=6.0,
    hot_update_interval_s=8.0,
)

_PROP_SCENARIO = FleetScenario(
    name="prop-chaos",
    things=3,
    shard_size=3,
    channels=2,
    duration_s=8.0,
    churn=_PROP_CHURN,
    retry=LOSSY_RETRY,
    install_retry=LOSSY_INSTALL_RETRY,
)

plans = st.builds(
    lambda drop, corrupt, duplicate, reorder, crash: FaultPlan(
        name="prop",
        bursts=(
            LinkBurst(
                start_s=0.0, end_s=1e9,
                drop_probability=drop,
                corrupt_probability=corrupt,
                duplicate_probability=duplicate,
                reorder_probability=reorder,
            ),
        ),
        crashes=(
            (NodeCrash(thing=0, at_s=3.0, reboot_at_s=5.5),)
            if crash else ()
        ),
    ),
    drop=st.floats(min_value=0.0, max_value=0.4),
    corrupt=st.floats(min_value=0.0, max_value=0.1),
    duplicate=st.floats(min_value=0.0, max_value=0.15),
    reorder=st.floats(min_value=0.0, max_value=0.15),
    crash=st.booleans(),
)


def _campaign_for(plan: FaultPlan) -> Campaign:
    return Campaign(
        name="prop",
        description="hypothesis-drawn plan",
        scenario=_PROP_SCENARIO,
        build_plan=lambda spec, horizon_s: plan,
        grace_s=20.0,
    )


@given(plans, st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=12, deadline=None)
def test_invariants_hold_under_any_plan(plan, seed):
    """No lost-without-timeout request, no duplicate install side
    effect, no pending-table leak — for arbitrary fault plans."""
    result = run_campaign(_campaign_for(plan), seed)
    assert result.violations == 0, result.verdict["invariants"]
    rec = result.verdict["recoveries"]
    # Every read resolved one way or the other.
    assert rec["reads_ok"] + rec["reads_timeout"] == rec["reads_sent"]


@given(plans, st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=6, deadline=None)
def test_replay_same_seed_same_plan_identical_digest(plan, seed):
    campaign = _campaign_for(plan)
    first = run_campaign(campaign, seed)
    second = run_campaign(campaign, seed)
    assert first.digest == second.digest
    assert first.to_json() == second.to_json()


@given(st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=8, deadline=None)
def test_lossy_retransmission_never_duplicates_installs(seed):
    """30% loss + duplication: retransmitted installs fold to one flash."""
    plan = FaultPlan(
        name="prop-lossy",
        bursts=(
            LinkBurst(start_s=0.0, end_s=1e9,
                      drop_probability=0.3, duplicate_probability=0.2),
        ),
    )
    result = run_campaign(_campaign_for(plan), seed)
    assert result.violations == 0, result.verdict["invariants"]
    report = result.verdict["invariants"]["no-duplicate-install"]
    assert report["ok"]
