"""Property tests: device models, E-series, router ordering invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.hw import eseries
from repro.peripherals.base import Environment
from repro.peripherals.bmp180 import (
    Calibration,
    compensate_pressure,
    compensate_temperature,
    uncompensated_pressure,
    uncompensated_temperature,
)
from repro.peripherals.id20la import build_frame, checksum, verify_frame_payload
from repro.peripherals.tmp36 import Tmp36
from repro.sim.kernel import Simulator
from repro.vm.router import CallbackDelivery, EventRouter


# ------------------------------------------------------------------- E-series
@given(st.floats(min_value=1.0, max_value=1e7, allow_nan=False,
                 allow_infinity=False))
@settings(max_examples=300)
def test_nearest_value_idempotent_and_close(value):
    nearest = eseries.nearest_value(value, "E96")
    assert eseries.nearest_value(nearest, "E96") == nearest
    import math

    # Within half the largest inter-value gap (in log space).
    assert abs(math.log(nearest / value)) <= eseries.worst_rounding_error("E96") + 1e-9


# --------------------------------------------------------------------- BMP180
@given(st.floats(min_value=-20.0, max_value=60.0),
       st.floats(min_value=60_000.0, max_value=110_000.0),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=150)
def test_bmp180_roundtrip_over_operating_range(temp_c, pressure_pa, oss):
    cal = Calibration()
    ut = uncompensated_temperature(temp_c, cal)
    temperature, b5 = compensate_temperature(ut, cal)
    assert temperature / 10 == pytest_approx(temp_c, 0.2)
    up = uncompensated_pressure(pressure_pa, b5, oss, cal)
    assert compensate_pressure(up, b5, oss, cal) == pytest_approx(pressure_pa, 4)


def pytest_approx(expected, tolerance):
    class _Approx:
        def __eq__(self, actual):  # pragma: no cover - trivial
            return abs(actual - expected) <= tolerance

        __req__ = __eq__

    approx = _Approx()
    return approx


@given(st.integers(min_value=0, max_value=0xFFFF))
@settings(max_examples=200)
def test_bmp180_temperature_monotonic_on_physical_branch(ut):
    """Monotone where the part actually operates (above the formula's
    pole at x1 == -MD; see bmp180.min_valid_ut)."""
    from repro.peripherals.bmp180 import min_valid_ut

    cal = Calibration()
    lo = min_valid_ut(cal)
    ut = max(ut, lo)
    t1, _ = compensate_temperature(ut, cal)
    t2, _ = compensate_temperature(min(ut + 50, 0xFFFF), cal)
    assert t2 >= t1


# --------------------------------------------------------------------- TMP36
@given(st.floats(min_value=-40.0, max_value=125.0))
@settings(max_examples=200)
def test_tmp36_voltage_linear_and_invertible(temp_c):
    sensor = Tmp36(env=Environment(temperature_c=temp_c))
    volts = sensor.voltage_v()
    recovered = (volts - 0.5) / 0.01
    assert abs(recovered - temp_c) < 1e-9


# -------------------------------------------------------------------- ID-20LA
card_ids = st.text(alphabet="0123456789ABCDEF", min_size=10, max_size=10)


@given(card_ids)
@settings(max_examples=200)
def test_id20la_frames_always_verify(card):
    frame = build_frame(card)
    assert len(frame) == 16
    payload = frame[1:13].decode()
    assert verify_frame_payload(payload)
    assert payload[:10] == card


@given(card_ids, st.integers(min_value=0, max_value=9))
@settings(max_examples=200)
def test_id20la_corrupted_data_fails_checksum(card, position):
    frame = build_frame(card)
    payload = bytearray(frame[1:13])
    original = payload[position]
    payload[position] = original ^ 0x01  # flip one bit of a data char
    text = payload.decode("ascii", errors="replace")
    assert not verify_frame_payload(text) or text == frame[1:13].decode()


# --------------------------------------------------------------------- router
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)), max_size=30))
@settings(max_examples=100, deadline=None)
def test_router_ordering_invariant(events):
    """Errors drain before regulars; within a class, FIFO order holds."""
    sim = Simulator()
    router = EventRouter(sim, queue_limit=100)
    order = []
    for index, (is_error, _) in enumerate(events):
        router.post(
            CallbackDelivery(lambda i=index: order.append(i), cycles=0),
            error=is_error,
        )
    sim.run()
    assert len(order) == len(events)
    errors = [i for i in order if events[i][0]]
    regulars = [i for i in order if not events[i][0]]
    assert errors == sorted(errors)
    assert regulars == sorted(regulars)
    # Every error posted before the router drained jumps ahead of any
    # regular that was *posted earlier but not yet dispatched*.  With a
    # zero-cycle workload the first regular may run first (it was
    # dequeued immediately), so we only assert relative FIFO per class.
