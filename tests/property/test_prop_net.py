"""Property tests: IPv6 text form, multicast schema, TLV/message codecs,
6LoWPAN fragmentation."""

from hypothesis import given, settings, strategies as st

from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.net.lowpan import (
    FRAG1_HEADER_BYTES,
    FRAGN_HEADER_BYTES,
    LowpanModel,
)
from repro.net.link import MAC_PAYLOAD_LIMIT
from repro.net.multicast import parse_group, peripheral_group
from repro.protocol.messages import (
    Data,
    DriverUpload,
    PeripheralDiscovery,
    PeripheralEntry,
    UnsolicitedAdvertisement,
    decode_message,
)
from repro.protocol.tlv import Tlv, decode_tlvs, encode_tlvs

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)
device_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefixes = st.integers(min_value=0, max_value=(1 << 48) - 1)


@given(addresses)
@settings(max_examples=300)
def test_ipv6_text_roundtrip(value):
    address = Ipv6Address(value)
    assert Ipv6Address.parse(str(address)) == address


@given(addresses)
@settings(max_examples=200)
def test_rfc5952_never_compresses_single_zero_group(value):
    text = str(Ipv6Address(value))
    if "::" in text:
        head, _, tail = text.partition("::")
        present = len([g for g in (head.split(":") if head else [])]) + \
            len([g for g in (tail.split(":") if tail else [])])
        assert 8 - present >= 2  # the run replaced by '::' is >= 2 groups


@given(addresses)
@settings(max_examples=200)
def test_ipv6_packed_roundtrip(value):
    address = Ipv6Address(value)
    assert Ipv6Address.from_bytes(address.packed()) == address


@given(prefixes, device_ids)
@settings(max_examples=200)
def test_multicast_schema_roundtrip(prefix, device):
    group = peripheral_group(prefix, device)
    info = parse_group(group)
    assert info is not None
    assert info.network_prefix48 == prefix
    assert info.peripheral_id == device


tlv_lists = st.lists(
    st.builds(
        Tlv,
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=40),
    ),
    max_size=8,
)


@given(tlv_lists)
@settings(max_examples=200)
def test_tlv_roundtrip(tlvs):
    decoded, offset = decode_tlvs(encode_tlvs(tlvs))
    assert decoded == tlvs


@given(st.integers(0, 0xFFFF), device_ids, st.binary(max_size=200))
@settings(max_examples=150)
def test_driver_upload_roundtrip(seq, device, image):
    message = DriverUpload(seq, DeviceId(device), image)
    assert decode_message(message.encode()) == message


@given(st.integers(0, 0xFFFF), device_ids, st.binary(max_size=100),
       st.booleans())
@settings(max_examples=150)
def test_data_message_roundtrip(seq, device, payload, is_array):
    message = Data(seq, DeviceId(device), payload, is_array)
    assert decode_message(message.encode()) == message


@given(st.integers(0, 0xFFFF),
       st.lists(st.tuples(device_ids, tlv_lists), max_size=4))
@settings(max_examples=100)
def test_advertisement_roundtrip(seq, entries):
    message = UnsolicitedAdvertisement(
        seq,
        tuple(PeripheralEntry(DeviceId(d), tuple(tlvs)) for d, tlvs in entries),
    )
    assert decode_message(message.encode()) == message


@given(st.integers(min_value=0, max_value=2000))
@settings(max_examples=300)
def test_lowpan_fragmentation_invariants(payload):
    model = LowpanModel()
    sizes = model.frame_payload_sizes(payload)
    datagram = model.header_bytes + payload
    assert all(1 <= size <= MAC_PAYLOAD_LIMIT for size in sizes)
    if len(sizes) == 1:
        assert sizes[0] == datagram
    else:
        carried = (sizes[0] - FRAG1_HEADER_BYTES) + sum(
            size - FRAGN_HEADER_BYTES for size in sizes[1:]
        )
        assert carried == datagram
