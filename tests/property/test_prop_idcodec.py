"""Property tests: hardware identification is correct under tolerance.

The central hardware claim of §3: *any* 32-bit identifier encoded as
four E96 resistors survives manufacturing tolerance, capacitor error
and trigger jitter, and decodes back to exactly the same identifier.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hw.control_board import ControlBoard
from repro.hw.connector import BusKind
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import CodecParams, PulseDecoder
from repro.hw.peripheral_board import PeripheralBoard

device_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
seeds = st.integers(min_value=0, max_value=2**31)


@given(device_ids, seeds)
@settings(max_examples=150, deadline=None)
def test_any_id_roundtrips_through_the_control_board(value, seed):
    rng = random.Random(seed)
    board = ControlBoard(num_channels=1, rng=rng)
    peripheral = PeripheralBoard.manufacture(
        DeviceId(value), BusKind.ADC, rng=rng
    )
    board.connect(peripheral)
    report = board.run_identification()
    assert report.identified() == {0: DeviceId(value)}
    assert report.errors() == {}


@given(device_ids, seeds)
@settings(max_examples=100, deadline=None)
def test_decode_under_worst_case_tolerance_corners(value, seed):
    """Adversarial corners: every resistor at a tolerance-band edge,
    jitter pinned to an extreme — still inside the guard band."""
    params = CodecParams()
    decoder = PulseDecoder(params)
    rng = random.Random(seed)
    reference_skew = 1 + rng.choice([-1, 1]) * params.reference_resistor_tolerance
    jitter_ref = 1 + rng.choice([-1, 1]) * params.trigger_jitter_rel
    references = [
        params.nominal_pulse_seconds(0) * reference_skew * jitter_ref
    ] * 4
    pulses = []
    for byte in DeviceId(value).to_bytes():
        resistor_skew = 1 + rng.choice([-1, 1]) * params.peripheral_resistor_tolerance
        jitter = 1 + rng.choice([-1, 1]) * params.trigger_jitter_rel
        pulses.append(
            params.nominal_pulse_seconds(byte) * resistor_skew * jitter
        )
    assert decoder.decode_id(pulses, references) == DeviceId(value)


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=50, deadline=None)
def test_resistance_monotonic_and_distinct(byte):
    params = CodecParams()
    if byte > 0:
        assert params.resistance_for_byte(byte) > params.resistance_for_byte(byte - 1)


@given(device_ids)
@settings(max_examples=100, deadline=None)
def test_resistor_tool_output_is_preferred_series(value):
    from repro.hw import eseries
    from repro.hw.idcodec import resistor_set_for_id

    for ohms in resistor_set_for_id(DeviceId(value)):
        assert eseries.is_preferred_value(ohms, "E96", rel_tol=1e-6)
