"""Discrete-event simulation substrate (kernel, RNG streams, statistics)."""

from repro.sim.kernel import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    EventHandle,
    SimulationError,
    Simulator,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
)
from repro.sim.rng import RngRegistry
from repro.sim.stats import Histogram, Summary, percentile, summarize

__all__ = [
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "ns_from_ms",
    "ns_from_s",
    "ns_from_us",
    "RngRegistry",
    "Histogram",
    "Summary",
    "percentile",
    "summarize",
]
