"""Deterministic discrete-event simulation kernel.

Every timed subsystem in the reproduction (hardware identification pulses,
VM instruction retirement, radio frames, protocol timers) runs on top of
this kernel.  Time is kept in integer nanoseconds so that runs are exactly
reproducible: two events scheduled for the same instant fire in the order
they were scheduled (FIFO tie-break via a monotonically increasing
sequence number).
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Iterable, Optional

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, running a finished sim)."""


class _ScheduledEvent:
    """One queued callback.

    The heap itself stores ``(time_ns, seq, event)`` tuples so heappush
    and heappop compare plain integers in C — the event object is never
    compared (``seq`` is unique).  A plain ``__slots__`` class beats the
    previous ``@dataclass(order=True)`` on both allocation cost and the
    per-comparison ``__lt__`` dispatch the old heap paid on every
    push/pop.
    """

    __slots__ = ("time_ns", "seq", "callback", "name", "cancelled",
                 "popped", "trace_id")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        #: True once the event has left the heap (fired or discarded); a
        #: late cancel() must not touch the simulator's tombstone counter.
        self.popped = False
        # ``trace_id`` is declared in __slots__ but deliberately left
        # unassigned: the traced scheduling path (attach_tracer) sets it,
        # and untraced simulations pay nothing for it — hasattr() stays
        # False exactly as with the previous dynamic attribute.


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time_ns(self) -> int:
        return self._event.time_ns

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if not event.popped:
            self._sim._note_cancelled()


class PeriodicHandle:
    """Handle for a repeating callback registered via :meth:`Simulator.every`.

    The underlying events reschedule themselves after each firing, so a
    periodic task never drains the queue on its own; drivers that use
    :meth:`Simulator.run` (rather than ``run_until``) must :meth:`cancel`
    their periodic tasks or the run will not terminate.
    """

    __slots__ = ("_sim", "_interval_ns", "_callback", "_name", "_handle",
                 "_cancelled")

    def __init__(self, sim: "Simulator", interval_ns: int,
                 callback: Callable[[], None], name: str) -> None:
        self._sim = sim
        self._interval_ns = interval_ns
        self._callback = callback
        self._name = name
        self._cancelled = False
        self._handle = sim.schedule(interval_ns, self._fire, name=name)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def interval_ns(self) -> int:
        return self._interval_ns

    def _fire(self) -> None:
        if self._cancelled:  # pragma: no cover - cancel() kills the event
            return
        # Reschedule before the callback so a callback that raises does
        # not silently kill the period, and so the callback observes the
        # queue as it will stand for the rest of this instant.
        self._handle = self._sim.schedule(
            self._interval_ns, self._fire, name=self._name)
        self._callback()

    def cancel(self) -> None:
        """Stop firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._handle.cancel()


class Simulator:
    """A single-threaded discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5 * NS_PER_MS, lambda: fired.append(sim.now_ns))
    >>> sim.run()
    >>> fired == [5 * NS_PER_MS]
    True
    """

    #: Checkpoint contract (see :mod:`repro.snapshot.state`): bump
    #: ``version`` and register a migration whenever the restorable
    #: attribute set changes shape.
    SNAPSHOT_SCHEMA = {
        "layer": "sim",
        "version": 2,
        "fields": ("_now_ns", "_seq", "_queue", "_tombstones", "_running",
                   "_trace_hooks", "tracer", "profiler"),
    }

    def __init__(self) -> None:
        self._now_ns = 0
        self._seq = 0
        #: Min-heap of ``(time_ns, seq, event)`` tuples; see
        #: :class:`_ScheduledEvent` for why keys are explicit.
        self._queue: list[tuple[int, int, _ScheduledEvent]] = []
        #: Cancelled events still sitting in the heap.  Kept exact so
        #: :meth:`pending_count` is O(1) and so churn-heavy runs can
        #: compact the heap once tombstones outnumber live events.
        self._tombstones = 0
        self._running = False
        self._trace_hooks: list[Callable[[int, str], None]] = []
        #: Optional :class:`repro.obs.Tracer`.  None (the default)
        #: keeps every instrumentation point in the stack down to a
        #: single attribute check; the kernel's own hot paths carry no
        #: tracer branches at all until :meth:`attach_tracer` swaps the
        #: traced copies in.
        self.tracer = None
        #: Optional :class:`repro.profile.ShardProfiler`.  Same
        #: attach-time shadowing contract as ``tracer``: a simulator
        #: without a profiler runs the branch-free original paths.
        self.profiler = None

    # ------------------------------------------------------------------ time
    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        return self._now_ns / NS_PER_US

    @property
    def now_ms(self) -> float:
        return self._now_ns / NS_PER_MS

    @property
    def now_s(self) -> float:
        return self._now_ns / NS_PER_S

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """Schedule *callback* to run ``delay_ns`` nanoseconds from now."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, callback, name=name)

    def schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation time ``time_ns``."""
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def call_soon(self, callback: Callable[[], None], *, name: str = "") -> EventHandle:
        """Schedule *callback* at the current instant (after pending events
        already scheduled for this instant)."""
        return self.schedule(0, callback, name=name)

    def every(
        self,
        interval_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> PeriodicHandle:
        """Run *callback* every ``interval_ns`` nanoseconds until cancelled.

        The first firing is one interval from now.  This is the sampling
        hook the telemetry layer builds on: a periodic task is ordinary
        scheduled work, so an un-registered sampler costs the kernel
        nothing at all.
        """
        interval_ns = int(interval_ns)
        if interval_ns <= 0:
            raise SimulationError(f"non-positive period: {interval_ns}")
        return PeriodicHandle(self, interval_ns, callback, name)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            event.callback()
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.  Returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time_ns: int, *, max_events: Optional[int] = None,
                  strict: bool = True) -> int:
        """Run events with timestamps <= ``time_ns``; advance clock to it.

        Events scheduled exactly at ``time_ns`` do fire.  A target
        before the current time raises :class:`SimulationError`; with
        ``strict=False`` it clamps to now instead (runs nothing,
        returns 0) — convenient for replay drivers that feed
        already-passed instants.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            if strict:
                raise SimulationError(
                    f"run_until target {time_ns} ns is in the past "
                    f"(now {self._now_ns} ns)"
                )
            return 0
        count = 0
        while self._queue:
            head_time, _, head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                head.popped = True
                self._tombstones -= 1
                continue
            if head_time > time_ns:
                break
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                return count
        self._now_ns = max(self._now_ns, time_ns)
        return count

    def run_for(self, duration_ns: int, *, max_events: Optional[int] = None) -> int:
        """Run for ``duration_ns`` of simulated time from now."""
        return self.run_until(self._now_ns + int(duration_ns), max_events=max_events)

    # ---------------------------------------------------------------- tracing
    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer`; swaps in the traced paths.

        The traced copies of :meth:`step` / :meth:`schedule_at` shadow
        the class methods on this instance only, so every simulator
        without a tracer keeps running the branch-free originals —
        disabled-mode tracing overhead in the kernel is exactly zero.
        """
        self.tracer = tracer
        self._reshadow()

    def detach_tracer(self) -> None:
        """Remove the tracer and restore the branch-free kernel paths."""
        self.tracer = None
        self._reshadow()

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.profile.ShardProfiler`.

        Swaps in the profiled :meth:`step` / :meth:`schedule_at` copies
        — the same instance-shadowing scheme as :meth:`attach_tracer`,
        so disabled-mode profiling overhead in the kernel is exactly
        zero.  The profiled paths handle an attached tracer inline, so
        profiling and tracing compose without a fourth method pair.
        """
        self.profiler = profiler
        self._reshadow()

    def detach_profiler(self) -> None:
        """Remove the profiler; restore traced or plain paths as needed."""
        self.profiler = None
        self._reshadow()

    def _reshadow(self) -> None:
        """Bind the step/schedule_at variants the attached instrumentation
        needs (profiled > traced > branch-free originals)."""
        self.__dict__.pop("schedule_at", None)
        self.__dict__.pop("step", None)
        if self.profiler is not None:
            self.schedule_at = self._profiled_schedule_at  # type: ignore[method-assign]
            self.step = self._profiled_step  # type: ignore[method-assign]
        elif self.tracer is not None:
            self.schedule_at = self._traced_schedule_at  # type: ignore[method-assign]
            self.step = self._traced_step  # type: ignore[method-assign]

    def _traced_schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """:meth:`schedule_at`, plus causal-context capture.

        The tracer's *current* trace id (if any) is stamped onto the
        event, so causality follows every split-phase hop — stack CPU
        delays, radio frames, router dispatches, bus completions —
        with no per-layer plumbing.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            event.trace_id = tracer.current
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def _traced_step(self) -> bool:
        """:meth:`step`, plus causal-context restore around callbacks."""
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            tracer = self.tracer
            if tracer is None:  # detached mid-run
                event.callback()
                return True
            trace_id = getattr(event, "trace_id", None)
            tracer.current = trace_id
            if event.name and tracer.enabled_for("kernel"):
                tracer.instant(event.name, "kernel", trace_id=trace_id)
            try:
                event.callback()
            finally:
                tracer.current = None
            return True
        return False

    # -------------------------------------------------------------- profiling
    def _profiled_schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """:meth:`schedule_at`, plus schedule-delay capture.

        The profiler records every named event's distinct scheduling
        delays — the signature its idle-gap analyzer uses to classify
        periodic (analytically fast-forwardable) work offline.  Tracer
        causal-context stamping is folded in so profiled+traced runs
        behave exactly like traced runs.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            event.trace_id = tracer.current
        if name:
            self.profiler.on_schedule(name, time_ns - self._now_ns)
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def _profiled_step(self) -> bool:
        """:meth:`step`, plus wall-clock and sim-gap attribution.

        Each event's host cost (``perf_counter_ns`` around the
        callback) and the simulated-time gap it closed are reported to
        the profiler keyed by event name.  Tracer handling is inlined
        so the profiled path covers both the plain and traced cases.
        """
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            prev_ns = self._now_ns
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            tracer = self.tracer
            started = perf_counter_ns()
            if tracer is None:
                event.callback()
            else:
                trace_id = getattr(event, "trace_id", None)
                tracer.current = trace_id
                if event.name and tracer.enabled_for("kernel"):
                    tracer.instant(event.name, "kernel", trace_id=trace_id)
                try:
                    event.callback()
                finally:
                    tracer.current = None
            self.profiler.on_event(
                event.name, prev_ns, time_ns, perf_counter_ns() - started
            )
            return True
        return False

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        """Complete restorable kernel state (the heap travels as-is:
        ``(time_ns, seq, event)`` tuples keep their ordering keys, and
        tombstoned events keep their ``cancelled`` flags)."""
        state = dict(self.__dict__)
        # The traced fast paths are bound methods shadowing the class
        # ones on this instance; restore_state re-binds them, so the
        # checkpoint never carries method objects.
        state.pop("schedule_at", None)
        state.pop("step", None)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)
        # Re-shadow instrumented paths exactly as the attach_* calls do.
        self._reshadow()

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    # ----------------------------------------------------------------- extras
    def add_trace_hook(self, hook: Callable[[int, str], None]) -> None:
        """Register a hook called (time_ns, event_name) before each event."""
        self._trace_hooks.append(hook)

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._tombstones

    def drain(self, names: Iterable[str] = ()) -> None:
        """Cancel every queued event (optionally only those matching *names*)."""
        names = set(names)
        for _, _, event in self._queue:
            if event.cancelled:
                continue
            if not names or event.name in names:
                event.cancelled = True
                self._tombstones += 1
        self._maybe_compact()

    # ------------------------------------------------------------ tombstones
    def _note_cancelled(self) -> None:
        """A queued event was just cancelled via its handle."""
        self._tombstones += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Long churn-heavy runs (fleet scenarios cancelling timers and
        stream ticks) would otherwise accumulate tombstones forever,
        growing memory and slowing every ``heappush``.  Amortised O(1)
        per cancellation.
        """
        if self._tombstones * 2 <= len(self._queue):
            return
        live = [entry for entry in self._queue if not entry[2].cancelled]
        for _, _, event in self._queue:
            if event.cancelled:
                event.popped = True
        self._queue = live
        heapq.heapify(self._queue)
        self._tombstones = 0


def ns_from_us(us: float) -> int:
    """Convert microseconds (float) to integer nanoseconds."""
    return int(round(us * NS_PER_US))


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds (float) to integer nanoseconds."""
    return int(round(ms * NS_PER_MS))


def ns_from_s(s: float) -> int:
    """Convert seconds (float) to integer nanoseconds."""
    return int(round(s * NS_PER_S))
