"""Deterministic discrete-event simulation kernel.

Every timed subsystem in the reproduction (hardware identification pulses,
VM instruction retirement, radio frames, protocol timers) runs on top of
this kernel.  Time is kept in integer nanoseconds so that runs are exactly
reproducible: two events scheduled for the same instant fire in the order
they were scheduled (FIFO tie-break via a monotonically increasing
sequence number).
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Iterable, Optional

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, running a finished sim)."""


class _ScheduledEvent:
    """One queued callback.

    The heap itself stores ``(time_ns, seq, event)`` tuples so heappush
    and heappop compare plain integers in C — the event object is never
    compared (``seq`` is unique).  A plain ``__slots__`` class beats the
    previous ``@dataclass(order=True)`` on both allocation cost and the
    per-comparison ``__lt__`` dispatch the old heap paid on every
    push/pop.
    """

    __slots__ = ("time_ns", "seq", "callback", "name", "cancelled",
                 "popped", "trace_id", "ff")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        #: True once the event has left the heap (fired or discarded); a
        #: late cancel() must not touch the simulator's tombstone counter.
        self.popped = False
        self.ff = None
        # ``trace_id`` is declared in __slots__ but deliberately left
        # unassigned: the traced scheduling path (attach_tracer) sets it,
        # and untraced simulations pay nothing for it — hasattr() stays
        # False exactly as with the previous dynamic attribute.
        # ``ff`` defaults to None and is set only on events owned by a
        # fast-forward-certified PeriodicHandle, where it points back at
        # the handle so run_until can recognise analytically skippable
        # work with a single slot load.


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time_ns(self) -> int:
        return self._event.time_ns

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if not event.popped:
            self._sim._note_cancelled()


class PeriodicHandle:
    """Handle for a repeating callback registered via :meth:`Simulator.every`.

    The underlying events reschedule themselves after each firing, so a
    periodic task never drains the queue on its own; drivers that use
    :meth:`Simulator.run` (rather than ``run_until``) must :meth:`cancel`
    their periodic tasks or the run will not terminate.
    """

    __slots__ = ("_sim", "_interval_ns", "_callback", "_name", "_handle",
                 "_cancelled", "_ff", "_independent", "_bulk")

    def __init__(self, sim: "Simulator", interval_ns: int,
                 callback: Callable[[], None], name: str,
                 fast_forward: bool = False, independent: bool = True,
                 bulk: Optional[Callable[[int], None]] = None) -> None:
        self._sim = sim
        self._interval_ns = interval_ns
        self._callback = callback
        self._name = name
        self._cancelled = False
        #: Fast-forward certification (see Simulator.run_until).  A
        #: certified handle asserts its callback neither schedules nor
        #: cancels events; ``independent`` additionally asserts the
        #: callback touches state disjoint from every other certified
        #: handle and never reads the kernel clock, so N occurrences can
        #: be applied out of merged order.  ``bulk``, when given, must
        #: have the exact cumulative effect of N sequential callbacks.
        self._ff = bool(fast_forward)
        self._independent = bool(independent)
        self._bulk = bulk
        self._handle = sim.schedule(interval_ns, self._fire, name=name)
        if self._ff:
            self._handle._event.ff = self

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def interval_ns(self) -> int:
        return self._interval_ns

    def _fire(self) -> None:
        if self._cancelled:  # pragma: no cover - cancel() kills the event
            return
        # Reschedule before the callback so a callback that raises does
        # not silently kill the period, and so the callback observes the
        # queue as it will stand for the rest of this instant.
        self._handle = self._sim.schedule(
            self._interval_ns, self._fire, name=self._name)
        if self._ff:
            self._handle._event.ff = self
        self._callback()

    def cancel(self) -> None:
        """Stop firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._handle.cancel()

    def __setstate__(self, state: tuple) -> None:
        # Checkpoints written before the fast-forward tier predate the
        # _ff/_independent/_bulk slots; default them uncertified.
        _, slots = state
        self._ff = False
        self._independent = True
        self._bulk = None
        for name, value in (slots or {}).items():
            setattr(self, name, value)


class Simulator:
    """A single-threaded discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5 * NS_PER_MS, lambda: fired.append(sim.now_ns))
    >>> sim.run()
    >>> fired == [5 * NS_PER_MS]
    True
    """

    #: Checkpoint contract (see :mod:`repro.snapshot.state`): bump
    #: ``version`` and register a migration whenever the restorable
    #: attribute set changes shape.
    SNAPSHOT_SCHEMA = {
        "layer": "sim",
        "version": 3,
        "fields": ("_now_ns", "_seq", "_queue", "_tombstones", "_running",
                   "_trace_hooks", "_bulk_hooks", "tracer", "profiler",
                   "_ff_enabled", "_ff_skip_until", "ff_windows",
                   "ff_events", "_batch_names"),
    }

    def __init__(self) -> None:
        self._now_ns = 0
        self._seq = 0
        #: Min-heap of ``(time_ns, seq, event)`` tuples; see
        #: :class:`_ScheduledEvent` for why keys are explicit.
        self._queue: list[tuple[int, int, _ScheduledEvent]] = []
        #: Cancelled events still sitting in the heap.  Kept exact so
        #: :meth:`pending_count` is O(1) and so churn-heavy runs can
        #: compact the heap once tombstones outnumber live events.
        self._tombstones = 0
        self._running = False
        self._trace_hooks: list[Callable[[int, str], None]] = []
        #: Parallel to ``_trace_hooks``: each slot is either None or a
        #: bulk variant ``hook(time_ns, name, n)`` whose effect must
        #: equal n sequential per-event calls.  Fast-forward and batch
        #: draining engage only when every registered hook has one.
        self._bulk_hooks: list[Optional[Callable[[int, str, int], None]]] = []
        #: Closed-form idle fast-forward (see :meth:`run_until`).
        self._ff_enabled = False
        #: Suppression marker: no fast-forward window is attempted for
        #: heads before this instant (set after an empty/tiny window so
        #: the O(queue) barrier scan is not repeated every event).
        self._ff_skip_until = 0
        #: Fast-forward statistics (windows applied / events skipped).
        self.ff_windows = 0
        self.ff_events = 0
        #: Event names drained in batches: name -> contiguity slack_ns.
        self._batch_names: dict[str, int] = {}
        #: Optional :class:`repro.obs.Tracer`.  None (the default)
        #: keeps every instrumentation point in the stack down to a
        #: single attribute check; the kernel's own hot paths carry no
        #: tracer branches at all until :meth:`attach_tracer` swaps the
        #: traced copies in.
        self.tracer = None
        #: Optional :class:`repro.profile.ShardProfiler`.  Same
        #: attach-time shadowing contract as ``tracer``: a simulator
        #: without a profiler runs the branch-free original paths.
        self.profiler = None

    # ------------------------------------------------------------------ time
    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        return self._now_ns / NS_PER_US

    @property
    def now_ms(self) -> float:
        return self._now_ns / NS_PER_MS

    @property
    def now_s(self) -> float:
        return self._now_ns / NS_PER_S

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """Schedule *callback* to run ``delay_ns`` nanoseconds from now."""
        delay_ns = int(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, callback, name=name)

    def schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation time ``time_ns``."""
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def call_soon(self, callback: Callable[[], None], *, name: str = "") -> EventHandle:
        """Schedule *callback* at the current instant (after pending events
        already scheduled for this instant)."""
        return self.schedule(0, callback, name=name)

    def every(
        self,
        interval_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
        fast_forward: bool = False,
        independent: bool = True,
        bulk: Optional[Callable[[int], None]] = None,
    ) -> PeriodicHandle:
        """Run *callback* every ``interval_ns`` nanoseconds until cancelled.

        The first firing is one interval from now.  This is the sampling
        hook the telemetry layer builds on: a periodic task is ordinary
        scheduled work, so an un-registered sampler costs the kernel
        nothing at all.

        ``fast_forward=True`` certifies the task for closed-form idle
        fast-forward (the ``FastForwardable`` protocol): the callback
        must never schedule or cancel events.  ``independent=True``
        (the default) further asserts the callback's state is disjoint
        from every other certified task and clock-free, so occurrences
        may be applied per-handle instead of in merged order; pass
        ``independent=False`` for readers of shared state (telemetry
        samplers), which are then fired one-by-one in exact merged
        order inside the window.  ``bulk(n)``, when given, must have
        the exact cumulative effect — bitwise, for float accumulators —
        of ``n`` sequential callbacks.
        """
        interval_ns = int(interval_ns)
        if interval_ns <= 0:
            raise SimulationError(f"non-positive period: {interval_ns}")
        return PeriodicHandle(self, interval_ns, callback, name,
                              fast_forward=fast_forward,
                              independent=independent, bulk=bulk)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            event.callback()
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.  Returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time_ns: int, *, max_events: Optional[int] = None,
                  strict: bool = True) -> int:
        """Run events with timestamps <= ``time_ns``; advance clock to it.

        Events scheduled exactly at ``time_ns`` do fire.  A target
        before the current time raises :class:`SimulationError`; with
        ``strict=False`` it clamps to now instead (runs nothing,
        returns 0) — convenient for replay drivers that feed
        already-passed instants.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            if strict:
                raise SimulationError(
                    f"run_until target {time_ns} ns is in the past "
                    f"(now {self._now_ns} ns)"
                )
            return 0
        count = 0
        # Fast-forward engages only for unbounded, untraced runs: a
        # max_events cap would have to split windows, and a tracer's
        # per-event records cannot be synthesized for skipped work.
        ff_ok = (self._ff_enabled and max_events is None
                 and self.tracer is None)
        # Batch draining preserves per-event hook/callback semantics but
        # not per-event profiler attribution, so it yields to both
        # instrumentation modes.
        batch = self._batch_names if (
            self._batch_names and self.tracer is None
            and self.profiler is None) else None
        bulk_ok: Optional[bool] = None
        # NOTE: ``self._queue`` must be re-read every iteration — any
        # callback can cancel events and trip ``_maybe_compact``, which
        # rebinds the heap to a fresh list.
        while self._queue:
            queue = self._queue
            head_time, _, head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                head.popped = True
                self._tombstones -= 1
                continue
            if head_time > time_ns:
                break
            if ff_ok and head_time >= self._ff_skip_until and \
                    head.ff is not None:
                if bulk_ok is None:
                    bulk_ok = all(b is not None for b in self._bulk_hooks)
                if bulk_ok:
                    skipped = self._fast_forward_window(time_ns)
                    if skipped:
                        count += skipped
                        continue
                else:
                    ff_ok = False
            if batch is not None and head.name in batch:
                count += self._drain_batch(
                    head_time, head.name, batch[head.name], time_ns)
                continue
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                return count
        self._now_ns = max(self._now_ns, time_ns)
        return count

    def _fast_forward_window(self, target_ns: int) -> int:
        """Apply one certified idle window analytically; 0 = declined.

        The window runs from the queue head to one nanosecond before
        the earliest live *non-certified* event (the barrier: in-flight
        packets, chaos faults, protocol timers — anything not owned by
        a fast-forward-certified periodic handle), clamped to the
        run_until target so checkpoints taken at instants re-derive
        rather than replay skipped occurrences.  Ending one ns short of
        the barrier leaves same-instant tie-breaking to normal
        stepping.

        Seq allocation is emulated occurrence-by-occurrence in exact
        merged order (each skipped firing consumes exactly one sequence
        number, allocated before its callback, matching
        ``PeriodicHandle._fire``), so the final re-pushed event of
        every handle carries the identical (time, seq) key it would
        have had under stepping.  Independent handles' effects are
        deferred and applied in per-handle bulk; ordered handles
        (``independent=False``) fire in place after a flush, observing
        exactly the state they would have seen.
        """
        queue = self._queue
        barrier_t: Optional[int] = None
        items: list = []  # (first_time, seq, event, handle)
        for t, s, ev in queue:
            if ev.cancelled:
                continue
            h = ev.ff
            if h is None:
                if barrier_t is None or t < barrier_t:
                    barrier_t = t
            else:
                items.append((t, s, ev, h))
        window_end = target_ns if barrier_t is None \
            else min(target_ns, barrier_t - 1)
        total = 0
        for t, _, _, h in items:
            if t <= window_end:
                total += (window_end - t) // h._interval_ns + 1
        if total < 4:
            # Not worth the scan; suppress re-attempts until the head
            # moves past the barrier (stepping remains exact, so a
            # missed window is only a missed optimization).
            limit = barrier_t if barrier_t is not None else target_ns
            self._ff_skip_until = limit + 1
            return 0

        items.sort(key=lambda it: (it[0], it[1]))
        n_items = len(items)
        pending = [0] * n_items
        counts = [0] * n_items
        first_t = [0] * n_items
        last_t = [0] * n_items
        final: list = [None] * n_items
        seq = self._seq
        hooks = self._trace_hooks
        bulks = self._bulk_hooks
        push = heapq.heappush
        pop = heapq.heappop
        applied = 0

        def flush() -> None:
            nonlocal seq
            for j in range(n_items):
                p = pending[j]
                if not p:
                    continue
                pending[j] = 0
                hj = items[j][3]
                t_j = last_t[j]
                name_j = items[j][2].name
                for b in bulks:
                    b(t_j, name_j, p)
                self._seq = seq
                bulk_cb = hj._bulk
                if bulk_cb is not None:
                    bulk_cb(p)
                else:
                    cb = hj._callback
                    for _ in range(p):
                        cb()
                if self._seq != seq:
                    raise SimulationError(
                        f"fast-forward applier for '{name_j}' scheduled "
                        f"new work; certified callbacks must not touch "
                        f"the event queue")

        cohort_seq = None
        if all(it[3]._independent for it in items):
            # No ordered handle in the window: occurrence order among
            # the remaining (independent) handles is unobservable, so
            # emulation only has to get seq *accounting* exact — which
            # cohorts do in one heap transaction per shared-timestamp
            # round instead of one per occurrence.
            cohort_seq = self._ff_cohorts(
                items, window_end, seq, counts, first_t, last_t, final)
        if cohort_seq is not None:
            seq = cohort_seq
            applied = sum(counts)
            pending[:] = counts
            flush()
        else:
            emu = [(t, s, i) for i, (t, s, ev, h) in enumerate(items)
                   if t <= window_end]
            heapq.heapify(emu)
            while emu:
                t, s, i = pop(emu)
                h = items[i][3]
                if h._cancelled:
                    # Cancelled mid-window (by an ordered callback): the
                    # remaining occurrences must not be applied.
                    continue
                nseq = seq
                seq += 1
                counts[i] += 1
                if counts[i] == 1:
                    first_t[i] = t
                last_t[i] = t
                applied += 1
                nt = t + h._interval_ns
                if nt <= window_end:
                    push(emu, (nt, nseq, i))
                else:
                    final[i] = (nt, nseq)
                if h._independent:
                    pending[i] += 1
                    continue
                flush()
                self._now_ns = t
                self._seq = seq
                name = items[i][2].name
                for hook in hooks:
                    hook(t, name)
                h._callback()
                if self._seq != seq:
                    raise SimulationError(
                        f"fast-forwarded event '{name}' scheduled new "
                        f"work; only schedule-free callbacks may be "
                        f"certified")
            flush()
        self._seq = seq

        profiler = self.profiler
        # Re-read the heap: an ordered callback may have cancelled work
        # and tripped _maybe_compact, rebinding ``self._queue``.
        queue = self._queue
        for i in range(n_items):
            c = counts[i]
            if not c:
                continue
            t0, s0, ev, h = items[i]
            if last_t[i] > self._now_ns:
                self._now_ns = last_t[i]
            if profiler is not None:
                profiler.on_fast_forward(ev.name, c, first_t[i], last_t[i])
            if h._cancelled:
                # cancel() already tombstoned the placeholder event; no
                # final occurrence to re-push.
                continue
            # Consume the stale placeholder (lazy delete, same contract
            # as handle cancellation) and re-push the handle's one
            # post-window event with its emulated (time, seq) key.
            ev.cancelled = True
            self._tombstones += 1
            ft, fs = final[i]
            nev = _ScheduledEvent(ft, fs, h._fire, ev.name)
            nev.ff = h
            push(queue, (ft, fs, nev))
            h._handle = EventHandle(nev, self)
        self._maybe_compact()
        self.ff_windows += 1
        self.ff_events += applied
        return applied

    def _ff_cohorts(self, items, window_end: int, seq: int, counts,
                    first_t, last_t, final) -> Optional[int]:
        """Cohort-compressed window emulation; None = not applicable.

        A *cohort* is the set of window items sharing (interval, next
        fire time): its members fire at identical timestamps forever,
        in a fixed relative order.  When every cohort's current seq
        set forms a contiguous-block range disjoint from every other
        cohort's, merged order at any shared timestamp is whole blocks
        ordered by block base — and each round's allocation hands the
        firing cohorts fresh consecutive blocks, so disjointness is
        preserved inductively.  One heap transaction per cohort round
        then replaces one per occurrence (~20x fewer for fleet-sized
        shards) while consuming exactly the same number of seqs, so
        ``_seq`` and every re-pushed (time, seq) key match the
        per-occurrence path bit for bit.

        Interleaved ranges (typical right after registration, before a
        first window linearizes them) return None and the exact
        per-occurrence path runs; the window after that, ranges are
        blocks and this path engages.
        """
        groups: dict = {}
        for idx, (t, s, ev, h) in enumerate(items):
            if t > window_end or h._cancelled:
                continue
            groups.setdefault((h._interval_ns, t), []).append((s, idx))
        if not groups:
            return seq
        metas = []
        ranges = []
        for (interval, t0), members in groups.items():
            members.sort()
            # meta: [interval, member idxs in seq order, rounds,
            #        last allocation base, first fire, last fire]
            metas.append([interval, [i for _, i in members], 0, 0, 0, 0])
            ranges.append((members[0][0], members[-1][0],
                           t0, len(metas) - 1))
        ranges.sort()
        prev_hi = -1
        heap = []
        for lo, hi, t0, k in ranges:
            if lo <= prev_hi:
                return None
            prev_hi = hi
            heap.append((t0, lo, k))
        heapq.heapify(heap)
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            t, _, k = pop(heap)
            meta = metas[k]
            base = seq
            seq += len(meta[1])
            if meta[2] == 0:
                meta[4] = t
            meta[2] += 1
            meta[3] = base
            meta[5] = t
            nt = t + meta[0]
            if nt <= window_end:
                push(heap, (nt, base, k))
        for interval, idxs, rounds, base, ft, lt in metas:
            if not rounds:
                continue
            for j, i in enumerate(idxs):
                counts[i] = rounds
                first_t[i] = ft
                last_t[i] = lt
                final[i] = (lt + interval, base + j)
        return seq

    def _drain_batch(self, t0: int, name: str, slack_ns: int,
                     target_ns: int) -> int:
        """Pop the run of same-name events at ``t0`` (within
        ``slack_ns``) in one sweep, then fire them in a tight loop.
        Hook calls, clock updates and cancellation checks stay
        per-event, so semantics are identical to stepping."""
        queue = self._queue
        run: list[_ScheduledEvent] = []
        limit = min(t0 + slack_ns, target_ns)
        while queue:
            t, _, ev = queue[0]
            if ev.cancelled:
                heapq.heappop(queue)
                ev.popped = True
                self._tombstones -= 1
                continue
            if t > limit or ev.name != name:
                break
            heapq.heappop(queue)
            ev.popped = True
            run.append(ev)
        hooks = self._trace_hooks
        fired = 0
        for ev in run:
            if ev.cancelled:  # cancelled by an earlier event in the run
                continue
            self._now_ns = ev.time_ns
            for hook in hooks:
                hook(ev.time_ns, name)
            ev.callback()
            fired += 1
        return fired

    def run_for(self, duration_ns: int, *, max_events: Optional[int] = None) -> int:
        """Run for ``duration_ns`` of simulated time from now."""
        return self.run_until(self._now_ns + int(duration_ns), max_events=max_events)

    # ---------------------------------------------------------------- tracing
    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer`; swaps in the traced paths.

        The traced copies of :meth:`step` / :meth:`schedule_at` shadow
        the class methods on this instance only, so every simulator
        without a tracer keeps running the branch-free originals —
        disabled-mode tracing overhead in the kernel is exactly zero.
        """
        self.tracer = tracer
        self._reshadow()

    def detach_tracer(self) -> None:
        """Remove the tracer and restore the branch-free kernel paths."""
        self.tracer = None
        self._reshadow()

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.profile.ShardProfiler`.

        Swaps in the profiled :meth:`step` / :meth:`schedule_at` copies
        — the same instance-shadowing scheme as :meth:`attach_tracer`,
        so disabled-mode profiling overhead in the kernel is exactly
        zero.  The profiled paths handle an attached tracer inline, so
        profiling and tracing compose without a fourth method pair.
        """
        self.profiler = profiler
        self._reshadow()

    def detach_profiler(self) -> None:
        """Remove the profiler; restore traced or plain paths as needed."""
        self.profiler = None
        self._reshadow()

    def _reshadow(self) -> None:
        """Bind the step/schedule_at variants the attached instrumentation
        needs (profiled > traced > branch-free originals)."""
        self.__dict__.pop("schedule_at", None)
        self.__dict__.pop("step", None)
        if self.profiler is not None:
            self.schedule_at = self._profiled_schedule_at  # type: ignore[method-assign]
            self.step = self._profiled_step  # type: ignore[method-assign]
        elif self.tracer is not None:
            self.schedule_at = self._traced_schedule_at  # type: ignore[method-assign]
            self.step = self._traced_step  # type: ignore[method-assign]

    def _traced_schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """:meth:`schedule_at`, plus causal-context capture.

        The tracer's *current* trace id (if any) is stamped onto the
        event, so causality follows every split-phase hop — stack CPU
        delays, radio frames, router dispatches, bus completions —
        with no per-layer plumbing.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            event.trace_id = tracer.current
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def _traced_step(self) -> bool:
        """:meth:`step`, plus causal-context restore around callbacks."""
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            tracer = self.tracer
            if tracer is None:  # detached mid-run
                event.callback()
                return True
            trace_id = getattr(event, "trace_id", None)
            tracer.current = trace_id
            if event.name and tracer.enabled_for("kernel"):
                tracer.instant(event.name, "kernel", trace_id=trace_id)
            try:
                event.callback()
            finally:
                tracer.current = None
            return True
        return False

    # -------------------------------------------------------------- profiling
    def _profiled_schedule_at(
        self,
        time_ns: int,
        callback: Callable[[], None],
        *,
        name: str = "",
    ) -> EventHandle:
        """:meth:`schedule_at`, plus schedule-delay capture.

        The profiler records every named event's distinct scheduling
        delays — the signature its idle-gap analyzer uses to classify
        periodic (analytically fast-forwardable) work offline.  Tracer
        causal-context stamping is folded in so profiled+traced runs
        behave exactly like traced runs.
        """
        time_ns = int(time_ns)
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule in the past: {time_ns} < {self._now_ns}"
            )
        event = _ScheduledEvent(time_ns, self._seq, callback, name)
        tracer = self.tracer
        if tracer is not None and tracer.current is not None:
            event.trace_id = tracer.current
        if name:
            self.profiler.on_schedule(name, time_ns - self._now_ns)
        heapq.heappush(self._queue, (time_ns, self._seq, event))
        self._seq += 1
        return EventHandle(event, self)

    def _profiled_step(self) -> bool:
        """:meth:`step`, plus wall-clock and sim-gap attribution.

        Each event's host cost (``perf_counter_ns`` around the
        callback) and the simulated-time gap it closed are reported to
        the profiler keyed by event name.  Tracer handling is inlined
        so the profiled path covers both the plain and traced cases.
        """
        while self._queue:
            time_ns, _, event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            prev_ns = self._now_ns
            self._now_ns = time_ns
            for hook in self._trace_hooks:
                hook(time_ns, event.name)
            tracer = self.tracer
            started = perf_counter_ns()
            if tracer is None:
                event.callback()
            else:
                trace_id = getattr(event, "trace_id", None)
                tracer.current = trace_id
                if event.name and tracer.enabled_for("kernel"):
                    tracer.instant(event.name, "kernel", trace_id=trace_id)
                try:
                    event.callback()
                finally:
                    tracer.current = None
            self.profiler.on_event(
                event.name, prev_ns, time_ns, perf_counter_ns() - started
            )
            return True
        return False

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        """Complete restorable kernel state (the heap travels as-is:
        ``(time_ns, seq, event)`` tuples keep their ordering keys, and
        tombstoned events keep their ``cancelled`` flags)."""
        state = dict(self.__dict__)
        # The traced fast paths are bound methods shadowing the class
        # ones on this instance; restore_state re-binds them, so the
        # checkpoint never carries method objects.
        state.pop("schedule_at", None)
        state.pop("step", None)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)
        # Re-shadow instrumented paths exactly as the attach_* calls do.
        self._reshadow()

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    # ----------------------------------------------------------------- extras
    def add_trace_hook(
        self,
        hook: Callable[[int, str], None],
        *,
        bulk: Optional[Callable[[int, str, int], None]] = None,
    ) -> None:
        """Register a hook called (time_ns, event_name) before each event.

        ``bulk(time_ns, name, n)`` is the hook's aggregated variant; it
        must equal n per-event calls.  Fast-forward windows and batch
        drains stay disengaged until every registered hook has one.
        """
        self._trace_hooks.append(hook)
        self._bulk_hooks.append(bulk)

    def enable_fast_forward(self) -> None:
        """Allow :meth:`run_until` to apply certified idle windows
        analytically.  Stepping semantics are unchanged for any window
        containing a non-certified event."""
        self._ff_enabled = True

    def disable_fast_forward(self) -> None:
        self._ff_enabled = False

    def register_batch(self, name: str, *, slack_ns: int = 0) -> None:
        """Drain runs of queued events named *name* at identical (or,
        with ``slack_ns``, contiguous) timestamps through one tight
        loop, amortizing heap and dispatch overhead.  Per-event hook
        and callback semantics are preserved exactly."""
        if not name:
            raise SimulationError("batched events need a non-empty name")
        self._batch_names[name] = int(slack_ns)

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._tombstones

    def drain(self, names: Iterable[str] = ()) -> None:
        """Cancel every queued event (optionally only those matching *names*)."""
        names = set(names)
        for _, _, event in self._queue:
            if event.cancelled:
                continue
            if not names or event.name in names:
                event.cancelled = True
                self._tombstones += 1
        self._maybe_compact()

    # ------------------------------------------------------------ tombstones
    def _note_cancelled(self) -> None:
        """A queued event was just cancelled via its handle."""
        self._tombstones += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Long churn-heavy runs (fleet scenarios cancelling timers and
        stream ticks) would otherwise accumulate tombstones forever,
        growing memory and slowing every ``heappush``.  Amortised O(1)
        per cancellation.
        """
        if self._tombstones * 2 <= len(self._queue):
            return
        live = [entry for entry in self._queue if not entry[2].cancelled]
        for _, _, event in self._queue:
            if event.cancelled:
                event.popped = True
        self._queue = live
        heapq.heapify(self._queue)
        self._tombstones = 0


def ns_from_us(us: float) -> int:
    """Convert microseconds (float) to integer nanoseconds."""
    return int(round(us * NS_PER_US))


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds (float) to integer nanoseconds."""
    return int(round(ms * NS_PER_MS))


def ns_from_s(s: float) -> int:
    """Convert seconds (float) to integer nanoseconds."""
    return int(round(s * NS_PER_S))
