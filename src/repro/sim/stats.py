"""Small statistics helpers used by the experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / standard deviation / extrema of a sample."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"n={self.n} mean={self.mean:.4g} sd={self.stdev:.4g}"


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; sample (n-1) standard deviation."""
    data = list(values)
    if not data:
        raise ValueError("summarize() requires at least one value")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        var = 0.0
    return Summary(n=n, mean=mean, stdev=math.sqrt(var),
                   minimum=min(data), maximum=max(data))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile() requires at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
