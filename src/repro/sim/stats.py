"""Small statistics helpers used by the experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Mean / standard deviation / extrema of a sample."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    #: Sorted sample, kept when built via :func:`summarize` so that
    #: :meth:`percentile` can interpolate; empty for hand-built summaries.
    values: Tuple[float, ...] = ()

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the underlying sample."""
        if not self.values:
            raise ValueError("this Summary carries no sample values")
        return percentile(self.values, q)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"n={self.n} mean={self.mean:.4g} sd={self.stdev:.4g}"


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; sample (n-1) standard deviation."""
    data = list(values)
    if not data:
        raise ValueError("summarize() requires at least one value")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        var = 0.0
    return Summary(n=n, mean=mean, stdev=math.sqrt(var),
                   minimum=min(data), maximum=max(data),
                   values=tuple(sorted(data)))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile() requires at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac


class Histogram:
    """Fixed log-spaced-bucket histogram, mergeable across shards.

    Bucket boundaries are a pure function of ``(lo, hi,
    buckets_per_decade)``, so histograms built independently on
    different worker processes merge exactly: merging is a plain
    element-wise addition of bucket counts, which makes it associative
    and commutative — the merged result is identical no matter how the
    shards were grouped.

    Values below ``lo`` land in an underflow bucket, values at or above
    ``hi`` in an overflow bucket; exact ``sum``/``min``/``max`` are kept
    alongside so means and extrema stay precise.
    """

    __slots__ = ("lo", "hi", "buckets_per_decade", "_edges", "counts",
                 "total", "minimum", "maximum")

    def __init__(self, lo: float, hi: float, buckets_per_decade: int = 16) -> None:
        if not (0 < lo < hi):
            raise ValueError("histogram bounds require 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        span = math.log10(self.hi) - math.log10(self.lo)
        n = max(1, int(math.ceil(span * self.buckets_per_decade - 1e-9)))
        # Interior edges; full edge list is [lo, *edges, hi].
        self._edges: List[float] = [
            self.lo * 10.0 ** (i / self.buckets_per_decade) for i in range(1, n)
        ]
        # counts[0] = underflow, counts[1..n] = log buckets, counts[n+1] = overflow.
        self.counts: List[int] = [0] * (n + 2)
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # ------------------------------------------------------------- recording
    def observe(self, value: float) -> None:
        value = float(value)
        if value < self.lo:
            index = 0
        elif value >= self.hi:
            index = len(self.counts) - 1
        else:
            offset = math.log10(value / self.lo) * self.buckets_per_decade
            index = 1 + min(len(self.counts) - 3, int(offset))
        self.counts[index] += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        n = self.count
        if n == 0:
            raise ValueError("empty histogram has no mean")
        return self.total / n

    # --------------------------------------------------------------- merging
    def compatible_with(self, other: "Histogram") -> bool:
        return (self.lo, self.hi, self.buckets_per_decade) == (
            other.lo, other.hi, other.buckets_per_decade
        )

    def merge(self, other: "Histogram") -> "Histogram":
        """Element-wise sum of two same-shaped histograms (non-mutating)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge histograms with different buckets")
        out = Histogram(self.lo, self.hi, self.buckets_per_decade)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.total = self.total + other.total
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        return out

    # ------------------------------------------------------------ percentiles
    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile by interpolating within buckets.

        Follows the same rank convention as :func:`percentile`
        (``pos = (n - 1) * q / 100``); exact for the extrema, bucket-
        interpolated in between.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        n = self.count
        if n == 0:
            raise ValueError("percentile() of an empty histogram")
        if q == 0.0:
            return self.minimum
        if q == 100.0:
            return self.maximum
        pos = (n - 1) * q / 100.0
        edges = [self.lo, *self._edges, self.hi]
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if pos <= seen + bucket_count - 1 or index == len(self.counts) - 1:
                # Bucket bounds, clamped to the observed extrema so the
                # open-ended under/overflow buckets stay finite.
                if index == 0:
                    b_lo, b_hi = self.minimum, min(self.lo, self.maximum)
                elif index == len(self.counts) - 1:
                    b_lo, b_hi = max(self.hi, self.minimum), self.maximum
                else:
                    b_lo, b_hi = edges[index - 1], edges[index]
                b_lo = max(b_lo, self.minimum)
                b_hi = min(b_hi, self.maximum)
                if bucket_count == 1:
                    return (b_lo + b_hi) / 2.0
                frac = max(0.0, min(1.0, (pos - seen) / (bucket_count - 1)))
                return b_lo + (b_hi - b_lo) * frac
            seen += bucket_count
        return self.maximum  # pragma: no cover - defensive

    # ---------------------------------------------------------- serialisation
    def to_json(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self.counts),
            "total": self.total,
            "minimum": self.minimum if self.count else None,
            "maximum": self.maximum if self.count else None,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Histogram":
        hist = cls(data["lo"], data["hi"], data["buckets_per_decade"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("bucket count mismatch in histogram snapshot")
        hist.counts = counts
        hist.total = float(data["total"])
        if data.get("minimum") is not None:
            hist.minimum = float(data["minimum"])
        if data.get("maximum") is not None:
            hist.maximum = float(data["maximum"])
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = self.count
        if not n:
            return f"Histogram(lo={self.lo:g}, hi={self.hi:g}, empty)"
        return (f"Histogram(n={n}, mean={self.mean:.4g}, "
                f"min={self.minimum:.4g}, max={self.maximum:.4g})")
