"""Named, independently-seeded random streams.

Every stochastic model in the reproduction (component tolerances, CSMA
backoff, sensor noise, packet loss) draws from its own named stream so
that changing one model never perturbs the randomness seen by another —
a prerequisite for meaningful A/B experiments on a simulator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for deterministic per-purpose :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a1 = reg.stream("csma").random()
    >>> b1 = reg.stream("noise").random()
    >>> reg2 = RngRegistry(seed=42)
    >>> reg2.stream("csma").random() == a1
    True
    >>> reg2.stream("noise").random() == b1
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per simulated node)."""
        digest = hashlib.sha256(f"{self._seed}/fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
