"""Named, independently-seeded random streams.

Every stochastic model in the reproduction (component tolerances, CSMA
backoff, sensor noise, packet loss) draws from its own named stream so
that changing one model never perturbs the randomness seen by another —
a prerequisite for meaningful A/B experiments on a simulator.

The registry is also the checkpoint boundary for entropy: every stream
and every forked child registry is tracked by name, so
:meth:`RngRegistry.snapshot_state` / :meth:`RngRegistry.restore_state`
round-trip the *entire* randomness tree via ``getstate``/``setstate``.
No model may draw from an ad-hoc ``random.Random`` — randomness that
is not in the registry silently escapes checkpoints.

Note the registry deliberately does **not** alias these methods to
``__getstate__``/``__setstate__``: inside a full shard checkpoint the
registry pickles plainly (its ``__dict__`` of Random instances), so
streams captured in closures stay *the same objects* as the registry's
entries after restore.  The explicit methods are for targeted state
transfer — tests, forked variants, partial restores.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(text: str) -> int:
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for deterministic per-purpose :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a1 = reg.stream("csma").random()
    >>> b1 = reg.stream("noise").random()
    >>> reg2 = RngRegistry(seed=42)
    >>> reg2.stream("csma").random() == a1
    True
    >>> reg2.stream("noise").random() == b1
    True
    """

    SNAPSHOT_SCHEMA = {
        "layer": "sim",
        "version": 1,
        "fields": ("_seed", "_streams", "_children"),
    }

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "RngRegistry"] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(f"{self._seed}:{name}"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """The child registry for *name* (e.g. one per simulated node).

        Forks are cached: ``fork("client")`` called twice returns the
        same registry, so separately-constructed components can share
        one entropy subtree — and the whole tree stays reachable for
        checkpointing.
        """
        child = self._children.get(name)
        if child is None:
            child = RngRegistry(_derive_seed(f"{self._seed}/fork:{name}"))
            self._children[name] = child
        return child

    # -------------------------------------------------------------- traversal
    def streams(self) -> Dict[str, random.Random]:
        """Materialized streams by name (live references, not copies)."""
        return dict(self._streams)

    def stream_names(self):
        return sorted(self._streams)

    def children(self) -> Dict[str, "RngRegistry"]:
        """Forked child registries by fork name."""
        return dict(self._children)

    # ------------------------------------------------------------- checkpoint
    def snapshot_state(self) -> dict:
        """Full entropy-tree state: seeds plus Mersenne internals."""
        return {
            "_schema": self.SNAPSHOT_SCHEMA["version"],
            "seed": self._seed,
            "streams": {
                name: rng.getstate()
                for name, rng in sorted(self._streams.items())
            },
            "children": {
                name: child.snapshot_state()
                for name, child in sorted(self._children.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild streams/children in place from :meth:`snapshot_state`.

        Existing stream objects are reused (``setstate`` in place) so
        references held elsewhere keep pointing at live streams.
        """
        from repro.snapshot.migrate import upgrade_state

        state = upgrade_state(type(self), state)
        self._seed = int(state["seed"])
        for name, rng_state in state["streams"].items():
            self.stream(name).setstate(rng_state)
        for name in list(self._streams):
            if name not in state["streams"]:
                del self._streams[name]
        for name, child_state in state["children"].items():
            child = self._children.get(name)
            if child is None:
                child = RngRegistry(0)
                self._children[name] = child
            child.restore_state(child_state)
        for name in list(self._children):
            if name not in state["children"]:
                del self._children[name]

    def perturb(self, salt: str) -> None:
        """Reseed every stream (recursively) from *salt* — in place.

        The warm-start fork primitive: restore a checkpoint, perturb
        with a variant salt, and every stream — including those already
        captured inside scheduled closures — diverges deterministically
        while all non-random state stays warm.
        """
        for name, rng in sorted(self._streams.items()):
            rng.seed(_derive_seed(f"{self._seed}:{name}:perturb:{salt}"))
        for name, child in sorted(self._children.items()):
            child.perturb(f"{salt}/{name}")


__all__ = ["RngRegistry"]
