"""Minimal HTTP/1.1 and WebSocket wire primitives (stdlib only).

The gateway deliberately avoids third-party HTTP stacks: the container
ships no aiohttp/websockets, and the subset the service needs —
request-line + header parsing, JSON responses, and RFC 6455 server-side
frames for ``/stream`` — fits in a few hundred lines over asyncio
streams.  Everything here is transport-shape only; routing and
semantics live in :mod:`repro.gateway.server`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024

#: RFC 6455 §1.3 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

WS_OP_TEXT = 0x1
WS_OP_CLOSE = 0x8
WS_OP_PING = 0x9
WS_OP_PONG = 0xA

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class WireError(Exception):
    """Malformed or oversized input from the peer."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise WireError(f"request body is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise WireError("request body must be a JSON object")
        return data

    @property
    def wants_websocket(self) -> bool:
        return (self.header("upgrade").lower() == "websocket"
                and "upgrade" in self.header("connection").lower())


async def read_request(reader) -> Optional[Request]:
    """Read one request off *reader*; None on clean EOF before a byte."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrun
        data = getattr(exc, "partial", b"")
        if not data:
            return None
        raise WireError(f"truncated request head: {exc}") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise WireError("request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:
        raise WireError("undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise WireError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise WireError("bad Content-Length") from exc
        if n < 0 or n > MAX_BODY_BYTES:
            raise WireError("unacceptable Content-Length")
        body = await reader.readexactly(n)
    return Request(method=method.upper(), path=target, headers=headers,
                   body=body)


def split_target(target: str) -> Tuple[str, Dict[str, str]]:
    """Split a request target into (path, query-dict)."""
    path, _, query = target.partition("?")
    params: Dict[str, str] = {}
    if query:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = value
    return path, params


def response_bytes(status: int, body: object = None, *,
                   content_type: str = "application/json",
                   extra_headers: Tuple[Tuple[str, str], ...] = (),
                   keep_alive: bool = True) -> bytes:
    """Serialize one HTTP/1.1 response.

    Dict/list bodies are JSON-encoded with sorted keys — the same
    canonical serialization the digest layer uses, so a TD fetched over
    HTTP is byte-identical to its generated form.
    """
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    elif isinstance(body, str):
        payload = body.encode("utf-8")
    else:
        payload = json.dumps(body, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


# --------------------------------------------------------------- websocket
def ws_accept(key: str) -> str:
    """RFC 6455 §4.2.2 accept token for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_handshake_bytes(key: str) -> bytes:
    """The 101 Switching Protocols response for a WS upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {ws_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def ws_encode(payload: bytes, opcode: int = WS_OP_TEXT) -> bytes:
    """One unmasked, FIN server→client frame."""
    header = bytes([0x80 | (opcode & 0x0F)])
    n = len(payload)
    if n < 126:
        header += bytes([n])
    elif n < 1 << 16:
        header += bytes([126]) + struct.pack(">H", n)
    else:
        header += bytes([127]) + struct.pack(">Q", n)
    return header + payload


def ws_encode_text(text: str) -> bytes:
    return ws_encode(text.encode("utf-8"), WS_OP_TEXT)


async def ws_read(reader) -> Tuple[int, bytes]:
    """Read one client frame; returns (opcode, unmasked payload).

    Raises :class:`WireError` on protocol violations (client frames
    must be masked, control frames must be short).  EOF surfaces as the
    underlying ``IncompleteReadError``.
    """
    first, second = await reader.readexactly(2)
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        length = struct.unpack(">H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", await reader.readexactly(8))[0]
    if length > MAX_BODY_BYTES:
        raise WireError("websocket frame too large")
    if opcode >= 0x8 and length > 125:
        raise WireError("oversized control frame")
    if not masked:
        raise WireError("client frames must be masked")
    mask = await reader.readexactly(4)
    data = await reader.readexactly(length)
    payload = bytes(b ^ mask[i % 4] for i, b in enumerate(data))
    return opcode, payload


__all__ = [
    "MAX_BODY_BYTES",
    "Request",
    "WireError",
    "WS_OP_CLOSE",
    "WS_OP_PING",
    "WS_OP_PONG",
    "WS_OP_TEXT",
    "read_request",
    "response_bytes",
    "split_target",
    "ws_accept",
    "ws_encode",
    "ws_encode_text",
    "ws_handshake_bytes",
    "ws_read",
]
