"""repro.gateway: a live HTTP/WebSocket service over simulated fleets.

Publishes every Thing of a running :class:`FleetScenario` as a W3C-style
Thing Description with live endpoints, bridged into the deterministic
simulation by a single-threaded request serializer.  See DESIGN.md §11.

Layers:

* :mod:`repro.gateway.thing_description` — pure TD generation from the
  driver catalogue and registry state;
* :mod:`repro.gateway.bridge` — the sim-hosting thread, admission
  pacing, request log, replay determinism;
* :mod:`repro.gateway.wire` — stdlib HTTP/1.1 + RFC 6455 primitives;
* :mod:`repro.gateway.server` — asyncio routing and streaming;
* :mod:`repro.gateway.obs` — request-scoped observability: latency
  decomposition, slow-op journal, SLO-triggered flight recorder
  (DESIGN.md §12);
* :mod:`repro.gateway.loadgen` — open-loop load generation with
  SLO-judged latency/error measurements.
"""

from repro.gateway.bridge import GatewayBridge, Op, OpResult, RequestLog
from repro.gateway.loadgen import LoadConfig, LoadResult, run_load
from repro.gateway.obs import GatewayObsConfig, GatewayObservability
from repro.gateway.server import GatewayServer, GatewayStats
from repro.gateway.thing_description import (
    directory_entry,
    driver_affordances,
    thing_description,
)

__all__ = [
    "GatewayBridge",
    "GatewayObsConfig",
    "GatewayObservability",
    "GatewayServer",
    "GatewayStats",
    "LoadConfig",
    "LoadResult",
    "Op",
    "OpResult",
    "RequestLog",
    "directory_entry",
    "driver_affordances",
    "run_load",
    "thing_description",
]
