"""W3C-style Thing Descriptions for simulated µPnP Things.

Every Thing hosted behind the gateway is published as a Thing
Description (TD): a JSON document advertising the Thing's *interaction
affordances* — readable properties, invokable actions, observable
events — each with a ``forms`` entry pointing at the live HTTP/WS
endpoint that bridges into the simulation.

Affordances are derived, not hand-written: a peripheral contributes a
property iff its compiled driver exports a ``read`` handler, a write
action iff it exports ``write``, and a stream event iff it is readable
(the µPnP runtime provides periodic streaming over any readable
driver).  That keeps the TD an honest projection of the driver
catalogue — the same :class:`~repro.drivers.catalog.DriverSpec` the
manager deploys from — so a TD can never advertise an interaction the
simulated device would reject.

Determinism contract: TD generation is a pure function of its inputs
(thing id, plugged peripherals, registry state) and every dict is
assembled in sorted key order, so ``json.dumps(td, sort_keys=True)``
is byte-stable across generations and re-serialization round-trips.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.registry import Registry
from repro.drivers.catalog import CATALOG, DriverSpec, spec_for_id
from repro.dsl.bytecode import HANDLER_KIND_EVENT
from repro.dsl.symbols import well_known_id

TD_CONTEXT = "https://www.w3.org/2022/wot/td/v1.1"

#: Action name for the manager-driven driver install (every Thing).
INSTALL_ACTION = "install"


def _exports(spec: DriverSpec, name: str) -> bool:
    """True iff the compiled driver has an event handler for *name*."""
    name_id = well_known_id(name)
    if name_id is None:
        return False
    image = spec.compile()
    return image.find_handler(HANDLER_KIND_EVENT, name_id) is not None


def driver_affordances(key: str, spec: DriverSpec) -> dict:
    """The interaction affordances one catalogue driver contributes.

    Returns ``{"properties": {...}, "actions": {...}, "events": {...}}``
    keyed by affordance name (the catalogue key, suffixed for actions
    and events).  Forms are filled in later by
    :func:`thing_description`, which knows the Thing's base href.
    """
    readable = _exports(spec, "read")
    writable = _exports(spec, "write")
    properties: Dict[str, dict] = {}
    actions: Dict[str, dict] = {}
    events: Dict[str, dict] = {}
    if readable:
        properties[key] = {
            "title": spec.name,
            "type": "integer",
            "readOnly": not writable,
            "observable": True,
            "upnp:deviceId": str(spec.device_id),
            "upnp:bus": spec.bus.value,
        }
        events[f"{key}-stream"] = {
            "title": f"{spec.name} stream",
            "data": {"type": "integer"},
            "upnp:deviceId": str(spec.device_id),
        }
    if writable:
        actions[f"{key}-write"] = {
            "title": f"Write {spec.name}",
            "input": {
                "type": "object",
                "properties": {"value": {"type": "integer"}},
                "required": ["value"],
            },
            "upnp:deviceId": str(spec.device_id),
        }
    return {"properties": properties, "actions": actions, "events": events}


def _catalog_key(device_id) -> Optional[str]:
    spec = spec_for_id(device_id)
    if spec is None:
        return None
    for key, entry in CATALOG.items():
        if entry is spec:
            return key
    return None


def thing_description(
    thing_id: int,
    peripherals: Iterable[Tuple[int, object]],
    *,
    registry: Optional[Registry] = None,
    base: str = "",
) -> dict:
    """Build the TD for one hosted Thing.

    *peripherals* is ``(channel, device_id)`` pairs — exactly what
    :meth:`Thing.connected_peripherals` yields.  Boards whose device id
    is not in the catalogue are skipped (they could never serve a
    bridged interaction).  Two boards of the same type merge into one
    affordance listing both channels: reads address the device id, not
    the channel, so the affordance space is per-type.
    """
    href = f"/things/{thing_id}"
    channels_by_key: Dict[str, List[int]] = {}
    for channel, device_id in sorted(peripherals):
        key = _catalog_key(device_id)
        if key is not None:
            channels_by_key.setdefault(key, []).append(channel)

    properties: Dict[str, dict] = {}
    actions: Dict[str, dict] = {}
    events: Dict[str, dict] = {}
    for key in sorted(channels_by_key):
        spec = CATALOG[key]
        contributed = driver_affordances(key, spec)
        for name in sorted(contributed["properties"]):
            prop = dict(contributed["properties"][name])
            prop["upnp:channels"] = list(channels_by_key[key])
            if registry is not None:
                record = registry.record(spec.device_id)
                if record is not None:
                    prop["upnp:registryStatus"] = record.status.value
            prop["forms"] = [{
                "href": f"{base}{href}/properties/{name}",
                "op": ["readproperty"],
            }]
            properties[name] = prop
        for name in sorted(contributed["actions"]):
            action = dict(contributed["actions"][name])
            action["forms"] = [{
                "href": f"{base}{href}/actions/{name}",
                "op": ["invokeaction"],
            }]
            actions[name] = action
        for name in sorted(contributed["events"]):
            event = dict(contributed["events"][name])
            event["forms"] = [{
                "href": f"{base}/stream",
                "subprotocol": "upnp-gateway-stream",
                "op": ["subscribeevent"],
            }]
            events[name] = event

    # Every Thing accepts a manager-driven driver install, plugged or not.
    actions[INSTALL_ACTION] = {
        "title": "Install a catalogue driver",
        "input": {
            "type": "object",
            "properties": {
                "driver": {"type": "string", "enum": sorted(CATALOG)},
            },
            "required": ["driver"],
        },
        "forms": [{
            "href": f"{base}{href}/actions/{INSTALL_ACTION}",
            "op": ["invokeaction"],
        }],
    }

    return {
        "@context": TD_CONTEXT,
        "id": f"urn:upnp:thing:{thing_id}",
        "title": f"thing-{thing_id}",
        "base": base or None,
        "security": ["nosec_sc"],
        "securityDefinitions": {"nosec_sc": {"scheme": "nosec"}},
        "properties": properties,
        "actions": actions,
        "events": events,
        "links": [{"rel": "collection", "href": f"{base}/things"}],
    }


def directory_entry(thing_id: int, n_peripherals: int, *,
                    base: str = "") -> dict:
    """One row of the ``GET /things`` directory listing."""
    return {
        "id": f"urn:upnp:thing:{thing_id}",
        "title": f"thing-{thing_id}",
        "href": f"{base}/things/{thing_id}",
        "peripherals": n_peripherals,
    }


__all__ = [
    "TD_CONTEXT",
    "INSTALL_ACTION",
    "driver_affordances",
    "thing_description",
    "directory_entry",
]
