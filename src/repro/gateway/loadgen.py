"""Open-loop load generator for the gateway service.

Drives a running :class:`GatewayServer` with a paced mix of registry
lookups (``GET /things``, ``GET /things/{id}``) and property reads
(``GET /things/{id}/properties/{name}``), measures wall-clock latency
percentiles and error rate, and judges the run against declarative
SLOs using the same :mod:`repro.telemetry.health` engine that judges
fleet telemetry — a latency SLO and a read-completion SLO are the same
kind of object, evaluated over the same windowed series format.

Open-loop means arrivals are scheduled on a fixed cadence regardless
of completions (the "users don't wait for each other" model), bounded
by a connection pool: if the service falls behind, queueing shows up
as tail latency — exactly what the p99 SLO is for.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gateway.wire import WireError
from repro.sim.stats import percentile
from repro.telemetry.health import HealthReport, SloRule, evaluate
from repro.telemetry.series import SeriesBank

#: Default SLOs for the loadgen run.  Latency bounds are generous —
#: the point in CI is the *shape* (windowed verdicts, ok/degraded
#: statuses), regression magnitudes are the sentinel's job.
DEFAULT_SLOS: Tuple[str, ...] = (
    # The fleet's natural in-fleet read-timeout rate (things whose
    # driver install was lost never answer reads) sits around 1-4%;
    # 5% is the service-level regression line, not an aspiration.
    "error_rate: gateway_errors_total/gateway_requests_total <= 5% "
    "window=5",
    "latency_p95: gateway_latency_ms.p95 < 200 window=5",
    "latency_p99: gateway_latency_ms.p99 < 500 window=5",
)


@dataclass(frozen=True)
class LoadConfig:
    """One load-test shape."""

    duration_s: float = 30.0
    lookups_per_min: float = 600.0
    reads_per_min: float = 10_000.0
    #: Persistent keep-alive connections (concurrency bound).
    connections: int = 8
    #: Per-request wall timeout.
    timeout_s: float = 10.0
    #: How many TDs to crawl during warm-up property discovery.
    discover_things: int = 64
    slos: Tuple[str, ...] = DEFAULT_SLOS


class HttpPool:
    """A pool of persistent HTTP/1.1 connections to one host:port."""

    def __init__(self, host: str, port: int, size: int) -> None:
        self.host = host
        self.port = port
        self._idle: "asyncio.Queue" = asyncio.Queue()
        for _ in range(size):
            self._idle.put_nowait(None)  # None = not yet connected

    async def _connect(self):
        return await asyncio.open_connection(self.host, self.port)

    async def request(self, method: str, path: str,
                      body: Optional[dict] = None,
                      timeout_s: float = 10.0,
                      headers: Optional[Dict[str, str]] = None,
                      with_headers: bool = False):
        """Issue one request on a pooled connection.

        Returns ``(status, parsed-json-body)`` — or ``(status,
        response-headers, parsed-body)`` with ``with_headers=True``
        (how tests observe the ``X-Request-Id`` echo).  Transport
        failures raise; HTTP error statuses return normally (the caller
        decides what counts as an SLO "error").
        """
        conn = await self._idle.get()
        try:
            if conn is None:
                conn = await self._connect()
            try:
                result = await asyncio.wait_for(
                    self._roundtrip(conn, method, path, body, headers),
                    timeout_s)
            except (ConnectionError, asyncio.IncompleteReadError):
                # Stale keep-alive connection: retry once on a fresh one.
                conn[1].close()
                conn = await self._connect()
                result = await asyncio.wait_for(
                    self._roundtrip(conn, method, path, body, headers),
                    timeout_s)
            self._idle.put_nowait(conn)
            status, response_headers, parsed = result
            if with_headers:
                return status, response_headers, parsed
            return status, parsed
        except BaseException:
            if conn is not None:
                conn[1].close()
            self._idle.put_nowait(None)
            raise

    async def _roundtrip(self, conn, method: str, path: str,
                         body: Optional[dict],
                         headers: Optional[Dict[str, str]] = None):
        reader, writer = conn
        payload = b"" if body is None else json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: keep-alive\r\n")
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status_line = await reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise WireError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        length = 0
        response_headers: Dict[str, str] = {}
        while True:
            line = (await reader.readuntil(b"\r\n")).decode("latin-1")
            if line == "\r\n":
                break
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        content_type = response_headers.get("content-type", "")
        if raw and "json" in content_type:
            parsed = json.loads(raw)
        elif raw:
            parsed = raw.decode("utf-8")
        else:
            parsed = {}
        return status, response_headers, parsed

    async def close(self) -> None:
        while not self._idle.empty():
            conn = self._idle.get_nowait()
            if conn is not None:
                conn[1].close()


@dataclass
class LoadResult:
    """Everything one loadgen run measured."""

    config: LoadConfig
    wall_s: float = 0.0
    requests: int = 0
    errors: int = 0
    timeouts: int = 0
    latencies_ms: Dict[str, List[float]] = field(default_factory=dict)
    health: Optional[HealthReport] = None
    #: Server-side diagnostics fetched after the run (/healthz +
    #: /debug/ops): stream drops and the bridged decomposition.
    server: Dict[str, dict] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    def _lat_summary(self, values: List[float]) -> dict:
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "p50_latency_ms": round(percentile(values, 50), 3),
            "p95_latency_ms": round(percentile(values, 95), 3),
            "p99_latency_ms": round(percentile(values, 99), 3),
            "mean_ms": round(sum(values) / len(values), 3),
            "max_ms": round(max(values), 3),
        }

    def as_dict(self) -> dict:
        merged: List[float] = []
        for values in self.latencies_ms.values():
            merged.extend(values)
        doc = {
            "wall_s": round(self.wall_s, 3),
            "requests": self.requests,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "error_rate": round(self.error_rate, 6),
            "requests_per_s": round(self.requests_per_s, 2),
            "reads_per_min": round(
                60.0 * len(self.latencies_ms.get("read", []))
                / self.wall_s, 1) if self.wall_s else 0.0,
            "latency": self._lat_summary(merged),
            "latency_by_kind": {
                kind: self._lat_summary(values)
                for kind, values in sorted(self.latencies_ms.items())
            },
        }
        if self.server:
            health = self.server.get("health", {})
            summary = self.server.get("ops", {}).get("summary", {})
            doc["server"] = {
                "stream_dropped": health.get("stream_dropped", 0),
                "requests": health.get("requests", 0),
                "slo_status": summary.get("slo_status"),
                "flight_dumps": summary.get("flight_dumps", []),
                "decomposition": summary.get("kinds", {}),
            }
        if self.health is not None:
            doc["slo"] = {
                "ok": self.health.ok,
                "status": self.health.status,
                "rules": {
                    r.rule.name: {"status": r.status, "ok": r.ok,
                                  "degraded": len(r.degraded_windows),
                                  "windows": len(r.windows)}
                    for r in self.health.results
                },
            }
        return doc


def _mix_schedule(lookups_per_min: float,
                  reads_per_min: float) -> List[str]:
    """Smallest repeating lookup/read interleaving for the given rates."""
    total = lookups_per_min + reads_per_min
    if total <= 0:
        raise ValueError("need a positive request rate")
    if lookups_per_min <= 0:
        return ["read"]
    if reads_per_min <= 0:
        return ["lookup"]
    # Spread the rarer kind evenly through a cycle of ~this many slots.
    cycle = max(2, min(100, round(total / min(lookups_per_min,
                                              reads_per_min))))
    rare = "lookup" if lookups_per_min <= reads_per_min else "read"
    common = "read" if rare == "lookup" else "lookup"
    return [rare] + [common] * (cycle - 1)


async def discover_targets(pool: HttpPool, limit: int, *,
                           probe: bool = False) -> List[Tuple[int, str]]:
    """Crawl the directory and TDs into ``(thing, property)`` pairs.

    With ``probe=True``, each pair is verified with one read and
    non-200 pairs are dropped — a Thing that lost its driver install
    never answers reads, and hammering it would only measure the
    fleet's install success rate, not service latency.  Churn during
    the run can still surface 404s/504s; that residue is what the
    error-rate SLO watches.
    """
    status, directory = await pool.request("GET", "/things")
    if status != 200:
        raise RuntimeError(f"directory fetch failed: {status}")
    targets: List[Tuple[int, str]] = []
    for entry in directory["things"][:limit]:
        thing = int(entry["id"].rsplit(":", 1)[1])
        status, td = await pool.request("GET", f"/things/{thing}")
        if status != 200:
            continue
        for name in sorted(td.get("properties", ())):
            targets.append((thing, name))
    if not probe:
        return targets
    alive: List[Tuple[int, str]] = []
    for thing, name in targets:
        status, _ = await pool.request(
            "GET", f"/things/{thing}/properties/{name}", timeout_s=30.0)
        if status == 200:
            alive.append((thing, name))
    return alive


async def run_load(host: str, port: int,
                   config: LoadConfig) -> LoadResult:
    """Drive the gateway at *config*'s rates; returns measurements."""
    pool = HttpPool(host, port, config.connections)
    result = LoadResult(config)
    bank = SeriesBank(capacity=1_000_000)
    requests_series = bank.series(
        "gateway_requests_total", kind="counter", merge="sum",
        help="Loadgen requests completed")
    errors_series = bank.series(
        "gateway_errors_total", kind="counter", merge="sum",
        help="Loadgen requests that failed (5xx or transport)")
    latency_series = bank.series(
        "gateway_latency_ms", kind="gauge", merge="max", unit="ms",
        help="Per-request wall latency")

    targets = await discover_targets(pool, config.discover_things,
                                     probe=True)
    if not targets:
        raise RuntimeError("no readable properties discovered — warm the "
                           "fleet up (advance) before generating load")
    schedule = _mix_schedule(config.lookups_per_min, config.reads_per_min)
    interval = 60.0 / (config.lookups_per_min + config.reads_per_min)

    counters = {"requests": 0, "errors": 0, "timeouts": 0}
    origin = time.perf_counter()
    pending: set = set()

    def record(kind: str, t_rel: float, latency_ms: float,
               error: bool) -> None:
        counters["requests"] += 1
        if error:
            counters["errors"] += 1
        t_ns = int(t_rel * 1e9)
        requests_series.record(t_ns, counters["requests"])
        errors_series.record(t_ns, counters["errors"])
        latency_series.record(t_ns, latency_ms)
        result.latencies_ms.setdefault(kind, []).append(latency_ms)

    async def one(kind: str, index: int) -> None:
        if kind == "lookup":
            # Alternate directory listings and single-TD fetches.
            thing = targets[index % len(targets)][0]
            path = "/things" if index % 2 == 0 else f"/things/{thing}"
        else:
            thing, prop = targets[index % len(targets)]
            path = f"/things/{thing}/properties/{prop}"
        start = time.perf_counter()
        try:
            status, _body = await pool.request(
                "GET", path, timeout_s=config.timeout_s)
            error = status >= 500
        except asyncio.TimeoutError:
            counters["timeouts"] += 1
            error = True
        except (ConnectionError, OSError, WireError,
                asyncio.IncompleteReadError):
            error = True
        end = time.perf_counter()
        record(kind, end - origin, (end - start) * 1e3, error)

    index = 0
    while True:
        target_t = index * interval
        now = time.perf_counter() - origin
        if now >= config.duration_s:
            break
        if target_t > now:
            await asyncio.sleep(target_t - now)
            if time.perf_counter() - origin >= config.duration_s:
                break
        kind = schedule[index % len(schedule)]
        task = asyncio.ensure_future(one(kind, index))
        pending.add(task)
        task.add_done_callback(pending.discard)
        index += 1

    if pending:
        await asyncio.wait(pending, timeout=config.timeout_s + 5.0)

    # Pull the server's own view of the run: surfaced stream drops and
    # the per-kind queue_wait/sim_exec/reply_write decomposition that
    # attributes whatever tail the latency percentiles above measured.
    try:
        status, health = await pool.request("GET", "/healthz",
                                            timeout_s=config.timeout_s)
        if status == 200:
            result.server["health"] = health
        status, ops_doc = await pool.request("GET", "/debug/ops",
                                             timeout_s=config.timeout_s)
        if status == 200:
            result.server["ops"] = ops_doc
    except (ConnectionError, OSError, WireError, asyncio.TimeoutError,
            asyncio.IncompleteReadError):
        pass
    await pool.close()

    result.wall_s = time.perf_counter() - origin
    result.requests = counters["requests"]
    result.errors = counters["errors"]
    result.timeouts = counters["timeouts"]
    rules = [SloRule.parse(text) for text in config.slos]
    # Judge SLOs over the configured measurement interval only.  The
    # backlog drain after `duration_s` holds just the requests slow
    # enough to straddle the boundary (length-biased sampling), so a
    # partial drain window would read degraded by construction; drain
    # latencies still count in the aggregate percentiles above.
    document = bank.snapshot()
    horizon = int(config.duration_s * 1e9)
    for series in document["series"]:
        series["samples"] = [s for s in series["samples"]
                             if s[0] <= horizon]
    result.health = evaluate(rules, document)
    return result


__all__ = ["DEFAULT_SLOS", "HttpPool", "LoadConfig", "LoadResult",
           "discover_targets", "run_load"]
