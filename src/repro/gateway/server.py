"""The gateway HTTP/WebSocket front-end.

:class:`GatewayServer` owns an ``asyncio.start_server`` listener and a
:class:`~repro.gateway.bridge.GatewayBridge`.  Request handling is
thin: parse, route, translate the route into an :class:`Op`, await the
bridge's future (``asyncio.wrap_future`` crosses from the bridge
thread back into the event loop), serialize the :class:`OpResult` as
JSON.  All fleet semantics — admission, timeouts, 404-vs-504 — are the
bridge's; all transport concerns — keep-alive, malformed requests,
WebSocket framing — are this module's.

Routes
------

========  ==================================  =======================
method    path                                bridged op
========  ==================================  =======================
GET       /things                             list (read-only)
GET       /things/{id}                        td (read-only)
GET       /things/{id}/properties/{name}      read
POST      /things/{id}/actions/install        install
POST      /things/{id}/actions/{name}         write
GET       /healthz                            none (liveness)
GET       /stream                             WebSocket subscription
========  ==================================  =======================
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.gateway.bridge import GatewayBridge, Op, OpResult
from repro.gateway.thing_description import INSTALL_ACTION
from repro.gateway.wire import (
    Request,
    WireError,
    WS_OP_CLOSE,
    WS_OP_PING,
    read_request,
    response_bytes,
    split_target,
    ws_encode,
    ws_encode_text,
    ws_handshake_bytes,
    ws_read,
    WS_OP_PONG,
)

#: Per-subscriber buffered events before the slow consumer drops frames.
STREAM_QUEUE_DEPTH = 1024


class GatewayServer:
    """Serve one bridge over HTTP/WS on ``host:port`` (port 0 = ephemeral)."""

    def __init__(self, bridge: GatewayBridge, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.bridge = bridge
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._streams = 0
        self.stream_dropped = 0
        self._connections: set = set()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "GatewayServer":
        self.bridge.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Tear down live connections too: handler tasks must not
        # outlive the server into event-loop close.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self._connections.clear()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except WireError as exc:
                    writer.write(response_bytes(
                        400, {"error": str(exc)}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_stream(request, reader, writer)
                    break
                keep_alive = (request.header("connection").lower()
                              != "close")
                payload = await self._dispatch(request)
                writer.write(response_bytes(
                    payload[0], payload[1], keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection mid-read: close quietly.
            pass
        finally:
            # RuntimeError: the event loop already closed under us (a
            # keep-alive connection GC'd at interpreter/test teardown).
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    # --------------------------------------------------------------- routing
    async def _dispatch(self, request: Request):
        """Route one request; returns ``(status, body)``."""
        path, _params = split_target(request.path)
        segments = [s for s in path.split("/") if s]
        try:
            if request.method == "GET":
                if segments == ["healthz"]:
                    return 200, {"status": "ok",
                                 "things": len(self.bridge._things),
                                 "pacing": self.bridge.pacing,
                                 "streams": self._streams}
                if segments == ["things"]:
                    return await self._bridged(Op("list"))
                if len(segments) == 2 and segments[0] == "things":
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return 404, {"error": f"bad thing id: "
                                              f"{segments[1]!r}"}
                    return await self._bridged(Op("td", thing=thing))
                if (len(segments) == 4 and segments[0] == "things"
                        and segments[2] == "properties"):
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return 404, {"error": f"bad thing id: "
                                              f"{segments[1]!r}"}
                    return await self._bridged(
                        Op("read", thing=thing, name=segments[3]))
                return 404, {"error": f"no route: GET {path}"}
            if request.method == "POST":
                if (len(segments) == 4 and segments[0] == "things"
                        and segments[2] == "actions"):
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return 404, {"error": f"bad thing id: "
                                              f"{segments[1]!r}"}
                    return await self._invoke_action(
                        thing, segments[3], request)
                return 404, {"error": f"no route: POST {path}"}
            return 405, {"error": f"method not allowed: {request.method}"}
        except WireError as exc:
            return 400, {"error": str(exc)}

    async def _invoke_action(self, thing: int, action: str,
                             request: Request):
        body = request.json()
        if action == INSTALL_ACTION:
            driver = body.get("driver")
            if not isinstance(driver, str):
                return 400, {"error": "install needs a string 'driver'"}
            return await self._bridged(
                Op("install", thing=thing, name=driver))
        value = body.get("value")
        if not isinstance(value, int) or isinstance(value, bool):
            return 400, {"error": f"action {action!r} needs an integer "
                                  "'value'"}
        return await self._bridged(
            Op("write", thing=thing, name=action, value=value))

    async def _bridged(self, op: Op):
        result: OpResult = await asyncio.wrap_future(self.bridge.submit(op))
        body = dict(result.body)
        if result.admitted_ns:
            body["sim"] = {"admitted_ns": result.admitted_ns,
                           "latency_ns": result.sim_latency_ns}
        return result.status, body

    # ------------------------------------------------------------- streaming
    async def _serve_stream(self, request: Request, reader, writer) -> None:
        path, _ = split_target(request.path)
        key = request.header("sec-websocket-key")
        if path != "/stream" or not key:
            writer.write(response_bytes(
                404 if path != "/stream" else 400,
                {"error": "websocket upgrade only at /stream"},
                keep_alive=False))
            await writer.drain()
            return
        writer.write(ws_handshake_bytes(key))
        await writer.drain()
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue" = asyncio.Queue(maxsize=STREAM_QUEUE_DEPTH)

        def on_event(message: dict) -> None:
            # Bridge-thread context: hop onto the loop, drop when the
            # consumer can't keep up (a live stream must never apply
            # backpressure to the simulation).
            def deliver() -> None:
                try:
                    events.put_nowait(message)
                except asyncio.QueueFull:
                    self.stream_dropped += 1

            loop.call_soon_threadsafe(deliver)

        self.bridge.subscribe(on_event)
        self._streams += 1
        try:
            sender = asyncio.ensure_future(self._pump_events(events, writer))
            await self._consume_frames(reader, writer)
        finally:
            self._streams -= 1
            self.bridge.unsubscribe(on_event)
            sender.cancel()

    async def _pump_events(self, events: "asyncio.Queue", writer) -> None:
        try:
            while True:
                message = await events.get()
                writer.write(ws_encode_text(
                    json.dumps(message, sort_keys=True)))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass

    async def _consume_frames(self, reader, writer) -> None:
        """Answer pings, exit on close/EOF; inbound text is ignored."""
        try:
            while True:
                opcode, payload = await ws_read(reader)
                if opcode == WS_OP_CLOSE:
                    writer.write(ws_encode(payload, WS_OP_CLOSE))
                    await writer.drain()
                    return
                if opcode == WS_OP_PING:
                    writer.write(ws_encode(payload, WS_OP_PONG))
                    await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, WireError):
            return


def _thing_id(raw: str) -> Optional[int]:
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


async def serve_forever(bridge: GatewayBridge, *, host: str = "127.0.0.1",
                        port: int = 0) -> None:
    """Run a gateway until cancelled (the ``python -m repro.gateway
    serve`` entry point)."""
    server = await GatewayServer(bridge, host=host, port=port).start()
    print(f"gateway listening on {server.base_url} "
          f"({len(bridge._things)} things, pacing={bridge.pacing})")
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()


__all__ = ["GatewayServer", "serve_forever", "STREAM_QUEUE_DEPTH"]
