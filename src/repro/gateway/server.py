"""The gateway HTTP/WebSocket front-end.

:class:`GatewayServer` owns an ``asyncio.start_server`` listener and a
:class:`~repro.gateway.bridge.GatewayBridge`.  Request handling is
thin: parse, route, translate the route into an :class:`Op`, await the
bridge's future (``asyncio.wrap_future`` crosses from the bridge
thread back into the event loop), serialize the :class:`OpResult` as
JSON.  All fleet semantics — admission, timeouts, 404-vs-504 — are the
bridge's; all transport concerns — keep-alive, malformed requests,
WebSocket framing — are this module's.

Routes
------

========  ==================================  =======================
method    path                                bridged op
========  ==================================  =======================
GET       /things                             list (read-only)
GET       /things/{id}                        td (read-only)
GET       /things/{id}/properties/{name}      read
POST      /things/{id}/actions/install        install
POST      /things/{id}/actions/{name}         write
GET       /healthz                            none (liveness)
GET       /metrics                            none (OpenMetrics scrape)
GET       /debug/ops                          none (slow-op journal)
GET       /stream                             WebSocket subscription
========  ==================================  =======================

Request correlation: every HTTP request gets a request-id — the
inbound ``X-Request-Id`` when the client sent one, else a generated
``req-N`` — echoed back as a response header and threaded through the
bridged :class:`Op` into the request log, the slow-op journal and the
gateway trace spans.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass
from typing import Optional

from repro.gateway.bridge import GatewayBridge, Op, OpResult
from repro.telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    to_openmetrics,
)
from repro.telemetry.series import SeriesBank
from repro.gateway.thing_description import INSTALL_ACTION
from repro.gateway.wire import (
    Request,
    WireError,
    WS_OP_CLOSE,
    WS_OP_PING,
    read_request,
    response_bytes,
    split_target,
    ws_encode,
    ws_encode_text,
    ws_handshake_bytes,
    ws_read,
    WS_OP_PONG,
)

#: Per-subscriber buffered events before the slow consumer drops frames.
STREAM_QUEUE_DEPTH = 1024


@dataclass
class GatewayStats:
    """Server-plane counters (asyncio thread only; never sim state)."""

    requests: int = 0
    streams: int = 0
    stream_dropped: int = 0

    def as_dict(self) -> dict:
        return {"requests": self.requests, "streams": self.streams,
                "stream_dropped": self.stream_dropped}


class GatewayServer:
    """Serve one bridge over HTTP/WS on ``host:port`` (port 0 = ephemeral)."""

    def __init__(self, bridge: GatewayBridge, *, host: str = "127.0.0.1",
                 port: int = 0,
                 stream_queue_depth: int = STREAM_QUEUE_DEPTH) -> None:
        self.bridge = bridge
        self.host = host
        self.port = port
        self.stream_queue_depth = stream_queue_depth
        self.stats = GatewayStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._request_ids = itertools.count(1)

    @property
    def stream_dropped(self) -> int:
        return self.stats.stream_dropped

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "GatewayServer":
        self.bridge.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Tear down live connections too: handler tasks must not
        # outlive the server into event-loop close.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self._connections.clear()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except WireError as exc:
                    writer.write(response_bytes(
                        400, {"error": str(exc)}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_stream(request, reader, writer)
                    break
                keep_alive = (request.header("connection").lower()
                              != "close")
                request_id = (request.header("x-request-id")
                              or f"req-{next(self._request_ids)}")
                self.stats.requests += 1
                status, body, content_type, record = await self._dispatch(
                    request, request_id)
                data = response_bytes(
                    status, body, content_type=content_type,
                    keep_alive=keep_alive,
                    extra_headers=(("X-Request-Id", request_id),))
                reply_t0 = time.perf_counter_ns()
                writer.write(data)
                await writer.drain()
                if record is not None and self.bridge.obs is not None:
                    # Close the decomposition: the reply has hit the
                    # socket, so reply-write time is now known.
                    self.bridge.obs.record_reply(
                        record, time.perf_counter_ns() - reply_t0)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection mid-read: close quietly.
            pass
        finally:
            # RuntimeError: the event loop already closed under us (a
            # keep-alive connection GC'd at interpreter/test teardown).
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    # --------------------------------------------------------------- routing
    async def _dispatch(self, request: Request, request_id: str):
        """Route one request; returns ``(status, body, content_type,
        obs_record)``."""
        path, _params = split_target(request.path)
        segments = [s for s in path.split("/") if s]
        try:
            if request.method == "GET":
                if segments == ["healthz"]:
                    return _json(200, self._healthz())
                if segments == ["metrics"]:
                    return await self._metrics()
                if segments == ["debug", "ops"]:
                    return await self._debug_ops()
                if segments == ["things"]:
                    return await self._bridged(Op("list"), request_id)
                if len(segments) == 2 and segments[0] == "things":
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return _json(404, {"error": f"bad thing id: "
                                                    f"{segments[1]!r}"})
                    return await self._bridged(Op("td", thing=thing),
                                               request_id)
                if (len(segments) == 4 and segments[0] == "things"
                        and segments[2] == "properties"):
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return _json(404, {"error": f"bad thing id: "
                                                    f"{segments[1]!r}"})
                    return await self._bridged(
                        Op("read", thing=thing, name=segments[3]),
                        request_id)
                return _json(404, {"error": f"no route: GET {path}"})
            if request.method == "POST":
                if (len(segments) == 4 and segments[0] == "things"
                        and segments[2] == "actions"):
                    thing = _thing_id(segments[1])
                    if thing is None:
                        return _json(404, {"error": f"bad thing id: "
                                                    f"{segments[1]!r}"})
                    return await self._invoke_action(
                        thing, segments[3], request, request_id)
                return _json(404, {"error": f"no route: POST {path}"})
            return _json(405, {"error": "method not allowed: "
                                        f"{request.method}"})
        except WireError as exc:
            return _json(400, {"error": str(exc)})

    async def _invoke_action(self, thing: int, action: str,
                             request: Request, request_id: str):
        body = request.json()
        if action == INSTALL_ACTION:
            driver = body.get("driver")
            if not isinstance(driver, str):
                return _json(400, {"error": "install needs a string "
                                            "'driver'"})
            return await self._bridged(
                Op("install", thing=thing, name=driver), request_id)
        value = body.get("value")
        if not isinstance(value, int) or isinstance(value, bool):
            return _json(400, {"error": f"action {action!r} needs an "
                                        "integer 'value'"})
        return await self._bridged(
            Op("write", thing=thing, name=action, value=value), request_id)

    async def _bridged(self, op: Op, request_id: str):
        if request_id and not op.request_id:
            op = Op(kind=op.kind, thing=op.thing, name=op.name,
                    value=op.value, request_id=request_id)
        result: OpResult = await asyncio.wrap_future(self.bridge.submit(op))
        body = dict(result.body)
        if result.admitted_ns:
            body["sim"] = {"admitted_ns": result.admitted_ns,
                           "latency_ns": result.sim_latency_ns}
            if result.trace_id is not None:
                body["sim"]["trace_id"] = result.trace_id
        return result.status, body, "application/json", result.record

    # --------------------------------------------------------- observability
    def _healthz(self) -> dict:
        body = {"status": "ok",
                "things": len(self.bridge._things),
                "pacing": self.bridge.pacing,
                "streams": self.stats.streams,
                "stream_dropped": self.stats.stream_dropped,
                "requests": self.stats.requests}
        if self.bridge.obs is not None:
            body["slo"] = self.bridge.obs.last_slo_status
        return body

    async def _metrics(self):
        """OpenMetrics scrape: shard telemetry banks merged (shard
        order) with the gateway's own decomposition bank.  Snapshots
        are taken on the bridge thread — the single writer — so a
        scrape can never race the sims."""
        bridge = self.bridge

        def snap() -> dict:
            banks = [d.telemetry.bank.snapshot()
                     for d in bridge.deployments
                     if d.telemetry is not None]
            if bridge.obs is not None:
                banks.append(bridge.obs.bank.snapshot())
            return SeriesBank.merge(banks)

        merged = await asyncio.wrap_future(bridge.submit_call(snap))
        return (200, to_openmetrics(merged),
                OPENMETRICS_CONTENT_TYPE, None)

    async def _debug_ops(self):
        bridge = self.bridge
        if bridge.obs is None:
            return _json(404, {"error": "gateway observability disabled"})

        def snap() -> dict:
            return {"summary": bridge.obs.summary(),
                    "slowest": bridge.obs.journal_snapshot(),
                    "server": self.stats.as_dict()}

        return _json(200, await asyncio.wrap_future(
            bridge.submit_call(snap)))

    # ------------------------------------------------------------- streaming
    async def _serve_stream(self, request: Request, reader, writer) -> None:
        path, _ = split_target(request.path)
        key = request.header("sec-websocket-key")
        if path != "/stream" or not key:
            writer.write(response_bytes(
                404 if path != "/stream" else 400,
                {"error": "websocket upgrade only at /stream"},
                keep_alive=False))
            await writer.drain()
            return
        writer.write(ws_handshake_bytes(key))
        await writer.drain()
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.stream_queue_depth)

        def on_event(message: dict) -> None:
            # Bridge-thread context: hop onto the loop, drop when the
            # consumer can't keep up (a live stream must never apply
            # backpressure to the simulation).
            def deliver() -> None:
                try:
                    events.put_nowait(message)
                except asyncio.QueueFull:
                    self.stats.stream_dropped += 1
                    if self.bridge.obs is not None:
                        self.bridge.obs.record_stream_dropped(
                            self.stats.stream_dropped)

            loop.call_soon_threadsafe(deliver)

        self.bridge.subscribe(on_event)
        self.stats.streams += 1
        try:
            sender = asyncio.ensure_future(self._pump_events(events, writer))
            await self._consume_frames(reader, writer)
        finally:
            self.stats.streams -= 1
            self.bridge.unsubscribe(on_event)
            sender.cancel()

    async def _pump_events(self, events: "asyncio.Queue", writer) -> None:
        try:
            while True:
                message = await events.get()
                writer.write(ws_encode_text(
                    json.dumps(message, sort_keys=True)))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass

    async def _consume_frames(self, reader, writer) -> None:
        """Answer pings, exit on close/EOF; inbound text is ignored."""
        try:
            while True:
                opcode, payload = await ws_read(reader)
                if opcode == WS_OP_CLOSE:
                    writer.write(ws_encode(payload, WS_OP_CLOSE))
                    await writer.drain()
                    return
                if opcode == WS_OP_PING:
                    writer.write(ws_encode(payload, WS_OP_PONG))
                    await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, WireError):
            return


def _json(status: int, body: dict):
    """A JSON dispatch result with no obs record."""
    return status, body, "application/json", None


def _thing_id(raw: str) -> Optional[int]:
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


async def serve_forever(bridge: GatewayBridge, *, host: str = "127.0.0.1",
                        port: int = 0) -> None:
    """Run a gateway until cancelled (the ``python -m repro.gateway
    serve`` entry point)."""
    server = await GatewayServer(bridge, host=host, port=port).start()
    print(f"gateway listening on {server.base_url} "
          f"({len(bridge._things)} things, pacing={bridge.pacing})")
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()


__all__ = ["GatewayServer", "GatewayStats", "serve_forever",
           "STREAM_QUEUE_DEPTH"]
