"""The gateway bridge: a live simulated fleet behind a request queue.

The bridge owns every shard of a :class:`FleetScenario` (built via
:func:`repro.fleet.runner.live_shards`) and runs them on one dedicated
thread.  Callers — the asyncio HTTP/WebSocket server, the load
generator, tests — submit :class:`Op` values; the bridge thread
dequeues them one at a time, injects each into the owning shard's
simulator, drives that simulator until the operation completes, and
resolves the caller's future.  Concurrent requests therefore
*serialize deterministically* into sim events: whatever the wall-clock
interleaving of arrivals, the fleet only ever observes the total order
the queue produced.

Virtual-time pacing policies
----------------------------

``pacing="free"`` (the default, and the deterministic one): simulated
time advances only when operations are admitted.  The k-th
sim-affecting operation is admitted at the *admission instant*
``k * quantum_ns`` — a pure function of its position in the request
log, never of wall-clock arrival time — clamped up to the owning
shard's current clock if an earlier operation already drove that shard
past it.  The fleet's entire state (and therefore :meth:`digest`) is a
pure function of the ordered request log, which is what makes a
recorded log replayable: see :meth:`replay`.

``pacing="wall"``: a pacer in the bridge loop keeps every shard's
clock tracking wall time (times ``speed``), so churn, streams and
telemetry advance while the service idles — the interactive/dashboard
mode.  Wall pacing is explicitly *not* digest-reproducible: admission
instants depend on arrival times.

Determinism contract
--------------------

For a free-paced bridge, ``digest()`` after applying an ordered list
of operations equals ``digest()`` of any other free-paced bridge built
from the same scenario after the same list — across processes, wall
speeds and arrival jitter.  Read-only operations (directory listings,
TD fetches) are logged but consume no admission slot and touch no
simulator, so dashboard polling can never perturb the fleet.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.drivers.catalog import CATALOG
from repro.fleet.deployment import ShardDeployment
from repro.fleet.metrics import Metrics
from repro.fleet.runner import live_shards
from repro.fleet.scenario import FleetScenario
from repro.gateway.obs import GatewayObsConfig, GatewayObservability
from repro.gateway.thing_description import (
    INSTALL_ACTION,
    directory_entry,
    thing_description,
)
from repro.sim.kernel import NS_PER_MS, ns_from_s
from repro.snapshot.checkpoint import digest_document

#: Operation kinds that inject sim events (and consume admission slots).
SIM_OPS = ("read", "write", "install", "advance")
#: All legal kinds; "list" and "td" are read-only.
OP_KINDS = SIM_OPS + ("list", "td")

#: Default admission quantum: 1 ms of simulated time per operation.
DEFAULT_QUANTUM_NS = 1 * NS_PER_MS


@dataclass(frozen=True)
class Op:
    """One bridged operation, pickle/JSON-safe for request logs."""

    kind: str
    thing: int = -1
    #: Property / action / driver-catalogue name, as in the TD.
    name: str = ""
    #: Action input (write value, advance horizon in ns).
    value: Optional[int] = None
    #: Request correlation id (inbound ``X-Request-Id`` or generated
    #: by the server).  Purely observational: never consulted by any
    #: handler, so it cannot perturb the determinism contract — but it
    #: rides the request log, so a replayed op re-labels the same spans.
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind: {self.kind!r}")

    def to_json(self) -> dict:
        return {"kind": self.kind, "thing": self.thing,
                "name": self.name, "value": self.value,
                "request_id": self.request_id}

    @classmethod
    def from_json(cls, data: dict) -> "Op":
        return cls(kind=data["kind"], thing=data.get("thing", -1),
                   name=data.get("name", ""), value=data.get("value"),
                   request_id=data.get("request_id", ""))


@dataclass
class OpResult:
    """Outcome of one bridged operation.

    ``status`` uses HTTP semantics because the HTTP server is the main
    consumer: 200 ok, 404 unknown thing/affordance, 504 the simulation
    never answered inside the op deadline, 400 bad input.
    """

    status: int
    body: dict = field(default_factory=dict)
    #: Simulated admission instant and completion latency.
    admitted_ns: int = 0
    sim_latency_ns: int = 0
    #: Obs trace id of the in-fleet spans this op caused (None when the
    #: owning shard does not trace or the op never touched a sim).
    trace_id: Optional[int] = None
    #: The observability ring/journal record for this op (shared dict:
    #: the server folds reply-write time into it after the drain).
    record: Optional[dict] = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RequestLog:
    """An append-only record of every operation a bridge served."""

    def __init__(self) -> None:
        self.entries: List[dict] = []

    def append(self, index: int, op: Op, admitted_ns: int) -> None:
        entry = op.to_json()
        entry["index"] = index
        entry["admitted_ns"] = admitted_ns
        self.entries.append(entry)

    def ops(self) -> List[Op]:
        return [Op.from_json(entry) for entry in self.entries]

    def to_json(self) -> List[dict]:
        return list(self.entries)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.entries, fh, indent=1)

    @classmethod
    def load(cls, path) -> "RequestLog":
        log = cls()
        with open(path) as fh:
            log.entries = json.load(fh)
        return log


class GatewayBridge:
    """Host a fleet scenario's shards and serialize requests into them."""

    def __init__(
        self,
        scenario: FleetScenario,
        *,
        pacing: str = "free",
        quantum_ns: int = DEFAULT_QUANTUM_NS,
        op_timeout_s: float = 5.0,
        wall_speed: float = 1.0,
        obs: Optional[GatewayObsConfig] = None,
    ) -> None:
        if pacing not in ("free", "wall"):
            raise ValueError(f"unknown pacing policy: {pacing!r}")
        self.scenario = scenario
        self.pacing = pacing
        self.quantum_ns = int(quantum_ns)
        self.op_timeout_ns = ns_from_s(op_timeout_s)
        self.wall_speed = float(wall_speed)
        obs_config = obs or GatewayObsConfig()
        self.obs: Optional[GatewayObservability] = (
            GatewayObservability(obs_config, op_kinds=OP_KINDS)
            if obs_config.enabled else None)
        self.deployments: List[ShardDeployment] = live_shards(scenario)
        self.log = RequestLog()
        #: Global id -> (deployment, local index).
        self._things: Dict[int, Tuple[ShardDeployment, int]] = {}
        for deployment in self.deployments:
            first = deployment.spec.first_thing
            for local in range(len(deployment.things)):
                self._things[first + local] = (deployment, local)
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._ops = 0           # logged operations (log index)
        self._admitted = 0      # sim-affecting operations (admission slots)
        self._wall_origin: Optional[float] = None
        self._subscribers: List[Callable[[dict], None]] = []
        self._forwarders: List[Tuple[object, Callable]] = []
        self._telemetry_listeners: List[Tuple[object, Callable]] = []
        self._attach_event_forwarding()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "GatewayBridge":
        """Launch the bridge thread.  Idempotent."""
        if self._thread is None:
            self._running = True
            self._thread = threading.Thread(
                target=self._serve_loop, name="gateway-bridge", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the bridge thread and detach every listener."""
        if self._thread is not None:
            self._running = False
            self._queue.put(None)
            self._thread.join(timeout=10.0)
            self._thread = None
        for endpoint, listener in self._forwarders:
            endpoint.remove_listener(listener)
        self._forwarders.clear()
        for collector, listener in self._telemetry_listeners:
            collector.remove_sample_listener(listener)
        self._telemetry_listeners.clear()

    def __enter__(self) -> "GatewayBridge":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def submit(self, op: Op) -> "Future[OpResult]":
        """Thread-safe: enqueue *op* for the bridge thread; returns a
        future the asyncio server awaits via ``asyncio.wrap_future``.
        The enqueue instant rides along so the decomposition can
        attribute queue-wait separately from sim-drive time."""
        future: "Future[OpResult]" = Future()
        self._queue.put((op, future, time.perf_counter_ns()))
        return future

    def execute(self, op: Op, timeout: Optional[float] = 30.0) -> OpResult:
        """Synchronous convenience (tests, load-generator warm-up)."""
        if self._thread is None:
            # No thread: apply inline — the replay/scripted path.
            return self._apply(op)
        return self.submit(op).result(timeout=timeout)

    def submit_call(self, fn: Callable[[], object]) -> "Future":
        """Enqueue *fn* for the bridge thread without blocking.

        Unlogged, like :meth:`run_on_thread` — the server uses it to
        snapshot telemetry banks without racing the single writer.
        """
        future: "Future" = Future()
        if self._thread is None:
            try:
                future.set_result(fn())
            except Exception as exc:
                future.set_exception(exc)
        else:
            self._queue.put((fn, future, None))
        return future

    def run_on_thread(self, fn: Callable[[], object],
                      timeout: Optional[float] = 30.0):
        """Run *fn* on the bridge thread (chaos/test hook).

        The call is **not** recorded in the request log: anything it
        does to the fleet is outside the determinism contract, exactly
        like a chaos fault injected behind the service's back.
        """
        return self.submit_call(fn).result(timeout=timeout)

    # ------------------------------------------------------------ the thread
    def _serve_loop(self) -> None:
        self._wall_origin = time.perf_counter()
        while self._running:
            try:
                item = self._queue.get(timeout=0.02)
            except queue.Empty:
                if self.pacing == "wall":
                    self._pace_to_wall()
                if self.obs is not None:
                    # Idle SLO sweep: a degraded verdict must still
                    # produce a flight dump when traffic has stopped.
                    self.obs.maybe_check_slo(
                        context=self._flight_context,
                        trace_lookup=self._trace_events_for)
                continue
            if item is None:
                continue
            op, future, enqueued_ns = item
            try:
                if callable(op):
                    result = op()
                else:
                    if self.pacing == "wall":
                        self._pace_to_wall()
                    result = self._apply(op, enqueued_ns=enqueued_ns)
            except Exception as exc:  # surface, don't kill the thread
                future.set_exception(exc)
            else:
                future.set_result(result)

    def _pace_to_wall(self) -> None:
        """Advance every shard toward wall-elapsed * speed (wall mode)."""
        target_ns = int((time.perf_counter() - self._wall_origin)
                        * self.wall_speed * 1e9)
        for deployment in self.deployments:
            if deployment.sim.now_ns < target_ns:
                deployment.sim.run_until(target_ns)

    # ------------------------------------------------------------- operations
    def _apply(self, op: Op, enqueued_ns: Optional[int] = None) -> OpResult:
        """Apply one operation; runs on the bridge thread (or inline
        during replay).  Single writer: nothing else touches the sims.

        Decomposition stamps: *enqueued_ns* is the submit instant (None
        on the inline/replay path → queue_wait 0); dequeue-to-done is
        measured here.  Recording happens strictly after the handler
        ran, so observability can never perturb the sims.
        """
        handler = getattr(self, f"_op_{op.kind}")
        index = self._ops
        self._ops += 1
        started_ns = time.perf_counter_ns()
        result = handler(op)
        finished_ns = time.perf_counter_ns()
        self.log.append(index, op, result.admitted_ns)
        if self.obs is not None:
            queue_wait_ns = (0 if enqueued_ns is None
                             else max(0, started_ns - enqueued_ns))
            result.record = self.obs.record_op(
                index, op, result,
                queue_wait_ns=queue_wait_ns,
                sim_exec_ns=finished_ns - started_ns)
            self.obs.maybe_check_slo(context=self._flight_context,
                                     trace_lookup=self._trace_events_for)
        return result

    # --------------------------------------------------------- request tracing
    def _gateway_tracer(self, deployment: ShardDeployment):
        """The shard's tracer, when it records the gateway category."""
        tracer = getattr(deployment.sim, "tracer", None)
        if tracer is None or not tracer.enabled_for("gateway"):
            return None
        return tracer

    def _gw_trace_open(self, tracer, op: Op, trace_id: int,
                       pre_ns: int, admitted: int) -> int:
        """Record the request-scoped envelope: an async span named
        after the op kind plus a back-dated ``gateway.admit`` slice
        covering the admission advance.  All args are deterministic
        (request log + sim state only), so traced exports replay
        byte-identically."""
        track = tracer.track("gateway")
        tracer.async_begin(f"gateway.{op.kind}", "gateway", trace_id,
                           track=track,
                           args={"request_id": op.request_id,
                                 "thing": op.thing, "name": op.name,
                                 "admitted_ns": admitted})
        tracer.complete("gateway.admit", "gateway", track,
                        admitted - pre_ns, ts_ns=pre_ns,
                        trace_id=trace_id,
                        args={"request_id": op.request_id})
        return track

    def _gw_trace_close(self, tracer, op: Op, trace_id: int, track: int,
                        result: OpResult) -> None:
        tracer.async_end(f"gateway.{op.kind}", "gateway", trace_id,
                         track=track,
                         args={"status": result.status,
                               "sim_latency_ns": result.sim_latency_ns})
        tracer.current = None

    def _trace_events_for(self, trace_ids: List[int]) -> Dict[str, list]:
        """Tracer events for the given trace ids, keyed by id — the
        flight recorder's evidence locker (rare path; linear scan of
        each shard's ring is fine)."""
        from repro.obs.export import _sanitize

        wanted = set(trace_ids)
        out: Dict[str, list] = {}
        for deployment in self.deployments:
            tracer = getattr(deployment.sim, "tracer", None)
            if tracer is None:
                continue
            for event in tracer.events:
                if event.trace_id in wanted:
                    out.setdefault(str(event.trace_id),
                                   []).append(_sanitize(event.to_dict()))
        return out

    def _flight_context(self) -> dict:
        return {
            "pacing": self.pacing,
            "quantum_ns": self.quantum_ns,
            "ops_logged": self._ops,
            "admitted": self._admitted,
            "clocks_ns": [d.sim.now_ns for d in self.deployments],
        }

    def _admit(self, deployment: ShardDeployment) -> int:
        """Advance *deployment* to the next admission instant.

        Free pacing: the instant is ``slots * quantum`` — position in
        the request order, not wall time — clamped up to the shard's
        clock when an earlier op already drove it further.  Wall
        pacing: simply the shard's current clock (the pacer owns time).
        """
        self._admitted += 1
        sim = deployment.sim
        if self.pacing == "wall":
            return sim.now_ns
        admit_ns = max(sim.now_ns, self._admitted * self.quantum_ns)
        if admit_ns > sim.now_ns:
            sim.run_until(admit_ns)
        return admit_ns

    def _run_until_done(self, deployment: ShardDeployment, start_ns: int,
                        done: Callable[[], bool]) -> bool:
        """Drive one shard until *done* or the op deadline; True = done.

        Chunked ``run_until`` keeps fast-forward/batching eligible while
        still stopping within a chunk of the completing event.
        """
        sim = deployment.sim
        deadline = start_ns + self.op_timeout_ns
        chunk = max(self.quantum_ns, 2 * NS_PER_MS)
        while not done():
            if sim.now_ns >= deadline:
                return done()
            sim.run_until(min(deadline, sim.now_ns + chunk))
        return True

    def _resolve(self, op: Op):
        entry = self._things.get(op.thing)
        if entry is None:
            return None, None
        deployment, local = entry
        return deployment, deployment.things[local]

    # --- read-only ops ----------------------------------------------------
    def _op_list(self, op: Op) -> OpResult:
        del op
        things = [
            directory_entry(gid, len(self._things[gid][0]
                                     .things[self._things[gid][1]]
                                     .connected_peripherals()))
            for gid in sorted(self._things)
        ]
        return OpResult(200, {"things": things})

    def _op_td(self, op: Op) -> OpResult:
        deployment, thing = self._resolve(op)
        if thing is None:
            return OpResult(404, {"error": f"no such thing: {op.thing}"})
        td = thing_description(
            op.thing, thing.connected_peripherals().items(),
            registry=deployment.registry,
        )
        return OpResult(200, td)

    # --- sim-affecting ops ------------------------------------------------
    def _property_device(self, thing, name: str):
        """Map a TD property name to a plugged device id (or None)."""
        spec = CATALOG.get(name)
        if spec is None:
            return None
        plugged = set(thing.connected_peripherals().values())
        return spec.device_id if spec.device_id in plugged else None

    def _op_read(self, op: Op) -> OpResult:
        deployment, thing = self._resolve(op)
        if thing is None:
            return OpResult(404, {"error": f"no such thing: {op.thing}"})
        device_id = self._property_device(thing, op.name)
        if device_id is None:
            # Unknown or unplugged property: answered at the service
            # layer — no sim event, no sim-side exception, ever.
            return OpResult(404, {
                "error": f"no such property: {op.name!r}",
                "thing": op.thing,
            })
        pre_ns = deployment.sim.now_ns
        admitted = self._admit(deployment)
        tracer = self._gateway_tracer(deployment)
        if tracer is not None:
            tracer.current = None
        box: List[object] = []
        deployment.client.read(
            thing.address, device_id, box.append,
            timeout_s=self.op_timeout_ns / 2e9,
        )
        # The client just allocated the in-fleet trace id and left it
        # on ``tracer.current``; adopt it as the request's id so the
        # gateway envelope and the protocol/vm spans stitch into one
        # flow in the export.
        trace_id = tracer.current if tracer is not None else None
        track = 0
        if trace_id is not None:
            track = self._gw_trace_open(tracer, op, trace_id,
                                        pre_ns, admitted)
        self._run_until_done(deployment, admitted, lambda: bool(box))
        sim_latency = deployment.sim.now_ns - admitted
        if not box or box[0] is None:
            result = OpResult(504, {"error": "read timed out in-fleet",
                                    "op": "read",
                                    "thing": op.thing, "property": op.name,
                                    "sim_ns_consumed": sim_latency},
                              admitted_ns=admitted,
                              sim_latency_ns=sim_latency)
        else:
            value = box[0]
            result = OpResult(200, {
                "property": op.name,
                "thing": op.thing,
                "value": value.value,
                "ok": value.ok,
                "device_id": str(value.device_id),
            }, admitted_ns=admitted, sim_latency_ns=sim_latency)
        if trace_id is not None:
            self._gw_trace_close(tracer, op, trace_id, track, result)
        result.trace_id = trace_id
        return result

    def _op_write(self, op: Op) -> OpResult:
        deployment, thing = self._resolve(op)
        if thing is None:
            return OpResult(404, {"error": f"no such thing: {op.thing}"})
        if op.value is None:
            return OpResult(400, {"error": "write needs a 'value'"})
        key = op.name[:-len("-write")] if op.name.endswith("-write") else op.name
        device_id = self._property_device(thing, key)
        if device_id is None:
            return OpResult(404, {"error": f"no such action: {op.name!r}"})
        pre_ns = deployment.sim.now_ns
        admitted = self._admit(deployment)
        tracer = self._gateway_tracer(deployment)
        if tracer is not None:
            tracer.current = None
        box: List[object] = []
        deployment.client.write(
            thing.address, device_id, int(op.value), box.append,
            timeout_s=self.op_timeout_ns / 2e9,
        )
        trace_id = tracer.current if tracer is not None else None
        track = 0
        if trace_id is not None:
            track = self._gw_trace_open(tracer, op, trace_id,
                                        pre_ns, admitted)
        self._run_until_done(deployment, admitted, lambda: bool(box))
        sim_latency = deployment.sim.now_ns - admitted
        if not box or box[0] is None:
            result = OpResult(504, {"error": "write timed out in-fleet",
                                    "op": "write",
                                    "thing": op.thing, "action": op.name,
                                    "sim_ns_consumed": sim_latency},
                              admitted_ns=admitted,
                              sim_latency_ns=sim_latency)
        else:
            result = OpResult(200, {
                "action": op.name, "thing": op.thing, "status": box[0],
            }, admitted_ns=admitted, sim_latency_ns=sim_latency)
        if trace_id is not None:
            self._gw_trace_close(tracer, op, trace_id, track, result)
        result.trace_id = trace_id
        return result

    def _op_install(self, op: Op) -> OpResult:
        deployment, thing = self._resolve(op)
        if thing is None:
            return OpResult(404, {"error": f"no such thing: {op.thing}"})
        spec = CATALOG.get(op.name)
        if spec is None:
            return OpResult(404, {"error": f"no such driver: {op.name!r}"})
        pre_ns = deployment.sim.now_ns
        admitted = self._admit(deployment)
        done = {"hit": False}
        wanted = spec.device_id.value

        def on_event(event) -> None:
            if (event.kind in ("driver-installed", "dup-upload-suppressed")
                    and event.device_id is not None
                    and event.device_id.value == wanted):
                done["hit"] = True

        # push_driver sends straight through the stack without its own
        # trace allocation, so the gateway mints the request's trace id
        # and leaves it current: the scheduled send events capture it
        # and the whole upload chain inherits it.
        tracer = self._gateway_tracer(deployment)
        trace_id = None
        track = 0
        if tracer is not None:
            trace_id = tracer.new_trace()
            tracer.current = trace_id
            track = self._gw_trace_open(tracer, op, trace_id,
                                        pre_ns, admitted)
        thing.add_listener(on_event)
        try:
            if not deployment.manager.push_driver(thing.address,
                                                  spec.device_id):
                result = OpResult(404, {
                    "error": f"registry has no driver for {op.name!r}"})
                if trace_id is not None:
                    self._gw_trace_close(tracer, op, trace_id, track,
                                         result)
                result.trace_id = trace_id
                return result
            self._run_until_done(deployment, admitted,
                                 lambda: done["hit"])
        finally:
            thing.remove_listener(on_event)
        sim_latency = deployment.sim.now_ns - admitted
        if not done["hit"]:
            result = OpResult(504, {"error": "install not confirmed in-fleet",
                                    "op": "install",
                                    "thing": op.thing, "driver": op.name,
                                    "sim_ns_consumed": sim_latency},
                              admitted_ns=admitted,
                              sim_latency_ns=sim_latency)
        else:
            result = OpResult(200, {
                "action": INSTALL_ACTION, "thing": op.thing,
                "driver": op.name, "installed": True,
            }, admitted_ns=admitted, sim_latency_ns=sim_latency)
        if trace_id is not None:
            self._gw_trace_close(tracer, op, trace_id, track, result)
        result.trace_id = trace_id
        return result

    def _op_advance(self, op: Op) -> OpResult:
        """Advance every shard by ``value`` ns (warm-up, tests, replay)."""
        horizon = int(op.value or 0)
        if horizon <= 0:
            return OpResult(400, {"error": "advance needs a positive ns "
                                           "'value'"})
        self._admitted += 1
        for deployment in self.deployments:
            deployment.sim.run_until(deployment.sim.now_ns + horizon)
        return OpResult(200, {"advanced_ns": horizon})

    # ------------------------------------------------------------- streaming
    def subscribe(self, callback: Callable[[dict], None]) -> None:
        """Fan live fleet events out to *callback* (bridge-thread calls!).

        The WebSocket layer wraps callbacks with
        ``loop.call_soon_threadsafe``; see GatewayServer.  Events carry
        ``{"type": ..., "time_s": ..., ...}`` JSON-safe payloads.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[dict], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def _attach_event_forwarding(self) -> None:
        for deployment in self.deployments:
            shard = deployment.spec.index
            first = deployment.spec.first_thing

            def on_client(event, shard=shard):
                self._publish({
                    "type": "client-event", "shard": shard,
                    "kind": event.kind, "time_s": event.time_s,
                    "latency_s": event.latency_s, "detail": event.detail,
                })

            deployment.client.add_listener(on_client)
            self._forwarders.append((deployment.client, on_client))
            for local, thing in enumerate(deployment.things):
                def on_thing(event, gid=first + local, shard=shard):
                    self._publish({
                        "type": "thing-event", "shard": shard, "thing": gid,
                        "kind": event.kind, "time_s": event.time_s,
                        "device_id": (str(event.device_id)
                                      if event.device_id else None),
                        "detail": event.detail,
                    })

                thing.add_listener(on_thing)
                self._forwarders.append((thing, on_thing))
            if deployment.telemetry is not None:
                def on_sample(time_ns, collector, shard=shard):
                    self._publish({
                        "type": "telemetry-sample", "shard": shard,
                        "time_s": time_ns / 1e9,
                        "series": {
                            ts.name: ts.last[1]
                            for ts in collector.bank
                            if ts.last is not None and not ts.labels
                        },
                    })

                deployment.telemetry.add_sample_listener(on_sample)
                self._telemetry_listeners.append(
                    (deployment.telemetry, on_sample))

    def _publish(self, message: dict) -> None:
        if not self._subscribers:
            return
        for callback in list(self._subscribers):
            callback(message)

    # ----------------------------------------------------------- determinism
    def digest(self) -> str:
        """Canonical digest of the whole hosted fleet's deterministic
        state: merged metrics plus every shard's clock.  A pure
        function of ``(scenario, ordered request log)`` under free
        pacing."""
        document = {
            "merged": Metrics.merge(
                [d.metrics.snapshot() for d in self.deployments]),
            "clocks": [d.sim.now_ns for d in self.deployments],
        }
        return digest_document(document)

    @classmethod
    def replay(cls, scenario: FleetScenario, ops: List[Op],
               **kwargs) -> "GatewayBridge":
        """Rebuild a fleet and apply *ops* in order, without a thread.

        Returns the bridge so callers can compare :meth:`digest`
        against the recording bridge's — the determinism contract test.
        """
        bridge = cls(scenario, **kwargs)
        for op in ops:
            bridge._apply(op)
        return bridge


__all__ = [
    "DEFAULT_QUANTUM_NS",
    "GatewayBridge",
    "Op",
    "OpResult",
    "RequestLog",
    "SIM_OPS",
]
