"""Command-line entry point for the gateway service.

    python -m repro.gateway serve --scenario duty --nodes 1000
    python -m repro.gateway load --nodes 1000 --duration 30
    python -m repro.gateway --smoke
    python -m repro.gateway obs-smoke

``serve`` hosts a fleet behind HTTP/WS until interrupted (wall-clock
pacing by default, so the fleet lives while you poke it with curl).
``load`` boots a gateway in-process, warms the fleet up, runs the
open-loop load generator and prints the SLO-judged scorecard.
``--smoke`` is the CI liveness gate: tiny fleet, one of everything,
replay-determinism check, non-zero exit on any failure.
``obs-smoke`` gates the request-observability layer: request-id →
trace propagation, /metrics grammar, /debug/ops journal, the
SLO-triggered flight recorder, and obs-on/off replay digest parity.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.fleet.scenario import SCENARIOS, FleetScenario
from repro.gateway.bridge import GatewayBridge, Op
from repro.gateway.loadgen import LoadConfig, run_load
from repro.gateway.obs import GatewayObsConfig
from repro.gateway.server import GatewayServer, serve_forever

#: Sim-time warm-up before serving load: lets the initial plug burst
#: identify peripherals and install drivers so reads have targets.
WARMUP_NS = 2_000_000_000


def _scenario(args) -> FleetScenario:
    base = SCENARIOS[args.scenario]
    overrides = {}
    if args.nodes is not None:
        overrides["things"] = args.nodes
        if args.shard_size is None:
            overrides["shard_size"] = args.nodes  # one shard unless told
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "trace", False):
        overrides["trace"] = True
    return base.scaled(**overrides) if overrides else base


def _obs_config(args) -> GatewayObsConfig:
    return GatewayObsConfig(enabled=not args.no_obs,
                            flight_dir=args.flight_dir)


def _add_fleet_args(parser) -> None:
    parser.add_argument("--scenario", default="gateway",
                        choices=sorted(SCENARIOS),
                        help="named fleet scenario to host")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the number of Things")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="override Things per shard")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the master seed")
    parser.add_argument("--trace", action="store_true",
                        help="record obs traces in every shard (request "
                             "spans stitch into the in-fleet flows)")
    parser.add_argument("--no-obs", action="store_true",
                        help="disable gateway request observability")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="arm the flight recorder: dump recent "
                             "request traces here on SLO degradation")


def cmd_serve(args) -> int:
    scenario = _scenario(args)
    bridge = GatewayBridge(scenario, pacing=args.pacing,
                           wall_speed=args.speed, obs=_obs_config(args))
    bridge.execute(Op("advance", value=WARMUP_NS), timeout=300.0)
    try:
        asyncio.run(serve_forever(bridge, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("gateway stopped")
    finally:
        bridge.close()
    return 0


def cmd_load(args) -> int:
    scenario = _scenario(args)
    config = LoadConfig(
        duration_s=args.duration,
        lookups_per_min=args.lookups_per_min,
        reads_per_min=args.reads_per_min,
        connections=args.connections,
    )

    async def drive() -> dict:
        bridge = GatewayBridge(scenario, obs=_obs_config(args))
        try:
            async with GatewayServer(bridge, host=args.host) as server:
                await asyncio.wrap_future(
                    bridge.submit(Op("advance", value=WARMUP_NS)))
                result = await run_load(server.host, server.port, config)
            document = result.as_dict()
            document["digest"] = bridge.run_on_thread(bridge.digest)
            document["ops_logged"] = len(bridge.log.entries)
            if args.trace_out and scenario.trace:
                from repro.obs.export import merge_traces, write_trace
                snapshots = bridge.run_on_thread(
                    lambda: [d.sim.tracer.snapshot()
                             for d in bridge.deployments])
                write_trace(args.trace_out, merge_traces(snapshots))
                document["trace_out"] = args.trace_out
            return document
        finally:
            bridge.close()

    document = asyncio.run(drive())
    document["scenario"] = {"name": args.scenario,
                            "things": scenario.things,
                            "shards": scenario.shard_count}
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(document, fh, indent=1, sort_keys=True)
    print(json.dumps(document, indent=1, sort_keys=True))
    slo = document.get("slo", {})
    return 0 if slo.get("status") in ("ok", "recovered") else 1


def cmd_smoke(args) -> int:
    del args
    scenario = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)

    async def drive() -> None:
        bridge = GatewayBridge(scenario)
        async with GatewayServer(bridge) as server:
            await asyncio.wrap_future(
                bridge.submit(Op("advance", value=WARMUP_NS)))
            from repro.gateway.loadgen import HttpPool, discover_targets
            pool = HttpPool(server.host, server.port, 2)
            status, directory = await pool.request("GET", "/things")
            assert status == 200 and len(directory["things"]) == 8, \
                f"directory: {status} {directory}"
            targets = await discover_targets(pool, 8)
            assert targets, "no readable properties after warm-up"
            thing, prop = targets[0]
            status, body = await pool.request(
                "GET", f"/things/{thing}/properties/{prop}")
            assert status == 200 and "value" in body, f"read: {status}"
            status, body = await pool.request(
                "GET", f"/things/{thing}/properties/bogus")
            assert status == 404, f"expected 404, got {status}"
            status, body = await pool.request(
                "POST", f"/things/{thing}/actions/install",
                body={"driver": "relay"})
            assert status == 200 and body.get("installed"), \
                f"install: {status} {body}"
            await pool.close()
        digest = bridge.digest()
        ops = bridge.log.ops()
        bridge.close()
        replayed = GatewayBridge.replay(scenario, ops)
        assert replayed.digest() == digest, "replay digest mismatch"
        print(f"gateway smoke ok: {len(ops)} ops, "
              f"digest {digest[:16]} reproducible")

    asyncio.run(drive())
    return 0


def cmd_obs_smoke(args) -> int:
    """CI gate for the request-observability layer (ISSUE 10)."""
    del args
    import tempfile
    from pathlib import Path

    from repro.gateway.loadgen import HttpPool, discover_targets
    from repro.obs.export import filter_events, merge_traces
    from repro.obs.report import request_index
    from repro.telemetry.export import validate_openmetrics

    scenario = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11,
                                           trace=True)

    async def drive() -> tuple:
        bridge = GatewayBridge(scenario)
        async with GatewayServer(bridge) as server:
            await asyncio.wrap_future(
                bridge.submit(Op("advance", value=WARMUP_NS)))
            pool = HttpPool(server.host, server.port, 2)
            targets = await discover_targets(pool, 8, probe=True)
            assert targets, "no readable properties after warm-up"
            thing, prop = targets[0]
            status, headers, body = await pool.request(
                "GET", f"/things/{thing}/properties/{prop}",
                headers={"X-Request-Id": "smoke-req-1"}, with_headers=True)
            assert status == 200, f"read: {status} {body}"
            assert headers.get("x-request-id") == "smoke-req-1", headers
            trace_id = body["sim"]["trace_id"]
            assert trace_id, "traced shard must report a trace id"

            status, _h, text = await pool.request("GET", "/metrics",
                                                  with_headers=True)
            assert status == 200
            assert _h.get("content-type", "").startswith(
                "application/openmetrics-text"), _h
            problems = validate_openmetrics(text)
            assert not problems, f"/metrics invalid: {problems[:3]}"
            for name in ("gateway_ops_total", "gateway_queue_wait_ms",
                         "gateway_sim_exec_ms"):
                assert name in text, f"/metrics missing {name}"

            status, debug = await pool.request("GET", "/debug/ops")
            assert status == 200, f"/debug/ops: {status}"
            assert any(r["request_id"] == "smoke-req-1"
                       for r in debug["slowest"]), debug["slowest"][:2]
            assert debug["summary"]["kinds"]["read"]["count"] >= 1
            await pool.close()
        snapshots = bridge.run_on_thread(
            lambda: [d.sim.tracer.snapshot()
                     for d in bridge.deployments])
        digest = bridge.run_on_thread(bridge.digest)
        ops = bridge.log.ops()
        bridge.close()
        return snapshots, digest, ops, trace_id

    snapshots, digest, ops, trace_id = asyncio.run(drive())

    # Wire -> queue -> sim connectivity: the request id maps to the
    # trace, whose events span the gateway envelope AND in-fleet layers.
    merged = merge_traces(snapshots)
    assert request_index(merged).get("smoke-req-1") == [trace_id], \
        "request_index must map the X-Request-Id to its trace"
    cats = {e["cat"] for e in filter_events(merged, trace_id=trace_id)}
    assert "gateway" in cats, f"no gateway spans in trace: {cats}"
    assert cats & {"core", "net", "proto"}, \
        f"trace not connected into the fleet: {cats}"

    # Replay parity: same ops, observability and tracing off.
    bare = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)
    replayed = GatewayBridge.replay(
        bare, ops, obs=GatewayObsConfig(enabled=False))
    assert replayed.digest() == digest, \
        "digest must be identical with observability on vs off"

    # Flight recorder: an impossible SLO forces a degraded verdict and
    # the dump must carry the offending requests and their traces.
    with tempfile.TemporaryDirectory() as tmp:
        # gateway_sim_latency_ms only exists once sim-affecting ops ran,
        # so the verdict flips to degraded exactly when the ring holds
        # traced requests — the ops the dump must incriminate.
        config = GatewayObsConfig(
            flight_dir=tmp,
            slos=("impossible: gateway_sim_latency_ms.p95 < 0.000001 "
                  "window=1",),
            slo_check_interval_s=0.0)
        recorder = GatewayBridge.replay(scenario, ops, obs=config)
        recorder_status = recorder.obs.last_slo_status
        dumps = sorted(Path(tmp).glob("flight-*.json"))
        assert recorder_status == "degraded", recorder_status
        assert dumps, "degraded SLO must produce a flight dump"
        flight = json.loads(dumps[0].read_text())
        assert flight["requests"], "dump carries the request ring"
        assert flight["traces"], "dump carries the offending traces"

    print(f"gateway obs smoke ok: {len(ops)} ops, request smoke-req-1 -> "
          f"trace {trace_id}, layers {sorted(cats)}, digest parity, "
          f"{len(dumps)} flight dump(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve or load-test a simulated fleet over HTTP/WS.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke check and exit")
    sub = parser.add_subparsers(dest="command")

    serve = sub.add_parser("serve", help="host a fleet behind HTTP/WS")
    _add_fleet_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--pacing", choices=("free", "wall"),
                       default="wall",
                       help="virtual-time policy (wall = fleet tracks "
                            "wall clock; free = time moves only with "
                            "requests, digest-reproducible)")
    serve.add_argument("--speed", type=float, default=1.0,
                       help="sim seconds per wall second under wall pacing")

    load = sub.add_parser("load", help="run the open-loop load generator")
    _add_fleet_args(load)
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--duration", type=float, default=30.0)
    load.add_argument("--reads-per-min", type=float, default=10_000.0)
    load.add_argument("--lookups-per-min", type=float, default=600.0)
    load.add_argument("--connections", type=int, default=8)
    load.add_argument("--json", metavar="PATH", default=None,
                      help="also write the scorecard as JSON")
    load.add_argument("--trace-out", metavar="PATH", default=None,
                      help="with --trace: write the merged Chrome trace "
                           "of the whole run here")

    sub.add_parser("obs-smoke",
                   help="CI gate: request tracing, /metrics, /debug/ops, "
                        "flight recorder, obs-on/off digest parity")

    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "load":
        return cmd_load(args)
    if args.command == "obs-smoke":
        return cmd_obs_smoke(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
