"""Command-line entry point for the gateway service.

    python -m repro.gateway serve --scenario duty --nodes 1000
    python -m repro.gateway load --nodes 1000 --duration 30
    python -m repro.gateway --smoke

``serve`` hosts a fleet behind HTTP/WS until interrupted (wall-clock
pacing by default, so the fleet lives while you poke it with curl).
``load`` boots a gateway in-process, warms the fleet up, runs the
open-loop load generator and prints the SLO-judged scorecard.
``--smoke`` is the CI liveness gate: tiny fleet, one of everything,
replay-determinism check, non-zero exit on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.fleet.scenario import SCENARIOS, FleetScenario
from repro.gateway.bridge import GatewayBridge, Op
from repro.gateway.loadgen import LoadConfig, run_load
from repro.gateway.server import GatewayServer, serve_forever

#: Sim-time warm-up before serving load: lets the initial plug burst
#: identify peripherals and install drivers so reads have targets.
WARMUP_NS = 2_000_000_000


def _scenario(args) -> FleetScenario:
    base = SCENARIOS[args.scenario]
    overrides = {}
    if args.nodes is not None:
        overrides["things"] = args.nodes
        if args.shard_size is None:
            overrides["shard_size"] = args.nodes  # one shard unless told
    if args.shard_size is not None:
        overrides["shard_size"] = args.shard_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    return base.scaled(**overrides) if overrides else base


def _add_fleet_args(parser) -> None:
    parser.add_argument("--scenario", default="gateway",
                        choices=sorted(SCENARIOS),
                        help="named fleet scenario to host")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the number of Things")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="override Things per shard")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the master seed")


def cmd_serve(args) -> int:
    scenario = _scenario(args)
    bridge = GatewayBridge(scenario, pacing=args.pacing,
                           wall_speed=args.speed)
    bridge.execute(Op("advance", value=WARMUP_NS), timeout=300.0)
    try:
        asyncio.run(serve_forever(bridge, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("gateway stopped")
    finally:
        bridge.close()
    return 0


def cmd_load(args) -> int:
    scenario = _scenario(args)
    config = LoadConfig(
        duration_s=args.duration,
        lookups_per_min=args.lookups_per_min,
        reads_per_min=args.reads_per_min,
        connections=args.connections,
    )

    async def drive() -> dict:
        bridge = GatewayBridge(scenario)
        try:
            async with GatewayServer(bridge, host=args.host) as server:
                await asyncio.wrap_future(
                    bridge.submit(Op("advance", value=WARMUP_NS)))
                result = await run_load(server.host, server.port, config)
            document = result.as_dict()
            document["digest"] = bridge.run_on_thread(bridge.digest)
            document["ops_logged"] = len(bridge.log.entries)
            return document
        finally:
            bridge.close()

    document = asyncio.run(drive())
    document["scenario"] = {"name": args.scenario,
                            "things": scenario.things,
                            "shards": scenario.shard_count}
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(document, fh, indent=1, sort_keys=True)
    print(json.dumps(document, indent=1, sort_keys=True))
    slo = document.get("slo", {})
    return 0 if slo.get("status") in ("ok", "recovered") else 1


def cmd_smoke(args) -> int:
    del args
    scenario = SCENARIOS["gateway"].scaled(things=8, shard_size=4, seed=11)

    async def drive() -> None:
        bridge = GatewayBridge(scenario)
        async with GatewayServer(bridge) as server:
            await asyncio.wrap_future(
                bridge.submit(Op("advance", value=WARMUP_NS)))
            from repro.gateway.loadgen import HttpPool, discover_targets
            pool = HttpPool(server.host, server.port, 2)
            status, directory = await pool.request("GET", "/things")
            assert status == 200 and len(directory["things"]) == 8, \
                f"directory: {status} {directory}"
            targets = await discover_targets(pool, 8)
            assert targets, "no readable properties after warm-up"
            thing, prop = targets[0]
            status, body = await pool.request(
                "GET", f"/things/{thing}/properties/{prop}")
            assert status == 200 and "value" in body, f"read: {status}"
            status, body = await pool.request(
                "GET", f"/things/{thing}/properties/bogus")
            assert status == 404, f"expected 404, got {status}"
            status, body = await pool.request(
                "POST", f"/things/{thing}/actions/install",
                body={"driver": "relay"})
            assert status == 200 and body.get("installed"), \
                f"install: {status} {body}"
            await pool.close()
        digest = bridge.digest()
        ops = bridge.log.ops()
        bridge.close()
        replayed = GatewayBridge.replay(scenario, ops)
        assert replayed.digest() == digest, "replay digest mismatch"
        print(f"gateway smoke ok: {len(ops)} ops, "
              f"digest {digest[:16]} reproducible")

    asyncio.run(drive())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve or load-test a simulated fleet over HTTP/WS.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke check and exit")
    sub = parser.add_subparsers(dest="command")

    serve = sub.add_parser("serve", help="host a fleet behind HTTP/WS")
    _add_fleet_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--pacing", choices=("free", "wall"),
                       default="wall",
                       help="virtual-time policy (wall = fleet tracks "
                            "wall clock; free = time moves only with "
                            "requests, digest-reproducible)")
    serve.add_argument("--speed", type=float, default=1.0,
                       help="sim seconds per wall second under wall pacing")

    load = sub.add_parser("load", help="run the open-loop load generator")
    _add_fleet_args(load)
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--duration", type=float, default=30.0)
    load.add_argument("--reads-per-min", type=float, default=10_000.0)
    load.add_argument("--lookups-per-min", type=float, default=600.0)
    load.add_argument("--connections", type=int, default=8)
    load.add_argument("--json", metavar="PATH", default=None,
                      help="also write the scorecard as JSON")

    args = parser.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "load":
        return cmd_load(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
