"""Request-scoped gateway observability: decomposition, journal, flight
recorder.

:class:`GatewayObservability` is the bridge's instrument panel.  Every
bridged operation reports monotonic stamps taken at enqueue, dequeue,
sim-completion and reply-written; this module folds them into:

* a **two-plane** :class:`~repro.telemetry.series.SeriesBank`,
  following the split established by ``repro.profile``:

  - the *wall plane* (``gateway_queue_wait_ms``, ``gateway_sim_exec_ms``,
    ``gateway_reply_write_ms``, ``gateway_op_wall_ms``,
    ``gateway_ops_total`` …) is timestamped with host monotonic time
    and exists for operators, ``GET /metrics`` and the SLO engine;
  - the *sim plane* (``gateway_sim_ops_total``,
    ``gateway_sim_latency_ms``) is timestamped with simulated time and
    carries only values derived from sim state, so
    :meth:`deterministic_view` is a pure function of the request log —
    the replay-determinism contract extends to the metrics themselves;

* a **slow-op journal**: the N worst operations by wall time, each
  with its full decomposition, request-id and obs trace-id — served at
  ``GET /debug/ops``;

* an always-on bounded **ring of recent requests** which, when the
  declarative SLO engine (:mod:`repro.telemetry.health`) reports
  ``degraded``, is dumped to disk together with the SLO verdict, the
  journal and the matching tracer events — a flight recorder, so a
  tail regression in CI ships its own evidence.

Nothing here touches the simulators: recording happens strictly after
an op ran (bridge thread) or after its reply hit the socket (asyncio
thread, pre-created series only), and wall-plane data never flows into
trace events or digests.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.stats import percentile
from repro.telemetry.health import HealthReport, SloRule, evaluate
from repro.telemetry.series import SeriesBank

#: Default SLOs watched by the flight recorder: the wall-time tail of
#: bridged ops and the bridged error ratio, over 5 s tumbling windows.
DEFAULT_GATEWAY_SLOS: Tuple[str, ...] = (
    "gateway_op_p95: gateway_op_wall_ms.p95 < 2000 window=5",
    "gateway_errors: gateway_op_errors_total/gateway_ops_total"
    " < 5% window=5",
)

#: Per-kind sample reservoirs for the percentile summaries (bounded so
#: a week-long serve cannot grow without bound; recent-window is what
#: an operator wants anyway).
COMPONENT_SAMPLE_LIMIT = 65536

#: Decomposition components, in pipeline order.
COMPONENTS = ("queue_wait_ms", "sim_exec_ms", "reply_write_ms", "wall_ms")

#: The sim-plane series: values and timestamps derived from simulated
#: state only, so they are a pure function of the request log.  (Listed
#: by name — ``gateway_sim_exec_ms`` is wall-plane despite the prefix.)
SIM_PLANE_SERIES = ("gateway_sim_ops_total", "gateway_sim_latency_ms")


@dataclass(frozen=True)
class GatewayObsConfig:
    """Tunables for :class:`GatewayObservability`.

    ``flight_dir=None`` keeps the ring in memory only (no dumps);
    setting it arms the recorder.  ``slos`` use the
    :meth:`repro.telemetry.health.SloRule.parse` grammar and are
    evaluated over the **wall-plane** series only.
    """

    enabled: bool = True
    series_capacity: int = 8192
    #: Worst-N ops kept in the /debug/ops journal.
    journal_size: int = 32
    #: Recent requests kept in the flight ring.
    ring_size: int = 256
    flight_dir: Optional[str] = None
    slos: Tuple[str, ...] = DEFAULT_GATEWAY_SLOS
    #: Wall seconds between SLO evaluations (0 = every op).
    slo_check_interval_s: float = 1.0
    #: Maximum flight dumps per process (re-armed on recovery).
    flight_limit: int = 8


class GatewayObservability:
    """Per-bridge decomposition recorder, journal and flight recorder."""

    def __init__(self, config: Optional[GatewayObsConfig] = None,
                 *, op_kinds: Tuple[str, ...] = ()) -> None:
        self.config = config or GatewayObsConfig()
        self.bank = SeriesBank(capacity=self.config.series_capacity)
        self.ring: Deque[dict] = deque(maxlen=self.config.ring_size)
        self.journal: List[dict] = []
        self.last_slo_status: str = "no-data"
        self.flight_dumps: List[str] = []
        self._origin_ns = time.perf_counter_ns()
        self._rules: Tuple[SloRule, ...] = tuple(
            SloRule.parse(text) for text in self.config.slos)
        self._rule_series = {r.series for r in self._rules}
        self._rule_series.update(r.ratio_to for r in self._rules
                                 if r.ratio_to is not None)
        self._next_slo_check_ns = 0
        self._armed = True
        self._counts: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._sim_counts: Dict[str, int] = {}
        self._components: Dict[str, Dict[str, Deque[float]]] = {}
        self._stream_dropped = 0
        # Pre-create every series the asyncio thread may touch so no
        # dict mutation ever races the bridge thread.
        self._stream_dropped_series = self.bank.series(
            "gateway_stream_dropped_total", kind="counter", merge="sum",
            help="WS stream events dropped on slow consumers")
        self._wall: Dict[Tuple[str, str], object] = {}
        self._sim_series: Dict[Tuple[str, str], object] = {}
        for kind in op_kinds:
            self._ensure_kind(kind)

    # ------------------------------------------------------------ registration
    def _ensure_kind(self, kind: str) -> None:
        if kind in self._counts:
            return
        self._counts[kind] = 0
        self._errors[kind] = 0
        self._sim_counts[kind] = 0
        self._components[kind] = {
            c: deque(maxlen=COMPONENT_SAMPLE_LIMIT) for c in COMPONENTS}
        labels = {"kind": kind}
        mk = self.bank.series
        self._wall[(kind, "ops")] = mk(
            "gateway_ops_total", kind="counter", merge="sum", labels=labels,
            help="bridged operations completed")
        self._wall[(kind, "errors")] = mk(
            "gateway_op_errors_total", kind="counter", merge="sum",
            labels=labels, help="bridged operations with status >= 500")
        self._wall[(kind, "queue_wait_ms")] = mk(
            "gateway_queue_wait_ms", labels=labels, unit="ms", merge="max",
            help="enqueue -> dequeue wait on the bridge queue")
        self._wall[(kind, "sim_exec_ms")] = mk(
            "gateway_sim_exec_ms", labels=labels, unit="ms", merge="max",
            help="dequeue -> op complete (wall cost of driving the sim)")
        self._wall[(kind, "reply_write_ms")] = mk(
            "gateway_reply_write_ms", labels=labels, unit="ms", merge="max",
            help="serialize + socket write + drain of the HTTP reply")
        self._wall[(kind, "wall_ms")] = mk(
            "gateway_op_wall_ms", labels=labels, unit="ms", merge="max",
            help="queue_wait + sim_exec per bridged op")
        self._sim_series[(kind, "ops")] = mk(
            "gateway_sim_ops_total", kind="counter", merge="sum",
            labels=labels, help="sim-plane op count (deterministic)")
        self._sim_series[(kind, "latency_ms")] = mk(
            "gateway_sim_latency_ms", labels=labels, unit="ms", merge="max",
            help="simulated admission -> completion latency (deterministic)")

    def _wall_now_ns(self) -> int:
        return time.perf_counter_ns() - self._origin_ns

    # --------------------------------------------------------------- recording
    def record_op(self, index: int, op, result, *, queue_wait_ns: int,
                  sim_exec_ns: int, now_ns: Optional[int] = None) -> dict:
        """Fold one completed op into every plane; returns the ring/journal
        record (the server mutates ``reply_write_ms`` into the same dict
        once the reply has drained, so the journal self-updates)."""
        kind = op.kind
        self._ensure_kind(kind)
        t = self._wall_now_ns() if now_ns is None else now_ns
        queue_wait_ms = queue_wait_ns / 1e6
        sim_exec_ms = sim_exec_ns / 1e6
        wall_ms = queue_wait_ms + sim_exec_ms
        error = result.status >= 500

        self._counts[kind] += 1
        self._wall[(kind, "ops")].record(t, self._counts[kind])
        if error:
            self._errors[kind] += 1
        self._wall[(kind, "errors")].record(t, self._errors[kind])
        trace_id = getattr(result, "trace_id", None)
        self._wall[(kind, "queue_wait_ms")].record(t, queue_wait_ms)
        self._wall[(kind, "sim_exec_ms")].record(t, sim_exec_ms)
        self._wall[(kind, "wall_ms")].record(t, wall_ms,
                                             trace_id=trace_id)
        comps = self._components[kind]
        comps["queue_wait_ms"].append(queue_wait_ms)
        comps["sim_exec_ms"].append(sim_exec_ms)
        comps["wall_ms"].append(wall_ms)

        # Sim plane: only ops that consumed an admission slot carry
        # deterministic timestamps/latencies.
        if result.admitted_ns:
            sim_t = result.admitted_ns + result.sim_latency_ns
            self._sim_counts[kind] += 1
            self._sim_series[(kind, "ops")].record(
                sim_t, self._sim_counts[kind])
            self._sim_series[(kind, "latency_ms")].record(
                sim_t, result.sim_latency_ns / 1e6)

        record = {
            "index": index,
            "kind": kind,
            "thing": op.thing,
            "name": op.name,
            "request_id": op.request_id,
            "status": result.status,
            "admitted_ns": result.admitted_ns,
            "sim_latency_ns": result.sim_latency_ns,
            "trace_id": trace_id,
            "queue_wait_ms": round(queue_wait_ms, 6),
            "sim_exec_ms": round(sim_exec_ms, 6),
            "reply_write_ms": None,
            "wall_ms": round(wall_ms, 6),
        }
        self.ring.append(record)
        self._journal_offer(record)
        return record

    def _journal_offer(self, record: dict) -> None:
        journal = self.journal
        journal.append(record)
        if len(journal) > self.config.journal_size:
            journal.sort(key=lambda r: r["wall_ms"], reverse=True)
            del journal[self.config.journal_size:]

    def record_reply(self, record: Optional[dict], reply_ns: int) -> None:
        """Reply drained on the socket (asyncio-thread context)."""
        reply_ms = reply_ns / 1e6
        kind = record["kind"] if record else "read"
        entry = self._wall.get((kind, "reply_write_ms"))
        if entry is not None:
            entry.record(self._wall_now_ns(), reply_ms)
            self._components[kind]["reply_write_ms"].append(reply_ms)
        if record is not None:
            record["reply_write_ms"] = round(reply_ms, 6)

    def record_stream_dropped(self, total: int,
                              now_ns: Optional[int] = None) -> None:
        """A WS frame was dropped on a slow consumer (asyncio thread)."""
        self._stream_dropped = total
        self._stream_dropped_series.record(
            self._wall_now_ns() if now_ns is None else now_ns, total)

    # ---------------------------------------------------------------- reading
    def deterministic_view(self) -> dict:
        """Sim-plane-only snapshot: byte-stable under replay."""
        snap = self.bank.snapshot()
        series = [dict(s) for s in snap["series"]
                  if s["name"] in SIM_PLANE_SERIES and s["samples"]]
        for s in series:
            s.pop("exemplars", None)
        return {"series": series}

    def _summarize(self, values) -> dict:
        data = list(values)
        if not data:
            return {"count": 0}
        return {
            "count": len(data),
            "p50": round(percentile(data, 50), 3),
            "p95": round(percentile(data, 95), 3),
            "p99": round(percentile(data, 99), 3),
            "max": round(max(data), 3),
        }

    def summary(self) -> dict:
        """Per-kind decomposition percentiles + recorder state
        (the ``GET /debug/ops`` body and the loadgen report)."""
        kinds = {}
        for kind in sorted(self._counts):
            comps = self._components[kind]
            kinds[kind] = {
                "count": self._counts[kind],
                "errors": self._errors[kind],
                **{c: self._summarize(comps[c]) for c in COMPONENTS},
            }
        return {
            "slo_status": self.last_slo_status,
            "stream_dropped": self._stream_dropped,
            "flight_dumps": list(self.flight_dumps),
            "ring_depth": len(self.ring),
            "kinds": kinds,
        }

    def journal_snapshot(self) -> List[dict]:
        """Worst ops first, each a copy safe to serialize."""
        return [dict(r) for r in sorted(
            self.journal, key=lambda r: r["wall_ms"], reverse=True)]

    # ----------------------------------------------------------- flight loop
    def maybe_check_slo(
        self,
        context: Optional[Callable[[], dict]] = None,
        trace_lookup: Optional[Callable[[List[int]], dict]] = None,
        now_ns: Optional[int] = None,
    ) -> Optional[HealthReport]:
        """Evaluate the SLO rules at most once per check interval.

        On a ``degraded`` verdict while armed, dump the flight ring;
        the recorder then disarms until the verdict leaves ``degraded``
        so a sustained incident produces one dump, not one per check.
        """
        if not self._rules:
            return None
        t = self._wall_now_ns() if now_ns is None else now_ns
        if t < self._next_slo_check_ns:
            return None
        self._next_slo_check_ns = t + int(
            self.config.slo_check_interval_s * 1e9)
        report = evaluate(self._rules, self._slo_document())
        status = report.status
        self.last_slo_status = status
        if status == "degraded":
            if self._armed and len(self.flight_dumps) < self.config.flight_limit:
                self._armed = False
                self._dump_flight(report, context, trace_lookup)
        else:
            self._armed = True
        return report

    def _slo_document(self) -> dict:
        """Only the series the rules reference: SLO checks run on the
        bridge thread, so snapshotting the whole bank per check would
        tax the serving path for nothing."""
        series = [ts.to_dict() for ts in self.bank
                  if ts.name in self._rule_series]
        return {"series": series}

    def _dump_flight(self, report: HealthReport,
                     context: Optional[Callable[[], dict]],
                     trace_lookup: Optional[Callable[[List[int]], dict]],
                     ) -> Optional[str]:
        if self.config.flight_dir is None:
            return None
        directory = Path(self.config.flight_dir)
        directory.mkdir(parents=True, exist_ok=True)
        requests = [dict(r) for r in self.ring]
        trace_ids = sorted({r["trace_id"] for r in requests
                            if r.get("trace_id") is not None})
        traces = {}
        if trace_lookup is not None and trace_ids:
            traces = trace_lookup(trace_ids)
        document = {
            "reason": "slo-degraded",
            "slo": report.as_dict(),
            "summary": self.summary(),
            "requests": requests,
            "slowest": self.journal_snapshot(),
            "traces": traces,
            "context": context() if context is not None else {},
        }
        path = directory / f"flight-{len(self.flight_dumps):04d}.json"
        path.write_text(json.dumps(document, indent=1, sort_keys=True)
                        + "\n")
        self.flight_dumps.append(str(path))
        return str(path)


__all__ = [
    "COMPONENTS",
    "DEFAULT_GATEWAY_SLOS",
    "GatewayObsConfig",
    "GatewayObservability",
]
