"""Named chaos campaigns over fleet scenarios, with JSON verdicts.

A :class:`Campaign` pairs a small :class:`~repro.fleet.scenario.FleetScenario`
with a fault-plan builder and a drain window.  :func:`run_campaign`
executes every shard sequentially — churn for ``duration_s``, then the
open-loop load is cancelled and the clock runs ``grace_s`` longer so
every in-flight request either completes or surfaces its timeout — and
folds metrics, chaos stats and invariant reports into a verdict dict.

The verdict is a pure function of ``(campaign, seed)``: no wall-clock,
no global state, canonical JSON with sorted keys.  Its ``digest`` field
(sha256 of the verdict minus the digest itself) is what the differential
tests compare between replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.chaos.engine import ChaosEngine
from repro.chaos.invariants import InvariantReport, check_all
from repro.chaos.plan import (
    ClockSkew,
    FaultPlan,
    HotUnplug,
    LinkBurst,
    NodeCrash,
)
from repro.fleet.deployment import ShardDeployment
from repro.fleet.metrics import Metrics
from repro.fleet.scenario import ChurnProfile, FleetScenario, ShardSpec
from repro.protocol import messages as proto
from repro.protocol.reliability import RetryPolicy
from repro.sim.kernel import ns_from_s
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.health import SloRule, evaluate
from repro.telemetry.series import SeriesBank

PlanBuilder = Callable[[ShardSpec, float], FaultPlan]

#: Client/manager retry schedule for lossy campaigns: nine attempts
#: survive 30% datagram loss (per round-trip success 0.49, residual
#: failure 0.51^9 ≈ 0.23%) while the capped backoff keeps the worst
#: retransmission span (≈14 s with jitter) under the 15 s request
#: timeout.
LOSSY_RETRY = RetryPolicy(
    max_attempts=9, base_backoff_s=0.4, multiplier=1.6,
    max_backoff_s=2.0, jitter_frac=0.2,
)

#: Install retry schedule for lossy campaigns (request + upload each
#: cross the lossy link; ten attempts leave ≈0.1% residual failure).
LOSSY_INSTALL_RETRY = RetryPolicy(
    max_attempts=10, base_backoff_s=0.8, multiplier=1.3,
    max_backoff_s=3.0, jitter_frac=0.2,
)

_CHAOS_CHURN = ChurnProfile(
    read_timeout_s=15.0,
    read_interval_s=0.5,
    churn_interval_s=10.0,
    hot_update_interval_s=10.0,
)

_CHAOS_SCENARIO = FleetScenario(
    name="chaos",
    things=6,
    shard_size=6,
    channels=2,
    duration_s=30.0,
    churn=_CHAOS_CHURN,
    retry=LOSSY_RETRY,
    install_retry=LOSSY_INSTALL_RETRY,
    telemetry=TelemetryConfig(cadence_s=1.0),
)

#: Health rules judged over campaign telemetry.  Windowed read
#: completion is what separates *degraded-then-recovered* from
#: *broken*: a mid-run loss burst craters one window's completion and
#: the backlog completes in later windows (ratios above 1.0 pass).
#: Windows where no read traffic moved are skipped, so the drain grace
#: period neither fakes health nor masks a stuck fleet.
CHAOS_HEALTH_RULES: Tuple[SloRule, ...] = (
    SloRule("read_completion", "reads_ok_total", aggregate="delta",
            ratio_to="reads_sent_total", op=">=", threshold=0.90,
            window_s=5.0),
)


@dataclass(frozen=True)
class Campaign:
    """One named chaos campaign: scenario + plan + drain window."""

    name: str
    description: str
    scenario: FleetScenario
    build_plan: PlanBuilder
    #: Extra simulated time after churn stops, long enough for every
    #: outstanding request to complete or expire.
    grace_s: float = 30.0


def _lossy_plan(spec: ShardSpec, horizon_s: float) -> FaultPlan:
    """30% datagram loss for the whole campaign, nothing else."""
    del spec
    return FaultPlan(
        name="lossy",
        bursts=(
            LinkBurst(start_s=0.0, end_s=horizon_s, drop_probability=0.30),
        ),
    )


def _mayhem_plan(spec: ShardSpec, horizon_s: float) -> FaultPlan:
    """Everything at once: loss, corruption, duplication, reordering,
    a crash + reboot, a hot-unplug + replug and a skewed clock."""
    duration = spec.scenario.duration_s
    crashes = []
    unplugs = []
    skews = []
    if spec.things >= 1:
        crashes.append(NodeCrash(
            thing=0, at_s=duration * 0.3, reboot_at_s=duration * 0.6,
        ))
    if spec.things >= 2:
        unplugs.append(HotUnplug(
            thing=1, channel=0, at_s=duration * 0.4,
            replug_at_s=duration * 0.7,
        ))
    if spec.things >= 3:
        skews.append(ClockSkew(thing=2, at_s=duration * 0.2, scale=1.3))
    return FaultPlan(
        name="mayhem",
        bursts=(
            LinkBurst(
                start_s=0.0, end_s=horizon_s,
                drop_probability=0.10,
                corrupt_probability=0.03,
                duplicate_probability=0.08,
                reorder_probability=0.08,
            ),
        ),
        crashes=tuple(crashes),
        unplugs=tuple(unplugs),
        skews=tuple(skews),
    )


def _burst_plan(spec: ShardSpec, horizon_s: float) -> FaultPlan:
    """A mid-run loss storm: 80% datagram loss for roughly the middle
    third of the churn phase, clean air before and after.  The fleet
    must visibly degrade during the burst and visibly recover after —
    the telemetry health verdict distinguishes exactly that."""
    del horizon_s
    duration = spec.scenario.duration_s
    return FaultPlan(
        name="burst",
        bursts=(
            LinkBurst(
                start_s=duration / 3.0,
                end_s=duration * 0.6,
                drop_probability=0.80,
            ),
        ),
    )


#: Campaigns runnable via ``python -m repro.chaos --campaign``.
CAMPAIGNS: Dict[str, Campaign] = {
    "lossy": Campaign(
        name="lossy",
        description="30% datagram loss; retransmission must carry "
                    ">=99% of reads and installs to completion",
        scenario=_CHAOS_SCENARIO,
        build_plan=_lossy_plan,
    ),
    "mayhem": Campaign(
        name="mayhem",
        description="loss + corruption + duplication + reordering + "
                    "crash/reboot + hot-unplug + clock skew, together",
        scenario=_CHAOS_SCENARIO,
        build_plan=_mayhem_plan,
    ),
    "burst": Campaign(
        name="burst",
        description="80% loss storm mid-run; telemetry health must show "
                    "degraded windows during the burst and recovery after",
        scenario=_CHAOS_SCENARIO,
        build_plan=_burst_plan,
    ),
}


@dataclass
class CampaignResult:
    """Everything one campaign run produced (verdict + live objects)."""

    verdict: dict
    deployments: List[ShardDeployment]
    engines: List[ChaosEngine]
    invariants: List[InvariantReport]
    #: Merged time-series document (None when telemetry was off).
    telemetry_document: Optional[dict] = None

    @property
    def digest(self) -> str:
        return self.verdict["digest"]

    @property
    def violations(self) -> int:
        return self.verdict["violations"]

    def to_json(self) -> str:
        """The canonical byte-exact verdict encoding."""
        return json.dumps(self.verdict, sort_keys=True, indent=2,
                          default=repr) + "\n"


def _watch_uploads(
    deployment: ShardDeployment,
) -> Dict[int, Set[Tuple[int, int, int]]]:
    """Collect distinct driver-upload identities per Thing, on the wire.

    Feeds the no-duplicate-install invariant: retransmitted or
    network-duplicated uploads share a ``(src, seq, device)`` identity.
    """
    distinct: Dict[int, Set[Tuple[int, int, int]]] = {}
    addr_to_node = {
        thing.address: thing.stack.node_id for thing in deployment.things
    }
    upload_type = proto.MsgType.DRIVER_UPLOAD.value

    def monitor(src_id: int, datagram) -> None:
        del src_id
        payload = datagram.payload
        if not payload or payload[0] != upload_type:
            return
        node = addr_to_node.get(datagram.dst)
        if node is None:
            return
        try:
            message = proto.decode_message(payload)
        except proto.ProtocolError:
            return
        distinct.setdefault(node, set()).add(
            (datagram.src.value, message.seq, message.device_id.value)
        )

    deployment.network.add_monitor(monitor)
    return distinct


def _shard_trace_digest(deployment: ShardDeployment) -> Optional[str]:
    tracer = deployment.sim.tracer
    if tracer is None:
        return None
    blob = json.dumps(tracer.snapshot(), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_campaign(
    campaign: Campaign,
    seed: int,
    *,
    trace: bool = False,
    snapshot_check: bool = True,
) -> CampaignResult:
    """Run *campaign* with *seed*; deterministic verdict, see module doc.

    With ``snapshot_check`` (the default) every shard is checkpointed
    mid-campaign, restored, audited, and — crucially — the campaign
    *continues on the restored world*: the ``checkpoint-roundtrip``
    invariant in the verdict proves the snapshot subsystem carries live
    chaos state (armed fault plans, in-flight requests, skewed clocks)
    without perturbing the outcome.  Benchmarks measuring campaign cost
    pass ``snapshot_check=False`` to keep their overhead gates honest.
    """
    scenario = campaign.scenario.scaled(seed=seed, trace=trace)
    horizon_s = scenario.duration_s + campaign.grace_s
    deployments: List[ShardDeployment] = []
    engines: List[ChaosEngine] = []
    snapshots: List[dict] = []
    fault_records: List[dict] = []
    reports_by_name: Dict[str, List[str]] = {}
    chaos_totals: Dict[str, int] = {}
    trace_digests: List[str] = []
    telemetry_snapshots: List[Optional[dict]] = []
    plan_summary: Optional[dict] = None

    for spec in scenario.shards():
        deployment = ShardDeployment(spec)
        plan = campaign.build_plan(spec, horizon_s)
        if plan_summary is None:
            plan_summary = plan.describe()
        engine = ChaosEngine(
            deployment.sim, deployment.network, deployment.things,
            deployment.rng.fork("chaos").stream("inject"),
        )
        distinct_uploads = _watch_uploads(deployment)
        engine.arm(plan)
        deployment.start()
        if snapshot_check:
            # Mid-campaign round-trip: dump, restore, audit, and swap —
            # the rest of the campaign runs on the restored world, so a
            # restore bug changes the verdict digest and fails loudly.
            from repro.snapshot.checkpoint import digest_document
            from repro.snapshot.codec import dumps_state, loads_state
            from repro.snapshot.state import shard_summary

            deployment.sim.run_until(ns_from_s(scenario.duration_s * 0.5))
            before = digest_document(shard_summary(deployment))
            blob = dumps_state((deployment, engine, distinct_uploads))
            restored_dep, restored_eng, restored_up = loads_state(blob)
            after = digest_document(shard_summary(restored_dep))
            if after != before:
                reports_by_name.setdefault("checkpoint-roundtrip", []).append(
                    f"shard {spec.index}: restored summary digest "
                    f"{after} != saved {before}"
                )
            else:
                reports_by_name.setdefault("checkpoint-roundtrip", [])
                deployment, engine, distinct_uploads = (
                    restored_dep, restored_eng, restored_up)
        deployment.sim.run_until(ns_from_s(scenario.duration_s))
        # Stop the open-loop load; let in-flight requests drain so every
        # one of them completes or surfaces its timeout error.
        deployment.sim.drain(ShardDeployment.CHURN_EVENT_NAMES)
        deployment.sim.run_until(ns_from_s(horizon_s))
        deployment.finalize()
        engine.disarm()

        for key, value in engine.stats.as_dict().items():
            chaos_totals[key] = chaos_totals.get(key, 0) + value
        fault_records.extend(
            {"t": round(r.time_s, 9), "kind": r.kind, "detail": r.detail}
            for r in engine.records
            if r.kind not in ("drop", "corrupt", "duplicate", "reorder")
        )
        for report in check_all(deployment, distinct_uploads):
            reports_by_name.setdefault(report.name, []).extend(
                f"shard {spec.index}: {v}" for v in report.violations
            )
        digest = _shard_trace_digest(deployment)
        if digest is not None:
            trace_digests.append(digest)
        snapshots.append(deployment.metrics.snapshot())
        telemetry_snapshots.append(
            deployment.telemetry.snapshot()
            if deployment.telemetry is not None else None
        )
        deployments.append(deployment)
        engines.append(engine)

    merged = Metrics.merge(snapshots)
    counters = merged["counters"]
    invariants = [
        InvariantReport(name, violations)
        for name, violations in sorted(reports_by_name.items())
    ]
    violations = sum(len(r.violations) for r in invariants)

    reads_sent = counters.get("reads.sent", 0)
    reads_ok = counters.get("reads.ok", 0)
    installs = counters.get("driver.installs", 0)
    requests = counters.get("driver.requests", 0)
    verdict = {
        "campaign": campaign.name,
        "seed": seed,
        "scenario": {
            "things": scenario.things,
            "shards": scenario.shard_count,
            "duration_s": scenario.duration_s,
            "grace_s": campaign.grace_s,
        },
        "plan": plan_summary or {},
        "faults": {
            "injected": chaos_totals,
            "events": fault_records,
        },
        "recoveries": {
            "retransmits": counters.get("reliability.retransmits", 0),
            "dups_suppressed": counters.get("reliability.dups_suppressed", 0),
            "duplicate_install_requests": counters.get(
                "manager.duplicate_install_requests", 0),
            "reads_sent": reads_sent,
            "reads_ok": reads_ok,
            "reads_timeout": counters.get("reads.timeout", 0),
            "read_completion": (reads_ok / reads_sent) if reads_sent else 1.0,
            "driver_requests": requests,
            "driver_installs": installs,
            "driver_request_failures": counters.get(
                "driver.request_failures", 0),
            "crashes": counters.get("chaos.crashes", 0),
            "reboots": counters.get("chaos.reboots", 0),
        },
        "metrics": {"counters": counters, "gauges": merged["gauges"]},
        "invariants": {r.name: r.as_dict() for r in invariants},
        "violations": violations,
    }
    telemetry_document: Optional[dict] = None
    if any(telemetry_snapshots):
        telemetry_document = SeriesBank.merge(telemetry_snapshots)
        health = evaluate(CHAOS_HEALTH_RULES, telemetry_document)
        verdict["health"] = health.as_dict()
    if trace_digests:
        verdict["trace_digest"] = hashlib.sha256(
            "".join(trace_digests).encode()
        ).hexdigest()[:16]
    blob = json.dumps(verdict, sort_keys=True, default=repr)
    verdict["digest"] = hashlib.sha256(blob.encode()).hexdigest()[:16]
    return CampaignResult(verdict, deployments, engines, invariants,
                          telemetry_document)


__all__ = [
    "CAMPAIGNS",
    "CHAOS_HEALTH_RULES",
    "Campaign",
    "CampaignResult",
    "LOSSY_RETRY",
    "LOSSY_INSTALL_RETRY",
    "run_campaign",
]
