"""The chaos engine: arms a :class:`FaultPlan` against one shard.

Datagram faults ride the :meth:`repro.net.network.Network.set_fault_injector`
hook — for every datagram entering the network the engine decides
(deterministically, from the shard's forked RNG) whether to drop,
corrupt, duplicate or hold it back.  Scheduled faults (crash, reboot,
hot-unplug, replug, clock skew) are plain kernel events.  Every injected
fault is appended to :attr:`ChaosEngine.records` and, when a tracer is
installed, emitted as an instant in the ``chaos`` category, so Perfetto
timelines show exactly which fault preceded which recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import FaultPlan, HotUnplug, LinkBurst
from repro.core.thing import Thing
from repro.net.network import Network
from repro.net.packets import UdpDatagram
from repro.sim.kernel import Simulator, ns_from_s


@dataclass
class ChaosStats:
    """Counters for every fault the engine actually injected."""

    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    reorders: int = 0
    crashes: int = 0
    reboots: int = 0
    unplugs: int = 0
    unplugs_skipped: int = 0
    replugs: int = 0
    replugs_skipped: int = 0
    skews: int = 0

    def total(self) -> int:
        return (self.drops + self.corruptions + self.duplicates
                + self.reorders + self.crashes + self.reboots
                + self.unplugs + self.replugs + self.skews)

    def as_dict(self) -> Dict[str, int]:
        return {
            "drops": self.drops,
            "corruptions": self.corruptions,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "crashes": self.crashes,
            "reboots": self.reboots,
            "unplugs": self.unplugs,
            "unplugs_skipped": self.unplugs_skipped,
            "replugs": self.replugs,
            "replugs_skipped": self.replugs_skipped,
            "skews": self.skews,
            "total": self.total(),
        }


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, timestamped in simulation time."""

    time_s: float
    kind: str
    detail: str = ""


class ChaosEngine:
    """Injects one plan's faults into one shard's simulated world."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        things: Sequence[Thing],
        rng: random.Random,
    ) -> None:
        self._sim = sim
        self._network = network
        self._things = list(things)
        self._rng = rng
        self._plan: Optional[FaultPlan] = None
        self._bursts: Tuple[LinkBurst, ...] = ()
        #: Boards pulled by hot-unplug faults, held for their replug.
        self._pulled: Dict[Tuple[int, int], object] = {}
        self.stats = ChaosStats()
        self.records: List[FaultRecord] = []

    # ----------------------------------------------------------------- arming
    def arm(self, plan: FaultPlan) -> None:
        """Install the datagram hook and schedule every timed fault."""
        if self._plan is not None:
            raise RuntimeError("engine is already armed")
        self._plan = plan
        self._bursts = plan.bursts
        if plan.bursts:
            self._network.set_fault_injector(self._inject)
        for crash in plan.crashes:
            self._sim.schedule(
                ns_from_s(crash.at_s),
                lambda c=crash: self._apply_crash(c),
                name="chaos-crash",
            )
            if crash.reboot_at_s is not None:
                self._sim.schedule(
                    ns_from_s(crash.reboot_at_s),
                    lambda c=crash: self._apply_reboot(c),
                    name="chaos-reboot",
                )
        for unplug in plan.unplugs:
            self._sim.schedule(
                ns_from_s(unplug.at_s),
                lambda u=unplug: self._apply_unplug(u),
                name="chaos-unplug",
            )
            if unplug.replug_at_s is not None:
                self._sim.schedule(
                    ns_from_s(unplug.replug_at_s),
                    lambda u=unplug: self._apply_replug(u),
                    name="chaos-replug",
                )
        for skew in plan.skews:
            self._sim.schedule(
                ns_from_s(skew.at_s),
                lambda s=skew: self._apply_skew(s),
                name="chaos-skew",
            )

    def disarm(self) -> None:
        """Remove the datagram hook (scheduled faults already fired)."""
        self._network.set_fault_injector(None)

    # ---------------------------------------------------------- datagram hook
    def _active_burst(self) -> Optional[LinkBurst]:
        now = self._sim.now_s
        for burst in self._bursts:
            if burst.active_at(now):
                return burst
        return None

    def _inject(
        self, src_id: int, datagram: UdpDatagram
    ) -> List[Tuple[float, UdpDatagram]]:
        burst = self._active_burst()
        if burst is None:
            return [(0.0, datagram)]
        rng = self._rng
        if (burst.drop_probability > 0.0
                and rng.random() < burst.drop_probability):
            self.stats.drops += 1
            self._record("drop", f"src={src_id} dst={datagram.dst} "
                                 f"size={datagram.size}")
            return []
        if (burst.corrupt_probability > 0.0
                and rng.random() < burst.corrupt_probability):
            # Mangle the message-type byte to an invalid value: the
            # receiver's decoder rejects it (bad-message), mirroring a
            # frame whose CRC failed.  Corruption never silently turns
            # one valid request into a different one.
            datagram = UdpDatagram(
                datagram.src, datagram.src_port,
                datagram.dst, datagram.dst_port,
                b"\xff" + datagram.payload[1:],
            )
            self.stats.corruptions += 1
            self._record("corrupt", f"src={src_id} dst={datagram.dst}")
        delay = 0.0
        if (burst.reorder_probability > 0.0
                and rng.random() < burst.reorder_probability):
            delay = burst.reorder_delay_s
            self.stats.reorders += 1
            self._record("reorder", f"src={src_id} delay={delay}")
        copies = [(delay, datagram)]
        if (burst.duplicate_probability > 0.0
                and rng.random() < burst.duplicate_probability):
            copies.append((delay + burst.duplicate_delay_s, datagram))
            self.stats.duplicates += 1
            self._record("duplicate", f"src={src_id} dst={datagram.dst}")
        return copies

    # ------------------------------------------------------- scheduled faults
    def _thing(self, index: int) -> Optional[Thing]:
        if 0 <= index < len(self._things):
            return self._things[index]
        return None

    def _apply_crash(self, fault) -> None:
        thing = self._thing(fault.thing)
        if thing is None or thing.crashed:
            return
        thing.crash()
        self.stats.crashes += 1
        self._record("crash", f"thing={fault.thing}")

    def _apply_reboot(self, fault) -> None:
        thing = self._thing(fault.thing)
        if thing is None or not thing.crashed:
            return
        thing.reboot()
        self.stats.reboots += 1
        self._record("reboot", f"thing={fault.thing}")

    def _apply_unplug(self, fault: HotUnplug) -> None:
        thing = self._thing(fault.thing)
        if thing is None or thing.crashed:
            self.stats.unplugs_skipped += 1
            self._record("unplug-skipped", f"thing={fault.thing} (crashed)")
            return
        if thing.board.board_at(fault.channel) is None:
            self.stats.unplugs_skipped += 1
            self._record("unplug-skipped",
                         f"thing={fault.thing} ch={fault.channel} (empty)")
            return
        board = thing.unplug(fault.channel)
        self._pulled[(fault.thing, fault.channel)] = board
        self.stats.unplugs += 1
        self._record("unplug", f"thing={fault.thing} ch={fault.channel}")

    def _apply_replug(self, fault: HotUnplug) -> None:
        thing = self._thing(fault.thing)
        board = self._pulled.pop((fault.thing, fault.channel), None)
        if (thing is None or board is None or thing.crashed
                or thing.board.board_at(fault.channel) is not None):
            self.stats.replugs_skipped += 1
            self._record("replug-skipped",
                         f"thing={fault.thing} ch={fault.channel}")
            return
        thing.plug(board, fault.channel)
        self.stats.replugs += 1
        self._record("replug", f"thing={fault.thing} ch={fault.channel}")

    def _apply_skew(self, fault) -> None:
        thing = self._thing(fault.thing)
        if thing is None:
            return
        thing.set_timer_scale(fault.scale)
        self.stats.skews += 1
        self._record("skew", f"thing={fault.thing} scale={fault.scale}")

    # ---------------------------------------------------------------- plumbing
    def _record(self, kind: str, detail: str = "") -> None:
        self.records.append(FaultRecord(self._sim.now_s, kind, detail))
        tracer = self._sim.tracer
        if tracer is not None and tracer.enabled_for("chaos"):
            tracer.instant(
                f"chaos.{kind}", "chaos", tracer.track("chaos"),
                args={"detail": detail},
            )


__all__ = ["ChaosEngine", "ChaosStats", "FaultRecord"]
