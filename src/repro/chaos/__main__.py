"""CLI for chaos campaigns: ``python -m repro.chaos``.

Examples::

    python -m repro.chaos --list
    python -m repro.chaos --campaign lossy --seed 7
    python -m repro.chaos --campaign mayhem --seed 3 --json verdict.json
    python -m repro.chaos --smoke        # the CI gate: 3 seeds x 2
                                         # campaigns, zero violations

Exit status is non-zero when any invariant was violated, which is what
lets CI gate directly on the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.chaos.campaign import CAMPAIGNS, run_campaign

SMOKE_SEEDS = (1, 2, 3)


def _print_summary(result) -> None:
    verdict = result.verdict
    rec = verdict["recoveries"]
    injected = verdict["faults"]["injected"]
    print(f"campaign   : {verdict['campaign']} (seed {verdict['seed']})")
    print(f"faults     : {injected['total']} injected "
          f"(drops {injected['drops']}, corruptions {injected['corruptions']}, "
          f"duplicates {injected['duplicates']}, reorders {injected['reorders']}, "
          f"crashes {injected['crashes']}, unplugs {injected['unplugs']})")
    print(f"reads      : {rec['reads_ok']}/{rec['reads_sent']} ok "
          f"({rec['read_completion']:.1%}), {rec['reads_timeout']} timed out")
    print(f"installs   : {rec['driver_installs']} of {rec['driver_requests']} "
          f"requested, {rec['driver_request_failures']} gave up")
    print(f"reliability: {rec['retransmits']} retransmits, "
          f"{rec['dups_suppressed']} duplicates suppressed")
    for name, report in sorted(verdict["invariants"].items()):
        mark = "ok" if report["ok"] else "VIOLATED"
        print(f"invariant  : {name}: {mark}")
        for violation in report["violations"]:
            print(f"             - {violation}")
    health = verdict.get("health")
    if health:
        print(f"health     : {health['status']}")
        for rule_name, rule in sorted(health["rules"].items()):
            windows = " ".join(
                f"[{w['t0_s']:.0f}s {'ok' if w['ok'] else 'BAD'} "
                f"{w['value']:.2f}]"
                for w in rule["windows"]
            )
            print(f"             {rule_name} ({rule['status']}): {windows}")
    print(f"verdict    : {verdict['violations']} violations, "
          f"digest {verdict['digest']}")


def _run_smoke(trace: bool) -> int:
    """3 seeds x every campaign; gate on zero invariant violations."""
    started = time.monotonic()
    failures: List[str] = []
    for name in sorted(CAMPAIGNS):
        campaign = CAMPAIGNS[name]
        for seed in SMOKE_SEEDS:
            result = run_campaign(campaign, seed, trace=trace)
            verdict = result.verdict
            status = "ok" if verdict["violations"] == 0 else "FAIL"
            rec = verdict["recoveries"]
            health = verdict.get("health", {}).get("status", "-")
            print(f"{name} seed={seed}: {status} "
                  f"faults={verdict['faults']['injected']['total']} "
                  f"reads={rec['reads_ok']}/{rec['reads_sent']} "
                  f"retransmits={rec['retransmits']} "
                  f"health={health} "
                  f"digest={verdict['digest']}")
            if verdict["violations"]:
                failures.append(f"{name} seed={seed}")
                for report in verdict["invariants"].values():
                    for violation in report["violations"]:
                        print(f"  - {violation}")
    elapsed = time.monotonic() - started
    print(f"smoke: {len(CAMPAIGNS) * len(SMOKE_SEEDS)} runs "
          f"in {elapsed:.1f}s wall")
    if failures:
        print(f"smoke FAILED: invariant violations in {', '.join(failures)}")
        return 1
    print("smoke passed: zero invariant violations")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="deterministic fault-injection campaigns",
    )
    parser.add_argument("--list", action="store_true",
                        help="list named campaigns and exit")
    parser.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                        help="campaign to run")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default 1)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the canonical verdict JSON here")
    parser.add_argument("--trace", action="store_true",
                        help="record obs traces (adds trace_digest)")
    parser.add_argument("--no-snapshot-check", action="store_true",
                        help="skip the mid-campaign checkpoint "
                             "round-trip invariant")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 3 seeds x every campaign, "
                             "zero violations required")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(CAMPAIGNS):
            campaign = CAMPAIGNS[name]
            print(f"{name:10s} {campaign.description}")
        return 0
    if args.smoke:
        return _run_smoke(args.trace)
    if args.campaign is None:
        parser.error("one of --list, --campaign or --smoke is required")

    result = run_campaign(CAMPAIGNS[args.campaign], args.seed,
                          trace=args.trace,
                          snapshot_check=not args.no_snapshot_check)
    _print_summary(result)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"verdict written to {args.json}")
    return 1 if result.violations else 0


if __name__ == "__main__":
    sys.exit(main())
