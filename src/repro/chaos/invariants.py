"""System invariants every chaos campaign must preserve.

These are checked after the campaign's drain window, when all in-flight
work has either completed or surfaced an error:

* **bounded-pending** — no pending-request table leaks: every request
  the client/manager sent was answered or expired through its timeout,
  and every Thing's install bookkeeping is empty.
* **request-accounting** — no silent loss: each client read/write/stream
  request produced exactly one outcome (reply or timeout error), never
  zero (lost without notice) and never two (duplicated callback).
* **no-duplicate-install** — at-most-once side effects: a Thing never
  flashed more driver installs than the number of *distinct* uploads
  addressed to it (retransmitted and network-duplicated uploads fold).

Each check returns an :class:`InvariantReport`; a campaign's verdict is
the union of the reports' violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class InvariantReport:
    """Outcome of one invariant check."""

    name: str
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {"ok": self.ok, "violations": list(self.violations)}


def check_bounded_pending(deployment) -> InvariantReport:
    """No request table retains entries once the drain window closed."""
    report = InvariantReport("bounded-pending")
    pending = deployment.client.pending_count()
    if pending:
        report.violations.append(f"client retains {pending} pending requests")
    pending = deployment.manager.pending_count()
    if pending:
        report.violations.append(f"manager retains {pending} pending requests")
    for index, thing in enumerate(deployment.things):
        pending = thing.pending_installs()
        if pending:
            report.violations.append(
                f"thing {index} retains {pending} pending driver requests"
            )
    return report


def check_request_accounting(deployment) -> InvariantReport:
    """Every unicast client request has exactly one outcome event."""
    report = InvariantReport("request-accounting")
    events = deployment.client.events
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    for kind, outcomes in (
        ("read", ("read-reply",)),
        ("write", ("write-ack",)),
        ("stream", ("stream-established",)),
    ):
        sent = counts.get(f"{kind}-sent", 0)
        done = sum(counts.get(o, 0) for o in outcomes)
        timed_out = counts.get(f"{kind}-timeout", 0)
        if done + timed_out != sent:
            report.violations.append(
                f"{kind}: {sent} sent but {done} completed + "
                f"{timed_out} timed out"
            )
    return report


def check_no_duplicate_install(
    deployment, distinct_uploads: Dict[int, Set[Tuple[int, int, int]]]
) -> InvariantReport:
    """Installs flashed ≤ distinct uploads addressed, per Thing.

    *distinct_uploads* maps a thing's node id to the set of unique
    ``(src, seq, device)`` upload identities observed on the wire (the
    campaign's network monitor collects it).  Retransmissions and
    duplicated datagrams share an identity, so any Thing that flashed
    more installs than identities executed a duplicate side effect.
    """
    report = InvariantReport("no-duplicate-install")
    for index, thing in enumerate(deployment.things):
        installs = len(thing.events_of("driver-installed"))
        uploads = len(distinct_uploads.get(thing.stack.node_id, set()))
        if installs > uploads:
            report.violations.append(
                f"thing {index}: {installs} installs from only "
                f"{uploads} distinct uploads"
            )
    return report


def check_all(
    deployment, distinct_uploads: Dict[int, Set[Tuple[int, int, int]]]
) -> List[InvariantReport]:
    """Run every invariant; order is fixed for verdict stability."""
    return [
        check_bounded_pending(deployment),
        check_request_accounting(deployment),
        check_no_duplicate_install(deployment, distinct_uploads),
    ]


__all__ = [
    "InvariantReport",
    "check_bounded_pending",
    "check_request_accounting",
    "check_no_duplicate_install",
    "check_all",
]
