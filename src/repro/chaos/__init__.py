"""repro.chaos: deterministic fault-injection campaigns.

µPnP's evaluation network (§6.4) is a lossy multi-hop 802.15.4 mesh;
IoTNetSim-style end-to-end credibility requires modelling failures of
links and nodes, not just the happy path.  This package turns that into
a first-class, seed-reproducible layer:

* :mod:`repro.chaos.plan` — declarative :class:`FaultPlan` objects:
  link loss/corruption/duplication/reordering bursts, node crash +
  reboot with state loss, peripheral hot-unplug mid-transaction, and
  clock skew;
* :mod:`repro.chaos.engine` — the :class:`ChaosEngine` that arms a plan
  against one fleet shard, injecting datagram faults through the
  :meth:`repro.net.network.Network.set_fault_injector` hook and
  scheduled faults through kernel time, each one emitted as an ``obs``
  trace event in the ``chaos`` category;
* :mod:`repro.chaos.invariants` — system invariants checked after every
  campaign (bounded pending tables, request accounting, no duplicated
  driver-install side effects);
* :mod:`repro.chaos.campaign` — named campaigns over fleet scenarios,
  producing byte-identical JSON verdicts for identical (seed, plan);
* ``python -m repro.chaos`` — the campaign CLI (and the CI
  ``--smoke`` gate).

Everything is deterministic: fault decisions draw from the shard's
forked RNG registry, never from wall-clock or global state, so a
campaign verdict is a pure function of (campaign, seed).
"""

from repro.chaos.campaign import (
    CAMPAIGNS,
    Campaign,
    CampaignResult,
    run_campaign,
)
from repro.chaos.engine import ChaosEngine, ChaosStats, FaultRecord
from repro.chaos.invariants import InvariantReport, check_all
from repro.chaos.plan import (
    ClockSkew,
    FaultPlan,
    HotUnplug,
    LinkBurst,
    NodeCrash,
)

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "ChaosEngine",
    "ChaosStats",
    "ClockSkew",
    "FaultPlan",
    "FaultRecord",
    "HotUnplug",
    "InvariantReport",
    "LinkBurst",
    "NodeCrash",
    "check_all",
    "run_campaign",
]
