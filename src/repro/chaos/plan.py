"""Declarative fault plans: what goes wrong, when, to whom.

A :class:`FaultPlan` is a frozen value object listing every fault a
campaign injects into one shard.  Times are simulation seconds from the
shard's epoch; Things are addressed by shard-local index (0-based, the
order :class:`repro.fleet.deployment.ShardDeployment` builds them).
Plans carry no randomness of their own — probabilistic faults (link
bursts) state probabilities, and the engine draws the actual outcomes
from the shard's seeded RNG, which is what keeps a campaign a pure
function of (plan, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class LinkBurst:
    """A window of datagram-level link misbehaviour.

    During ``[start_s, end_s)`` every datagram entering the network is
    independently subjected to, in order: drop, corruption, duplication
    and reordering, each with its stated probability.  Corruption
    models the real mesh's CRC-failing frames: the payload is mangled
    so the receiver's decoder rejects it (a ``bad-message`` event), not
    silently mutated into a different valid request.
    """

    start_s: float
    end_s: float
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Extra latency applied to the duplicate copy (it trails the
    #: original, as a re-forwarded frame would).
    duplicate_delay_s: float = 0.05
    reorder_probability: float = 0.0
    #: Extra latency applied to a reordered datagram (later traffic
    #: overtakes it).
    reorder_delay_s: float = 0.08

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("burst must have positive duration")
        for name in ("drop_probability", "corrupt_probability",
                     "duplicate_probability", "reorder_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class NodeCrash:
    """Crash Thing *thing* at ``at_s``; optionally reboot it later.

    A crash is a power failure: volatile state (active drivers, streams,
    pending requests, caches, group memberships) is lost, the radio goes
    silent, and flash-resident driver images survive.  ``reboot_at_s``
    of ``None`` leaves the node dead for the rest of the campaign.
    """

    thing: int
    at_s: float
    reboot_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.reboot_at_s is not None and self.reboot_at_s <= self.at_s:
            raise ValueError("reboot must come after the crash")


@dataclass(frozen=True)
class HotUnplug:
    """Yank the board in *channel* of Thing *thing* mid-whatever.

    If the channel is empty when the fault fires, the unplug is recorded
    as skipped (churn may have emptied it first) — the plan stays
    deterministic either way.  ``replug_at_s`` re-inserts the same board
    into the same channel if it is still free.
    """

    thing: int
    channel: int
    at_s: float
    replug_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.replug_at_s is not None and self.replug_at_s <= self.at_s:
            raise ValueError("replug must come after the unplug")


@dataclass(frozen=True)
class ClockSkew:
    """Scale Thing *thing*'s protocol timers by *scale* from ``at_s`` on.

    ``scale > 1`` models a slow oscillator (timers fire late), ``< 1``
    a fast one.  Only timers armed after the fault are affected, as a
    real drifting clock would.
    """

    thing: int
    at_s: float
    scale: float = 1.25

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Everything a campaign injects into one shard, declaratively."""

    name: str = "empty"
    bursts: Tuple[LinkBurst, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()
    unplugs: Tuple[HotUnplug, ...] = ()
    skews: Tuple[ClockSkew, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.bursts or self.crashes or self.unplugs or self.skews)

    def scheduled_fault_count(self) -> int:
        """Faults with a fixed firing time (bursts are windows, not
        events, so they are not counted here)."""
        count = len(self.unplugs) + len(self.skews)
        for crash in self.crashes:
            count += 1 if crash.reboot_at_s is None else 2
        for unplug in self.unplugs:
            if unplug.replug_at_s is not None:
                count += 1
        return count

    def describe(self) -> dict:
        """A JSON-able summary (embedded in campaign verdicts)."""
        return {
            "name": self.name,
            "bursts": len(self.bursts),
            "crashes": len(self.crashes),
            "unplugs": len(self.unplugs),
            "skews": len(self.skews),
        }


__all__ = ["LinkBurst", "NodeCrash", "HotUnplug", "ClockSkew", "FaultPlan"]
