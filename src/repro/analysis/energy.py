"""Figure 12: one-year energy, USB host vs µPnP (+ADC/I2C/UART).

Reproduces §6.1's simulation: peripherals communicate once every ten
seconds; the peripheral itself is ideal (draws nothing beyond its
interconnect transactions — the worst case for µPnP, whose overhead
then dominates); the horizontal axis sweeps the rate at which
peripherals are connected/disconnected from 1 minute to 1,000,000
minutes, log-log.

µPnP's yearly energy = (identification energy per change) × changes +
(interconnect transaction energy) × samples.  The identification energy
varies with the resistor values on the peripheral board (§3), which is
what the error bars capture; transaction energy differs per
interconnect, which is why the three µPnP curves diverge once changes
become rare and the communication floor dominates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.hw.connector import BusKind
from repro.hw.control_board import ControlBoard
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC
from repro.hw.peripheral_board import PeripheralBoard
from repro.hw.usb_baseline import SECONDS_PER_YEAR, UsbHostModel
from repro.interconnect.adc import AdcBus
from repro.interconnect.i2c import I2cBus
from repro.interconnect.uart import UartBus, UartConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import Summary, summarize

#: Figure 12's x axis (minutes between peripheral changes), log-spaced.
DEFAULT_CHANGE_INTERVALS_MIN: Tuple[float, ...] = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000
)

#: Peripherals communicate once every ten seconds (§6.1).
SAMPLE_PERIOD_S = 10.0


@dataclass(frozen=True)
class EnergyPoint:
    """One (x, y) of Figure 12 with its error bar."""

    change_interval_min: float
    mean_joules: float
    std_joules: float
    min_joules: float
    max_joules: float


def identification_energy_samples(
    *,
    trials: int = 25,
    seed: int = 7,
    codec: CodecParams = DEFAULT_CODEC,
    channels: int = 3,
) -> List[float]:
    """Energy (J) of one identification round, over random resistor sets.

    Each trial manufactures a board for a uniformly random device id —
    the paper attributes the Figure 12 error bars "primarily [to] the
    resistor values selection on the peripheral board".
    """
    rng = random.Random(seed)
    samples: List[float] = []
    for _ in range(trials):
        board = ControlBoard(channels, params=codec, rng=rng)
        device_id = DeviceId(rng.getrandbits(32))
        board.connect(
            PeripheralBoard.manufacture(device_id, BusKind.ADC, rng=rng)
        )
        report = board.run_identification()
        samples.append(report.energy_joules)
    return samples


def transaction_energy_joules(bus: BusKind, *, seed: int = 3) -> float:
    """Energy of one peripheral communication on *bus* (MCU side).

    ADC: one conversion.  I2C: a BMP180-style register read (pointer
    write + 3-byte read).  UART: one 16-byte ID-20LA frame at 9600 baud.
    """
    if bus is BusKind.ADC:
        adc = AdcBus(rng=random.Random(seed))
        adc.attach(_ConstantVoltage())
        return adc.sample().energy_j
    if bus is BusKind.I2C:
        i2c = I2cBus()
        i2c.attach(_DummyI2cSlave())
        write = i2c.write(0x77, bytes([0xF6]))
        read = i2c.read(0x77, 3)
        return write.energy_j + read.energy_j
    if bus is BusKind.UART:
        sim = Simulator()
        uart = UartBus(sim, config=UartConfig(baud=9600))
        # A 16-byte reader frame arriving costs 16 byte-times of line
        # activity on the receiving MCU.
        duration = 16 * uart.config.byte_seconds
        return uart._active_draw.energy_joules(duration)
    raise ValueError(f"no transaction model for bus {bus}")


class _ConstantVoltage:
    def voltage_v(self) -> float:
        return 1.0


class _DummyI2cSlave:
    i2c_address = 0x77

    def handle_write(self, data: bytes) -> None:
        del data

    def handle_read(self, count: int) -> bytes:
        return bytes(count)


@dataclass
class Figure12Model:
    """Computes all four Figure 12 series."""

    usb: UsbHostModel = field(default_factory=UsbHostModel)
    codec: CodecParams = DEFAULT_CODEC
    sample_period_s: float = SAMPLE_PERIOD_S
    identification_trials: int = 25
    seed: int = 7

    def samples_per_year(self) -> int:
        return int(SECONDS_PER_YEAR / self.sample_period_s)

    def changes_per_year(self, change_interval_min: float) -> int:
        return int(SECONDS_PER_YEAR / (change_interval_min * 60.0))

    def upnp_series(
        self,
        bus: BusKind,
        intervals_min: Sequence[float] = DEFAULT_CHANGE_INTERVALS_MIN,
    ) -> List[EnergyPoint]:
        """Annual µPnP energy for *bus*, one point per change interval."""
        ident = identification_energy_samples(
            trials=self.identification_trials, seed=self.seed, codec=self.codec
        )
        comm_floor = transaction_energy_joules(bus) * self.samples_per_year()
        points: List[EnergyPoint] = []
        for interval in intervals_min:
            changes = self.changes_per_year(interval)
            totals = [e * changes + comm_floor for e in ident]
            stats = summarize(totals)
            points.append(
                EnergyPoint(interval, stats.mean, stats.stdev,
                            stats.minimum, stats.maximum)
            )
        return points

    def usb_series(
        self, intervals_min: Sequence[float] = DEFAULT_CHANGE_INTERVALS_MIN
    ) -> List[EnergyPoint]:
        """Annual USB-host energy (always-on idle + enumerations)."""
        points = []
        for interval in intervals_min:
            joules = self.usb.annual_energy_joules(interval)
            points.append(EnergyPoint(interval, joules, 0.0, joules, joules))
        return points

    def all_series(
        self, intervals_min: Sequence[float] = DEFAULT_CHANGE_INTERVALS_MIN
    ) -> Dict[str, List[EnergyPoint]]:
        """The four Figure 12 curves, keyed by the paper's legend."""
        return {
            "USB host": self.usb_series(intervals_min),
            "uPnP+ADC": self.upnp_series(BusKind.ADC, intervals_min),
            "uPnP+I2C": self.upnp_series(BusKind.I2C, intervals_min),
            "uPnP+UART": self.upnp_series(BusKind.UART, intervals_min),
        }

    def advantage_at(self, interval_min: float, bus: BusKind = BusKind.ADC) -> float:
        """USB/µPnP energy ratio at one change interval (paper: >1e4 at
        hourly changes)."""
        usb = self.usb.annual_energy_joules(interval_min)
        upnp = self.upnp_series(bus, [interval_min])[0].mean_joules
        return usb / upnp


def render_figure12(model: Figure12Model | None = None) -> str:
    """Text rendering of Figure 12 (series as columns, log-log data)."""
    from repro.analysis.report import render_table

    model = model or Figure12Model()
    series = model.all_series()
    intervals = [p.change_interval_min for p in next(iter(series.values()))]
    headers = ["interval (min)"] + list(series)
    rows = []
    for index, interval in enumerate(intervals):
        row: List[object] = [f"{interval:g}"]
        for label in series:
            point = series[label][index]
            row.append(f"{point.mean_joules:.3g} J")
        rows.append(row)
    return render_table(
        headers, rows,
        title="Figure 12 - one-year energy vs rate of peripheral change",
    )


__all__ = [
    "Figure12Model",
    "EnergyPoint",
    "identification_energy_samples",
    "transaction_energy_joules",
    "render_figure12",
    "DEFAULT_CHANGE_INTERVALS_MIN",
    "SAMPLE_PERIOD_S",
]
