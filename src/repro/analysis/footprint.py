"""Table 2: memory footprint of the µPnP software stack.

Thin harness over :mod:`repro.mcu.footprint`; see that module for the
structural model and its calibration.
"""

from __future__ import annotations

from typing import Optional

from repro.mcu.footprint import DEFAULT_FOOTPRINT, FootprintModel

#: Paper's Table 2: component -> (flash bytes, RAM bytes).
PAPER_TABLE2 = {
    "Peripheral Controller": (2243, 465),
    "µPnP Virtual Machine": (7028, 450),
    "ADC Native Library": (2034, 268),
    "UART Native Library": (466, 15),
    "I2C Native Library": (436, 18),
    "µPnP Network Stack": (2024, 302),
    "Total": (14231, 1518),
}


def render_table2(model: Optional[FootprintModel] = None) -> str:
    model = model or DEFAULT_FOOTPRINT
    lines = [model.render_table(), "", "paper Table 2:"]
    for name, (flash, ram) in PAPER_TABLE2.items():
        lines.append(f"  {name:28s} {flash:>6d} B flash  {ram:>5d} B RAM")
    return "\n".join(lines)


__all__ = ["render_table2", "PAPER_TABLE2"]
