"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Fixed-width text table (right-aligned numerics, left-aligned text)."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        )

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


__all__ = ["render_table"]
