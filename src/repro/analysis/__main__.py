"""Command-line entry point: regenerate every table/figure in one run.

    python -m repro.analysis [--fast]

Prints the paper-style renderings of §6.1, Figure 12, Table 2, Table 3,
§6.2, Table 4, plus the ablation and multi-hop extension studies.
``--fast`` trims trial counts for a quick look.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the uPnP paper's evaluation results.",
    )
    parser.add_argument("--fast", action="store_true",
                        help="fewer trials (quick smoke run)")
    parser.add_argument("--skip-extensions", action="store_true",
                        help="only the paper's own tables/figures")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also run the traced-read scenario and write "
                             "its Perfetto JSON (see python -m repro.obs)")
    args = parser.parse_args(argv)

    from repro.analysis.drivers import render_table3
    from repro.analysis.energy import Figure12Model, render_figure12
    from repro.analysis.footprint import render_table2
    from repro.analysis.identification import render_study, run_study
    from repro.analysis.network import render_table4, run_table4
    from repro.analysis.vmperf import measure, render_report

    repeats = 2 if args.fast else 5
    trials = 3 if args.fast else 10
    vm_repeats = 50 if args.fast else 500

    sections = [
        render_study(run_study(repeats=repeats)),
        render_figure12(Figure12Model(
            identification_trials=8 if args.fast else 25)),
        render_table2(),
        render_table3(),
        render_report(measure(repeats=vm_repeats)),
        render_table4(run_table4(trials=trials)),
    ]
    if not args.skip_extensions:
        from repro.analysis.ablation import render_ablations
        from repro.analysis.multihop import render_multihop_study

        sections.append(render_ablations())
        sections.append(render_multihop_study())

    print(("\n\n" + "-" * 72 + "\n\n").join(sections))
    if args.trace:
        from repro.obs.export import write_trace
        from repro.obs.smoke import traced_read

        document, info = traced_read()
        try:
            write_trace(args.trace, document)
        except OSError as exc:
            print(f"cannot write {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote traced read (layers: "
              f"{', '.join(sorted(info['layers']))}) to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
