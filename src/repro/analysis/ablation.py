"""Ablation studies for the design choices DESIGN.md calls out.

Three studies, each isolating one reconstruction decision:

1. **Ratio-metric decoding** (DESIGN.md §4.1): decode against a measured
   calibration pulse vs. against the nominal reference.  Without the
   calibration pulse the ±5 % board-capacitor tolerance lands pulses
   whole bins away and identification collapses.
2. **Resistor tolerance budget**: identification failure rate as the
   peripheral resistor tolerance grows past the guard band — why the
   design point uses 0.5 % parts on a ~2.4 % (E96) bin grid.
3. **Bytecode encoding features** (DESIGN.md §4.4): contribution of the
   compact register forms, short jumps and immediate-index loads to the
   Table 3 image sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.dsl.compiler import CompilerOptions, compile_source
from repro.drivers.catalog import CATALOG, TABLE3_DRIVERS
from repro.hw.components import Capacitor, Resistor
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import (
    CodecParams,
    DEFAULT_CODEC,
    IdentificationError,
    PulseDecoder,
)


# --------------------------------------------------------------- codec studies
@dataclass(frozen=True)
class DecodeTrialResult:
    """Failure statistics of one Monte-Carlo decoding configuration."""

    trials: int
    wrong_id: int        # decoded without error but to the wrong id
    rejected: int        # guard band violated (detected failure)

    @property
    def failure_rate(self) -> float:
        return (self.wrong_id + self.rejected) / self.trials

    @property
    def silent_failure_rate(self) -> float:
        return self.wrong_id / self.trials


def decode_monte_carlo(
    *,
    params: CodecParams = DEFAULT_CODEC,
    ratiometric: bool = True,
    trials: int = 300,
    seed: int = 21,
) -> DecodeTrialResult:
    """Sample manufacture + decode *trials* times.

    ``ratiometric=False`` models a naive design without the on-board
    calibration pulse: the decoder divides by the *nominal* reference
    pulse, so capacitor tolerance and multivibrator-constant error leak
    into the measurement.
    """
    rng = random.Random(seed)
    decoder = PulseDecoder(params)
    wrong = rejected = 0
    nominal_reference = params.nominal_pulse_seconds(0)
    for _ in range(trials):
        device = DeviceId(rng.getrandbits(32))
        capacitor = Capacitor.manufacture(
            params.capacitor_farads, params.capacitor_tolerance, rng
        )
        if ratiometric:
            reference_part = Resistor.manufacture(
                params.base_resistance_ohms,
                params.reference_resistor_tolerance, rng,
            )
            reference = (
                params.multivibrator_k
                * reference_part.actual_ohms
                * capacitor.actual_farads
            )
        else:
            reference = nominal_reference
        pulses = []
        for byte in device.to_bytes():
            part = Resistor.manufacture(
                params.resistance_for_byte(byte),
                params.peripheral_resistor_tolerance, rng,
            )
            jitter = 1 + rng.uniform(-params.trigger_jitter_rel,
                                     params.trigger_jitter_rel)
            pulses.append(
                params.multivibrator_k * part.actual_ohms
                * capacitor.actual_farads * jitter
            )
        try:
            decoded = decoder.decode_id(pulses, [reference] * 4)
        except IdentificationError:
            rejected += 1
            continue
        if decoded != device:
            wrong += 1
    return DecodeTrialResult(trials, wrong, rejected)


def tolerance_sweep(
    tolerances: Sequence[float] = (0.001, 0.0025, 0.005, 0.01, 0.02, 0.05),
    *,
    trials: int = 200,
    seed: int = 22,
) -> List[Tuple[float, DecodeTrialResult]]:
    """Failure rate vs. peripheral resistor tolerance (ratio-metric)."""
    results = []
    for tolerance in tolerances:
        params = replace(DEFAULT_CODEC, peripheral_resistor_tolerance=tolerance)
        results.append(
            (tolerance, decode_monte_carlo(params=params, trials=trials,
                                           seed=seed))
        )
    return results


# ----------------------------------------------------------- encoding ablation
#: Named option sets for the encoding ablation, cumulative removals.
ENCODING_VARIANTS: Dict[str, CompilerOptions] = {
    "full": CompilerOptions(),
    "no compact registers": CompilerOptions(compact_registers=False),
    "no short jumps": CompilerOptions(short_jumps=False),
    "no immediate index": CompilerOptions(immediate_index=False),
    "plain encoding": CompilerOptions(False, False, False),
}


def encoding_ablation(
    keys: Sequence[str] = TABLE3_DRIVERS,
) -> Dict[str, Dict[str, int]]:
    """Driver image sizes per encoding variant: variant -> driver -> bytes."""
    out: Dict[str, Dict[str, int]] = {}
    for name, options in ENCODING_VARIANTS.items():
        sizes = {}
        for key in keys:
            spec = CATALOG[key]
            image = compile_source(spec.dsl_source(), spec.device_id.value,
                                   options)
            sizes[key] = image.image_size
        out[name] = sizes
    return out


def render_ablations() -> str:
    from repro.analysis.report import render_table

    sections = []

    ratio = decode_monte_carlo(ratiometric=True)
    naive = decode_monte_carlo(ratiometric=False)
    sections.append(render_table(
        ["decoder", "failure rate", "silent wrong-id rate"],
        [
            ["ratio-metric (calibration pulse)",
             f"{ratio.failure_rate:.1%}", f"{ratio.silent_failure_rate:.1%}"],
            ["naive (nominal reference)",
             f"{naive.failure_rate:.1%}", f"{naive.silent_failure_rate:.1%}"],
        ],
        title="Ablation 1 - ratio-metric decoding vs +/-5% capacitor tolerance",
    ))

    sweep_rows = [
        [f"{tolerance:.2%}", f"{result.failure_rate:.1%}",
         f"{result.silent_failure_rate:.1%}"]
        for tolerance, result in tolerance_sweep()
    ]
    sections.append(render_table(
        ["resistor tolerance", "failure rate", "silent wrong-id rate"],
        sweep_rows,
        title="Ablation 2 - identification vs peripheral resistor tolerance",
    ))

    ablation = encoding_ablation()
    headers = ["variant"] + list(TABLE3_DRIVERS) + ["total"]
    rows = []
    for name, sizes in ablation.items():
        rows.append([name] + [sizes[k] for k in TABLE3_DRIVERS]
                    + [sum(sizes.values())])
    sections.append(render_table(
        headers, rows,
        title="Ablation 3 - bytecode encoding features (image bytes)",
    ))
    return "\n\n".join(sections)


__all__ = [
    "DecodeTrialResult",
    "decode_monte_carlo",
    "tolerance_sweep",
    "ENCODING_VARIANTS",
    "encoding_ablation",
    "render_ablations",
]
