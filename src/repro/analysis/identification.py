"""§6.1 hardware evaluation: identification duration and energy.

The paper reports that one identification process takes 220–300 ms and
consumes between 2.48 mJ and 6.756 mJ.  This harness measures the same
quantities over the actual prototype peripheral boards (catalogue
device ids) on a fully-populated and a partially-populated control
board.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.drivers.catalog import CATALOG, make_peripheral_board
from repro.hw.control_board import ControlBoard
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC
from repro.sim.stats import Summary, summarize


@dataclass(frozen=True)
class IdentificationStudy:
    """Duration/energy statistics over peripheral combinations."""

    duration_s: Summary
    energy_j: Summary
    per_combo: Dict[Tuple[str, ...], Tuple[float, float]]
    decode_failures: int


def run_study(
    *,
    repeats: int = 5,
    seed: int = 11,
    codec: CodecParams = DEFAULT_CODEC,
    channels: int = 3,
) -> IdentificationStudy:
    """Identify every 1..3-combination of catalogue peripherals.

    Each combination is measured *repeats* times with freshly
    manufactured boards (new resistor/capacitor tolerance draws and
    trigger jitter), mirroring repeated physical plug-in events.
    """
    rng = random.Random(seed)
    keys = sorted(CATALOG)
    durations: List[float] = []
    energies: List[float] = []
    per_combo: Dict[Tuple[str, ...], Tuple[float, float]] = {}
    failures = 0
    for size in (1, 2, 3):
        for combo in combinations(keys, size):
            combo_durations = []
            combo_energies = []
            for _ in range(repeats):
                board = ControlBoard(channels, params=codec, rng=rng)
                expected = set()
                for key in combo:
                    peripheral = make_peripheral_board(key, rng=rng, codec=codec)
                    board.connect(peripheral)
                    expected.add(peripheral.device_id)
                report = board.run_identification()
                identified = set(report.identified().values())
                if identified != expected:
                    failures += 1
                combo_durations.append(report.total_seconds)
                combo_energies.append(report.energy_joules)
            durations.extend(combo_durations)
            energies.extend(combo_energies)
            per_combo[combo] = (
                sum(combo_durations) / len(combo_durations),
                sum(combo_energies) / len(combo_energies),
            )
    return IdentificationStudy(
        duration_s=summarize(durations),
        energy_j=summarize(energies),
        per_combo=per_combo,
        decode_failures=failures,
    )


def render_study(study: IdentificationStudy | None = None) -> str:
    from repro.analysis.report import render_table

    study = study or run_study()
    rows = [
        ["identification time", f"{study.duration_s.minimum * 1e3:.1f} ms",
         f"{study.duration_s.maximum * 1e3:.1f} ms", "220-300 ms"],
        ["identification energy", f"{study.energy_j.minimum * 1e3:.2f} mJ",
         f"{study.energy_j.maximum * 1e3:.2f} mJ", "2.48-6.756 mJ"],
        ["decode failures", str(study.decode_failures), "", "0"],
    ]
    return render_table(
        ["metric", "min (measured)", "max (measured)", "paper"],
        rows,
        title="Section 6.1 - hardware identification",
    )


__all__ = ["IdentificationStudy", "run_study", "render_study"]
