"""ASCII chart rendering for figure reproduction in terminal output.

The paper's Figure 12 is a log-log line plot; the benchmark harness
prints the same series as both a table and an ASCII chart so the shape
(flat USB line, linearly falling µPnP lines, divergence at the floor)
is visible directly in the bench log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Plot markers, assigned to series in order.
MARKERS = "*o+x#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log-scale axis requires positive values")
        return math.log10(value)
    return value


def _ticks(lo: float, hi: float, log: bool, count: int) -> List[float]:
    if log:
        lo_exp = math.floor(lo)
        hi_exp = math.ceil(hi)
        step = max(1, round((hi_exp - lo_exp) / max(1, count - 1)))
        return [float(e) for e in range(int(lo_exp), int(hi_exp) + 1, step)]
    if hi == lo:
        return [lo]
    step = (hi - lo) / max(1, count - 1)
    return [lo + i * step for i in range(count)]


def _format_tick(value: float, log: bool) -> str:
    if log:
        return f"1e{int(value):+d}" if value != 0 else "1"
    return f"{value:g}"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render *series* (label -> [(x, y), ...]) as an ASCII chart."""
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    xs = [_transform(x, log_x) for pts in series.values() for x, _ in pts]
    ys = [_transform(y, log_y) for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend: List[str] = []
    for index, (label, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {label}")
        transformed = sorted(
            (_transform(x, log_x), _transform(y, log_y)) for x, y in points
        )
        # Linear interpolation between consecutive points for line feel.
        for (x0, y0), (x1, y1) in zip(transformed, transformed[1:]):
            steps = max(
                2, round((x1 - x0) / (x_hi - x_lo) * (width - 1)) + 1
            )
            for step in range(steps):
                t = step / (steps - 1)
                place(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, marker)
        for x, y in transformed:
            place(x, y, marker)

    margin = 10
    lines: List[str] = []
    if title:
        lines.append(" " * margin + title)
    y_ticks = {
        height - 1 - round((t - y_lo) / (y_hi - y_lo) * (height - 1)):
            _format_tick(t, log_y)
        for t in _ticks(y_lo, y_hi, log_y, 5)
        if y_lo <= t <= y_hi
    }
    for row in range(height):
        label = y_ticks.get(row, "")
        lines.append(f"{label:>{margin - 2}} |" + "".join(grid[row]))
    lines.append(" " * (margin - 2) + "+" + "-" * width)
    x_tick_line = [" "] * (width + margin + 8)  # room for the last label
    for t in _ticks(x_lo, x_hi, log_x, 5):
        if not x_lo <= t <= x_hi:
            continue
        col = margin + round((t - x_lo) / (x_hi - x_lo) * (width - 1))
        text = _format_tick(t, log_x)
        for offset, ch in enumerate(text):
            pos = col + offset
            if pos < len(x_tick_line):
                x_tick_line[pos] = ch
    lines.append("".join(x_tick_line).rstrip())
    if x_label:
        lines.append(" " * margin + x_label)
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def figure12_ascii(model=None) -> str:
    """Figure 12 as an ASCII log-log chart."""
    from repro.analysis.energy import Figure12Model

    model = model or Figure12Model()
    series = {
        label: [(p.change_interval_min, p.mean_joules) for p in points]
        for label, points in model.all_series().items()
    }
    return ascii_plot(
        series,
        title="Figure 12: 1-year energy vs rate of peripheral change",
        x_label="change interval (minutes), log",
        y_label="joules/year, log",
    )


__all__ = ["ascii_plot", "figure12_ascii", "MARKERS"]
