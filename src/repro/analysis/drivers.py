"""Table 3: development effort and memory footprint of device drivers.

Compiles the shipped µPnP DSL drivers, counts SLoC on both the DSL and
native C sources, and models native compiled sizes (see
:mod:`repro.drivers.native_model`).  The paper's headline: µPnP drivers
average ~52% fewer source lines and a ~94% smaller footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.drivers.catalog import CATALOG, TABLE3_DRIVERS, DriverSpec

#: Paper's Table 3, for side-by-side comparison in reports.
PAPER_TABLE3 = {
    "tmp36": (15, 30, 64, 2956),
    "hih4030": (19, 55, 65, 3304),
    "id20la": (43, 150, 89, 592),
    "bmp180": (122, 234, 193, 652),
}


@dataclass(frozen=True)
class DriverComparison:
    """One Table 3 row: µPnP DSL vs native C."""

    key: str
    name: str
    dsl_sloc: int
    dsl_bytes: int
    native_sloc: Optional[int]
    native_bytes: Optional[int]

    @property
    def sloc_saving(self) -> Optional[float]:
        if not self.native_sloc:
            return None
        return 1.0 - self.dsl_sloc / self.native_sloc

    @property
    def bytes_saving(self) -> Optional[float]:
        if not self.native_bytes:
            return None
        return 1.0 - self.dsl_bytes / self.native_bytes


def compare_driver(key: str) -> DriverComparison:
    spec: DriverSpec = CATALOG[key]
    image = spec.compile()
    estimate = spec.native_estimate()
    return DriverComparison(
        key=key,
        name=spec.name,
        dsl_sloc=spec.dsl_sloc(),
        dsl_bytes=image.image_size,
        native_sloc=spec.c_sloc(),
        native_bytes=None if estimate is None else estimate.flash_bytes,
    )


def table3(keys: Sequence[str] = TABLE3_DRIVERS) -> List[DriverComparison]:
    return [compare_driver(key) for key in keys]


@dataclass(frozen=True)
class Table3Summary:
    rows: List[DriverComparison]

    @property
    def average_sloc_saving(self) -> float:
        savings = [r.sloc_saving for r in self.rows if r.sloc_saving is not None]
        return sum(savings) / len(savings)

    @property
    def average_bytes_saving(self) -> float:
        """1 - (avg DSL bytes / avg native bytes), the paper's framing."""
        dsl = [r.dsl_bytes for r in self.rows if r.native_bytes]
        native = [r.native_bytes for r in self.rows if r.native_bytes]
        return 1.0 - (sum(dsl) / len(dsl)) / (sum(native) / len(native))


def summarize_table3(keys: Sequence[str] = TABLE3_DRIVERS) -> Table3Summary:
    return Table3Summary(table3(keys))


def render_table3(keys: Sequence[str] = TABLE3_DRIVERS) -> str:
    from repro.analysis.report import render_table

    summary = summarize_table3(keys)
    rows = []
    for row in summary.rows:
        paper = PAPER_TABLE3.get(row.key)
        rows.append([
            row.name,
            row.dsl_sloc,
            row.dsl_bytes,
            row.native_sloc or "-",
            row.native_bytes or "-",
            f"{paper[0]}/{paper[1]}" if paper else "-",
            f"{paper[2]}/{paper[3]}" if paper else "-",
        ])
    rows.append([
        "Average",
        round(sum(r.dsl_sloc for r in summary.rows) / len(summary.rows)),
        round(sum(r.dsl_bytes for r in summary.rows) / len(summary.rows)),
        round(sum(r.native_sloc or 0 for r in summary.rows) / len(summary.rows)),
        round(sum(r.native_bytes or 0 for r in summary.rows) / len(summary.rows)),
        "50/117",
        "103/1876",
    ])
    table = render_table(
        ["Driver", "DSL SLoC", "DSL bytes", "C SLoC", "C bytes",
         "paper DSL", "paper C"],
        rows,
        title="Table 3 - driver development effort and footprint",
    )
    return (
        f"{table}\n"
        f"average SLoC saving: {summary.average_sloc_saving:.0%} (paper: 52%)\n"
        f"average footprint saving: {summary.average_bytes_saving:.0%} (paper: 94%)"
    )


__all__ = [
    "DriverComparison",
    "Table3Summary",
    "PAPER_TABLE3",
    "compare_driver",
    "table3",
    "summarize_table3",
    "render_table3",
]
