"""Experiment harnesses regenerating every table and figure of the paper,
plus ablations and the §9 future-work extension studies."""

from repro.analysis.ablation import (
    decode_monte_carlo,
    encoding_ablation,
    render_ablations,
    tolerance_sweep,
)
from repro.analysis.multihop import (
    latency_vs_hops,
    loss_sensitivity,
    render_multihop_study,
    transmissions_vs_subscribers,
)

from repro.analysis.drivers import render_table3, summarize_table3, table3
from repro.analysis.energy import Figure12Model, render_figure12
from repro.analysis.footprint import PAPER_TABLE2, render_table2
from repro.analysis.identification import render_study, run_study
from repro.analysis.network import render_table4, run_table4
from repro.analysis.plot import ascii_plot, figure12_ascii
from repro.analysis.report import render_table
from repro.analysis.vmperf import measure, render_report, router_scaling_series

__all__ = [
    "decode_monte_carlo",
    "encoding_ablation",
    "render_ablations",
    "tolerance_sweep",
    "latency_vs_hops",
    "loss_sensitivity",
    "render_multihop_study",
    "transmissions_vs_subscribers",
    "render_table3",
    "summarize_table3",
    "table3",
    "Figure12Model",
    "render_figure12",
    "PAPER_TABLE2",
    "render_table2",
    "render_study",
    "run_study",
    "render_table4",
    "run_table4",
    "render_table",
    "ascii_plot",
    "figure12_ascii",
    "measure",
    "render_report",
    "router_scaling_series",
]
