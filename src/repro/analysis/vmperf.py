"""§6.2 software stack performance: VM and event-router measurements.

Mirrors the paper's method: "We executed each bytecode instruction 500
times" — each opcode is measured *differentially* by executing a real
code snippet through the VM and subtracting the snippet's scaffolding,
so the numbers come out of actual interpretation, not out of reading
the cost table.  The event router's per-event dispatch cost and its
linear scaling are measured by draining real deliveries on the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl.bytecode import (
    DriverImage,
    HandlerDef,
    HANDLER_KIND_EVENT,
    Instruction,
    Op,
    SlotDef,
)
from repro.dsl.types import INT32, UINT8
from repro.sim.kernel import Simulator
from repro.vm.cost import DEFAULT_COST, VmCostProfile
from repro.vm.machine import DriverInstance, VirtualMachine
from repro.vm.router import CallbackDelivery, EventRouter

#: The paper executes each instruction this many times.
REPEATS = 500


def _image_for(code: bytes, n_params: int = 1) -> DriverImage:
    """A minimal driver image whose single handler is *code*."""
    return DriverImage(
        device_id=0,
        slots=tuple([SlotDef(INT32)] * 8) + (SlotDef(UINT8, 8),),
        imports=(),
        handlers=(
            HandlerDef(HANDLER_KIND_EVENT, 0, 0, n_params),
            # init/destroy presence is a checker rule, not a VM rule, so
            # a synthetic measurement image only needs its subject.
        ),
        code=code,
    )


def _encode(*instructions: Tuple[Op, Tuple[int, ...]]) -> bytes:
    out = bytearray()
    for op, args in instructions:
        out += Instruction(len(out), op, args).encode()
    return bytes(out)


def _i(op: Op, *args: int) -> Tuple[Op, Tuple[int, ...]]:
    return (op, tuple(args))


#: For each opcode: (scaffolding before it, its own encoding).
#: The scaffold is measured separately and subtracted.
_SNIPPETS: Dict[Op, Tuple[Tuple, Tuple]] = {
    Op.NOP: ((), _i(Op.NOP)),
    Op.PUSH0: ((), _i(Op.PUSH0)),
    Op.PUSH1: ((), _i(Op.PUSH1)),
    Op.PUSH8: ((), _i(Op.PUSH8, 5)),
    Op.PUSH16: ((), _i(Op.PUSH16, 300)),
    Op.PUSH32: ((), _i(Op.PUSH32, 70000)),
    Op.DUP: ((_i(Op.PUSH1),), _i(Op.DUP)),
    Op.DROP: ((_i(Op.PUSH1),), _i(Op.DROP)),
    Op.LDG: ((), _i(Op.LDG, 0)),
    Op.STG: ((_i(Op.PUSH1),), _i(Op.STG, 0)),
    Op.LDE: ((_i(Op.PUSH0),), _i(Op.LDE, 8)),
    Op.STE: ((_i(Op.PUSH0), _i(Op.PUSH1)), _i(Op.STE, 8)),
    Op.LDP: ((), _i(Op.LDP, 0)),
    Op.INCG: ((), _i(Op.INCG, 0)),
    Op.DECG: ((), _i(Op.DECG, 0)),
    Op.LDEI: ((), _i(Op.LDEI, 8, 0)),
    Op.LDG0: ((), _i(Op.LDG0)),
    Op.LDG1: ((), _i(Op.LDG1)),
    Op.LDG2: ((), _i(Op.LDG2)),
    Op.LDG3: ((), _i(Op.LDG3)),
    Op.LDG4: ((), _i(Op.LDG4)),
    Op.LDG5: ((), _i(Op.LDG5)),
    Op.LDG6: ((), _i(Op.LDG6)),
    Op.LDG7: ((), _i(Op.LDG7)),
    Op.STG0: ((_i(Op.PUSH1),), _i(Op.STG0)),
    Op.STG1: ((_i(Op.PUSH1),), _i(Op.STG1)),
    Op.STG2: ((_i(Op.PUSH1),), _i(Op.STG2)),
    Op.STG3: ((_i(Op.PUSH1),), _i(Op.STG3)),
    Op.STG4: ((_i(Op.PUSH1),), _i(Op.STG4)),
    Op.STG5: ((_i(Op.PUSH1),), _i(Op.STG5)),
    Op.STG6: ((_i(Op.PUSH1),), _i(Op.STG6)),
    Op.STG7: ((_i(Op.PUSH1),), _i(Op.STG7)),
    Op.NEG: ((_i(Op.PUSH1),), _i(Op.NEG)),
    Op.BINV: ((_i(Op.PUSH1),), _i(Op.BINV)),
    Op.LNOT: ((_i(Op.PUSH1),), _i(Op.LNOT)),
    Op.JMP: ((), _i(Op.JMP, 0)),
    Op.JZ: ((_i(Op.PUSH0),), _i(Op.JZ, 0)),
    Op.JNZ: ((_i(Op.PUSH1),), _i(Op.JNZ, 0)),
    Op.JMPS: ((), _i(Op.JMPS, 0)),
    Op.JZS: ((_i(Op.PUSH0),), _i(Op.JZS, 0)),
    Op.JNZS: ((_i(Op.PUSH1),), _i(Op.JNZS, 0)),
    Op.SIG: ((), _i(Op.SIG, 0, 0, 0)),
    Op.RETV: ((_i(Op.PUSH1),), _i(Op.RETV)),
    Op.RETA: ((), _i(Op.RETA, 8)),
    Op.RET: ((), ()),  # measured as the empty-handler baseline itself
}

for _binary in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.BAND, Op.BOR,
                Op.BXOR, Op.SHL, Op.SHR, Op.EQ, Op.NE, Op.LT, Op.LE,
                Op.GT, Op.GE):
    _SNIPPETS[_binary] = ((_i(Op.PUSH8, 7), _i(Op.PUSH8, 3)), _i(_binary))


@dataclass(frozen=True)
class InstructionTiming:
    """Measured cost of one opcode."""

    op: Op
    cycles: float
    seconds: float


def _run(vm: VirtualMachine, instructions: Sequence[Tuple], repeats: int) -> float:
    """Average cycles of one handler built from *instructions*."""
    code = _encode(*instructions, _i(Op.RET))
    image = _image_for(code)
    instance = DriverInstance(image)
    total = 0
    sink = lambda *args: None  # noqa: E731 - trivial sinks
    for _ in range(repeats):
        result = vm.execute(
            instance, image.handlers[0], (5,),
            signal_sink=sink, return_sink=sink,
        )
        total += result.cycles
    return total / repeats


def measure_instructions(
    profile: VmCostProfile = DEFAULT_COST, repeats: int = REPEATS
) -> List[InstructionTiming]:
    """Differential per-opcode timing through real VM execution."""
    vm = VirtualMachine(profile)
    baseline = _run(vm, (), repeats)  # bare RET handler
    timings: List[InstructionTiming] = []
    for op in Op:
        scaffold, subject = _SNIPPETS[op]
        if op is Op.RET:
            cycles = baseline
        else:
            with_subject = _run(vm, (*scaffold, subject), repeats)
            without = _run(vm, scaffold, repeats) if scaffold else baseline
            cycles = with_subject - without
        timings.append(
            InstructionTiming(op, cycles, profile.mcu.cycles_to_seconds(cycles))
        )
    return timings


@dataclass(frozen=True)
class VmPerfReport:
    """The §6.2 numbers."""

    average_instruction_us: float
    push_us: float
    pop_us: float
    router_event_us: float
    instruction_timings: List[InstructionTiming]


def measure_router_event_us(
    events: int = 200, profile: VmCostProfile = DEFAULT_COST
) -> float:
    """Dispatch *events* empty deliveries; return mean busy µs/event."""
    sim = Simulator()
    router = EventRouter(sim, profile=profile, queue_limit=events + 1)
    for _ in range(events):
        router.post(CallbackDelivery(lambda: None, cycles=0))
    sim.run()
    return router.stats.busy_seconds / events * 1e6


def router_scaling_series(
    counts: Sequence[int] = (10, 50, 100, 200, 400),
    profile: VmCostProfile = DEFAULT_COST,
) -> List[Tuple[int, float]]:
    """(n events, total drain ms) — §6.2's 'scales linearly' claim."""
    series = []
    for count in counts:
        sim = Simulator()
        router = EventRouter(sim, profile=profile, queue_limit=count + 1)
        for _ in range(count):
            router.post(CallbackDelivery(lambda: None, cycles=0))
        sim.run()
        series.append((count, sim.now_ms))
    return series


def measure(profile: VmCostProfile = DEFAULT_COST,
            repeats: int = REPEATS) -> VmPerfReport:
    timings = measure_instructions(profile, repeats)
    return VmPerfReport(
        average_instruction_us=sum(t.seconds for t in timings) / len(timings) * 1e6,
        push_us=profile.push_seconds * 1e6,
        pop_us=profile.pop_seconds * 1e6,
        router_event_us=measure_router_event_us(profile=profile),
        instruction_timings=timings,
    )


def render_report(report: Optional[VmPerfReport] = None) -> str:
    from repro.analysis.report import render_table

    report = report or measure()
    rows = [
        ["avg bytecode instruction", f"{report.average_instruction_us:.1f} us",
         "39.7 us"],
        ["push() stack operation", f"{report.push_us:.1f} us", "11.1 us"],
        ["pop() stack operation", f"{report.pop_us:.1f} us", "8.9 us"],
        ["event router, per event", f"{report.router_event_us:.2f} us",
         "77.79 us"],
    ]
    return render_table(
        ["metric", "measured", "paper"],
        rows,
        title="Section 6.2 - VM and event router performance",
    )


__all__ = [
    "InstructionTiming",
    "VmPerfReport",
    "REPEATS",
    "measure",
    "measure_instructions",
    "measure_router_event_us",
    "router_scaling_series",
    "render_report",
]
