"""Table 4: peripheral announcement and driver installation timing.

Reproduces §6.4's setting: an uncongested one-hop network with low
packet loss; a peripheral is plugged into a µPnP Thing and the phases
of the plug-in pipeline are timed.  "All experiments were performed 10
times and averaged results are presented."

Phase boundaries come from the Thing's event log plus the client-side
arrival of the unsolicited advertisement:

* generate multicast address: ``identified`` -> ``group-generated``
* join multicast group: ``group-generated`` -> ``group-joined``
* request driver: ``driver-requested`` -> ``driver-upload-received``
* install driver: ``driver-upload-received`` -> ``driver-activated``
* advertise peripheral: ``advertised`` -> client receives it
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import CATALOG, make_peripheral_board, populate_registry
from repro.net.network import Network
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry
from repro.sim.stats import Summary, summarize

#: Paper's Table 4 rows (mean ms, std ms), for reports.
PAPER_TABLE4 = {
    "Generate Multicast Address": (2.59, 0.03),
    "Join Multicast Group": (5.44, 0.01),
    "Request driver": (53.91, 1.98),
    "Install Driver": (59.50, 9.97),
    "Advertise Peripheral": (45.37, 0.28),
    "Total time": (188.53, 10.97),
}

ROW_ORDER = (
    "Generate Multicast Address",
    "Join Multicast Group",
    "Request driver",
    "Install Driver",
    "Advertise Peripheral",
)


@dataclass(frozen=True)
class TrialTimings:
    """Per-phase durations (seconds) of one plug-in trial."""

    generate_address_s: float
    join_group_s: float
    request_driver_s: float
    install_driver_s: float
    advertise_s: float
    driver_bytes: int

    @property
    def total_s(self) -> float:
        return (
            self.generate_address_s
            + self.join_group_s
            + self.request_driver_s
            + self.install_driver_s
            + self.advertise_s
        )


def run_trial(*, seed: int, driver: str = "tmp36",
              lowpan=None, link=None) -> TrialTimings:
    """One plug-in on a fresh one-hop network; returns phase timings.

    *lowpan* / *link* override the adaptation-layer and radio models
    (used by the compression ablation).
    """
    from repro.net.link import LinkModel
    from repro.net.lowpan import DEFAULT_LOWPAN

    sim = Simulator()
    net = Network(sim, rng=RngRegistry(seed),
                  lowpan=lowpan or DEFAULT_LOWPAN,
                  link=link or LinkModel())
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)

    thing = Thing(sim, net, 0, rng=rng.fork("thing"))
    client = Client(sim, net, 1)
    manager = Manager(sim, net, 2, registry)
    # One-hop topology (§6.4): every node hears every other.
    net.connect(0, 1)
    net.connect(0, 2)
    net.connect(1, 2)
    net.build_dodag(2)

    client_arrivals: List[float] = []
    client.on_advertisement(
        lambda src, entries: client_arrivals.append(sim.now_s)
    )

    board = make_peripheral_board(driver, rng=rng.stream("mfg"))
    thing.plug(board)
    sim.run_for(ns_from_s(5.0))

    def moment(kind: str) -> float:
        events = thing.events_of(kind)
        if not events:
            raise RuntimeError(f"plug-in pipeline never reached {kind!r}")
        return events[0].time_s

    identified = moment("identified")
    generated = moment("group-generated")
    joined = moment("group-joined")
    requested = moment("driver-requested")
    upload_received = moment("driver-upload-received")
    activated = moment("driver-activated")
    advertised = moment("advertised")
    if not client_arrivals:
        raise RuntimeError("client never received the advertisement")
    driver_bytes = int(thing.events_of("driver-installed")[0].detail.split()[0])
    return TrialTimings(
        generate_address_s=generated - identified,
        join_group_s=joined - generated,
        request_driver_s=upload_received - requested,
        install_driver_s=activated - upload_received,
        advertise_s=client_arrivals[0] - advertised,
        driver_bytes=driver_bytes,
    )


@dataclass(frozen=True)
class Table4Result:
    """Aggregated phase statistics over all trials."""

    rows: Dict[str, Summary]
    driver_bytes: int
    trials: int

    def total_mean_ms(self) -> float:
        return sum(self.rows[name].mean for name in ROW_ORDER) * 1e3


def run_table4(*, trials: int = 10, driver: str = "tmp36",
               base_seed: int = 100, lowpan=None, link=None) -> Table4Result:
    """The full Table 4 experiment: *trials* independent plug-ins."""
    samples: Dict[str, List[float]] = {name: [] for name in ROW_ORDER}
    driver_bytes = 0
    for index in range(trials):
        timings = run_trial(seed=base_seed + index, driver=driver,
                            lowpan=lowpan, link=link)
        samples["Generate Multicast Address"].append(timings.generate_address_s)
        samples["Join Multicast Group"].append(timings.join_group_s)
        samples["Request driver"].append(timings.request_driver_s)
        samples["Install Driver"].append(timings.install_driver_s)
        samples["Advertise Peripheral"].append(timings.advertise_s)
        driver_bytes = timings.driver_bytes
    rows = {name: summarize(values) for name, values in samples.items()}
    return Table4Result(rows=rows, driver_bytes=driver_bytes, trials=trials)


def render_table4(result: Optional[Table4Result] = None) -> str:
    from repro.analysis.report import render_table

    result = result or run_table4()
    rows = []
    for name in ROW_ORDER:
        summary = result.rows[name]
        paper_mean, paper_std = PAPER_TABLE4[name]
        rows.append([
            name,
            f"{summary.mean * 1e3:.2f} ms",
            f"{summary.stdev * 1e3:.2f} ms",
            f"{paper_mean:.2f} ms",
            f"{paper_std:.2f} ms",
        ])
    total = result.total_mean_ms()
    paper_total = PAPER_TABLE4["Total time"]
    rows.append([
        "Total time", f"{total:.2f} ms", "",
        f"{paper_total[0]:.2f} ms", f"{paper_total[1]:.2f} ms",
    ])
    table = render_table(
        ["operation", "mean", "std", "paper mean", "paper std"],
        rows,
        title=(
            f"Table 4 - announcement + driver installation "
            f"({result.trials} trials, {result.driver_bytes}-byte driver)"
        ),
    )
    return table


__all__ = [
    "TrialTimings",
    "Table4Result",
    "PAPER_TABLE4",
    "ROW_ORDER",
    "run_trial",
    "run_table4",
    "render_table4",
]
