"""Extension study: multicast discovery in multi-hop topologies (§9).

The paper's §6.4 covers only "an uncongested one-hop network" and
leaves "multicast performance in multi-hop network topologies and
unreliable network environments ... for future work".  The network
substrate here supports both, so this harness runs that future work:

* discovery round-trip latency vs. hop distance (line topologies),
* SMRF transmission count vs. subscriber population (who pays for a
  multicast), on star-of-lines topologies,
* discovery success rate vs. per-frame loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.client import Client
from repro.core.manager import Manager
from repro.core.registry import Registry
from repro.core.thing import Thing
from repro.drivers.catalog import TMP36_ID, make_peripheral_board, populate_registry
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.sim.kernel import Simulator, ns_from_s
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class DiscoveryTrial:
    """Outcome of one discovery attempt."""

    hops: int
    found: bool
    latency_s: Optional[float]
    multicast_transmissions: int


def _build_line(hops: int, *, loss: float, seed: int):
    """root/manager(0) - client(1) hangs off root - line of relays to a
    Thing *hops* hops from the client."""
    sim = Simulator()
    net = Network(sim, link=LinkModel(loss_probability=loss),
                  rng=RngRegistry(seed))
    rng = RngRegistry(seed)
    registry = Registry()
    populate_registry(registry)
    manager = Manager(sim, net, 0, registry)
    client = Client(sim, net, 1)
    net.connect(0, 1)
    previous = 0
    thing = None
    for index in range(hops):
        node_id = 2 + index
        thing = Thing(sim, net, node_id, rng=rng.fork(f"t{node_id}"))
        net.connect(previous, node_id)
        previous = node_id
    net.build_dodag(0)
    return sim, net, client, thing, rng


def discovery_trial(hops: int, *, loss: float = 0.0, seed: int = 77,
                    timeout_s: float = 4.0) -> DiscoveryTrial:
    """Plug a TMP36 *hops* hops away and time its discovery."""
    sim, net, client, thing, rng = _build_line(hops, loss=loss, seed=seed)
    thing.plug(make_peripheral_board("tmp36", rng=rng.stream("mfg")))
    sim.run_for(ns_from_s(8.0))
    if not thing.drivers.active_channels():
        return DiscoveryTrial(hops, False, None,
                              net.stats.multicast_transmissions)

    before = net.stats.multicast_transmissions
    found: List[object] = []
    start = sim.now_s
    client.discover(TMP36_ID, lambda res: found.extend(res),
                    timeout_s=timeout_s)
    sim.run_for(ns_from_s(timeout_s + 2.0))
    latency = None
    if found:
        # Latency proxy: discovery multicast + solicited unicast reply
        # both complete before the collection timeout; report the
        # request->reply path as (timeout excluded) event-log free value.
        latency = _reply_latency(sim, client, thing, seed)
    return DiscoveryTrial(
        hops, bool(found), latency,
        net.stats.multicast_transmissions - before,
    )


def _reply_latency(sim, client, thing, seed) -> float:
    """Measured read RTT over the same path (a clean latency number)."""
    done: List[float] = []
    start = sim.now_s
    client.read(thing.address, TMP36_ID,
                lambda r: done.append(sim.now_s - start), timeout_s=10.0)
    sim.run_for(ns_from_s(12.0))
    return done[0] if done else float("nan")


def latency_vs_hops(
    hop_counts: Sequence[int] = (1, 2, 3, 4, 5),
    *, seed: int = 77,
) -> List[DiscoveryTrial]:
    return [discovery_trial(hops, seed=seed + hops) for hops in hop_counts]


def loss_sensitivity(
    losses: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    *, hops: int = 2, attempts: int = 5, seed: int = 55,
) -> List[Tuple[float, float]]:
    """(loss probability, discovery success fraction) over *attempts*."""
    out = []
    for loss in losses:
        successes = 0
        for attempt in range(attempts):
            trial = discovery_trial(hops, loss=loss,
                                    seed=seed + attempt * 101 + int(loss * 1000))
            successes += trial.found
        out.append((loss, successes / attempts))
    return out


def transmissions_vs_subscribers(
    subscriber_counts: Sequence[int] = (1, 2, 4, 8),
    *, seed: int = 33,
) -> List[Tuple[int, int]]:
    """SMRF cost of one advertisement vs. number of subscribed clients.

    Star of 2-hop arms: the root is the manager; each arm holds a client.
    The Thing hangs off the root.  Counts link transmissions for a single
    unsolicited advertisement to the all-clients group.
    """
    results = []
    for count in subscriber_counts:
        sim = Simulator()
        net = Network(sim, rng=RngRegistry(seed))
        rng = RngRegistry(seed)
        registry = Registry()
        populate_registry(registry)
        manager = Manager(sim, net, 0, registry)
        thing = Thing(sim, net, 1, rng=rng.fork("thing"))
        net.connect(0, 1)
        for index in range(count):
            relay_id = 100 + index
            client_id = 200 + index
            # Relay nodes are plain stacks: reuse Client for simplicity
            # (it binds the port but never answers discovery).
            Client(sim, net, relay_id)
            Client(sim, net, client_id)
            net.connect(0, relay_id)
            net.connect(relay_id, client_id)
        net.build_dodag(0)
        sim.run_for(ns_from_s(1.0))
        before = net.stats.multicast_transmissions
        thing.plug(make_peripheral_board("tmp36", rng=rng.stream("mfg")))
        sim.run_for(ns_from_s(5.0))
        results.append((count, net.stats.multicast_transmissions - before))
    return results


def render_multihop_study() -> str:
    from repro.analysis.report import render_table

    sections = []
    trials = latency_vs_hops()
    sections.append(render_table(
        ["hops", "discovered", "read RTT (ms)", "mcast transmissions"],
        [[t.hops, "yes" if t.found else "no",
          f"{t.latency_s * 1e3:.1f}" if t.latency_s else "-",
          t.multicast_transmissions] for t in trials],
        title="Extension - discovery vs hop distance (line topologies)",
    ))
    sections.append(render_table(
        ["frame loss", "discovery success"],
        [[f"{loss:.0%}", f"{rate:.0%}"] for loss, rate in loss_sensitivity()],
        title="Extension - discovery success vs per-frame loss (2 hops)",
    ))
    sections.append(render_table(
        ["subscribed clients", "transmissions per advertisement"],
        [[count, tx] for count, tx in transmissions_vs_subscribers()],
        title="Extension - SMRF fan-out cost (star of 2-hop arms)",
    ))
    return "\n\n".join(sections)


__all__ = [
    "DiscoveryTrial",
    "discovery_trial",
    "latency_vs_hops",
    "loss_sensitivity",
    "transmissions_vs_subscribers",
    "render_multihop_study",
]
