"""Flash/RAM footprint model of the µPnP software stack (Table 2).

We cannot compile AVR binaries in this reproduction, so component sizes
come from a *structural* model: each element's flash cost is a base
plus terms proportional to the structures our implementation actually
has (opcodes in the ISA, commands/events per native library, protocol
message types), and RAM follows the configured buffer sizes (operand
stack, router queues, identification capture buffer, 6LoWPAN buffer).
The constants are calibrated against Table 2 of the paper (DESIGN.md
§4.5), so the defaults land on the published numbers while the model
still *responds* to design changes — add an opcode and the VM grows,
enlarge the router queue and RAM grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.dsl.bytecode import Op
from repro.dsl.symbols import NATIVE_LIBS, NativeLibSpec
from repro.mcu.spec import ATMEGA128RFA1, McuSpec


@dataclass(frozen=True)
class ComponentFootprint:
    """One row of the Table 2 breakdown."""

    name: str
    flash_bytes: int
    ram_bytes: int


#: Per-library platform glue that is not proportional to the interface
#: size.  The ADC library carries fixed-point reference-voltage scaling
#: tables and band-gap calibration code, which dominates its footprint
#: (the paper's ADC library is ~4x the UART/I2C ones for this reason).
_LIB_FLASH_EXTRA: Dict[str, int] = {"adc": 1668, "uart": 54, "i2c": 0, "spi": 60}

#: Library static RAM: ADC keeps a 64-sample oversampling accumulator
#: (256 B) plus state; UART/I2C/SPI keep only line state.
_LIB_RAM: Dict[str, int] = {"adc": 268, "uart": 15, "i2c": 18, "spi": 20}


@dataclass(frozen=True)
class FootprintModel:
    """Structural footprint model with Table 2-calibrated constants."""

    mcu: McuSpec = ATMEGA128RFA1

    # --- VM parameters (must match the runtime configuration) -------------
    operand_stack_slots: int = 32        # VirtualMachine stack_limit
    router_queue_entries: int = 64       # EventRouter queue_limit
    vm_base_flash: int = 2148
    flash_per_opcode: int = 80
    vm_misc_ram: int = 2

    # --- peripheral controller --------------------------------------------
    channels: int = 3
    pc_base_flash: int = 1731
    decode_table_entries: int = 256      # log-offset bins, 2 B each
    pc_workspace_ram: int = 128
    pc_capture_buffer_ram: int = 256     # 64 pulse timestamps x 4 B
    pc_per_channel_ram: int = 21         # 4 pulses x 4 B + id + status
    pc_misc_ram: int = 18

    # --- native libraries ---------------------------------------------------
    lib_base_flash: int = 150
    flash_per_command: int = 40
    flash_per_emit: int = 20
    flash_per_error: int = 8

    # --- network stack -------------------------------------------------------
    message_types: int = 17
    net_base_flash: int = 1072
    flash_per_message_type: int = 56
    net_packet_buffer_ram: int = 127
    net_group_table_entries: int = 8     # joined groups x 16 B address
    net_misc_ram: int = 47

    # ------------------------------------------------------------ components
    def peripheral_controller(self) -> ComponentFootprint:
        flash = self.pc_base_flash + 2 * self.decode_table_entries
        ram = (
            self.pc_workspace_ram
            + self.pc_capture_buffer_ram
            + self.channels * self.pc_per_channel_ram
            + self.pc_misc_ram
        )
        return ComponentFootprint("Peripheral Controller", flash, ram)

    def virtual_machine(self) -> ComponentFootprint:
        flash = self.vm_base_flash + self.flash_per_opcode * len(Op)
        ram = (
            4 * self.operand_stack_slots
            + 5 * self.router_queue_entries
            + self.vm_misc_ram
        )
        return ComponentFootprint("µPnP Virtual Machine", flash, ram)

    def native_library(self, spec: NativeLibSpec) -> ComponentFootprint:
        flash = (
            self.lib_base_flash
            + self.flash_per_command * len(spec.commands)
            + self.flash_per_emit * len(spec.emits)
            + self.flash_per_error * len(spec.errors)
            + _LIB_FLASH_EXTRA.get(spec.name, 0)
        )
        ram = _LIB_RAM.get(spec.name, 16)
        name = f"{spec.name.upper()} Native Library"
        return ComponentFootprint(name, flash, ram)

    def network_stack(self) -> ComponentFootprint:
        flash = self.net_base_flash + self.flash_per_message_type * self.message_types
        ram = (
            self.net_packet_buffer_ram
            + 16 * self.net_group_table_entries
            + self.net_misc_ram
        )
        return ComponentFootprint("µPnP Network Stack", flash, ram)

    # -------------------------------------------------------------- summary
    def breakdown(
        self, libraries: Sequence[str] = ("adc", "uart", "i2c")
    ) -> List[ComponentFootprint]:
        """Table 2 rows, in the paper's order."""
        rows = [self.peripheral_controller(), self.virtual_machine()]
        for name in libraries:
            rows.append(self.native_library(NATIVE_LIBS[name]))
        rows.append(self.network_stack())
        return rows

    def totals(
        self, libraries: Sequence[str] = ("adc", "uart", "i2c")
    ) -> ComponentFootprint:
        rows = self.breakdown(libraries)
        return ComponentFootprint(
            "Total",
            sum(r.flash_bytes for r in rows),
            sum(r.ram_bytes for r in rows),
        )

    def render_table(
        self, libraries: Sequence[str] = ("adc", "uart", "i2c")
    ) -> str:
        """Text rendering in the style of Table 2."""
        rows = self.breakdown(libraries) + [self.totals(libraries)]
        lines = [f"{'Component':28s} {'Flash (Bytes)':>16s} {'RAM (Bytes)':>14s}"]
        for row in rows:
            flash_pct = 100.0 * self.mcu.flash_fraction(row.flash_bytes)
            ram_pct = 100.0 * self.mcu.ram_fraction(row.ram_bytes)
            lines.append(
                f"{row.name:28s} {row.flash_bytes:>8d} ({flash_pct:4.1f}%)"
                f" {row.ram_bytes:>7d} ({ram_pct:4.1f}%)"
            )
        return "\n".join(lines)


DEFAULT_FOOTPRINT = FootprintModel()

__all__ = ["FootprintModel", "ComponentFootprint", "DEFAULT_FOOTPRINT"]
