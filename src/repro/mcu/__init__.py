"""Microcontroller resource model and footprint ledger."""

from repro.mcu.footprint import (
    DEFAULT_FOOTPRINT,
    ComponentFootprint,
    FootprintModel,
)
from repro.mcu.spec import ATMEGA128RFA1, McuSpec

__all__ = [
    "DEFAULT_FOOTPRINT",
    "ComponentFootprint",
    "FootprintModel",
    "ATMEGA128RFA1",
    "McuSpec",
]
