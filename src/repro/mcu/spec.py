"""Microcontroller resource model.

The paper's evaluation platform is the ATMega128RFA1 inside a Zigduino:
a 16 MHz 8-bit AVR core with 16 KB RAM, 128 KB flash and an on-die
802.15.4 radio (§1, §6).  All timing in the reproduction derives from
cycle counts at this clock, and all memory-footprint percentages are
relative to this budget, so swapping in a different spec re-scales every
derived number consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.power import PowerDraw


@dataclass(frozen=True)
class McuSpec:
    """Static resources of a microcontroller platform."""

    name: str
    clock_hz: float
    flash_bytes: int
    ram_bytes: int
    #: CPU active at full clock.
    active_draw: PowerDraw
    #: Deep sleep with RAM retention.
    sleep_draw: PowerDraw
    #: Radio listening (RX) — dominates idle-listening budgets.
    radio_rx_draw: PowerDraw
    #: Radio transmitting at nominal output power.
    radio_tx_draw: PowerDraw

    def cycles_to_seconds(self, cycles: float) -> float:
        """Wall time of *cycles* CPU cycles."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        """CPU cycles elapsing in *seconds* (rounded)."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        return round(seconds * self.clock_hz)

    def flash_fraction(self, size_bytes: int) -> float:
        """Fraction of flash used by *size_bytes*."""
        return size_bytes / self.flash_bytes

    def ram_fraction(self, size_bytes: int) -> float:
        """Fraction of RAM used by *size_bytes*."""
        return size_bytes / self.ram_bytes


#: The paper's evaluation platform (§6; datasheet values [6]).
ATMEGA128RFA1 = McuSpec(
    name="ATMega128RFA1",
    clock_hz=16_000_000.0,
    flash_bytes=128 * 1024,
    ram_bytes=16 * 1024,
    active_draw=PowerDraw(current_a=4.1e-3, voltage_v=3.3),
    sleep_draw=PowerDraw(current_a=250e-9, voltage_v=3.3),
    radio_rx_draw=PowerDraw(current_a=12.5e-3, voltage_v=3.3),
    radio_tx_draw=PowerDraw(current_a=14.5e-3, voltage_v=3.3),
)


__all__ = ["McuSpec", "ATMEGA128RFA1"]
