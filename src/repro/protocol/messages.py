"""The µPnP interaction protocol messages (§5.2, §5.3, Figures 10/11).

All messages travel as UDP payloads to port 6030.  Every message starts
with a 1-byte type and a 16-bit sequence number "used to associate
request and reply messages"; the body layout is message-specific and
deliberately compact.  The seventeen message types follow the paper's
numbering exactly.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Tuple, Type

from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.protocol.tlv import Tlv, decode_tlvs, encode_tlvs


class ProtocolError(ValueError):
    """Malformed µPnP message."""


class MsgType(enum.IntEnum):
    """Paper message numbering ((1)..(17) in Figures 10 and 11)."""

    UNSOLICITED_ADVERTISEMENT = 1
    PERIPHERAL_DISCOVERY = 2
    SOLICITED_ADVERTISEMENT = 3
    DRIVER_INSTALL_REQUEST = 4
    DRIVER_UPLOAD = 5
    DRIVER_DISCOVERY = 6
    DRIVER_ADVERTISEMENT = 7
    DRIVER_REMOVAL_REQUEST = 8
    DRIVER_REMOVAL_ACK = 9
    READ_REQUEST = 10
    DATA = 11
    STREAM_REQUEST = 12
    STREAM_ESTABLISHED = 13
    STREAM_DATA = 14
    STREAM_CLOSED = 15
    WRITE_REQUEST = 16
    WRITE_ACK = 17


_HEADER = struct.Struct(">BH")  # type, sequence
# Pre-compiled codecs for the fixed-width fields below; parsing the
# format string per call is measurable on beacon/stream hot paths.
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")


def _pack_id(device_id: DeviceId | int) -> bytes:
    return _U32.pack(int(getattr(device_id, "value", device_id)))


def _unpack_id(data: bytes, offset: int) -> Tuple[DeviceId, int]:
    if offset + 4 > len(data):
        raise ProtocolError("truncated device id")
    return DeviceId(_U32.unpack_from(data, offset)[0]), offset + 4


@dataclass(frozen=True)
class Message:
    """Base: every message has a type and a sequence number."""

    seq: int

    TYPE: ClassVar[MsgType]

    def __post_init__(self) -> None:
        if not 0 <= self.seq <= 0xFFFF:
            raise ProtocolError(f"sequence number out of range: {self.seq}")

    # -------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        return _HEADER.pack(self.TYPE.value, self.seq) + self._body()

    def _body(self) -> bytes:
        return b""

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        if body:
            raise ProtocolError(f"{cls.__name__} carries no body")
        return cls(seq)


@dataclass(frozen=True)
class PeripheralEntry:
    """One advertised peripheral: id + TLV metadata (§5.2.1)."""

    device_id: DeviceId
    tlvs: Tuple[Tlv, ...] = ()

    def encode(self) -> bytes:
        return _pack_id(self.device_id) + encode_tlvs(list(self.tlvs))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["PeripheralEntry", int]:
        device_id, offset = _unpack_id(data, offset)
        tlvs, offset = decode_tlvs(data, offset)
        return cls(device_id, tuple(tlvs)), offset


@dataclass(frozen=True)
class _AdvertisementBase(Message):
    """Shared layout of solicited/unsolicited advertisements."""

    peripherals: Tuple[PeripheralEntry, ...] = ()

    def _body(self) -> bytes:
        if len(self.peripherals) > 0xFF:
            raise ProtocolError("too many peripherals in advertisement")
        out = bytearray([len(self.peripherals)])
        for entry in self.peripherals:
            out += entry.encode()
        return bytes(out)

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        if not body:
            raise ProtocolError("advertisement missing count")
        count = body[0]
        offset = 1
        entries: List[PeripheralEntry] = []
        for _ in range(count):
            entry, offset = PeripheralEntry.decode(body, offset)
            entries.append(entry)
        if offset != len(body):
            raise ProtocolError("trailing bytes in advertisement")
        return cls(seq, tuple(entries))

    def device_ids(self) -> List[DeviceId]:
        return [entry.device_id for entry in self.peripherals]


@dataclass(frozen=True)
class UnsolicitedAdvertisement(_AdvertisementBase):
    """(1) Sent to the all-clients group on every peripheral change."""

    TYPE = MsgType.UNSOLICITED_ADVERTISEMENT


@dataclass(frozen=True)
class SolicitedAdvertisement(_AdvertisementBase):
    """(3) Unicast response to a peripheral discovery."""

    TYPE = MsgType.SOLICITED_ADVERTISEMENT


@dataclass(frozen=True)
class PeripheralDiscovery(Message):
    """(2) Client -> multicast group of Things with the wanted peripheral."""

    TYPE = MsgType.PERIPHERAL_DISCOVERY
    device_id: DeviceId = DeviceId(0)
    tlvs: Tuple[Tlv, ...] = ()

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + encode_tlvs(list(self.tlvs))

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        tlvs, offset = decode_tlvs(body, offset)
        if offset != len(body):
            raise ProtocolError("trailing bytes in discovery")
        return cls(seq, device_id, tuple(tlvs))


@dataclass(frozen=True)
class _IdOnlyMessage(Message):
    """Shared layout: body is exactly one device id."""

    device_id: DeviceId = DeviceId(0)

    def _body(self) -> bytes:
        return _pack_id(self.device_id)

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset != len(body):
            raise ProtocolError(f"trailing bytes in {cls.__name__}")
        return cls(seq, device_id)


@dataclass(frozen=True)
class DriverInstallRequest(_IdOnlyMessage):
    """(4) Thing -> manager anycast: need a driver for this peripheral."""

    TYPE = MsgType.DRIVER_INSTALL_REQUEST


@dataclass(frozen=True)
class DriverUpload(Message):
    """(5) Manager -> Thing: the compiled driver image."""

    TYPE = MsgType.DRIVER_UPLOAD
    device_id: DeviceId = DeviceId(0)
    image: bytes = b""

    def _body(self) -> bytes:
        if len(self.image) > 0xFFFF:
            raise ProtocolError("driver image too large")
        return _pack_id(self.device_id) + _U16.pack(len(self.image)) + self.image

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 2 > len(body):
            raise ProtocolError("truncated driver length")
        (length,) = _U16.unpack_from(body, offset)
        offset += 2
        image = body[offset : offset + length]
        if len(image) != length or offset + length != len(body):
            raise ProtocolError("truncated driver image")
        return cls(seq, device_id, bytes(image))


@dataclass(frozen=True)
class DriverDiscovery(Message):
    """(6) Manager -> Thing: which drivers do you have installed?"""

    TYPE = MsgType.DRIVER_DISCOVERY


@dataclass(frozen=True)
class DriverAdvertisement(Message):
    """(7) Thing -> manager: the set of locally installed drivers."""

    TYPE = MsgType.DRIVER_ADVERTISEMENT
    device_ids: Tuple[DeviceId, ...] = ()

    def _body(self) -> bytes:
        if len(self.device_ids) > 0xFF:
            raise ProtocolError("too many drivers")
        out = bytearray([len(self.device_ids)])
        for device_id in self.device_ids:
            out += _pack_id(device_id)
        return bytes(out)

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        if not body:
            raise ProtocolError("driver advertisement missing count")
        count = body[0]
        offset = 1
        ids: List[DeviceId] = []
        for _ in range(count):
            device_id, offset = _unpack_id(body, offset)
            ids.append(device_id)
        if offset != len(body):
            raise ProtocolError("trailing bytes in driver advertisement")
        return cls(seq, tuple(ids))


@dataclass(frozen=True)
class DriverRemovalRequest(_IdOnlyMessage):
    """(8) Manager -> Thing: remove the driver for this peripheral."""

    TYPE = MsgType.DRIVER_REMOVAL_REQUEST


@dataclass(frozen=True)
class DriverRemovalAck(Message):
    """(9) Thing -> manager: removal done (status 0) or failed."""

    TYPE = MsgType.DRIVER_REMOVAL_ACK
    device_id: DeviceId = DeviceId(0)
    status: int = 0

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + bytes([self.status & 0xFF])

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 1 != len(body):
            raise ProtocolError("bad removal ack body")
        return cls(seq, device_id, body[offset])


@dataclass(frozen=True)
class ReadRequest(_IdOnlyMessage):
    """(10) Client -> Thing unicast: read one value."""

    TYPE = MsgType.READ_REQUEST


@dataclass(frozen=True)
class _DataMessage(Message):
    """Shared layout for (11) data and (14) stream data."""

    device_id: DeviceId = DeviceId(0)
    payload: bytes = b""
    is_array: bool = False

    def _body(self) -> bytes:
        if len(self.payload) > 0xFF:
            raise ProtocolError("data payload too large")
        flags = 0x01 if self.is_array else 0x00
        return (
            _pack_id(self.device_id)
            + bytes([flags, len(self.payload)])
            + self.payload
        )

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 2 > len(body):
            raise ProtocolError("truncated data header")
        flags = body[offset]
        length = body[offset + 1]
        offset += 2
        payload = body[offset : offset + length]
        if len(payload) != length or offset + length != len(body):
            raise ProtocolError("truncated data payload")
        return cls(seq, device_id, bytes(payload), bool(flags & 0x01))

    def scalar_value(self) -> int:
        """Interpret the payload as the VM's 32-bit signed scalar."""
        return int.from_bytes(self.payload, "big", signed=True)


@dataclass(frozen=True)
class Data(_DataMessage):
    """(11) Thing -> client: reply to a read request."""

    TYPE = MsgType.DATA


@dataclass(frozen=True)
class StreamRequest(Message):
    """(12) Client -> Thing: subscribe to a continuous value stream."""

    TYPE = MsgType.STREAM_REQUEST
    device_id: DeviceId = DeviceId(0)
    interval_ms: int = 0  # 0 = Thing's default sampling interval

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + _U16.pack(self.interval_ms)

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 2 != len(body):
            raise ProtocolError("bad stream request body")
        (interval_ms,) = _U16.unpack_from(body, offset)
        return cls(seq, device_id, interval_ms)


@dataclass(frozen=True)
class StreamEstablished(Message):
    """(13) Thing -> client: join this group to receive the stream."""

    TYPE = MsgType.STREAM_ESTABLISHED
    device_id: DeviceId = DeviceId(0)
    group: Ipv6Address = Ipv6Address(0)

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + self.group.packed()

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 16 != len(body):
            raise ProtocolError("bad stream established body")
        return cls(seq, device_id, Ipv6Address.from_bytes(body[offset:]))


@dataclass(frozen=True)
class StreamData(_DataMessage):
    """(14) Thing -> stream group: one sampled value."""

    TYPE = MsgType.STREAM_DATA


@dataclass(frozen=True)
class StreamClosed(_IdOnlyMessage):
    """(15) Thing -> stream group: the stream has ended."""

    TYPE = MsgType.STREAM_CLOSED


@dataclass(frozen=True)
class WriteRequest(Message):
    """(16) Client -> Thing: write a value to an actuator."""

    TYPE = MsgType.WRITE_REQUEST
    device_id: DeviceId = DeviceId(0)
    value: int = 0

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + _I32.pack(self.value)

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 4 != len(body):
            raise ProtocolError("bad write request body")
        (value,) = _I32.unpack_from(body, offset)
        return cls(seq, device_id, value)


@dataclass(frozen=True)
class WriteAck(Message):
    """(17) Thing -> client: the new value is established."""

    TYPE = MsgType.WRITE_ACK
    device_id: DeviceId = DeviceId(0)
    status: int = 0

    def _body(self) -> bytes:
        return _pack_id(self.device_id) + bytes([self.status & 0xFF])

    @classmethod
    def _parse(cls, seq: int, body: bytes) -> "Message":
        device_id, offset = _unpack_id(body, 0)
        if offset + 1 != len(body):
            raise ProtocolError("bad write ack body")
        return cls(seq, device_id, body[offset])


_MESSAGE_CLASSES: Dict[MsgType, Type[Message]] = {
    MsgType.UNSOLICITED_ADVERTISEMENT: UnsolicitedAdvertisement,
    MsgType.PERIPHERAL_DISCOVERY: PeripheralDiscovery,
    MsgType.SOLICITED_ADVERTISEMENT: SolicitedAdvertisement,
    MsgType.DRIVER_INSTALL_REQUEST: DriverInstallRequest,
    MsgType.DRIVER_UPLOAD: DriverUpload,
    MsgType.DRIVER_DISCOVERY: DriverDiscovery,
    MsgType.DRIVER_ADVERTISEMENT: DriverAdvertisement,
    MsgType.DRIVER_REMOVAL_REQUEST: DriverRemovalRequest,
    MsgType.DRIVER_REMOVAL_ACK: DriverRemovalAck,
    MsgType.READ_REQUEST: ReadRequest,
    MsgType.DATA: Data,
    MsgType.STREAM_REQUEST: StreamRequest,
    MsgType.STREAM_ESTABLISHED: StreamEstablished,
    MsgType.STREAM_DATA: StreamData,
    MsgType.STREAM_CLOSED: StreamClosed,
    MsgType.WRITE_REQUEST: WriteRequest,
    MsgType.WRITE_ACK: WriteAck,
}


def decode_message(data: bytes) -> Message:
    """Parse a µPnP protocol message from a UDP payload."""
    if len(data) < _HEADER.size:
        raise ProtocolError("message shorter than header")
    type_value, seq = _HEADER.unpack_from(data)
    try:
        msg_type = MsgType(type_value)
    except ValueError:
        raise ProtocolError(f"unknown message type {type_value}") from None
    return _MESSAGE_CLASSES[msg_type]._parse(seq, data[_HEADER.size :])


class SequenceCounter:
    """Wrapping 16-bit sequence number source (one per entity)."""

    def __init__(self, start: int = 0) -> None:
        self._next = start & 0xFFFF

    def next(self) -> int:
        value = self._next
        self._next = (self._next + 1) & 0xFFFF
        return value


__all__ = [
    "MsgType",
    "Message",
    "ProtocolError",
    "PeripheralEntry",
    "UnsolicitedAdvertisement",
    "SolicitedAdvertisement",
    "PeripheralDiscovery",
    "DriverInstallRequest",
    "DriverUpload",
    "DriverDiscovery",
    "DriverAdvertisement",
    "DriverRemovalRequest",
    "DriverRemovalAck",
    "ReadRequest",
    "Data",
    "StreamRequest",
    "StreamEstablished",
    "StreamData",
    "StreamClosed",
    "WriteRequest",
    "WriteAck",
    "decode_message",
    "SequenceCounter",
]
