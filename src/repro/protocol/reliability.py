"""Protocol reliability primitives: retry policies and duplicate control.

µPnP's evaluation network (§6.4) is a lossy 802.15.4 mesh, yet the
request/reply protocol of §5 carries no transport: a lost datagram is a
lost operation.  This module supplies the three mechanisms the endpoints
(:mod:`repro.core.client`, :mod:`repro.core.manager`,
:mod:`repro.core.thing`) compose into a reliable request layer:

* :class:`RetryPolicy` — per-request retransmission with exponential
  backoff, a multiplicative cap and deterministic jitter;
* :class:`DuplicateCache` — bounded seq-based suppression of re-delivered
  datagrams (retransmissions and network-duplicated frames look alike to
  a receiver, so both are folded by the same cache);
* :class:`ReplyCache` — bounded request/reply memoisation so a
  retransmitted request is answered from cache instead of re-executing
  its side effect (at-most-once execution, at-least-once delivery).

Everything here is deterministic: jitter draws come from the caller's
seeded :class:`random.Random`, caches evict in FIFO insertion order.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retransmission schedule for one request.

    Attempt *n* (1-based; attempt 1 is the original transmission) is
    followed, if unanswered, by a retransmission after
    ``min(base_backoff_s * multiplier**(n-1), max_backoff_s)`` seconds,
    plus/minus uniform jitter of ``jitter_frac`` of the delay.  After
    ``max_attempts`` transmissions the requester gives up and surfaces a
    timeout error.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    max_backoff_s: float = 8.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s <= 0:
            raise ValueError("base_backoff_s must be positive")
        if not 0 <= self.jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")

    @property
    def retransmits(self) -> bool:
        return self.max_attempts > 1

    def backoff_s(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before the retransmission following transmission *attempt*."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        delay = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if rng is not None and self.jitter_frac > 0:
            delay *= 1.0 + rng.uniform(-self.jitter_frac, self.jitter_frac)
        return delay

    def worst_case_span_s(self) -> float:
        """Upper bound on time from first transmission to giving up."""
        total = 0.0
        for attempt in range(1, self.max_attempts):
            total += self.backoff_s(attempt) * (1.0 + self.jitter_frac)
        return total


#: Retransmission disabled: a single attempt, timeout-only semantics
#: (the pre-reliability protocol behaviour, kept for A/B benchmarks).
NO_RETRY = RetryPolicy(max_attempts=1)

#: Default endpoint policy.  The base backoff clears the worst one-hop
#: RTT of Table 4 by an order of magnitude, so lossless deployments
#: never retransmit spuriously.
DEFAULT_RETRY = RetryPolicy()

#: Driver installs traverse a request, a manager lookup, a fragmented
#: upload and a flash write; their backoff starts above that whole
#: pipeline's worst case.
DEFAULT_INSTALL_RETRY = RetryPolicy(
    max_attempts=5, base_backoff_s=2.0, multiplier=1.6, max_backoff_s=6.0,
)


class DuplicateCache:
    """Bounded FIFO set of recently seen datagram identities.

    ``seen(key)`` returns True (and does not re-insert) when *key* was
    observed within the last *capacity* distinct keys.  Keys are
    typically ``(src, msg_type, seq, ...)`` tuples; 16-bit sequence
    numbers wrap, so the bound doubles as correctness: a wrapped seq
    is long evicted by the time it recurs.
    """

    __slots__ = ("_capacity", "_entries")

    SNAPSHOT_SCHEMA = {
        "layer": "protocol",
        "version": 1,
        "fields": ("_capacity", "_entries"),
    }

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        return {
            "_schema": self.SNAPSHOT_SCHEMA["version"],
            "capacity": self._capacity,
            # Insertion (eviction) order is the cache's semantics; an
            # ordered item list round-trips it exactly.
            "entries": list(self._entries),
        }

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = upgrade_state(type(self), state)
        self._capacity = int(state["capacity"])
        self._entries = OrderedDict((key, None) for key in state["entries"])

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def seen(self, key: Hashable) -> bool:
        """Record *key*; True when it was already present (a duplicate)."""
        if key in self._entries:
            return True
        self._entries[key] = None
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return False


class _Miss:
    __repr__ = lambda self: "MISS"  # noqa: E731 - sentinel


#: Sentinel distinguishing "never seen" from "seen, reply pending".
MISS = _Miss()


class ReplyCache:
    """Bounded request → reply memo for at-most-once execution.

    The responder calls :meth:`begin` when it starts executing a
    request, :meth:`complete` when the reply leaves, and
    :meth:`lookup` on every arriving request:

    * :data:`MISS` — never seen: execute it;
    * ``None`` — execution in flight (split-phase handler): drop the
      duplicate, the original will answer;
    * ``bytes`` — already answered: re-send the cached reply verbatim,
      do **not** re-execute the side effect.
    """

    __slots__ = ("_capacity", "_entries", "hits")

    SNAPSHOT_SCHEMA = {
        "layer": "protocol",
        "version": 1,
        "fields": ("_capacity", "_entries", "hits"),
    }

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Optional[bytes]]" = OrderedDict()
        #: Duplicate requests answered (or absorbed) from the cache.
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        return {
            "_schema": self.SNAPSHOT_SCHEMA["version"],
            "capacity": self._capacity,
            "entries": list(self._entries.items()),
            "hits": self.hits,
        }

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = upgrade_state(type(self), state)
        self._capacity = int(state["capacity"])
        self._entries = OrderedDict(state["entries"])
        self.hits = int(state["hits"])

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def lookup(self, key: Hashable):
        entry = self._entries.get(key, MISS)
        if entry is not MISS:
            self.hits += 1
        return entry

    def begin(self, key: Hashable) -> None:
        """Mark *key* as executing (reply not yet produced)."""
        if key not in self._entries:
            self._entries[key] = None
            self._evict()

    def complete(self, key: Hashable, reply: bytes) -> None:
        """Record the reply bytes for *key* (re-sent on duplicates)."""
        self._entries[key] = reply
        self._evict()

    def _evict(self) -> None:
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)


def request_key(src_value: int, src_port: int, seq: int) -> Tuple[int, int, int]:
    """Identity of one request as seen by a responder.

    Sequence numbers are per-requester (§5.2: "used to associate request
    and reply messages"), so ``(source address, source port, seq)``
    uniquely names a request within the cache's eviction horizon.
    """
    return (src_value, src_port, seq)


__all__ = [
    "RetryPolicy",
    "DuplicateCache",
    "ReplyCache",
    "MISS",
    "request_key",
    "NO_RETRY",
    "DEFAULT_RETRY",
    "DEFAULT_INSTALL_RETRY",
]
