"""Protocol flow tracing: regenerate Figures 10 and 11 from live runs.

Attaches to a :class:`~repro.net.network.Network` and records every
µPnP message entering the network with the paper's message numbering,
addressing kind (unicast / multicast / anycast) and timing — the
machine-checkable form of the sequence diagrams in Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.ipv6 import Ipv6Address
from repro.net.multicast import parse_group, parse_location_group
from repro.net.network import Network
from repro.net.packets import UdpDatagram
from repro.protocol.messages import Message, MsgType, ProtocolError, decode_message

#: Figure 10/11 captions for each message number.
CAPTIONS = {
    MsgType.UNSOLICITED_ADVERTISEMENT: "Unsolicited peripheral advertisement",
    MsgType.PERIPHERAL_DISCOVERY: "Peripheral discovery",
    MsgType.SOLICITED_ADVERTISEMENT: "Solicited peripheral advertisement",
    MsgType.DRIVER_INSTALL_REQUEST: "Driver installation request",
    MsgType.DRIVER_UPLOAD: "Driver upload",
    MsgType.DRIVER_DISCOVERY: "Driver discovery",
    MsgType.DRIVER_ADVERTISEMENT: "Driver advertisement",
    MsgType.DRIVER_REMOVAL_REQUEST: "Driver removal request",
    MsgType.DRIVER_REMOVAL_ACK: "Driver removal ack",
    MsgType.READ_REQUEST: "Read",
    MsgType.DATA: "Data",
    MsgType.STREAM_REQUEST: "Stream",
    MsgType.STREAM_ESTABLISHED: "Established",
    MsgType.STREAM_DATA: "Data (stream)",
    MsgType.STREAM_CLOSED: "Closed",
    MsgType.WRITE_REQUEST: "Write",
    MsgType.WRITE_ACK: "Ack",
}


@dataclass(frozen=True)
class TracedMessage:
    """One protocol message observed on the network."""

    time_s: float
    src: Ipv6Address
    dst: Ipv6Address
    message: Message

    @property
    def msg_type(self) -> MsgType:
        return self.message.TYPE

    @property
    def number(self) -> int:
        """The paper's (1)..(17) numbering."""
        return int(self.message.TYPE)

    @property
    def addressing(self) -> str:
        if self.dst.is_multicast:
            if parse_location_group(self.dst) is not None:
                return "multicast/zone"
            info = parse_group(self.dst)
            if info is not None and info.is_all_clients:
                return "multicast/all-clients"
            if info is not None:
                return "multicast/peripheral"
            return "multicast"
        return "unicast"

    def render(self) -> str:
        caption = CAPTIONS.get(self.msg_type, self.msg_type.name)
        return (f"[{self.time_s * 1e3:9.2f} ms] ({self.number:>2}) "
                f"{caption:36s} {self.src} -> {self.dst} "
                f"[{self.addressing}] seq={self.message.seq}")


class ProtocolTracer:
    """Records the µPnP message flow on a network."""

    def __init__(self, network: Network) -> None:
        self._network = network
        self.messages: List[TracedMessage] = []
        network.add_monitor(self._observe)

    def _observe(self, src_id: int, datagram: UdpDatagram) -> None:
        del src_id
        try:
            message = decode_message(datagram.payload)
        except ProtocolError:
            return  # non-µPnP traffic stays out of the trace
        self.messages.append(
            TracedMessage(
                time_s=self._network.sim.now_s,
                src=datagram.src,
                dst=datagram.dst,
                message=message,
            )
        )

    # ---------------------------------------------------------------- queries
    def numbers(self) -> List[int]:
        """The observed message-number sequence, e.g. [1, 2, 3, ...]."""
        return [traced.number for traced in self.messages]

    def of_type(self, msg_type: MsgType) -> List[TracedMessage]:
        return [t for t in self.messages if t.msg_type is msg_type]

    def clear(self) -> None:
        self.messages.clear()

    def render(self, *, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
            lines.append("=" * len(title))
        lines.extend(traced.render() for traced in self.messages)
        return "\n".join(lines) if lines else "(no messages)"


__all__ = ["ProtocolTracer", "TracedMessage", "CAPTIONS"]
