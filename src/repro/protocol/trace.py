"""Protocol flow tracing: regenerate Figures 10 and 11 from live runs.

Attaches to a :class:`~repro.net.network.Network` and records every
µPnP message entering the network with the paper's message numbering,
addressing kind (unicast / multicast / anycast) and timing — the
machine-checkable form of the sequence diagrams in Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.ipv6 import Ipv6Address
from repro.net.multicast import parse_group, parse_location_group
from repro.net.network import Network
from repro.protocol.messages import Message, MsgType, ProtocolError, decode_message

#: Figure 10/11 captions for each message number.
CAPTIONS = {
    MsgType.UNSOLICITED_ADVERTISEMENT: "Unsolicited peripheral advertisement",
    MsgType.PERIPHERAL_DISCOVERY: "Peripheral discovery",
    MsgType.SOLICITED_ADVERTISEMENT: "Solicited peripheral advertisement",
    MsgType.DRIVER_INSTALL_REQUEST: "Driver installation request",
    MsgType.DRIVER_UPLOAD: "Driver upload",
    MsgType.DRIVER_DISCOVERY: "Driver discovery",
    MsgType.DRIVER_ADVERTISEMENT: "Driver advertisement",
    MsgType.DRIVER_REMOVAL_REQUEST: "Driver removal request",
    MsgType.DRIVER_REMOVAL_ACK: "Driver removal ack",
    MsgType.READ_REQUEST: "Read",
    MsgType.DATA: "Data",
    MsgType.STREAM_REQUEST: "Stream",
    MsgType.STREAM_ESTABLISHED: "Established",
    MsgType.STREAM_DATA: "Data (stream)",
    MsgType.STREAM_CLOSED: "Closed",
    MsgType.WRITE_REQUEST: "Write",
    MsgType.WRITE_ACK: "Ack",
}


@dataclass(frozen=True)
class TracedMessage:
    """One protocol message observed on the network."""

    time_s: float
    src: Ipv6Address
    dst: Ipv6Address
    message: Message

    @property
    def msg_type(self) -> MsgType:
        return self.message.TYPE

    @property
    def number(self) -> int:
        """The paper's (1)..(17) numbering."""
        return int(self.message.TYPE)

    @property
    def addressing(self) -> str:
        if self.dst.is_multicast:
            if parse_location_group(self.dst) is not None:
                return "multicast/zone"
            info = parse_group(self.dst)
            if info is not None and info.is_all_clients:
                return "multicast/all-clients"
            if info is not None:
                return "multicast/peripheral"
            return "multicast"
        return "unicast"

    def render(self) -> str:
        caption = CAPTIONS.get(self.msg_type, self.msg_type.name)
        return (f"[{self.time_s * 1e3:9.2f} ms] ({self.number:>2}) "
                f"{caption:36s} {self.src} -> {self.dst} "
                f"[{self.addressing}] seq={self.message.seq}")


class ProtocolTracer:
    """Records the µPnP message flow on a network.

    Folded over the :mod:`repro.obs` event stream: the network emits a
    ``proto.send`` instant (with the raw payload) for every datagram,
    and this class listens for those, decodes them and keeps the
    Figure 10/11 view.  If the simulator has no tracer yet, one is
    installed recording only the ``proto`` category; :meth:`close`
    (or use as a context manager) undoes whatever was set up.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self.messages: List[TracedMessage] = []
        sim = network.sim
        self._tracer = sim.tracer
        self._installed = False
        self._enabled_proto = False
        self._closed = False
        if self._tracer is None:
            from repro.obs.tracer import install_tracer

            self._tracer = install_tracer(
                sim, limit=1024, categories=("proto",),
                label="protocol-tracer",
            )
            self._installed = True
        else:
            self._enabled_proto = self._tracer.enable_category("proto")
        self._tracer.add_listener(self._on_event)

    def _on_event(self, event) -> None:
        if event.phase != "I" or event.name != "proto.send":
            return
        args = event.args or {}
        payload = args.get("payload")
        if payload is None:
            return
        try:
            message = decode_message(payload)
        except ProtocolError:
            return  # non-µPnP traffic stays out of the trace
        self.messages.append(
            TracedMessage(
                time_s=event.time_ns / 1e9,
                src=Ipv6Address.parse(args["src"]),
                dst=Ipv6Address.parse(args["dst"]),
                message=message,
            )
        )

    # --------------------------------------------------------------- lifetime
    def close(self) -> None:
        """Detach from the event stream and undo tracer state we created.

        Idempotent.  A tracer installed by this class is uninstalled; a
        ``proto`` category this class enabled on a pre-existing tracer
        is disabled again.
        """
        if self._closed:
            return
        self._closed = True
        self._tracer.remove_listener(self._on_event)
        if self._installed and self._network.sim.tracer is self._tracer:
            self._network.sim.detach_tracer()
        elif self._enabled_proto:
            self._tracer.disable_category("proto")

    def __enter__(self) -> "ProtocolTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- queries
    def numbers(self) -> List[int]:
        """The observed message-number sequence, e.g. [1, 2, 3, ...]."""
        return [traced.number for traced in self.messages]

    def of_type(self, msg_type: MsgType) -> List[TracedMessage]:
        return [t for t in self.messages if t.msg_type is msg_type]

    def clear(self) -> None:
        self.messages.clear()

    def render(self, *, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
            lines.append("=" * len(title))
        lines.extend(traced.render() for traced in self.messages)
        return "\n".join(lines) if lines else "(no messages)"


__all__ = ["ProtocolTracer", "TracedMessage", "CAPTIONS"]
