"""Type-Length-Value tuples used by the µPnP protocol (§5.2.1).

Advertisements and discovery messages carry "a set of type-length-value
(TLV) encoded tuples containing extra information about each
peripheral".  Encoding: 1-byte type, 1-byte length, value bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class TlvError(ValueError):
    """Malformed TLV stream."""


class TlvType(enum.IntEnum):
    """Well-known TLV types for peripheral metadata."""

    LABEL = 0x01          # UTF-8 human-readable peripheral name
    BUS = 0x02            # 1 byte: interconnect (BusKind ordinal)
    CHANNEL = 0x03        # 1 byte: hardware channel on the Thing
    UNITS = 0x04          # UTF-8 measurement units
    DRIVER_VERSION = 0x05  # 1 byte
    VENDOR = 0x06         # UTF-8


@dataclass(frozen=True)
class Tlv:
    """One type-length-value tuple."""

    type: int
    value: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 0xFF:
            raise TlvError(f"TLV type out of range: {self.type}")
        if len(self.value) > 0xFF:
            raise TlvError(f"TLV value too long: {len(self.value)} bytes")

    def encode(self) -> bytes:
        # Memoized on the (frozen) instance: advertisement TLVs are
        # built once per peripheral and re-encoded on every periodic
        # beacon, so the header concatenation is pure repeat work.
        cached = self.__dict__.get("_encoded")
        if cached is None:
            cached = bytes([self.type, len(self.value)]) + self.value
            object.__setattr__(self, "_encoded", cached)
        return cached

    @classmethod
    def text(cls, tlv_type: int, text: str) -> "Tlv":
        return cls(tlv_type, text.encode("utf-8"))

    @classmethod
    def byte(cls, tlv_type: int, value: int) -> "Tlv":
        return cls(tlv_type, bytes([value & 0xFF]))

    def as_text(self) -> str:
        return self.value.decode("utf-8")

    def as_byte(self) -> int:
        if len(self.value) != 1:
            raise TlvError("TLV value is not a single byte")
        return self.value[0]


def encode_tlvs(tlvs: Tuple[Tlv, ...] | List[Tlv]) -> bytes:
    """Count byte followed by each tuple."""
    if len(tlvs) > 0xFF:
        raise TlvError("too many TLVs")
    out = bytearray([len(tlvs)])
    for tlv in tlvs:
        out += tlv.encode()
    return bytes(out)


def decode_tlvs(data: bytes, offset: int = 0) -> Tuple[List[Tlv], int]:
    """Parse a counted TLV block; returns (tlvs, next offset)."""
    if offset >= len(data):
        raise TlvError("missing TLV count")
    count = data[offset]
    offset += 1
    tlvs: List[Tlv] = []
    for _ in range(count):
        if offset + 2 > len(data):
            raise TlvError("truncated TLV header")
        tlv_type = data[offset]
        length = data[offset + 1]
        offset += 2
        if offset + length > len(data):
            raise TlvError("truncated TLV value")
        tlvs.append(Tlv(tlv_type, bytes(data[offset : offset + length])))
        offset += length
    return tlvs, offset


def find(tlvs: List[Tlv], tlv_type: int) -> Tlv | None:
    """First TLV of *tlv_type*, or None."""
    for tlv in tlvs:
        if tlv.type == tlv_type:
            return tlv
    return None


__all__ = ["Tlv", "TlvType", "TlvError", "encode_tlvs", "decode_tlvs", "find"]
