"""The µPnP pulse <-> byte codec and the resistor-set generator tool.

§3 of the paper maps each of the four ID bytes onto the length of a
monostable-multivibrator pulse ``T = k * R * C``, where the resistor
``R`` lives on the peripheral and the capacitor ``C`` on the control
board.  The paper notes that (a) passive parts are imprecise and (b)
naive linear category coding blows up the worst-case pulse length, which
is why a *series of four short pulses* is used.

The paper does not give the concrete byte code; we reconstruct one with
the required properties (DESIGN.md §4.1):

* **Geometric alphabet.**  Byte ``b`` maps to the preferred E96 resistor
  ``b`` steps above a base value.  Adjacent E96 values are spaced by the
  near-constant ratio ``10**(1/96) ≈ 1.0243``, so bins are separated in
  log space and a fixed *relative* tolerance consumes a fixed fraction
  of a bin at every byte value.
* **Ratio-metric decoding.**  Each identification round first fires a
  calibration pulse through an on-board precision reference resistor.
  Decoding divides the peripheral pulse by the calibration pulse, which
  cancels the multivibrator constant ``k`` and the (loose, ±5 %)
  capacitor tolerance entirely.  Only peripheral resistor tolerance,
  E96 rounding, reference tolerance and trigger jitter remain — all
  bounded well inside half a bin for 0.5 % parts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Sequence, Tuple

from repro.hw import eseries
from repro.hw.device_id import DeviceId


class IdentificationError(Exception):
    """A pulse could not be decoded to a byte within the guard band."""


@dataclass(frozen=True)
class CodecParams:
    """Electrical parameters of the identification scheme.

    Defaults put the shortest pulse at ~220 µs and the longest at
    ~100 ms, reproducing the paper's "four short pulses" design point
    and its 220-300 ms identification window for typical boards.
    """

    series: str = "E96"
    base_resistance_ohms: float = 9090.0     # encodes byte 0
    capacitor_farads: float = 22e-9          # board-side, fixed value
    capacitor_tolerance: float = 0.05
    multivibrator_k: float = 1.1             # 555-style monostable constant
    trigger_jitter_rel: float = 0.001        # pulse-shaping noise (rel.)
    peripheral_resistor_tolerance: float = 0.005   # 0.5 % precision parts
    reference_resistor_tolerance: float = 0.001    # 0.1 % on-board reference
    guard_fraction: float = 0.5              # accepted |error| in bins

    def __post_init__(self) -> None:
        if self.base_resistance_ohms <= 0 or self.capacitor_farads <= 0:
            raise ValueError("base resistance and capacitance must be positive")
        if not 0 < self.guard_fraction <= 0.5:
            raise ValueError("guard_fraction must be in (0, 0.5]")

    # ------------------------------------------------------------- geometry
    @cached_property
    def base_index(self) -> int:
        """Global E-series index of the byte-0 resistor."""
        return eseries.index_of_value(self.base_resistance_ohms, self.series)

    def resistance_for_byte(self, byte: int) -> float:
        """Nominal preferred resistance encoding *byte* (0..255)."""
        if not 0 <= byte <= 255:
            raise ValueError(f"byte out of range: {byte}")
        return eseries.value_at_index(self.base_index + byte, self.series)

    @cached_property
    def log_offsets(self) -> Tuple[float, ...]:
        """``ln(R(b) / R(0))`` for every byte value, ascending."""
        r0 = self.resistance_for_byte(0)
        return tuple(
            math.log(self.resistance_for_byte(b) / r0) for b in range(256)
        )

    @cached_property
    def min_bin_gap(self) -> float:
        """Smallest log-space distance between adjacent byte bins."""
        offs = self.log_offsets
        return min(b - a for a, b in zip(offs, offs[1:]))

    # --------------------------------------------------------------- pulses
    def nominal_pulse_seconds(self, byte: int) -> float:
        """Pulse length for *byte* with ideal (nominal) components."""
        return (
            self.multivibrator_k
            * self.resistance_for_byte(byte)
            * self.capacitor_farads
        )

    @property
    def min_pulse_seconds(self) -> float:
        return self.nominal_pulse_seconds(0)

    @property
    def max_pulse_seconds(self) -> float:
        return self.nominal_pulse_seconds(255)

    @property
    def empty_channel_timeout_seconds(self) -> float:
        """How long the board waits before declaring a channel empty.

        Must exceed the worst tolerance-stretched byte-255 pulse.
        """
        stretch = (1 + self.capacitor_tolerance) * (
            1 + self.peripheral_resistor_tolerance
        ) * (1 + self.trigger_jitter_rel)
        return self.max_pulse_seconds * stretch * 1.05

    def worst_case_id_seconds(self) -> float:
        """Worst-case duration of one 4-pulse identification burst."""
        return 4 * self.max_pulse_seconds * (1 + self.capacitor_tolerance)

    # ------------------------------------------------------------- analysis
    def error_budget_fraction_of_bin(self) -> float:
        """Worst-case decode error as a fraction of one bin width.

        Must stay below :attr:`guard_fraction` for identification to be
        reliable; the property tests assert this.
        """
        worst_log_error = (
            math.log(1 + self.peripheral_resistor_tolerance)
            + math.log(1 + self.reference_resistor_tolerance)
            + math.log(1 + self.trigger_jitter_rel) * 2  # both pulses jitter
            + eseries.worst_rounding_error(self.series) * 0.0
        )
        return worst_log_error / self.min_bin_gap


DEFAULT_CODEC = CodecParams()


@dataclass(frozen=True)
class ResistorSet:
    """The four nominal resistances a peripheral must carry for an ID.

    This is the output of the paper's "simple online tool" (§3.3) that
    converts an allocated address into a bill of materials.
    """

    device_id: DeviceId
    nominal_ohms: Tuple[float, float, float, float]
    tolerance: float

    def __iter__(self):
        return iter(self.nominal_ohms)


def resistor_set_for_id(
    device_id: DeviceId, params: CodecParams = DEFAULT_CODEC
) -> ResistorSet:
    """The online tool: device id -> four resistor values (§3.3)."""
    values = tuple(params.resistance_for_byte(b) for b in device_id.to_bytes())
    return ResistorSet(device_id, values, params.peripheral_resistor_tolerance)


class PulseDecoder:
    """Ratio-metric pulse decoder used by the peripheral controller.

    Decoding is done against the *exact* E96 log-offset table rather
    than an idealised constant ratio, so series rounding does not eat
    into the guard band.
    """

    def __init__(self, params: CodecParams = DEFAULT_CODEC) -> None:
        self._params = params
        self._offsets = params.log_offsets
        self._guard = params.guard_fraction * params.min_bin_gap

    @property
    def params(self) -> CodecParams:
        return self._params

    def decode_byte(self, pulse_s: float, reference_s: float) -> int:
        """Decode one pulse length into a byte, given the calibration pulse."""
        if pulse_s <= 0 or reference_s <= 0:
            raise IdentificationError("non-positive pulse length")
        x = math.log(pulse_s / reference_s)
        # Binary search over the monotonically increasing offset table.
        lo, hi = 0, 255
        while lo < hi:
            mid = (lo + hi) // 2
            if self._offsets[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        candidates = [lo] if lo == 0 else [lo - 1, lo]
        best = min(candidates, key=lambda b: abs(self._offsets[b] - x))
        err = abs(self._offsets[best] - x)
        if err > self._guard:
            raise IdentificationError(
                f"pulse {pulse_s * 1e6:.2f}us is {err / self._params.min_bin_gap:.2f} "
                f"bins away from nearest byte {best} (guard "
                f"{self._params.guard_fraction:.2f})"
            )
        return best

    def decode_id(
        self, pulses_s: Sequence[float], references_s: Sequence[float]
    ) -> DeviceId:
        """Decode the 4-pulse burst of one channel into a device id."""
        if len(pulses_s) != 4 or len(references_s) != 4:
            raise IdentificationError("identification needs 4 pulses + 4 references")
        parts = [
            self.decode_byte(p, r) for p, r in zip(pulses_s, references_s)
        ]
        return DeviceId.from_bytes(parts)


__all__ = [
    "CodecParams",
    "DEFAULT_CODEC",
    "IdentificationError",
    "PulseDecoder",
    "ResistorSet",
    "resistor_set_for_id",
]
