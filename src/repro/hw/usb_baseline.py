"""USB host controller energy baseline (§6.1, Figure 12).

The paper compares µPnP against an Arduino USB host shield built around
the MAX3421E USB host controller [28].  The comparison uses the *minimum
idle* power of the USB host — i.e. the most favourable case for USB —
because a USB host must stay powered continuously to detect attach and
detach events, whereas the µPnP board only powers up on an interrupt.

Model:

* idle draw sustained 24/7 (dominates everything);
* an additional enumeration burst per connect/disconnect event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.power import PowerDraw

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class UsbHostModel:
    """Energy model of an always-on embedded USB host controller."""

    #: Minimum idle draw of the host controller + shield regulator.
    idle_draw: PowerDraw = PowerDraw(current_a=10.0e-3, voltage_v=3.3)
    #: Extra draw while enumerating a newly attached device.
    enumerate_draw: PowerDraw = PowerDraw(current_a=25.0e-3, voltage_v=3.3)
    #: Worst-case USB enumeration time (attach debounce + descriptors).
    enumerate_seconds: float = 0.5

    def enumeration_energy_joules(self) -> float:
        """Energy of a single plug event's enumeration burst."""
        return self.enumerate_draw.energy_joules(self.enumerate_seconds)

    def energy_joules(self, duration_s: float, change_events: int = 0) -> float:
        """Total energy over *duration_s* with *change_events* plug events."""
        if duration_s < 0 or change_events < 0:
            raise ValueError("duration and change_events must be non-negative")
        return (
            self.idle_draw.energy_joules(duration_s)
            + change_events * self.enumeration_energy_joules()
        )

    def annual_energy_joules(self, change_interval_minutes: float) -> float:
        """One-year energy when peripherals change every N minutes."""
        if change_interval_minutes <= 0:
            raise ValueError("change interval must be positive")
        events = int(SECONDS_PER_YEAR / (change_interval_minutes * 60.0))
        return self.energy_joules(SECONDS_PER_YEAR, events)


__all__ = ["UsbHostModel", "SECONDS_PER_YEAR"]
