"""The µPnP connector and bus multiplexing (§3.1, Table 1).

The prototype uses a 19-pin mini-HDMI connector: pins 1–8 carry the
identification circuit, pins 10–12 carry the (multiplexed) peripheral
interconnect, selected according to the identified device type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

#: Pins dedicated to the resistor identification circuit (§3.1).
IDENTIFICATION_PINS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Pins multiplexed onto the selected communication bus (§3.1).
COMMUNICATION_PINS: Tuple[int, ...] = (10, 11, 12)

#: Supply pin in the prototype schematic (Figure 4).
VDD_PIN = 13

NOT_CONNECTED = "N/C"


class BusKind(enum.Enum):
    """Hardware interconnects encapsulated by the µPnP bus (§1, §3.1)."""

    ADC = "ADC"
    I2C = "I2C"
    SPI = "SPI"
    UART = "UART"


#: Table 1 — pinout for different communication bus interfaces.
PIN_ASSIGNMENTS: Mapping[BusKind, Mapping[int, str]] = {
    BusKind.ADC: {10: "Analog Signal", 11: NOT_CONNECTED, 12: NOT_CONNECTED},
    BusKind.I2C: {10: "SDA", 11: "SCL", 12: NOT_CONNECTED},
    BusKind.SPI: {10: "MOSI", 11: "MISO", 12: "SCK"},
    BusKind.UART: {10: "TX", 11: "RX", 12: NOT_CONNECTED},
}


@dataclass(frozen=True)
class PinMap:
    """Resolved pin functions for a connector in a given bus mode."""

    bus: BusKind
    functions: Mapping[int, str]

    def signal_on(self, pin: int) -> str:
        """Function of *pin*, or ``"N/C"`` when unused in this mode."""
        if pin not in COMMUNICATION_PINS:
            raise ValueError(f"pin {pin} is not a communication pin")
        return self.functions[pin]

    @property
    def connected_pins(self) -> Tuple[int, ...]:
        return tuple(
            p for p in COMMUNICATION_PINS if self.functions[p] != NOT_CONNECTED
        )


def pin_map_for(bus: BusKind) -> PinMap:
    """The Table 1 pin assignment for *bus*."""
    return PinMap(bus, dict(PIN_ASSIGNMENTS[bus]))


def bus_wire_count(bus: BusKind) -> int:
    """Number of live communication wires for *bus* (1..3)."""
    return len(pin_map_for(bus).connected_pins)


__all__ = [
    "BusKind",
    "PinMap",
    "pin_map_for",
    "bus_wire_count",
    "IDENTIFICATION_PINS",
    "COMMUNICATION_PINS",
    "VDD_PIN",
    "NOT_CONNECTED",
    "PIN_ASSIGNMENTS",
]
