"""IEC 60063 preferred number series for resistors and capacitors.

The paper (§3, [21]) grounds its identification scheme in the fact that
passive components come in standard "E-series" values with bounded
tolerance.  The µPnP byte code exploits a convenient property of the E96
series: adjacent values are spaced by a near-constant ratio of
``10**(1/96) ≈ 1.0243``, so consecutive E96 values form a natural
geometric code alphabet.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence

# Mantissas (×100) of each series, covering one decade [1.0, 10.0).
E12: Sequence[int] = (100, 120, 150, 180, 220, 270, 330, 390, 470, 560, 680, 820)

E24: Sequence[int] = (
    100, 110, 120, 130, 150, 160, 180, 200, 220, 240, 270, 300,
    330, 360, 390, 430, 470, 510, 560, 620, 680, 750, 820, 910,
)

E96: Sequence[int] = (
    100, 102, 105, 107, 110, 113, 115, 118, 121, 124, 127, 130,
    133, 137, 140, 143, 147, 150, 154, 158, 162, 165, 169, 174,
    178, 182, 187, 191, 196, 200, 205, 210, 215, 221, 226, 232,
    237, 243, 249, 255, 261, 267, 274, 280, 287, 294, 301, 309,
    316, 324, 332, 340, 348, 357, 365, 374, 383, 392, 402, 412,
    422, 432, 442, 453, 464, 475, 487, 499, 511, 523, 536, 549,
    562, 576, 590, 604, 619, 634, 649, 665, 681, 698, 715, 732,
    750, 768, 787, 806, 825, 845, 866, 887, 909, 931, 953, 976,
)

SERIES = {"E12": E12, "E24": E24, "E96": E96}

#: Nominal tolerance conventionally associated with each series.
SERIES_TOLERANCE = {"E12": 0.10, "E24": 0.05, "E96": 0.01}

#: Geometric step between adjacent E96 values (exact for an ideal series).
E96_STEP_RATIO = 10.0 ** (1.0 / 96.0)


def series_values(name: str) -> Sequence[int]:
    """Return the mantissa table (×100) for series *name* ("E12"/"E24"/"E96")."""
    try:
        return SERIES[name]
    except KeyError:
        raise ValueError(f"unknown E-series: {name!r}") from None


def value_at_index(global_index: int, series: str = "E96") -> float:
    """Map a global series index to an absolute component value.

    Index 0 is 1.00 (i.e. 1 Ω / 1 F depending on interpretation); each
    full series length advances one decade.  Negative indices reach into
    sub-unit decades.
    """
    table = series_values(series)
    n = len(table)
    decade, pos = divmod(global_index, n)
    return table[pos] / 100.0 * (10.0 ** decade)


def index_of_value(value: float, series: str = "E96") -> int:
    """Inverse of :func:`value_at_index`: nearest global index for *value*."""
    if value <= 0:
        raise ValueError("component value must be positive")
    table = series_values(series)
    n = len(table)
    decade = math.floor(math.log10(value))
    mantissa = value / (10.0 ** decade) * 100.0  # in [100, 1000)
    # Candidate positions in this decade and its neighbours.
    best_index = 0
    best_err = math.inf
    for d in (decade - 1, decade, decade + 1):
        for pos, m in enumerate(table):
            candidate = m / 100.0 * (10.0 ** d)
            err = abs(math.log(candidate / value))
            if err < best_err:
                best_err = err
                best_index = d * n + pos
    del mantissa
    return best_index


def nearest_value(value: float, series: str = "E96") -> float:
    """Snap *value* to the nearest preferred value of *series*.

    >>> nearest_value(9100.0, "E96")
    9090.0
    """
    return value_at_index(index_of_value(value, series), series)


def values_in_range(lo: float, hi: float, series: str = "E96") -> List[float]:
    """All preferred values v with lo <= v <= hi, ascending."""
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    out: List[float] = []
    idx = index_of_value(lo, series)
    # Back up until strictly below lo, then walk forward.
    while value_at_index(idx, series) >= lo:
        idx -= 1
    idx += 1
    while True:
        v = value_at_index(idx, series)
        if v > hi * (1 + 1e-12):
            break
        out.append(v)
        idx += 1
    return out


def worst_rounding_error(series: str = "E96") -> float:
    """Largest relative |log| gap/2 between adjacent values in the series.

    This bounds how far a requested value can be from its nearest
    preferred value, which the ID codec must budget for.
    """
    table = series_values(series)
    ratios = []
    extended = list(table) + [table[0] * 10]
    for a, b in zip(extended, extended[1:]):
        ratios.append(math.log(b / a))
    return max(ratios) / 2.0


def is_preferred_value(value: float, series: str = "E96", rel_tol: float = 1e-9) -> bool:
    """True when *value* is (numerically) a member of *series*."""
    nearest = nearest_value(value, series)
    return math.isclose(nearest, value, rel_tol=rel_tol)


__all__ = [
    "E12",
    "E24",
    "E96",
    "E96_STEP_RATIO",
    "SERIES",
    "SERIES_TOLERANCE",
    "series_values",
    "value_at_index",
    "index_of_value",
    "nearest_value",
    "values_in_range",
    "worst_rounding_error",
    "is_preferred_value",
]
