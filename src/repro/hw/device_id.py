"""32-bit µPnP device-type identifiers.

Each peripheral type is identified by a 32-bit value (§3): four bytes,
one per multivibrator pulse.  Two values are reserved by the network
architecture (§5.1): ``0x00000000`` ("all peripherals") and
``0xffffffff`` ("all µPnP clients").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

ALL_PERIPHERALS = 0x00000000
ALL_CLIENTS = 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class DeviceId:
    """A µPnP device-type identifier (a value in the global address space)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"device id out of 32-bit range: {self.value:#x}")

    # ------------------------------------------------------------ converters
    @classmethod
    def from_bytes(cls, parts: Iterable[int]) -> "DeviceId":
        """Build from the four pulse bytes (T1..T4, big-endian)."""
        parts = tuple(parts)
        if len(parts) != 4:
            raise ValueError(f"device id needs exactly 4 bytes, got {len(parts)}")
        for b in parts:
            if not 0 <= b <= 0xFF:
                raise ValueError(f"byte out of range: {b}")
        return cls((parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3])

    @classmethod
    def from_hex(cls, text: str) -> "DeviceId":
        """Parse ``"0xad1cbe01"`` or ``"ad1cbe01"``."""
        return cls(int(text, 16))

    def to_bytes(self) -> Tuple[int, int, int, int]:
        """The four pulse bytes, most significant first (T1..T4)."""
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def packed(self) -> bytes:
        """Big-endian 4-byte wire encoding."""
        return self.value.to_bytes(4, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "DeviceId":
        if len(data) != 4:
            raise ValueError("device id wire form is exactly 4 bytes")
        return cls(int.from_bytes(data, "big"))

    # ------------------------------------------------------------ properties
    @property
    def is_reserved(self) -> bool:
        """True for the two addresses reserved by §5.1."""
        return self.value in (ALL_PERIPHERALS, ALL_CLIENTS)

    def __str__(self) -> str:
        return f"0x{self.value:08x}"

    def __repr__(self) -> str:
        return f"DeviceId({self})"


__all__ = ["DeviceId", "ALL_PERIPHERALS", "ALL_CLIENTS"]
