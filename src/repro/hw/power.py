"""Energy bookkeeping for the hardware and radio models.

All models report energy through an :class:`EnergyMeter`, categorised so
the experiment harnesses (e.g. Figure 12) can decompose totals by
source (identification, interconnect traffic, radio, baseline draw).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PowerDraw:
    """A constant current draw at a supply voltage."""

    current_a: float
    voltage_v: float = 3.3

    @property
    def watts(self) -> float:
        return self.current_a * self.voltage_v

    def energy_joules(self, duration_s: float) -> float:
        """Energy dissipated over *duration_s* seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.watts * duration_s


class EnergyMeter:
    """Accumulates energy per named category (joules)."""

    def __init__(self) -> None:
        self._by_category: Dict[str, float] = defaultdict(float)

    def add(self, category: str, joules: float) -> None:
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        self._by_category[category] += joules

    def add_draw(self, category: str, draw: PowerDraw, duration_s: float) -> None:
        """Account a constant *draw* sustained for *duration_s*."""
        self.add(category, draw.energy_joules(duration_s))

    def total(self) -> float:
        return sum(self._by_category.values())

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def get(self, category: str) -> float:
        return self._by_category.get(category, 0.0)

    def reset(self) -> None:
        self._by_category.clear()


__all__ = ["PowerDraw", "EnergyMeter"]
