"""Energy bookkeeping for the hardware and radio models.

All models report energy through an :class:`EnergyMeter`, categorised so
the experiment harnesses (e.g. Figure 12) can decompose totals by
source (identification, interconnect traffic, radio, baseline draw).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass(frozen=True)
class PowerDraw:
    """A constant current draw at a supply voltage."""

    current_a: float
    voltage_v: float = 3.3

    @property
    def watts(self) -> float:
        return self.current_a * self.voltage_v

    def energy_joules(self, duration_s: float) -> float:
        """Energy dissipated over *duration_s* seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.watts * duration_s


class EnergyMeter:
    """Accumulates energy per named category (joules)."""

    SNAPSHOT_SCHEMA = {
        "layer": "hw",
        "version": 1,
        "fields": ("_by_category",),
    }

    def __init__(self) -> None:
        self._by_category: Dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        return {
            "_schema": self.SNAPSHOT_SCHEMA["version"],
            "by_category": self.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = upgrade_state(type(self), state)
        self._by_category = defaultdict(float)
        self._by_category.update(state["by_category"])

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def add(self, category: str, joules: float) -> None:
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        self._by_category[category] += joules

    def add_n(self, category: str, joules: float, n: int) -> None:
        """Accrue *n* identical contributions, bit-exactly.

        The loop of individual float adds is deliberate: fast-forwarded
        periodic accruals must leave the accumulator byte-identical to
        n sequential :meth:`add` calls (a closed-form ``n * joules``
        add rounds differently), because the fleet digest hashes these
        sums.  A hoisted local loop is still ~50x cheaper than n kernel
        dispatches.
        """
        if joules < 0:
            raise ValueError("energy contributions must be non-negative")
        total = self._by_category[category]
        for _ in range(n):
            total += joules
        self._by_category[category] = total

    def add_draw(self, category: str, draw: PowerDraw, duration_s: float) -> None:
        """Account a constant *draw* sustained for *duration_s*."""
        self.add(category, draw.energy_joules(duration_s))

    def total(self) -> float:
        return sum(self._by_category.values())

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def get(self, category: str) -> float:
        return self._by_category.get(category, 0.0)

    def reset(self) -> None:
        self._by_category.clear()

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, float]:
        """A JSON/pickle-safe category → joules view, sorted by category.

        The sort makes snapshots byte-stable under JSON encoding, which
        is what lets fleet shards ship meter state across process
        boundaries and still merge deterministically.
        """
        return {k: self._by_category[k] for k in sorted(self._by_category)}

    @staticmethod
    def merge(snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
        """Sum per-category snapshots (energy is additive across nodes).

        Merging in a fixed order (callers pass node/shard order) keeps
        float sums deterministic regardless of worker count.
        """
        merged: Dict[str, float] = {}
        for snap in snapshots:
            for category, joules in snap.items():
                merged[category] = merged.get(category, 0.0) + joules
        return {k: merged[k] for k in sorted(merged)}


__all__ = ["PowerDraw", "EnergyMeter"]
