"""Hardware identification substrate (Section 3 of the paper).

E-series passive components, the monostable multivibrator chain, the
pulse<->byte identification codec, peripheral and control boards, power
accounting, and the USB host-controller baseline used by Figure 12.
"""

from repro.hw.components import Capacitor, ComponentError, Resistor
from repro.hw.connector import BusKind, PinMap, bus_wire_count, pin_map_for
from repro.hw.control_board import (
    ChannelError,
    ChannelResult,
    ControlBoard,
    IdentificationReport,
    IdentificationTiming,
)
from repro.hw.device_id import ALL_CLIENTS, ALL_PERIPHERALS, DeviceId
from repro.hw.idcodec import (
    CodecParams,
    DEFAULT_CODEC,
    IdentificationError,
    PulseDecoder,
    ResistorSet,
    resistor_set_for_id,
)
from repro.hw.multivibrator import Multivibrator, MultivibratorChain
from repro.hw.peripheral_board import PeripheralBoard
from repro.hw.power import EnergyMeter, PowerDraw
from repro.hw.usb_baseline import SECONDS_PER_YEAR, UsbHostModel

__all__ = [
    "Capacitor",
    "ComponentError",
    "Resistor",
    "BusKind",
    "PinMap",
    "bus_wire_count",
    "pin_map_for",
    "ChannelError",
    "ChannelResult",
    "ControlBoard",
    "IdentificationReport",
    "IdentificationTiming",
    "ALL_CLIENTS",
    "ALL_PERIPHERALS",
    "DeviceId",
    "CodecParams",
    "DEFAULT_CODEC",
    "IdentificationError",
    "PulseDecoder",
    "ResistorSet",
    "resistor_set_for_id",
    "Multivibrator",
    "MultivibratorChain",
    "PeripheralBoard",
    "EnergyMeter",
    "PowerDraw",
    "SECONDS_PER_YEAR",
    "UsbHostModel",
]
