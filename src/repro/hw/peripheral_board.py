"""µPnP peripheral boards (§3.1, Figure 4).

A peripheral board repackages an existing sensor/actuator as a µPnP
device: it carries the four ID-encoding resistors plus the part's
native interconnect wired to the connector's communication pins.  The
board is deliberately trivial — "anyone with a basic knowledge of
electronics can begin building their own µPnP peripherals".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.hw.components import Resistor
from repro.hw.connector import BusKind
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC, resistor_set_for_id


@dataclass
class PeripheralBoard:
    """A physical µPnP peripheral: ID resistors + the underlying part.

    ``device`` is the behavioural model of the actual sensor/actuator
    (see :mod:`repro.peripherals`); it is what the interconnect talks to
    once the board has been identified and the bus multiplexed.
    """

    device_id: DeviceId
    bus: BusKind
    resistors: Tuple[Resistor, Resistor, Resistor, Resistor]
    label: str = ""
    device: Any = None

    def __post_init__(self) -> None:
        if len(self.resistors) != 4:
            raise ValueError("a peripheral board carries exactly 4 ID resistors")

    @classmethod
    def manufacture(
        cls,
        device_id: DeviceId,
        bus: BusKind,
        *,
        device: Any = None,
        label: str = "",
        params: CodecParams = DEFAULT_CODEC,
        rng: Optional[random.Random] = None,
    ) -> "PeripheralBoard":
        """Build a board for *device_id* using the resistor-set tool.

        Resistor true values are sampled within the codec's peripheral
        tolerance, exactly as parts picked from a reel would be.
        """
        nominal = resistor_set_for_id(device_id, params)
        parts = tuple(
            Resistor.manufacture(ohms, params.peripheral_resistor_tolerance, rng)
            for ohms in nominal
        )
        return cls(device_id, bus, parts, label=label or str(device_id), device=device)


__all__ = ["PeripheralBoard"]
