"""Passive component models with manufacturing tolerance.

µPnP identifies peripherals from the *actual* (not nominal) values of
resistors and capacitors, so the simulation distinguishes a component's
nominal value from the sample drawn at "manufacture" time.  Tolerance is
modelled as a uniform distribution over ±tol (the conservative,
worst-case-friendly assumption; real parts cluster tighter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hw import eseries


class ComponentError(ValueError):
    """Raised for physically meaningless component parameters."""


def _check(value: float, tolerance: float) -> None:
    if value <= 0:
        raise ComponentError(f"component value must be positive, got {value}")
    if not 0 <= tolerance < 1:
        raise ComponentError(f"tolerance must be in [0, 1), got {tolerance}")


@dataclass(frozen=True)
class Resistor:
    """A resistor with nominal value (ohms) and relative tolerance.

    ``actual`` is the sampled true resistance of this physical part.
    """

    nominal_ohms: float
    tolerance: float = 0.01
    actual_ohms: float = field(default=0.0)

    def __post_init__(self) -> None:
        _check(self.nominal_ohms, self.tolerance)
        if self.actual_ohms <= 0:
            object.__setattr__(self, "actual_ohms", self.nominal_ohms)
        lo, hi = self.bounds()
        if not lo <= self.actual_ohms <= hi:
            raise ComponentError(
                f"actual value {self.actual_ohms} outside tolerance band "
                f"[{lo}, {hi}] of nominal {self.nominal_ohms}"
            )

    def bounds(self) -> tuple[float, float]:
        """(min, max) true value permitted by the tolerance band."""
        return (
            self.nominal_ohms * (1 - self.tolerance),
            self.nominal_ohms * (1 + self.tolerance),
        )

    @classmethod
    def manufacture(
        cls, nominal_ohms: float, tolerance: float = 0.01, rng: random.Random | None = None
    ) -> "Resistor":
        """Sample a physical part uniformly within the tolerance band."""
        _check(nominal_ohms, tolerance)
        rng = rng or random
        actual = nominal_ohms * (1 + rng.uniform(-tolerance, tolerance))
        return cls(nominal_ohms, tolerance, actual)

    @classmethod
    def preferred(
        cls,
        target_ohms: float,
        series: str = "E96",
        tolerance: float | None = None,
        rng: random.Random | None = None,
    ) -> "Resistor":
        """Manufacture the nearest preferred-series part to *target_ohms*."""
        nominal = eseries.nearest_value(target_ohms, series)
        tol = eseries.SERIES_TOLERANCE[series] if tolerance is None else tolerance
        return cls.manufacture(nominal, tol, rng)


@dataclass(frozen=True)
class Capacitor:
    """A capacitor with nominal value (farads) and relative tolerance."""

    nominal_farads: float
    tolerance: float = 0.05
    actual_farads: float = field(default=0.0)

    def __post_init__(self) -> None:
        _check(self.nominal_farads, self.tolerance)
        if self.actual_farads <= 0:
            object.__setattr__(self, "actual_farads", self.nominal_farads)
        lo, hi = self.bounds()
        if not lo <= self.actual_farads <= hi:
            raise ComponentError(
                f"actual value {self.actual_farads} outside tolerance band "
                f"[{lo}, {hi}] of nominal {self.nominal_farads}"
            )

    def bounds(self) -> tuple[float, float]:
        return (
            self.nominal_farads * (1 - self.tolerance),
            self.nominal_farads * (1 + self.tolerance),
        )

    @classmethod
    def manufacture(
        cls, nominal_farads: float, tolerance: float = 0.05, rng: random.Random | None = None
    ) -> "Capacitor":
        """Sample a physical part uniformly within the tolerance band."""
        _check(nominal_farads, tolerance)
        rng = rng or random
        actual = nominal_farads * (1 + rng.uniform(-tolerance, tolerance))
        return cls(nominal_farads, tolerance, actual)


__all__ = ["Resistor", "Capacitor", "ComponentError"]
