"""The µPnP control board (§3.2, Figures 5–7).

The control board sits between the MCU and the peripherals.  It owns a
single 4-stage multivibrator chain shared by all channels; the control
logic enables one channel per time-slot, so all channel ID bursts are
daisy-chained onto one output signal and only three MCU I/O pins are
needed (start / output / interrupt).

Power behaviour follows §3.2: the board is normally unpowered; a
connect/disconnect interrupt powers it up for the duration of one
identification round (the prototype draws an average of 7 mA at 3.3 V
while active), after which it is powered down again.  Average power
therefore scales linearly with the rate of peripheral change — the key
property behind Figure 12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.hw.components import Resistor
from repro.hw.device_id import DeviceId
from repro.hw.idcodec import (
    CodecParams,
    DEFAULT_CODEC,
    IdentificationError,
    PulseDecoder,
)
from repro.hw.multivibrator import MultivibratorChain
from repro.hw.peripheral_board import PeripheralBoard
from repro.hw.power import EnergyMeter, PowerDraw


class ChannelError(Exception):
    """Raised on invalid channel operations (occupied / out of range)."""


@dataclass(frozen=True)
class IdentificationTiming:
    """Fixed control-logic overheads of one identification round."""

    powerup_s: float = 1.0e-3          # interrupt -> board supply stable
    channel_settle_s: float = 0.5e-3   # mux switch + line settle per channel
    inter_pulse_s: float = 20.0e-6     # re-trigger gap between stages


@dataclass(frozen=True)
class ChannelResult:
    """Outcome of identifying a single channel."""

    channel: int
    device_id: Optional[DeviceId]
    pulses_s: Sequence[float]
    duration_s: float
    error: Optional[str] = None

    @property
    def occupied(self) -> bool:
        return bool(self.pulses_s)


@dataclass(frozen=True)
class IdentificationReport:
    """Outcome of one full identification round over all channels."""

    channels: Sequence[ChannelResult]
    reference_pulses_s: Sequence[float]
    total_seconds: float
    energy_joules: float

    def identified(self) -> dict[int, DeviceId]:
        """Mapping channel -> device id for successfully decoded channels."""
        return {
            c.channel: c.device_id
            for c in self.channels
            if c.device_id is not None
        }

    def errors(self) -> dict[int, str]:
        return {c.channel: c.error for c in self.channels if c.error}


class ControlBoard:
    """A µPnP control board with ``num_channels`` peripheral ports."""

    def __init__(
        self,
        num_channels: int = 3,
        *,
        params: CodecParams = DEFAULT_CODEC,
        timing: IdentificationTiming = IdentificationTiming(),
        active_draw: PowerDraw = PowerDraw(current_a=7e-3, voltage_v=3.3),
        rng: Optional[random.Random] = None,
        meter: Optional[EnergyMeter] = None,
    ) -> None:
        if num_channels < 1:
            raise ChannelError("control board needs at least one channel")
        self._params = params
        self._timing = timing
        self._active_draw = active_draw
        self._rng = rng or random.Random(0)
        self._meter = meter if meter is not None else EnergyMeter()
        self._chain = MultivibratorChain.build(
            params.capacitor_farads,
            params.capacitor_tolerance,
            jitter_rel=params.trigger_jitter_rel,
            rng=self._rng,
        )
        # On-board precision reference resistors, one per stage (§ DESIGN 4.1).
        self._references = [
            Resistor.manufacture(
                params.base_resistance_ohms,
                params.reference_resistor_tolerance,
                self._rng,
            )
            for _ in range(MultivibratorChain.STAGES)
        ]
        self._decoder = PulseDecoder(params)
        self._channels: List[Optional[PeripheralBoard]] = [None] * num_channels
        self._interrupt_handlers: List[Callable[[int, bool], None]] = []

    # --------------------------------------------------------------- wiring
    @property
    def num_channels(self) -> int:
        return len(self._channels)

    @property
    def params(self) -> CodecParams:
        return self._params

    @property
    def meter(self) -> EnergyMeter:
        return self._meter

    @property
    def active_draw(self) -> PowerDraw:
        return self._active_draw

    def board_at(self, channel: int) -> Optional[PeripheralBoard]:
        self._check_channel(channel)
        return self._channels[channel]

    def occupied_channels(self) -> List[int]:
        return [i for i, b in enumerate(self._channels) if b is not None]

    def free_channel(self) -> Optional[int]:
        """Lowest unoccupied channel index, or None when full."""
        for i, board in enumerate(self._channels):
            if board is None:
                return i
        return None

    def on_interrupt(self, handler: Callable[[int, bool], None]) -> None:
        """Register a handler called (channel, connected) on plug events.

        This models the dedicated interrupt line to the MCU (§3.2).
        """
        self._interrupt_handlers.append(handler)

    def connect(self, board: PeripheralBoard, channel: Optional[int] = None) -> int:
        """Plug *board* into *channel* (or the first free one)."""
        if channel is None:
            channel = self.free_channel()
            if channel is None:
                raise ChannelError("all channels occupied")
        self._check_channel(channel)
        if self._channels[channel] is not None:
            raise ChannelError(f"channel {channel} already occupied")
        self._channels[channel] = board
        self._fire_interrupt(channel, True)
        return channel

    def disconnect(self, channel: int) -> PeripheralBoard:
        """Unplug the board in *channel* and fire the interrupt."""
        self._check_channel(channel)
        board = self._channels[channel]
        if board is None:
            raise ChannelError(f"channel {channel} is empty")
        self._channels[channel] = None
        self._fire_interrupt(channel, False)
        return board

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < len(self._channels):
            raise ChannelError(f"channel {channel} out of range")

    def _fire_interrupt(self, channel: int, connected: bool) -> None:
        for handler in list(self._interrupt_handlers):
            handler(channel, connected)

    # --------------------------------------------------------- identification
    def run_identification(self) -> IdentificationReport:
        """Run one complete identification round over every channel.

        Returns a report including the electrical duration of the round
        and the energy drawn by the board while powered.  The caller
        (typically :class:`repro.vm.peripheral_controller.
        PeripheralController`) is responsible for scheduling this
        duration on the simulator and powering the MCU meanwhile.
        """
        timing = self._timing
        total = timing.powerup_s

        # Calibration burst through the reference resistors (one per stage).
        references: List[float] = []
        for stage, ref in zip(self._chain.stages, self._references):
            pulse = stage.pulse_seconds(ref, self._rng)
            references.append(pulse)
            total += pulse + timing.inter_pulse_s

        results: List[ChannelResult] = []
        for index, board in enumerate(self._channels):
            total += timing.channel_settle_s
            if board is None:
                duration = self._params.empty_channel_timeout_seconds
                total += duration
                results.append(
                    ChannelResult(index, None, (), duration)
                )
                continue
            pulses = self._chain.burst_seconds(board.resistors, self._rng)
            duration = sum(pulses) + 4 * timing.inter_pulse_s
            total += duration
            try:
                device_id = self._decoder.decode_id(pulses, references)
                results.append(
                    ChannelResult(index, device_id, tuple(pulses), duration)
                )
            except IdentificationError as exc:
                results.append(
                    ChannelResult(index, None, tuple(pulses), duration, str(exc))
                )

        energy = self._active_draw.energy_joules(total)
        self._meter.add("identification", energy)
        return IdentificationReport(
            channels=tuple(results),
            reference_pulses_s=tuple(references),
            total_seconds=total,
            energy_joules=energy,
        )


__all__ = [
    "ChannelError",
    "ChannelResult",
    "ControlBoard",
    "IdentificationReport",
    "IdentificationTiming",
]
