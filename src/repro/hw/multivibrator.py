"""Monostable multivibrator model (§3, Figure 2).

A monostable multivibrator, once triggered by a falling edge, emits a
single pulse whose length is ``T = k * R * C`` (Equation 1).  The µPnP
control board chains four of them so each stage's falling edge triggers
the next (Figure 3), producing the 4-pulse identification burst.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hw.components import Capacitor, Resistor


@dataclass
class Multivibrator:
    """One monostable stage with its board-side timing capacitor."""

    capacitor: Capacitor
    k: float = 1.1
    jitter_rel: float = 0.002

    def pulse_seconds(
        self, resistor: Resistor, rng: Optional[random.Random] = None
    ) -> float:
        """Length of the pulse produced with *resistor* switched in.

        Jitter models trigger-threshold noise as a uniform relative
        perturbation of the ideal RC time.
        """
        base = self.k * resistor.actual_ohms * self.capacitor.actual_farads
        if self.jitter_rel <= 0:
            return base
        rng = rng or random
        return base * (1 + rng.uniform(-self.jitter_rel, self.jitter_rel))


class MultivibratorChain:
    """Four serially-triggered stages (Figure 3 / Figure 6).

    The same chain is shared by all channels; the control logic enables
    one channel at a time (Figure 5) so only one peripheral's resistors
    are connected to the chain during a burst.
    """

    STAGES = 4

    def __init__(self, stages: Sequence[Multivibrator]) -> None:
        if len(stages) != self.STAGES:
            raise ValueError(f"chain needs exactly {self.STAGES} stages")
        self._stages = list(stages)

    @classmethod
    def build(
        cls,
        capacitor_farads: float,
        capacitor_tolerance: float = 0.05,
        k: float = 1.1,
        jitter_rel: float = 0.002,
        rng: Optional[random.Random] = None,
    ) -> "MultivibratorChain":
        """Manufacture a chain with independently-sampled capacitors."""
        stages = [
            Multivibrator(
                Capacitor.manufacture(capacitor_farads, capacitor_tolerance, rng),
                k=k,
                jitter_rel=jitter_rel,
            )
            for _ in range(cls.STAGES)
        ]
        return cls(stages)

    @property
    def stages(self) -> List[Multivibrator]:
        return list(self._stages)

    def burst_seconds(
        self, resistors: Sequence[Resistor], rng: Optional[random.Random] = None
    ) -> List[float]:
        """Pulse lengths (T1..T4) with the given peripheral resistors."""
        if len(resistors) != self.STAGES:
            raise ValueError("a burst requires one resistor per stage")
        return [
            stage.pulse_seconds(res, rng)
            for stage, res in zip(self._stages, resistors)
        ]


__all__ = ["Multivibrator", "MultivibratorChain"]
