"""MAX6675 K-type thermocouple converter (Maxim) — SPI peripheral.

The paper's prototypes cover ADC, I2C and UART; µPnP's bus also
encapsulates SPI (§3.1, Table 1), so the catalogue carries this SPI
part to exercise that path end-to-end.

Wire protocol (datasheet): a 16-bit read-only frame, MSB first:

    D15    dummy sign bit (always 0)
    D14..3 12-bit temperature, 0.25 °C per LSB (0 .. 1023.75 °C)
    D2     thermocouple-open fault (1 = no probe attached)
    D1     device id (always 0)
    D0     tri-state

A conversion takes ~220 ms; reads in between return the last value —
modelled with the same clock-callable pattern as the BMP180.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.peripherals.base import Environment

#: Datasheet max conversion time.
CONVERSION_S = 0.22

LSB_PER_DEGREE = 4  # 0.25 degC per LSB
MAX_CODE = 0xFFF


def encode_frame(temp_c: float, *, open_circuit: bool = False) -> int:
    """Build the 16-bit wire frame for *temp_c*."""
    code = max(0, min(MAX_CODE, round(temp_c * LSB_PER_DEGREE)))
    frame = code << 3
    if open_circuit:
        frame |= 0x4
    return frame


def decode_frame(frame: int) -> tuple[float, bool]:
    """(temperature °C, open-circuit flag) from a 16-bit frame."""
    return ((frame >> 3) & MAX_CODE) / LSB_PER_DEGREE, bool(frame & 0x4)


@dataclass
class Max6675:
    """Behavioural MAX6675: shifts the frame out over SPI."""

    env: Environment = field(default_factory=Environment)
    #: True when no thermocouple probe is attached.
    open_circuit: bool = False
    #: Simulation clock (seconds); wired at plug time.
    clock: Callable[[], float] = field(default=lambda: 0.0)

    def __post_init__(self) -> None:
        self._latched_frame = encode_frame(
            self.env.current_temperature_c(), open_circuit=self.open_circuit
        )
        self._last_read_at = float("-inf")
        self._shift_index = 0

    def spi_transfer(self, mosi: bytes) -> bytes:
        """Clock out frame bytes; MOSI content is ignored (read-only part).

        A read completed more than one conversion period after the last
        one latches a fresh conversion; earlier reads re-shift the
        previous frame, like the real part's output register.
        """
        now = self.clock()
        out = bytearray()
        for _ in mosi:
            if self._shift_index == 0:
                if now - self._last_read_at >= CONVERSION_S:
                    self._latched_frame = encode_frame(
                        self.env.current_temperature_c(),
                        open_circuit=self.open_circuit,
                    )
                    self._last_read_at = now
                out.append((self._latched_frame >> 8) & 0xFF)
                self._shift_index = 1
            else:
                out.append(self._latched_frame & 0xFF)
                self._shift_index = 0
        return bytes(out)


__all__ = ["Max6675", "encode_frame", "decode_frame", "CONVERSION_S"]
