"""Behavioural models of the paper's prototype peripherals (Section 6)."""

from repro.peripherals.base import (
    AnalogDevice,
    Environment,
    I2CDevice,
    SpiDevice,
    UartDevice,
)
from repro.peripherals.bmp180 import Bmp180, Calibration
from repro.peripherals.hih4030 import Hih4030
from repro.peripherals.id20la import Id20La
from repro.peripherals.max6675 import Max6675
from repro.peripherals.relay import Relay
from repro.peripherals.tmp36 import Tmp36

__all__ = [
    "AnalogDevice",
    "Environment",
    "I2CDevice",
    "SpiDevice",
    "UartDevice",
    "Bmp180",
    "Calibration",
    "Hih4030",
    "Id20La",
    "Max6675",
    "Relay",
    "Tmp36",
]
