"""Peripheral device-model protocols and the shared physical environment.

Device models implement the *electrical* protocol of the real part
(analog transfer function, I2C register map, UART framing), so the µPnP
drivers exercise exactly the transactions a real driver would.  The
:class:`Environment` holds the ground-truth physical quantities the
sensors observe — experiments set it, drivers must recover it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable


@dataclass
class Environment:
    """Ground-truth physical state observed by all sensors.

    Optional sinusoidal diurnal drift makes long simulations (e.g. the
    Figure 12 year-long energy sweep) produce non-constant readings.
    """

    temperature_c: float = 21.0
    humidity_rh: float = 45.0
    pressure_pa: float = 101_325.0
    #: Amplitude of the diurnal temperature swing (°C); 0 disables drift.
    diurnal_temp_amplitude_c: float = 0.0
    #: Callable returning the current simulation time in seconds.
    clock: Callable[[], float] = field(default=lambda: 0.0)

    SECONDS_PER_DAY = 86_400.0

    def current_temperature_c(self) -> float:
        if self.diurnal_temp_amplitude_c == 0.0:
            return self.temperature_c
        phase = 2.0 * math.pi * (self.clock() % self.SECONDS_PER_DAY) / self.SECONDS_PER_DAY
        return self.temperature_c + self.diurnal_temp_amplitude_c * math.sin(phase)

    def current_humidity_rh(self) -> float:
        return min(100.0, max(0.0, self.humidity_rh))

    def current_pressure_pa(self) -> float:
        return self.pressure_pa


@runtime_checkable
class AnalogDevice(Protocol):
    """A sensor producing a single-ended analog voltage."""

    def voltage_v(self) -> float: ...


@runtime_checkable
class I2CDevice(Protocol):
    """An I2C slave with a 7-bit address."""

    i2c_address: int

    def handle_write(self, data: bytes) -> None: ...

    def handle_read(self, count: int) -> bytes: ...


@runtime_checkable
class SpiDevice(Protocol):
    """A full-duplex SPI slave."""

    def spi_transfer(self, mosi: bytes) -> bytes: ...


class UartDevice:
    """Base for UART peripherals; binds to a :class:`UartBus` at plug time.

    Subclasses call :meth:`transmit` to push bytes toward the MCU and
    override :meth:`on_host_write` to react to MCU output.
    """

    def __init__(self) -> None:
        self._bus = None

    def bind(self, bus) -> None:
        """Wire this device to its bus (done when the mux switches in)."""
        self._bus = bus

    def unbind(self) -> None:
        self._bus = None

    @property
    def bound(self) -> bool:
        return self._bus is not None

    def transmit(self, data: bytes) -> float:
        """Send *data* to the MCU; returns the line time consumed."""
        if self._bus is None:
            raise RuntimeError("UART device is not bound to a bus")
        return self._bus.device_transmit(data)

    def on_host_write(self, data: bytes) -> None:
        """MCU wrote *data* to the device; default devices ignore it."""


__all__ = [
    "Environment",
    "AnalogDevice",
    "I2CDevice",
    "SpiDevice",
    "UartDevice",
]
