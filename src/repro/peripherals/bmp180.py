"""BMP180 digital barometric pressure sensor (Bosch) [9].

A complete behavioural model of the part's I2C interface:

* calibration EEPROM at 0xAA..0xBF (11 signed/unsigned 16-bit words),
* chip-id register (0xD0 == 0x55), soft reset (0xE0),
* control register 0xF4 starting temperature (0x2E) or pressure
  (0x34 | oss << 6) conversions with datasheet conversion times,
* 3-byte result registers 0xF6..0xF8.

The model computes the *uncompensated* values UT/UP by numerically
inverting the datasheet compensation algorithm against the ground-truth
environment, so a driver that implements the (integer) compensation
correctly recovers the environment temperature and pressure.  The
forward algorithm here follows the datasheet reference code with
consistent floor-division semantics; the shipped µPnP DSL driver and
the C reference driver implement the identical arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.peripherals.base import Environment

I2C_ADDRESS = 0x77
CHIP_ID = 0x55

REG_CALIB_START = 0xAA
REG_CHIP_ID = 0xD0
REG_SOFT_RESET = 0xE0
REG_CTRL_MEAS = 0xF4
REG_OUT_MSB = 0xF6
REG_OUT_LSB = 0xF7
REG_OUT_XLSB = 0xF8

CMD_TEMPERATURE = 0x2E
CMD_PRESSURE_BASE = 0x34
SOFT_RESET_MAGIC = 0xB6

#: Datasheet conversion times per oversampling setting (seconds).
TEMP_CONVERSION_S = 4.5e-3
PRESSURE_CONVERSION_S = {0: 4.5e-3, 1: 7.5e-3, 2: 13.5e-3, 3: 25.5e-3}


@dataclass(frozen=True)
class Calibration:
    """The 11 calibration coefficients stored in the part's EEPROM."""

    ac1: int = 408
    ac2: int = -72
    ac3: int = -14383
    ac4: int = 32741
    ac5: int = 32757
    ac6: int = 23153
    b1: int = 6190
    b2: int = 4
    mb: int = -32768
    mc: int = -8711
    md: int = 2868

    def to_eeprom(self) -> bytes:
        """22-byte big-endian EEPROM image (registers 0xAA..0xBF)."""
        out = bytearray()
        for name in ("ac1", "ac2", "ac3", "ac4", "ac5", "ac6",
                     "b1", "b2", "mb", "mc", "md"):
            value = getattr(self, name)
            signed = name not in ("ac4", "ac5", "ac6")
            out += value.to_bytes(2, "big", signed=signed)
        return bytes(out)

    @classmethod
    def from_eeprom(cls, data: bytes) -> "Calibration":
        """Parse a 22-byte EEPROM image back into coefficients."""
        if len(data) != 22:
            raise ValueError("BMP180 EEPROM image is exactly 22 bytes")
        names = ("ac1", "ac2", "ac3", "ac4", "ac5", "ac6",
                 "b1", "b2", "mb", "mc", "md")
        values = {}
        for i, name in enumerate(names):
            signed = name not in ("ac4", "ac5", "ac6")
            values[name] = int.from_bytes(data[2 * i : 2 * i + 2], "big", signed=signed)
        return cls(**values)


def _cdiv(a: int, b: int) -> int:
    """C-style division (truncate toward zero) — matches the VM's DIV."""
    if b == 0:
        raise ValueError("compensation singularity: UT outside the part's "
                         "operating range (x1 + MD == 0)")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def min_valid_ut(cal: "Calibration") -> int:
    """Smallest UT on the physical (monotonic) branch of the datasheet
    temperature formula.

    The compensation divides by ``x1 + MD``; the pole sits far below the
    part's rated -40 °C, so real conversions always land on the branch
    where ``x1 + MD >= 1``.  Numeric inversion must stay on that branch.
    """
    # x1 = ((ut - ac6) * ac5) >> 15  >=  1 - md
    needed = 1 - cal.md
    ut = cal.ac6 + ((needed << 15) + cal.ac5 - 1) // cal.ac5
    return min(0xFFFF, max(0, ut + 16))  # margin away from the pole


def compensate_temperature(ut: int, cal: Calibration) -> Tuple[int, int]:
    """Datasheet temperature compensation.

    Returns ``(temperature_decidegrees, b5)`` — B5 feeds the pressure
    path.  Arithmetic semantics match the C reference code (and the
    µPnP VM): ``>>`` is an arithmetic (floor) shift, ``/`` truncates
    toward zero.
    """
    x1 = ((ut - cal.ac6) * cal.ac5) >> 15
    x2 = _cdiv(cal.mc * 2048, x1 + cal.md)
    b5 = x1 + x2
    temperature = (b5 + 8) >> 4
    return temperature, b5


def compensate_pressure(up: int, b5: int, oss: int, cal: Calibration) -> int:
    """Datasheet pressure compensation; returns pascals."""
    if oss not in PRESSURE_CONVERSION_S:
        raise ValueError(f"invalid oversampling setting: {oss}")
    b6 = b5 - 4000
    x1 = (cal.b2 * ((b6 * b6) >> 12)) >> 11
    x2 = (cal.ac2 * b6) >> 11
    x3 = x1 + x2
    b3 = _cdiv(((cal.ac1 * 4 + x3) << oss) + 2, 4)
    x1 = (cal.ac3 * b6) >> 13
    x2 = (cal.b1 * ((b6 * b6) >> 12)) >> 16
    x3 = ((x1 + x2) + 2) >> 2
    b4 = (cal.ac4 * (x3 + 32768)) >> 15
    b7 = (up - b3) * (50000 >> oss)
    if b7 < 0x80000000:
        pressure = _cdiv(b7 * 2, b4)
    else:
        pressure = _cdiv(b7, b4) * 2
    x1 = (pressure >> 8) * (pressure >> 8)
    x1 = (x1 * 3038) >> 16
    x2 = (-7357 * pressure) >> 16
    return pressure + ((x1 + x2 + 3791) >> 4)


def _bisect_int(lo: int, hi: int, predicate: Callable[[int], bool]) -> int:
    """Smallest x in [lo, hi] with predicate(x) true (predicate monotone)."""
    while lo < hi:
        mid = (lo + hi) // 2
        if predicate(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def uncompensated_temperature(temp_c: float, cal: Calibration) -> int:
    """Invert the temperature compensation: °C -> UT (16-bit).

    Searches only the physical branch of the formula (see
    :func:`min_valid_ut`) where temperature is monotone in UT.
    """
    target = round(temp_c * 10.0)
    lo = min_valid_ut(cal)
    ut = _bisect_int(lo, 0xFFFF,
                     lambda u: compensate_temperature(u, cal)[0] >= target)
    return max(lo, min(0xFFFF, ut))


def uncompensated_pressure(pressure_pa: float, b5: int, oss: int,
                           cal: Calibration) -> int:
    """Invert the pressure compensation: Pa -> UP for a given B5/oss.

    The compensated output is quantised (one UP step is ~3 Pa at
    oss=0), so after bisecting to the first UP at or above the target
    the lower neighbour may be strictly closer; pick whichever lands
    nearest the true pressure.
    """
    hi = (1 << (16 + oss)) - 1
    up = _bisect_int(
        0, hi, lambda u: compensate_pressure(u, b5, oss, cal) >= pressure_pa
    )
    up = max(0, min(hi, up))
    if up > 0:
        above = compensate_pressure(up, b5, oss, cal)
        below = compensate_pressure(up - 1, b5, oss, cal)
        if abs(below - pressure_pa) < abs(above - pressure_pa):
            up -= 1
    return up


@dataclass
class Bmp180:
    """Behavioural BMP180 I2C slave."""

    env: Environment = field(default_factory=Environment)
    cal: Calibration = field(default_factory=Calibration)
    i2c_address: int = I2C_ADDRESS
    #: Returns current simulation time (seconds); wired at plug time.
    clock: Callable[[], float] = field(default=lambda: 0.0)

    def __post_init__(self) -> None:
        self._regs: Dict[int, int] = {REG_CHIP_ID: CHIP_ID}
        eeprom = self.cal.to_eeprom()
        for offset, byte in enumerate(eeprom):
            self._regs[REG_CALIB_START + offset] = byte
        self._reg_pointer = 0
        self._conversion_ready_at = 0.0
        self._pending: Optional[int] = None
        self._last_b5 = 0
        self._set_output(0)

    # ------------------------------------------------------------ I2C slave
    def handle_write(self, data: bytes) -> None:
        """Register-pointer write, optionally followed by register data."""
        if not data:
            return
        self._reg_pointer = data[0]
        for offset, value in enumerate(data[1:]):
            self._write_register(self._reg_pointer + offset, value)

    def handle_read(self, count: int) -> bytes:
        """Sequential read from the current register pointer."""
        self._finish_conversion_if_due()
        out = bytearray()
        for i in range(count):
            register = self._reg_pointer + i
            value = self._regs.get(register, 0x00)
            if register == REG_CTRL_MEAS:
                # Sco (start-of-conversion) bit reads 1 while converting;
                # drivers poll it instead of needing a delay primitive.
                if self.conversion_pending:
                    value |= 0x20
                else:
                    value &= ~0x20
            out.append(value)
        return bytes(out)

    # ------------------------------------------------------------ behaviour
    def _write_register(self, register: int, value: int) -> None:
        if register == REG_SOFT_RESET and value == SOFT_RESET_MAGIC:
            self._pending = None
            self._set_output(0)
            return
        if register == REG_CTRL_MEAS:
            self._start_conversion(value)
            return
        self._regs[register] = value & 0xFF

    def _start_conversion(self, command: int) -> None:
        self._regs[REG_CTRL_MEAS] = command & 0xFF
        if command == CMD_TEMPERATURE:
            duration = TEMP_CONVERSION_S
        elif command & 0x3F == CMD_PRESSURE_BASE:
            oss = (command >> 6) & 0x03
            duration = PRESSURE_CONVERSION_S[oss]
        else:
            return  # undefined command: no conversion starts
        self._pending = command & 0xFF
        self._conversion_ready_at = self.clock() + duration

    def _finish_conversion_if_due(self) -> None:
        if self._pending is None or self.clock() < self._conversion_ready_at:
            return
        command = self._pending
        self._pending = None
        if command == CMD_TEMPERATURE:
            ut = uncompensated_temperature(self.env.current_temperature_c(), self.cal)
            self._last_b5 = compensate_temperature(ut, self.cal)[1]
            self._set_output(ut << 8)  # UT occupies MSB/LSB; XLSB zero
        else:
            oss = (command >> 6) & 0x03
            up = uncompensated_pressure(
                self.env.current_pressure_pa(), self._last_b5, oss, self.cal
            )
            self._set_output(up << (8 - oss))

    def _set_output(self, raw24: int) -> None:
        raw24 &= 0xFFFFFF
        self._regs[REG_OUT_MSB] = (raw24 >> 16) & 0xFF
        self._regs[REG_OUT_LSB] = (raw24 >> 8) & 0xFF
        self._regs[REG_OUT_XLSB] = raw24 & 0xFF

    # ----------------------------------------------------------- inspection
    @property
    def conversion_pending(self) -> bool:
        return self._pending is not None and self.clock() < self._conversion_ready_at

    def conversion_time_s(self, command: int) -> float:
        """Datasheet conversion time for a 0xF4 command byte."""
        if command == CMD_TEMPERATURE:
            return TEMP_CONVERSION_S
        if command & 0x3F == CMD_PRESSURE_BASE:
            return PRESSURE_CONVERSION_S[(command >> 6) & 0x03]
        raise ValueError(f"not a conversion command: {command:#04x}")


__all__ = [
    "Bmp180",
    "Calibration",
    "min_valid_ut",
    "compensate_temperature",
    "compensate_pressure",
    "uncompensated_temperature",
    "uncompensated_pressure",
    "I2C_ADDRESS",
    "CHIP_ID",
    "REG_CALIB_START",
    "REG_CHIP_ID",
    "REG_CTRL_MEAS",
    "REG_OUT_MSB",
    "REG_SOFT_RESET",
    "CMD_TEMPERATURE",
    "CMD_PRESSURE_BASE",
    "TEMP_CONVERSION_S",
    "PRESSURE_CONVERSION_S",
]
