"""HIH-4030 analog humidity sensor (Honeywell) [18].

Datasheet transfer function (at the nominal 5 V supply):

    Vout = Vsupply * (0.0062 * RH + 0.16)

with a temperature-compensation term for true RH:

    RH_true = RH_sensor / (1.0546 - 0.00216 * T)

The Grove module used in the paper runs the part ratiometrically from
the 3.3 V rail, so the model takes the supply as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.peripherals.base import Environment

SLOPE = 0.0062
OFFSET = 0.16
TEMP_COMP_A = 1.0546
TEMP_COMP_B = 0.00216


@dataclass
class Hih4030:
    """Behavioural HIH-4030: environment humidity -> output voltage."""

    env: Environment = field(default_factory=Environment)
    supply_v: float = 3.3

    def voltage_v(self) -> float:
        """Output voltage for the current humidity and temperature.

        The physical sensor element reads *sensor RH*, which differs
        from true RH by the temperature-dependent factor; the model
        applies the forward direction so drivers must compensate.
        """
        rh_true = self.env.current_humidity_rh()
        t = self.env.current_temperature_c()
        rh_sensor = rh_true * (TEMP_COMP_A - TEMP_COMP_B * t)
        voltage = self.supply_v * (SLOPE * rh_sensor + OFFSET)
        return max(0.0, min(self.supply_v, voltage))

    @staticmethod
    def millivolts_to_rh_tenths(millivolts: int, supply_mv: int = 3300,
                                temperature_decidegrees: int = 250) -> int:
        """Fixed-point conversion as performed by an integer driver.

        Returns tenths of %RH.  Mirrors the arithmetic of the µPnP DSL
        driver: sensor RH from the ratiometric output, then temperature
        compensation, all in scaled integers.

        ``rh_sensor_tenths = (mv*10000/supply - 1600) * 10 / 62``
        ``rh_true_tenths   = rh_sensor_tenths * 10000 /
        (10546 - 216 * T_decidegrees / 100)``
        """
        ratio = millivolts * 10_000 // supply_mv           # V/Vs * 1e4
        rh_sensor_tenths = (ratio - 1_600) * 10 // 62
        comp = 10_546 - 216 * temperature_decidegrees // 100
        return max(0, min(1000, rh_sensor_tenths * 10_000 // comp))


__all__ = ["Hih4030", "SLOPE", "OFFSET", "TEMP_COMP_A", "TEMP_COMP_B"]
