"""A simple I2C relay actuator board.

The paper motivates actuators (relay switches, §2) as first-class µPnP
peripherals; the access-control example uses this relay as a door lock.
Protocol: write ``[0x00, state]`` to set the relay, read one byte to get
the current state.  Any nonzero state value energises the coil.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

I2C_ADDRESS = 0x20

REG_STATE = 0x00


@dataclass
class Relay:
    """Behavioural single-channel relay with switch-count diagnostics."""

    i2c_address: int = I2C_ADDRESS
    state: bool = False
    switch_count: int = 0
    history: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._reg_pointer = REG_STATE

    def handle_write(self, data: bytes) -> None:
        if not data:
            return
        self._reg_pointer = data[0]
        if len(data) > 1 and self._reg_pointer == REG_STATE:
            new_state = bool(data[1])
            if new_state != self.state:
                self.switch_count += 1
            self.state = new_state
            self.history.append(new_state)

    def handle_read(self, count: int) -> bytes:
        if self._reg_pointer == REG_STATE:
            payload = bytes([1 if self.state else 0])
        else:
            payload = b"\x00"
        return (payload * count)[:count]


__all__ = ["Relay", "I2C_ADDRESS", "REG_STATE"]
