"""ID-20LA 125 kHz RFID card reader (ID Innovations) [19].

The reader is a transmit-only UART peripheral at 9600-8-N-1.  When a
card enters the field it emits one ASCII frame:

    STX(0x02) | 10 hex data chars | 2 hex checksum chars | CR LF | ETX(0x03)

The checksum is the XOR of the five data bytes.  The µPnP driver
(Listing 1 of the paper) ignores STX/ETX/CR/LF and collects the 12
hex characters (data + checksum).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.peripherals.base import UartDevice

STX = 0x02
ETX = 0x03
CR = 0x0D
LF = 0x0A

FRAME_DATA_CHARS = 10
FRAME_CHECKSUM_CHARS = 2


def checksum(card_hex: str) -> int:
    """XOR of the five data bytes of a 10-hex-char card id."""
    if len(card_hex) != FRAME_DATA_CHARS:
        raise ValueError("card id must be exactly 10 hex characters")
    value = 0
    for i in range(0, FRAME_DATA_CHARS, 2):
        value ^= int(card_hex[i : i + 2], 16)
    return value


def build_frame(card_hex: str) -> bytes:
    """The 16-byte ASCII frame the reader emits for *card_hex*."""
    card_hex = card_hex.upper()
    int(card_hex, 16)  # validates hex
    csum = checksum(card_hex)
    body = card_hex + f"{csum:02X}"
    return bytes([STX]) + body.encode("ascii") + bytes([CR, LF, ETX])


def verify_frame_payload(payload: str) -> bool:
    """Check the 12-char payload (10 data + 2 checksum) for consistency."""
    if len(payload) != FRAME_DATA_CHARS + FRAME_CHECKSUM_CHARS:
        return False
    try:
        return checksum(payload[:FRAME_DATA_CHARS]) == int(payload[FRAME_DATA_CHARS:], 16)
    except ValueError:
        return False


@dataclass
class Id20La(UartDevice):
    """Behavioural ID-20LA: presents cards; emits frames over UART."""

    #: Frames transmitted so far (diagnostics).
    frames_sent: int = 0
    #: History of card ids presented (diagnostics).
    history: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        UartDevice.__init__(self)

    def present_card(self, card_hex: str) -> float:
        """Wave a card over the reader; returns UART line time consumed.

        Raises if the device is not plugged in (not bound to a bus) —
        physically, an unplugged reader has no field to read the card.
        """
        frame = build_frame(card_hex)
        duration = self.transmit(frame)
        self.frames_sent += 1
        self.history.append(card_hex.upper())
        return duration


__all__ = [
    "Id20La",
    "build_frame",
    "checksum",
    "verify_frame_payload",
    "STX",
    "ETX",
    "CR",
    "LF",
]
