"""TMP36 analog temperature sensor (Analog Devices) [4].

Transfer function from the datasheet: 750 mV at 25 °C with a 10 mV/°C
slope, i.e. ``V = 0.5 + 0.01 * T`` — a 0 V..2 V swing over the rated
-40 °C..+125 °C range.  The part needs no configuration at all, which
is why its µPnP driver is the smallest in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.peripherals.base import Environment

RANGE_C = (-40.0, 125.0)
OFFSET_V = 0.5
SLOPE_V_PER_C = 0.010


@dataclass
class Tmp36:
    """Behavioural TMP36: environment temperature -> output voltage."""

    env: Environment = field(default_factory=Environment)
    #: Datasheet accuracy: ±1 °C typical at 25 °C, modelled as fixed offset.
    offset_error_c: float = 0.0

    def voltage_v(self) -> float:
        """Output voltage for the current environment temperature."""
        t = self.env.current_temperature_c() + self.offset_error_c
        t = max(RANGE_C[0], min(RANGE_C[1], t))
        return OFFSET_V + SLOPE_V_PER_C * t

    @staticmethod
    def millivolts_to_decidegrees(millivolts: int) -> int:
        """The integer conversion a fixed-point driver performs.

        Returns tenths of a degree Celsius: ``(mV - 500)``, since
        1 mV = 0.1 °C for this part.
        """
        return millivolts - 500


__all__ = ["Tmp36", "RANGE_C", "OFFSET_V", "SLOPE_V_PER_C"]
