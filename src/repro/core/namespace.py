"""Extension: a structured µPnP name space (§9, "µPnP Name Space").

The paper's future work proposes restructuring the flat 32-bit address
space "inspired by the ID structure of PCI and USB, which includes a
vendor ID and device ID", possibly with "hierarchical device typing".
This module implements that proposal on top of the existing address
space, backwards-compatibly: a structured identifier *is* a 32-bit
µPnP device id, so all hardware encoding, multicast mapping and driver
management work unchanged.

Layout (32 bits):

    | 4 bits  | 12 bits   | 6 bits | 10 bits |
    | scheme  | vendor id | class  | product |

* ``scheme`` = 0x7 marks structured ids (flat legacy ids keep the rest
  of the space; the two reserved values can never collide since their
  top nibble is 0x0/0xF);
* ``vendor`` — 4096 vendors, allocated through the registry;
* ``device class`` — hierarchical typing (temperature, humidity, ...);
* ``product`` — 1024 products per vendor and class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hw.device_id import DeviceId

STRUCTURED_SCHEME = 0x7

_VENDOR_BITS = 12
_CLASS_BITS = 6
_PRODUCT_BITS = 10

MAX_VENDOR = (1 << _VENDOR_BITS) - 1
MAX_PRODUCT = (1 << _PRODUCT_BITS) - 1


class DeviceClass(enum.IntEnum):
    """Hierarchical device typing (§9)."""

    GENERIC = 0
    TEMPERATURE = 1
    HUMIDITY = 2
    PRESSURE = 3
    LIGHT = 4
    MOTION = 5
    IDENTIFICATION = 6   # RFID, barcode, biometric readers
    SWITCH = 16          # relays, contactors
    DISPLAY = 17
    AUDIO = 18
    RADIO = 32


class NamespaceError(ValueError):
    """Invalid structured-identifier fields or allocations."""


@dataclass(frozen=True)
class StructuredId:
    """A PCI/USB-style vendor+class+product identifier."""

    vendor: int
    device_class: DeviceClass
    product: int

    def __post_init__(self) -> None:
        if not 0 <= self.vendor <= MAX_VENDOR:
            raise NamespaceError(f"vendor id out of range: {self.vendor}")
        if not 0 <= self.product <= MAX_PRODUCT:
            raise NamespaceError(f"product id out of range: {self.product}")

    def to_device_id(self) -> DeviceId:
        value = (
            (STRUCTURED_SCHEME << 28)
            | (self.vendor << (_CLASS_BITS + _PRODUCT_BITS))
            | (int(self.device_class) << _PRODUCT_BITS)
            | self.product
        )
        return DeviceId(value)

    @classmethod
    def from_device_id(cls, device_id: DeviceId) -> "StructuredId":
        value = device_id.value
        if (value >> 28) != STRUCTURED_SCHEME:
            raise NamespaceError(f"{device_id} is not a structured id")
        vendor = (value >> (_CLASS_BITS + _PRODUCT_BITS)) & MAX_VENDOR
        class_bits = (value >> _PRODUCT_BITS) & ((1 << _CLASS_BITS) - 1)
        product = value & MAX_PRODUCT
        try:
            device_class = DeviceClass(class_bits)
        except ValueError:
            device_class = DeviceClass.GENERIC
        return cls(vendor, device_class, product)

    def __str__(self) -> str:
        return (f"{self.vendor:03x}:{int(self.device_class):02x}:"
                f"{self.product:03x}")


def is_structured(device_id: DeviceId) -> bool:
    return (device_id.value >> 28) == STRUCTURED_SCHEME


class VendorRegistry:
    """Allocates vendor ids and per-vendor product numbers.

    Sits alongside :class:`repro.core.registry.Registry`: a vendor first
    registers here, then requests concrete addresses (with the derived
    ``preferred_id``) in the global address space as usual.
    """

    def __init__(self) -> None:
        self._vendors: Dict[int, str] = {}
        self._by_name: Dict[str, int] = {}
        self._next_product: Dict[int, Dict[DeviceClass, int]] = {}

    def register_vendor(self, name: str) -> int:
        """Allocate the next vendor id for *name* (idempotent by name)."""
        if not name:
            raise NamespaceError("vendor name required")
        if name in self._by_name:
            return self._by_name[name]
        vendor = len(self._vendors) + 1
        if vendor > MAX_VENDOR:
            raise NamespaceError("vendor space exhausted")
        self._vendors[vendor] = name
        self._by_name[name] = vendor
        self._next_product[vendor] = {}
        return vendor

    def vendor_name(self, vendor: int) -> Optional[str]:
        return self._vendors.get(vendor)

    def allocate_product(
        self, vendor: int, device_class: DeviceClass
    ) -> StructuredId:
        """Next product number for (vendor, class)."""
        if vendor not in self._vendors:
            raise NamespaceError(f"unknown vendor {vendor}")
        per_class = self._next_product[vendor]
        product = per_class.get(device_class, 0)
        if product > MAX_PRODUCT:
            raise NamespaceError("product space exhausted for this class")
        per_class[device_class] = product + 1
        return StructuredId(vendor, device_class, product)

    def products_of(self, vendor: int) -> List[StructuredId]:
        per_class = self._next_product.get(vendor, {})
        return [
            StructuredId(vendor, device_class, product)
            for device_class, count in sorted(per_class.items())
            for product in range(count)
        ]


__all__ = [
    "DeviceClass",
    "NamespaceError",
    "StructuredId",
    "VendorRegistry",
    "is_structured",
    "STRUCTURED_SCHEME",
    "MAX_VENDOR",
    "MAX_PRODUCT",
]
