"""The µPnP Thing (§5): an IoT device with µPnP hardware + runtime.

A Thing composes the whole stack of the paper:

* a control board with identification hardware (§3),
* the execution environment — peripheral controller, driver manager,
  VM, event router, native libraries (§4),
* a network stack speaking the µPnP protocol (§5).

Plugging a peripheral board in triggers, in order: hardware
identification, multicast-group generation and join, driver
installation from the manager (if not locally available), driver
activation and finally an unsolicited advertisement — the exact
sequence Table 4 measures.  Every step appends to :attr:`events` with
its simulation timestamp so experiments can observe the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.hw.connector import BusKind
from repro.hw.control_board import ControlBoard
from repro.hw.device_id import ALL_PERIPHERALS, DeviceId
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC
from repro.hw.peripheral_board import PeripheralBoard
from repro.hw.power import EnergyMeter
from repro.interconnect.adc import AdcBus
from repro.interconnect.i2c import I2cBus
from repro.interconnect.spi import SpiBus
from repro.interconnect.uart import UartBus
from repro.net.ipv6 import Ipv6Address
from repro.net.multicast import (
    all_clients_group,
    location_group,
    peripheral_group,
    stream_group,
)
from repro.net.network import Network
from repro.net.packets import UPNP_PORT, UdpDatagram
from repro.net.stack import NetworkStack
from repro.peripherals.base import UartDevice
from repro.protocol import messages as proto
from repro.protocol.messages import SequenceCounter, decode_message
from repro.protocol.reliability import (
    DEFAULT_INSTALL_RETRY,
    MISS,
    DuplicateCache,
    ReplyCache,
    RetryPolicy,
    request_key,
)
from repro.protocol.tlv import Tlv, TlvType
from repro.sim.kernel import EventHandle, Simulator, ns_from_s
from repro.sim.rng import RngRegistry
from repro.vm.driver_manager import DriverManager
from repro.vm.machine import ReturnValue
from repro.vm.peripheral_controller import (
    IdentificationOutcome,
    PeripheralController,
)
from repro.vm.router import EventRouter

#: The µPnP manager anycast address used in Figure 11.
DEFAULT_MANAGER_ANYCAST = "2001:db8:aaaa::1"


@dataclass(frozen=True)
class ThingEvent:
    """One step of the plug-in pipeline, timestamped for experiments."""

    time_s: float
    kind: str
    device_id: Optional[DeviceId] = None
    detail: str = ""


@dataclass
class _InstallRequest:
    """One in-flight driver install request (retransmitted until served)."""

    device_id: DeviceId
    seq: int
    message: bytes
    attempts: int = 1
    timer: Optional[EventHandle] = None

    def cancel(self) -> None:
        if self.timer is not None:
            self.timer.cancel()


@dataclass
class _StreamState:
    device_id: DeviceId
    group: Ipv6Address
    interval_s: float
    subscribers: int = 0
    timer: Optional[EventHandle] = None
    seq: SequenceCounter = field(default_factory=SequenceCounter)


class Thing:
    """One embedded IoT device running the full µPnP stack."""

    SNAPSHOT_SCHEMA = {
        "layer": "core",
        "version": 1,
        "fields": ("sim", "label", "meter", "_rng", "board", "router",
                   "drivers", "controller", "stack", "_seq", "_buses",
                   "_groups", "_pending_driver", "_streams",
                   "_install_requests", "_replies", "_upload_dups",
                   "_crashed", "timer_scale", "events"),
    }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        *,
        channels: int = 3,
        codec: CodecParams = DEFAULT_CODEC,
        rng: Optional[RngRegistry] = None,
        manager_anycast: str = DEFAULT_MANAGER_ANYCAST,
        default_stream_interval_s: float = 10.0,
        zone: Optional[int] = None,
        label: str = "",
        install_retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = sim
        self.label = label or f"thing-{node_id}"
        self.meter = EnergyMeter()
        rng = rng or RngRegistry(node_id)
        self._rng = rng
        self.board = ControlBoard(
            channels,
            params=codec,
            rng=rng.stream("board"),
            meter=self.meter,
        )
        self.router = EventRouter(sim, meter=self.meter, label=self.label)
        self.drivers = DriverManager(sim, self.router)
        self.controller = PeripheralController(sim, self.board, meter=self.meter)
        self.stack = NetworkStack(network, node_id, meter=self.meter)
        self.stack.bind(UPNP_PORT, self._on_datagram)
        self.controller.on_change(self._on_identification)
        self._manager_address = Ipv6Address.parse(manager_anycast)
        self._default_stream_interval_s = default_stream_interval_s
        #: Physical zone for location-aware groups (§9 extension).
        self.zone = zone
        self._seq = SequenceCounter(node_id * 257)
        self._buses: Dict[int, object] = {}
        self._groups: Dict[int, Ipv6Address] = {}
        self._pending_driver: Dict[int, Set[int]] = {}
        self._streams: Dict[int, _StreamState] = {}
        self._install_traces: Dict[int, int] = {}
        self._install_retry = (
            install_retry if install_retry is not None else DEFAULT_INSTALL_RETRY
        )
        self._retry_rng = rng.stream("install-retry")
        #: Protocol-timer scale (chaos clock-skew hook; 1.0 = nominal).
        self.timer_scale = 1.0
        #: In-flight install requests, keyed by device id (bounded: every
        #: entry either completes or expires after the retry schedule).
        self._install_requests: Dict[int, _InstallRequest] = {}
        #: Request → reply memo: a retransmitted read/write/discovery is
        #: answered from cache, never re-executed (at-most-once).
        self._replies = ReplyCache(512)
        #: Reply-cache hits from caches discarded by crashes (the
        #: telemetry total is monotonic even though the cache is not).
        self._reply_cache_hits = 0
        #: Seen driver uploads; a duplicated upload never flashes twice.
        self._upload_dups = DuplicateCache(256)
        self._crashed = False
        self._boot_advertise = False
        self.events: List[ThingEvent] = []
        self._listeners: List[Callable[[ThingEvent], None]] = []

    # ----------------------------------------------------------- conveniences
    @property
    def address(self) -> Ipv6Address:
        return self.stack.address

    @property
    def network(self) -> Network:
        return self.stack.network

    def log(self, kind: str, device_id: Optional[DeviceId] = None,
            detail: str = "") -> None:
        event = ThingEvent(self.sim.now_s, kind, device_id, detail)
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def add_listener(self, listener: Callable[[ThingEvent], None]) -> None:
        """Observe pipeline events as they happen (fleet metrics hook)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[ThingEvent], None]) -> None:
        """Detach a listener added via :meth:`add_listener`.  Idempotent —
        the gateway's streaming fan-out detaches on close without having
        to track whether the attach ever happened."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def events_of(self, kind: str) -> List[ThingEvent]:
        return [e for e in self.events if e.kind == kind]

    def pending_installs(self) -> int:
        """In-flight driver requests (bounded: each expires by policy)."""
        return len(self._install_requests)

    @property
    def reply_cache_hits(self) -> int:
        """Duplicate requests served (or absorbed) by the reply cache.

        Survives crash/reboot cycles: the live cache is replaced on
        crash (volatile RAM), but the running total is telemetry's and
        must not reset with it.
        """
        return self._reply_cache_hits + self._replies.hits

    def set_timer_scale(self, scale: float) -> None:
        """Scale every future protocol timer (chaos clock-skew hook)."""
        if scale <= 0:
            raise ValueError("timer scale must be positive")
        self.timer_scale = scale

    @property
    def crashed(self) -> bool:
        return self._crashed

    # ------------------------------------------------------------ crash/reboot
    def crash(self) -> None:
        """Sudden power loss: volatile state gone, radio silent.

        Installed driver images persist (they live in flash, §4.2); the
        RAM side — active channel bindings, streams, pending requests,
        reply caches, group memberships — is lost.  The network stack is
        downed first so nothing (including stream-closed notifications a
        live unplug would send) escapes the dying node.
        """
        if self._crashed:
            return
        self._crashed = True
        self.log("crashed")
        self.stack.set_down(True)
        for channel in list(self.drivers.active_channels()):
            self.drivers.deactivate(channel)
        for bus in self._buses.values():
            if bus.device is not None:
                device = bus.detach()
                if isinstance(device, UartDevice):
                    device.unbind()
        self._buses.clear()
        for value, group in self._groups.items():
            self.stack.leave_group(group)
            if self.zone is not None:
                self.stack.leave_group(
                    location_group(self.network.prefix48, DeviceId(value),
                                   self.zone)
                )
        self._groups.clear()
        for state in self._streams.values():
            if state.timer is not None:
                state.timer.cancel()
        self._streams.clear()
        for request in self._install_requests.values():
            request.cancel()
        self._install_requests.clear()
        self._pending_driver.clear()
        self._install_traces.clear()
        self._reply_cache_hits += self._replies.hits
        self._replies = ReplyCache(self._replies.capacity)
        self._upload_dups = DuplicateCache(self._upload_dups.capacity)
        self.controller.reset()

    def reboot(self) -> None:
        """Power back on: re-identify attached boards and re-advertise.

        Peripheral boards that stayed physically plugged through the
        outage are re-identified from scratch (the controller's knowledge
        was volatile), re-joined to their groups and re-activated — their
        drivers are still in flash, so no install round-trip is needed —
        ending in a fresh unsolicited advertisement.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.stack.set_down(False)
        self.log("rebooted")
        self._boot_advertise = True
        self.controller.trigger()

    # ------------------------------------------------------------ plug/unplug
    def plug(self, board: PeripheralBoard, channel: Optional[int] = None) -> int:
        """Physically connect a peripheral board (fires the interrupt)."""
        device = board.device
        if device is not None and hasattr(device, "clock"):
            device.clock = lambda: self.sim.now_s
        return self.board.connect(board, channel)

    def unplug(self, channel: int) -> PeripheralBoard:
        """Physically disconnect the board in *channel*."""
        return self.board.disconnect(channel)

    def connected_peripherals(self) -> Dict[int, DeviceId]:
        return self.controller.known_peripherals()

    def read_local(self, device_id: DeviceId | int,
                   callback: Callable[[Optional[ReturnValue]], None]) -> bool:
        """Local (non-networked) read, e.g. for on-device application code."""
        return self.drivers.read(device_id, callback)

    # --------------------------------------------------------- identification
    def _on_identification(self, outcome: IdentificationOutcome) -> None:
        self.log("identification", detail=f"{outcome.report.total_seconds * 1e3:.1f}ms")
        for channel, device_id in outcome.removed.items():
            self._teardown_channel(channel, device_id)
        for channel, device_id in outcome.added.items():
            self._setup_channel(channel, device_id)
        if outcome.removed and not outcome.added:
            # Departures advertise immediately; arrivals advertise at the
            # end of their setup pipeline.
            self._advertise_unsolicited()
        if self._boot_advertise:
            self._boot_advertise = False
            if not outcome.added:
                # Boot scan found nothing new (e.g. no boards survived the
                # outage): still announce we are back.
                self._advertise_unsolicited()

    def _setup_channel(self, channel: int, device_id: DeviceId) -> None:
        self.log("identified", device_id, detail=f"channel {channel}")

        def after_group(group: Ipv6Address) -> None:
            if self._crashed:
                return  # power died while the address was being derived
            self._groups[device_id.value] = group
            self.log("group-generated", device_id, detail=str(group))
            self.stack.join_group(group, lambda: after_join())

        def after_join() -> None:
            if self._crashed:
                return
            self.log("group-joined", device_id)
            if self.zone is not None:
                zoned = location_group(self.network.prefix48, device_id,
                                       self.zone)
                self.stack.join_group(zoned, after_zone_join)
            else:
                self._ensure_driver(channel, device_id)

        def after_zone_join() -> None:
            self.log("location-group-joined", device_id,
                     detail=f"zone {self.zone}")
            self._ensure_driver(channel, device_id)

        self.stack.generate_group_address(device_id, after_group)

    def _ensure_driver(self, channel: int, device_id: DeviceId) -> None:
        if self.drivers.has_driver(device_id):
            self._activate_channel(channel, device_id)
            return
        waiting = self._pending_driver.setdefault(device_id.value, set())
        first_request = not waiting
        waiting.add(channel)
        if first_request:
            request = proto.DriverInstallRequest(self._seq.next(), device_id)
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled_for("core"):
                trace_id = (tracer.current if tracer.current is not None
                            else tracer.new_trace())
                self._install_traces[device_id.value] = trace_id
                tracer.current = trace_id
                tracer.bind_seq(request.seq, trace_id)
                tracer.async_begin(
                    "driver.install", "core", trace_id,
                    track=tracer.track(f"{self.label} core"),
                    args={"device_id": f"{device_id.value:#010x}"},
                )
            encoded = request.encode()
            state = _InstallRequest(device_id, request.seq, encoded)
            self._install_requests[device_id.value] = state
            self.stack.sendto(
                self._manager_address, UPNP_PORT, encoded,
                src_port=UPNP_PORT,
            )
            self.log("driver-requested", device_id)
            self._arm_install_retry(state)

    def _arm_install_retry(self, state: _InstallRequest) -> None:
        policy = self._install_retry
        delay = policy.backoff_s(state.attempts, self._retry_rng) * self.timer_scale
        if state.attempts >= policy.max_attempts:
            # Out of attempts: one more backoff of grace, then give up.
            state.timer = self.sim.schedule(
                ns_from_s(delay),
                lambda: self._install_give_up(state.device_id),
                name="driver-request-expire",
            )
            return
        state.timer = self.sim.schedule(
            ns_from_s(delay),
            lambda: self._retry_install(state.device_id),
            name="driver-request-retry",
        )

    def _retry_install(self, device_id: DeviceId) -> None:
        state = self._install_requests.get(device_id.value)
        if state is None:
            return
        state.attempts += 1
        self.log("driver-request-retransmit", state.device_id,
                 detail=f"attempt {state.attempts}")
        # Same seq as the original: if the manager already served it, the
        # retransmission hits its reply cache and the upload is re-sent
        # without a second registry serve.
        self.stack.sendto(
            self._manager_address, UPNP_PORT, state.message, src_port=UPNP_PORT,
        )
        self._arm_install_retry(state)

    def _install_give_up(self, device_id: DeviceId) -> None:
        state = self._install_requests.pop(device_id.value, None)
        if state is None:
            return
        self._pending_driver.pop(device_id.value, None)
        trace_id = self._install_traces.pop(device_id.value, None)
        self.log("driver-request-failed", device_id,
                 detail=f"after {state.attempts} attempts")
        tracer = self.sim.tracer
        if (tracer is not None and trace_id is not None
                and tracer.enabled_for("core")):
            tracer.async_end(
                "driver.install", "core", trace_id,
                track=tracer.track(f"{self.label} core"),
                args={"error": "timeout"},
            )

    def _activate_channel(self, channel: int, device_id: DeviceId) -> None:
        board = self.board.board_at(channel)
        if board is None or board.device_id != device_id:
            return  # unplugged while the pipeline was in flight
        bus = self._make_bus(channel, board)
        timing = self.network.timing
        jitter = self._rng.stream("activation").uniform(
            -timing.driver_activation_jitter_s, timing.driver_activation_jitter_s
        )
        activation_s = max(0.0, timing.driver_activation_cpu_s + jitter)

        def do_activate() -> None:
            if self._crashed:
                return  # power died during the activation delay
            current = self.board.board_at(channel)
            if current is not board:
                return
            self.drivers.activate(channel, device_id, bus)
            self.log("driver-activated", device_id, detail=f"channel {channel}")
            self._advertise_unsolicited()

        self.sim.schedule(
            ns_from_s(activation_s), do_activate, name="driver-activate",
        )

    def _make_bus(self, channel: int, board: PeripheralBoard):
        """Create the channel's interconnect and attach the device model.

        Mirrors the control board switching pins 10-12 to the bus the
        identified device type requires (§3.1, Table 1).
        """
        rng = self._rng.stream(f"bus-{channel}")
        if board.bus is BusKind.ADC:
            bus = AdcBus(meter=self.meter, rng=rng)
        elif board.bus is BusKind.I2C:
            bus = I2cBus(meter=self.meter)
        elif board.bus is BusKind.SPI:
            bus = SpiBus(meter=self.meter)
        else:
            bus = UartBus(self.sim, meter=self.meter)
        if board.device is not None:
            bus.attach(board.device)
            if isinstance(board.device, UartDevice):
                board.device.bind(bus)
        self._buses[channel] = bus
        return bus

    def _teardown_channel(self, channel: int, device_id: DeviceId) -> None:
        self.log("removed", device_id, detail=f"channel {channel}")
        self.drivers.deactivate(channel)
        bus = self._buses.pop(channel, None)
        if bus is not None and bus.device is not None:
            device = bus.detach()
            if isinstance(device, UartDevice):
                device.unbind()
        waiting = self._pending_driver.get(device_id.value)
        if waiting is not None:
            waiting.discard(channel)
            if not waiting:
                # Nobody waits for this driver any more: stop
                # retransmitting and drop the bookkeeping (hot-unplug
                # mid-install must not leak pending state).
                self._pending_driver.pop(device_id.value, None)
                request = self._install_requests.pop(device_id.value, None)
                if request is not None:
                    request.cancel()
                self._install_traces.pop(device_id.value, None)
        still_present = device_id in self.connected_peripherals().values()
        if not still_present:
            group = self._groups.pop(device_id.value, None)
            if group is not None:
                self.stack.leave_group(group)
            if self.zone is not None:
                self.stack.leave_group(
                    location_group(self.network.prefix48, device_id, self.zone)
                )
            self._stop_stream(device_id, notify=True)

    # ------------------------------------------------------------- advertising
    def _peripheral_entries(self) -> List[proto.PeripheralEntry]:
        entries = []
        for channel, device_id in sorted(self.connected_peripherals().items()):
            board = self.board.board_at(channel)
            tlvs = [Tlv.byte(TlvType.CHANNEL, channel)]
            if board is not None:
                tlvs.append(Tlv.byte(TlvType.BUS, list(BusKind).index(board.bus)))
                if board.label:
                    tlvs.append(Tlv.text(TlvType.LABEL, board.label[:32]))
            entries.append(proto.PeripheralEntry(device_id, tuple(tlvs)))
        return entries

    def _advertise_unsolicited(self) -> None:
        message = proto.UnsolicitedAdvertisement(
            self._seq.next(), tuple(self._peripheral_entries())
        )
        group = all_clients_group(self.network.prefix48)
        self.stack.sendto(group, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        self.log("advertised", detail=f"{len(message.peripherals)} peripherals")

    # ------------------------------------------------------------ message pump
    def _on_datagram(self, datagram: UdpDatagram) -> None:
        try:
            message = decode_message(datagram.payload)
        except proto.ProtocolError:
            self.log("bad-message")
            return
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled_for("core"):
            if tracer.current is None:
                # Causal context usually rides the scheduler; the seq
                # binding re-adopts it when a hop severed the chain.
                tracer.current = tracer.trace_for_seq(message.seq)
            tracer.instant(
                f"thing.rx {type(message).__name__}", "core",
                tracer.track(f"{self.label} core"),
                args={"seq": message.seq, "from": str(datagram.src)},
            )
        if isinstance(message, (proto.ReadRequest, proto.WriteRequest,
                                proto.StreamRequest, proto.DriverDiscovery,
                                proto.DriverRemovalRequest)):
            # Requests with side effects or unicast replies go through the
            # reply cache: a retransmission is answered from cache (the
            # reply was probably lost), an in-flight duplicate is dropped.
            # Either way the request body executes at most once.
            key = request_key(datagram.src.value, datagram.src_port,
                              message.seq)
            cached = self._replies.lookup(key)
            if cached is not MISS:
                self.log("dup-request-suppressed",
                         detail=type(message).__name__)
                if cached is not None:
                    address, port = datagram.reply_to()
                    self.stack.sendto(address, port, cached,
                                      src_port=UPNP_PORT)
                return
            self._replies.begin(key)
        if isinstance(message, proto.PeripheralDiscovery):
            self._handle_discovery(message, datagram)
        elif isinstance(message, proto.ReadRequest):
            self._handle_read(message, datagram)
        elif isinstance(message, proto.WriteRequest):
            self._handle_write(message, datagram)
        elif isinstance(message, proto.StreamRequest):
            self._handle_stream_request(message, datagram)
        elif isinstance(message, proto.DriverDiscovery):
            self._handle_driver_discovery(message, datagram)
        elif isinstance(message, proto.DriverRemovalRequest):
            self._handle_driver_removal(message, datagram)
        elif isinstance(message, proto.DriverUpload):
            self._handle_driver_upload(message, datagram)

    def _reply(self, datagram: UdpDatagram, message: proto.Message) -> None:
        encoded = message.encode()
        self._replies.complete(
            request_key(datagram.src.value, datagram.src_port, message.seq),
            encoded,
        )
        address, port = datagram.reply_to()
        self.stack.sendto(address, port, encoded, src_port=UPNP_PORT)

    def _handle_discovery(
        self, message: proto.PeripheralDiscovery, datagram: UdpDatagram
    ) -> None:
        wanted = message.device_id.value
        entries = self._peripheral_entries()
        if wanted != ALL_PERIPHERALS:
            entries = [e for e in entries if e.device_id.value == wanted]
        if not entries:
            return
        self._reply(
            datagram, proto.SolicitedAdvertisement(message.seq, tuple(entries))
        )
        self.log("discovery-answered", message.device_id)

    def _handle_read(self, message: proto.ReadRequest, datagram: UdpDatagram) -> None:
        def complete(value: Optional[ReturnValue]) -> None:
            payload = value.to_payload() if value is not None else b""
            is_array = value.is_array if value is not None else False
            self._reply(
                datagram,
                proto.Data(message.seq, message.device_id, payload, is_array),
            )

        if not self.drivers.read(message.device_id, complete):
            complete(None)

    def _handle_write(self, message: proto.WriteRequest, datagram: UdpDatagram) -> None:
        def complete(value: Optional[ReturnValue]) -> None:
            del value
            self._reply(datagram, proto.WriteAck(message.seq, message.device_id, 0))

        if not self.drivers.write(message.device_id, message.value, complete):
            self._reply(datagram, proto.WriteAck(message.seq, message.device_id, 1))

    # ---------------------------------------------------------------- streams
    def _handle_stream_request(
        self, message: proto.StreamRequest, datagram: UdpDatagram
    ) -> None:
        device_id = message.device_id
        if message.interval_ms == 0xFFFF:  # unsubscribe sentinel
            state = self._streams.get(device_id.value)
            if state is not None:
                state.subscribers = max(0, state.subscribers - 1)
                if state.subscribers == 0:
                    self._stop_stream(device_id, notify=True)
            return
        if self.drivers.runtime_for(device_id) is None:
            return  # no such peripheral here; stay silent
        state = self._streams.get(device_id.value)
        if state is None:
            interval_s = (
                message.interval_ms / 1000.0
                if message.interval_ms
                else self._default_stream_interval_s
            )
            state = _StreamState(
                device_id=device_id,
                group=stream_group(self.network.prefix48, device_id),
                interval_s=interval_s,
            )
            self._streams[device_id.value] = state
            self._schedule_stream_tick(state)
            self.log("stream-started", device_id)
        state.subscribers += 1
        self._reply(
            datagram,
            proto.StreamEstablished(message.seq, device_id, state.group),
        )

    def _schedule_stream_tick(self, state: _StreamState) -> None:
        state.timer = self.sim.schedule(
            ns_from_s(state.interval_s),
            lambda: self._stream_tick(state),
            name="stream-tick",
        )

    def _stream_tick(self, state: _StreamState) -> None:
        if state.device_id.value not in self._streams:
            return

        def publish(value: Optional[ReturnValue]) -> None:
            if value is None or state.device_id.value not in self._streams:
                return
            message = proto.StreamData(
                state.seq.next(), state.device_id,
                value.to_payload(), value.is_array,
            )
            self.stack.sendto(
                state.group, UPNP_PORT, message.encode(), src_port=UPNP_PORT
            )

        self.drivers.read(state.device_id, publish)
        self._schedule_stream_tick(state)

    def _stop_stream(self, device_id: DeviceId, *, notify: bool) -> None:
        state = self._streams.pop(device_id.value, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        if notify:
            message = proto.StreamClosed(state.seq.next(), device_id)
            self.stack.sendto(
                state.group, UPNP_PORT, message.encode(), src_port=UPNP_PORT
            )
        self.log("stream-stopped", device_id)

    # -------------------------------------------------------- driver management
    def _handle_driver_discovery(
        self, message: proto.DriverDiscovery, datagram: UdpDatagram
    ) -> None:
        ids = tuple(DeviceId(v) for v in self.drivers.installed_ids())
        self._reply(datagram, proto.DriverAdvertisement(message.seq, ids))

    def _handle_driver_removal(
        self, message: proto.DriverRemovalRequest, datagram: UdpDatagram
    ) -> None:
        removed = self.drivers.remove(message.device_id)
        status = 0 if removed else 1
        self._reply(
            datagram, proto.DriverRemovalAck(message.seq, message.device_id, status)
        )

    def _handle_driver_upload(
        self, message: proto.DriverUpload, datagram: UdpDatagram
    ) -> None:
        if self._upload_dups.seen(
            (datagram.src.value, message.seq, message.device_id.value)
        ):
            # The manager re-sent a cached upload (our retransmitted
            # request crossed its reply) or the network duplicated the
            # frame; the first copy is already flashing.  Never twice.
            self.log("dup-upload-suppressed", message.device_id)
            return
        request = self._install_requests.pop(message.device_id.value, None)
        if request is not None:
            request.cancel()
        self.log("driver-upload-received", message.device_id,
                 detail=f"{len(message.image)} bytes")
        timing = self.network.timing
        flash_delay = timing.flash_write_per_byte_s * len(message.image)

        def finish_install() -> None:
            if self._crashed:
                return  # power died mid-flash; the image is lost
            from repro.dsl.bytecode import DriverImage
            from repro.dsl.errors import CompileError

            tracer = self.sim.tracer
            install_trace = self._install_traces.pop(
                message.device_id.value, None)
            if tracer is not None and tracer.current is None:
                tracer.current = install_trace
            try:
                image = DriverImage.unpack(message.image)
            except CompileError as exc:
                self.log("driver-rejected", message.device_id, detail=str(exc))
                return
            # §3.3: "the device drivers associated with an address may be
            # updated at any time" — hot-swap any active instances.
            active = [
                channel
                for channel, device in self.drivers.active_channels().items()
                if device == message.device_id.value
            ]
            for channel in active:
                self.drivers.deactivate(channel)
                bus = self._buses.pop(channel, None)
                if bus is not None and bus.device is not None:
                    device = bus.detach()
                    if isinstance(device, UartDevice):
                        device.unbind()
            self.drivers.install(image)
            self.log("driver-installed", message.device_id,
                     detail=f"{len(message.image)} bytes")
            waiting = self._pending_driver.pop(message.device_id.value, set())
            for channel in sorted(set(waiting) | set(active)):
                self._activate_channel(channel, message.device_id)
            if (tracer is not None and install_trace is not None
                    and tracer.enabled_for("core")):
                tracer.async_end(
                    "driver.install", "core", install_trace,
                    track=tracer.track(f"{self.label} core"),
                    args={"bytes": len(message.image)},
                )

        self.sim.schedule(ns_from_s(flash_delay), finish_install, name="flash-write")


__all__ = ["Thing", "ThingEvent", "DEFAULT_MANAGER_ANYCAST"]
