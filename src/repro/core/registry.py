"""The global µPnP address space (§3.3, www.micropnp.com).

Any party may request a *provisional* address by supplying their name,
organisation, email and a link describing the peripheral.  The address
becomes *permanent* — and immutable — once a validated device driver is
uploaded for it; drivers may be updated at any time afterwards.  The
registry also hosts the "simple online tool" that converts an allocated
identifier into the resistor set a peripheral must carry.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.dsl.bytecode import DriverImage
from repro.dsl.compiler import compile_source
from repro.dsl.lint import LintWarning, lint_source
from repro.dsl.errors import DslError
from repro.hw.connector import BusKind
from repro.hw.device_id import ALL_CLIENTS, ALL_PERIPHERALS, DeviceId
from repro.hw.idcodec import CodecParams, DEFAULT_CODEC, ResistorSet, resistor_set_for_id


class RegistryError(Exception):
    """Invalid address-space operations."""


class AddressStatus(enum.Enum):
    PROVISIONAL = "provisional"
    PERMANENT = "permanent"


@dataclass(frozen=True)
class AddressRecord:
    """One allocation in the global address space."""

    device_id: DeviceId
    name: str
    organization: str
    email: str
    url: str
    bus: BusKind
    label: str
    status: AddressStatus = AddressStatus.PROVISIONAL
    driver_source: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "device_id": str(self.device_id),
            "name": self.name,
            "organization": self.organization,
            "email": self.email,
            "url": self.url,
            "bus": self.bus.value,
            "label": self.label,
            "status": self.status.value,
            "driver_source": self.driver_source,
        }

    @classmethod
    def from_json(cls, data: dict) -> "AddressRecord":
        return cls(
            device_id=DeviceId.from_hex(data["device_id"]),
            name=data["name"],
            organization=data["organization"],
            email=data["email"],
            url=data["url"],
            bus=BusKind(data["bus"]),
            label=data["label"],
            status=AddressStatus(data["status"]),
            driver_source=data.get("driver_source"),
        )


class Registry:
    """In-memory (optionally JSON-persisted) global address space."""

    def __init__(self, codec: CodecParams = DEFAULT_CODEC) -> None:
        self._codec = codec
        self._records: Dict[int, AddressRecord] = {}
        self._images: Dict[int, DriverImage] = {}
        self._lint: Dict[int, List["LintWarning"]] = {}

    # ------------------------------------------------------------ allocation
    def request_address(
        self,
        name: str,
        organization: str,
        email: str,
        url: str,
        *,
        bus: BusKind,
        label: str = "",
        preferred_id: Optional[DeviceId] = None,
    ) -> AddressRecord:
        """Allocate a provisional address (§3.3).

        Deterministic: without a *preferred_id* the identifier is derived
        from the request fields, then linearly probed past collisions
        and the two reserved values.
        """
        if not (name and organization and email and url):
            raise RegistryError(
                "name, organization, email and url are all required"
            )
        if preferred_id is not None:
            candidate = preferred_id.value
            if self._taken(candidate):
                raise RegistryError(f"address {preferred_id} is unavailable")
        else:
            digest = hashlib.sha256(
                f"{name}|{organization}|{email}|{url}".encode()
            ).digest()
            candidate = int.from_bytes(digest[:4], "big")
            while self._taken(candidate):
                candidate = (candidate + 1) & 0xFFFFFFFF
        record = AddressRecord(
            device_id=DeviceId(candidate),
            name=name,
            organization=organization,
            email=email,
            url=url,
            bus=bus,
            label=label or name,
        )
        self._records[candidate] = record
        return record

    def _taken(self, value: int) -> bool:
        return value in self._records or value in (ALL_PERIPHERALS, ALL_CLIENTS)

    # ------------------------------------------------------------- the tool
    def resistor_set_for(self, device_id: DeviceId) -> ResistorSet:
        """The online tool: allocated address -> resistor bill of materials."""
        if device_id.value not in self._records:
            raise RegistryError(f"{device_id} is not allocated")
        return resistor_set_for_id(device_id, self._codec)

    # --------------------------------------------------------------- drivers
    def upload_driver(self, device_id: DeviceId, source: str) -> DriverImage:
        """Upload + validate a driver; promotes the address to permanent.

        Validation is compilation against the DSL toolchain (§3.3's
        "manual checking" stand-in); invalid drivers are rejected and
        the address stays provisional.
        """
        record = self._records.get(device_id.value)
        if record is None:
            raise RegistryError(f"{device_id} is not allocated")
        try:
            image = compile_source(source, device_id.value)
            warnings = lint_source(source)
        except DslError as exc:
            raise RegistryError(f"driver rejected: {exc}") from exc
        self._images[device_id.value] = image
        # §9's automated validation: advisory lint findings are kept
        # alongside the upload for the vendor / reviewers.
        self._lint[device_id.value] = warnings
        self._records[device_id.value] = replace(
            record, status=AddressStatus.PERMANENT, driver_source=source
        )
        return image

    def driver_image(self, device_id: DeviceId | int) -> Optional[DriverImage]:
        return self._images.get(int(getattr(device_id, "value", device_id)))

    def driver_source(self, device_id: DeviceId) -> Optional[str]:
        record = self._records.get(device_id.value)
        return record.driver_source if record else None

    def lint_report(self, device_id: DeviceId | int) -> List["LintWarning"]:
        """Advisory findings from the last upload's automated validation."""
        key = int(getattr(device_id, "value", device_id))
        return list(self._lint.get(key, []))

    # --------------------------------------------------------------- queries
    def record(self, device_id: DeviceId) -> Optional[AddressRecord]:
        return self._records.get(device_id.value)

    def records(self) -> List[AddressRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def permanent_ids(self) -> List[DeviceId]:
        return [
            r.device_id
            for r in self.records()
            if r.status is AddressStatus.PERMANENT
        ]

    # --------------------------------------------------------------------- GC
    def collect_garbage(self, *, keep_newest: int = 0) -> List[AddressRecord]:
        """Reclaim stale provisional addresses (§3.3 future work).

        Permanent addresses are immutable and never collected; a
        provisional address that never received a validated driver is
        reclaimable.  ``keep_newest`` preserves that many of the most
        recently allocated provisional records (a grace window for
        in-flight driver development).  Returns the reclaimed records.
        """
        if keep_newest < 0:
            raise RegistryError("keep_newest must be non-negative")
        provisional = [
            record for record in self._records.values()
            if record.status is AddressStatus.PROVISIONAL
        ]
        # Allocation order is insertion order of the records dict.
        ordered = [
            record for record in self._records.values()
            if record in provisional
        ]
        victims = ordered[: max(0, len(ordered) - keep_newest)]
        for record in victims:
            del self._records[record.device_id.value]
            self._images.pop(record.device_id.value, None)
            self._lint.pop(record.device_id.value, None)
        return victims

    # ------------------------------------------------------------ persistence
    def save(self, path: Path | str) -> None:
        data = {"records": [r.to_json() for r in self.records()]}
        Path(path).write_text(json.dumps(data, indent=2))

    @classmethod
    def load(cls, path: Path | str, codec: CodecParams = DEFAULT_CODEC) -> "Registry":
        registry = cls(codec)
        data = json.loads(Path(path).read_text())
        for item in data["records"]:
            record = AddressRecord.from_json(item)
            registry._records[record.device_id.value] = record
            if record.driver_source is not None:
                registry._images[record.device_id.value] = compile_source(
                    record.driver_source, record.device_id.value
                )
        return registry


__all__ = ["Registry", "RegistryError", "AddressRecord", "AddressStatus"]
