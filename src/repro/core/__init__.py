"""The assembled µPnP system: Thing, Client, Manager, global registry."""

from repro.core.client import Client, DiscoveredPeripheral, ReadResult, StreamHandle
from repro.core.manager import Manager, ManagerStats
from repro.core.namespace import (
    DeviceClass,
    NamespaceError,
    StructuredId,
    VendorRegistry,
    is_structured,
)
from repro.core.registry import AddressRecord, AddressStatus, Registry, RegistryError
from repro.core.thing import DEFAULT_MANAGER_ANYCAST, Thing, ThingEvent

__all__ = [
    "Client",
    "DiscoveredPeripheral",
    "ReadResult",
    "StreamHandle",
    "Manager",
    "ManagerStats",
    "DeviceClass",
    "NamespaceError",
    "StructuredId",
    "VendorRegistry",
    "is_structured",
    "AddressRecord",
    "AddressStatus",
    "Registry",
    "RegistryError",
    "DEFAULT_MANAGER_ANYCAST",
    "Thing",
    "ThingEvent",
]
