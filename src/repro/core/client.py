"""The µPnP Client (§5): discovers and uses remote peripherals.

Clients run "on both embedded IoT devices and standard computing
platforms"; this implementation exposes callback-based discover / read
/ write / stream operations over the simulated network.  Every request
carries a sequence number matched against the reply; unicast requests
are retransmitted with exponential backoff (see
:mod:`repro.protocol.reliability`) until answered or until the request
deadline surfaces a timeout error, and re-delivered datagrams
(retransmitted replies, network-duplicated frames) are suppressed by a
bounded seq cache so no callback fires twice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.net.multicast import all_clients_group, location_group, peripheral_group
from repro.net.network import Network
from repro.net.packets import UPNP_PORT, UdpDatagram
from repro.protocol.reliability import DEFAULT_RETRY, DuplicateCache, RetryPolicy
from repro.net.stack import NetworkStack
from repro.protocol import messages as proto
from repro.protocol.messages import SequenceCounter, decode_message
from repro.sim.kernel import EventHandle, Simulator, ns_from_s


@dataclass(frozen=True)
class DiscoveredPeripheral:
    """One peripheral found on one Thing."""

    thing: Ipv6Address
    entry: proto.PeripheralEntry

    @property
    def device_id(self) -> DeviceId:
        return self.entry.device_id


@dataclass(frozen=True)
class ReadResult:
    """Decoded reply to a read request."""

    device_id: DeviceId
    payload: bytes
    is_array: bool

    @property
    def ok(self) -> bool:
        return bool(self.payload)

    @property
    def value(self) -> Optional[int]:
        """Scalar interpretation (None for array replies or failures)."""
        if not self.payload or self.is_array:
            return None
        return int.from_bytes(self.payload, "big", signed=True)


class StreamHandle:
    """A live stream subscription; cancel() unsubscribes."""

    def __init__(self, client: "Client", thing: Ipv6Address,
                 device_id: DeviceId, group: Ipv6Address) -> None:
        self._client = client
        self.thing = thing
        self.device_id = device_id
        self.group = group
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self._client._cancel_stream(self)


@dataclass(frozen=True)
class ClientEvent:
    """One observable client-side operation, timestamped for experiments.

    ``latency_s`` is filled for response events (time since the request
    that they answer was sent).
    """

    time_s: float
    kind: str
    latency_s: Optional[float] = None
    detail: str = ""


@dataclass
class _Pending:
    kind: str
    callback: Callable
    timeout: Optional[EventHandle] = None
    collected: List[DiscoveredPeripheral] = field(default_factory=list)
    sent_ns: int = 0
    trace_id: Optional[int] = None
    #: Wire bytes + destination, kept for retransmission.
    message: bytes = b""
    dst: Optional[Ipv6Address] = None
    attempts: int = 1
    retransmit: Optional[EventHandle] = None

    def cancel_timers(self) -> None:
        if self.timeout is not None:
            self.timeout.cancel()
        if self.retransmit is not None:
            self.retransmit.cancel()


class Client:
    """A µPnP client endpoint."""

    SNAPSHOT_SCHEMA = {
        "layer": "core",
        "version": 1,
        "fields": ("sim", "stack", "_seq", "_retry", "_rng", "timer_scale",
                   "_dups", "_pending", "_streams", "events"),
    }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        *,
        default_timeout_s: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.stack = NetworkStack(network, node_id)
        self.stack.bind(UPNP_PORT, self._on_datagram)
        self._obs_track = f"client-{node_id} core"
        self._seq = SequenceCounter(node_id * 4099)
        self._default_timeout_s = default_timeout_s
        self._retry = retry if retry is not None else DEFAULT_RETRY
        #: Deterministic per-node jitter source (never touches the
        #: shared network stream, so arming retransmit timers does not
        #: perturb link-delay draws).  Callers that checkpoint should
        #: inject a registered :mod:`repro.sim.rng` stream; the ad-hoc
        #: default keeps standalone construction seed-stable.
        self._rng = rng if rng is not None else random.Random(
            0x9E3779B1 * (node_id + 1) & 0xFFFFFFFF)
        #: Protocol-timer scale: chaos clock-skew faults stretch or
        #: shrink this node's timeout/backoff clock (1.0 = nominal).
        self.timer_scale = 1.0
        self._dups = DuplicateCache(512)
        self._pending: Dict[int, _Pending] = {}
        self._streams: Dict[int, StreamHandle] = {}          # group.value -> handle
        self._stream_callbacks: Dict[int, Tuple[Callable, Optional[Callable]]] = {}
        self._advertisement_listeners: List[
            Callable[[Ipv6Address, List[proto.PeripheralEntry]], None]
        ] = []
        self.events: List[ClientEvent] = []
        self._event_listeners: List[Callable[[ClientEvent], None]] = []
        # Clients listen on the all-clients group for unsolicited
        # advertisements (§5.2.1, Figure 10).
        self.stack.join_group(all_clients_group(network.prefix48))

    # ------------------------------------------------------------- interface
    @property
    def address(self) -> Ipv6Address:
        return self.stack.address

    def pending_count(self) -> int:
        """Outstanding requests (bounded: every entry expires by timeout)."""
        return len(self._pending)

    def set_timer_scale(self, scale: float) -> None:
        """Scale every future protocol timer (chaos clock-skew hook)."""
        if scale <= 0:
            raise ValueError("timer scale must be positive")
        self.timer_scale = scale

    def on_advertisement(
        self,
        listener: Callable[[Ipv6Address, List[proto.PeripheralEntry]], None],
    ) -> None:
        """Subscribe to unsolicited peripheral advertisements."""
        self._advertisement_listeners.append(listener)

    def add_listener(self, listener: Callable[[ClientEvent], None]) -> None:
        """Observe client operations as they happen (fleet metrics hook)."""
        self._event_listeners.append(listener)

    def remove_listener(self, listener: Callable[[ClientEvent], None]) -> None:
        """Detach a listener added via :meth:`add_listener`.  Idempotent."""
        try:
            self._event_listeners.remove(listener)
        except ValueError:
            pass

    def _log(self, kind: str, *, latency_s: Optional[float] = None,
             detail: str = "") -> None:
        event = ClientEvent(self.sim.now_s, kind, latency_s, detail)
        self.events.append(event)
        for listener in self._event_listeners:
            listener(event)

    def _latency_of(self, pending: _Pending) -> float:
        return (self.sim.now_ns - pending.sent_ns) / 1e9

    def _trace_begin(self, kind: str, seq: int, pending: _Pending,
                     device_id) -> None:
        """Open a causal trace for one request/reply operation.

        The new trace id becomes the scheduler's current context before
        the request is sent, so every downstream hop inherits it; the
        seq binding lets receivers re-adopt it if the chain is severed.
        """
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled_for("core"):
            trace_id = tracer.new_trace()
            pending.trace_id = trace_id
            tracer.current = trace_id
            tracer.bind_seq(seq, trace_id)
            tracer.async_begin(
                f"client.{kind}", "core", trace_id,
                track=tracer.track(self._obs_track),
                args={"seq": seq, "device_id": str(device_id)},
            )

    def _trace_end(self, pending: _Pending, *, timeout: bool = False) -> None:
        tracer = self.sim.tracer
        if (tracer is not None and pending.trace_id is not None
                and tracer.enabled_for("core")):
            args = {"latency_s": self._latency_of(pending)}
            if timeout:
                args["timeout"] = True
            tracer.async_end(
                f"client.{pending.kind}", "core", pending.trace_id,
                track=tracer.track(self._obs_track), args=args,
            )

    def discover(
        self,
        device_id: DeviceId | int,
        callback: Callable[[List[DiscoveredPeripheral]], None],
        *,
        timeout_s: float = 1.0,
        zone: Optional[int] = None,
    ) -> None:
        """Find Things carrying *device_id* (§5.2.1 messages 2/3).

        The request multicasts to the peripheral's group; responses are
        collected until *timeout_s* then delivered together.  With
        *zone* set, the request targets the location-aware group (§9
        extension) and only Things in that physical zone answer.
        """
        device_id = DeviceId(int(getattr(device_id, "value", device_id)))
        seq = self._seq.next()
        pending = _Pending("discover", callback, sent_ns=self.sim.now_ns)
        self._pending[seq] = pending
        self._trace_begin("discover", seq, pending, device_id)
        self._log("discover-sent", detail=str(device_id))
        if zone is None:
            group = peripheral_group(self.stack.network.prefix48, device_id)
        else:
            group = location_group(self.stack.network.prefix48, device_id, zone)
        message = proto.PeripheralDiscovery(seq, device_id)
        self.stack.sendto(group, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        pending.timeout = self.sim.schedule(
            ns_from_s(timeout_s * self.timer_scale),
            lambda: self._finish_discovery(seq),
            name="discover-timeout",
        )

    def _finish_discovery(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending.cancel_timers()
            self._trace_end(pending)
            self._log("discover-complete",
                      latency_s=self._latency_of(pending),
                      detail=f"{len(pending.collected)} found")
            pending.callback(list(pending.collected))

    def read(
        self,
        thing: Ipv6Address,
        device_id: DeviceId | int,
        callback: Callable[[Optional[ReadResult]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Read one value from a peripheral (§5.3.1 messages 10/11)."""
        device_id = DeviceId(int(getattr(device_id, "value", device_id)))
        seq = self._send_unicast(
            thing, proto.ReadRequest, device_id, "read", callback, timeout_s
        )
        del seq

    def write(
        self,
        thing: Ipv6Address,
        device_id: DeviceId | int,
        value: int,
        callback: Callable[[Optional[int]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Write a value to an actuator (§5.3.1 messages 16/17).

        The callback receives the ack status (0 = ok), or None on timeout.
        """
        device_id = DeviceId(int(getattr(device_id, "value", device_id)))
        seq = self._seq.next()
        pending = _Pending("write", callback, sent_ns=self.sim.now_ns)
        self._pending[seq] = pending
        self._trace_begin("write", seq, pending, device_id)
        self._log("write-sent", detail=str(device_id))
        message = proto.WriteRequest(seq, device_id, value)
        self._transmit(pending, thing, message.encode())
        pending.timeout = self._arm_timeout(seq, timeout_s)
        self._arm_retransmit(seq, pending)

    def stream(
        self,
        thing: Ipv6Address,
        device_id: DeviceId | int,
        on_data: Callable[[ReadResult], None],
        *,
        interval_ms: int = 0,
        on_established: Optional[Callable[[StreamHandle], None]] = None,
        on_closed: Optional[Callable[[], None]] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Subscribe to a value stream (§5.3.1 messages 12-15)."""
        device_id = DeviceId(int(getattr(device_id, "value", device_id)))
        seq = self._seq.next()

        def established(handle: Optional[StreamHandle]) -> None:
            if handle is not None:
                self._stream_callbacks[handle.group.value] = (on_data, on_closed)
            if on_established is not None:
                on_established(handle)

        pending = _Pending("stream", established, sent_ns=self.sim.now_ns)
        self._pending[seq] = pending
        self._trace_begin("stream", seq, pending, device_id)
        self._log("stream-sent", detail=str(device_id))
        message = proto.StreamRequest(seq, device_id, interval_ms)
        self._transmit(pending, thing, message.encode())
        pending.timeout = self._arm_timeout(seq, timeout_s)
        self._arm_retransmit(seq, pending)

    # --------------------------------------------------------------- plumbing
    def _send_unicast(self, thing, msg_cls, device_id, kind, callback,
                      timeout_s) -> int:
        seq = self._seq.next()
        pending = _Pending(kind, callback, sent_ns=self.sim.now_ns)
        self._pending[seq] = pending
        self._trace_begin(kind, seq, pending, device_id)
        self._log(f"{kind}-sent", detail=str(device_id))
        message = msg_cls(seq, device_id)
        self._transmit(pending, thing, message.encode())
        pending.timeout = self._arm_timeout(seq, timeout_s)
        self._arm_retransmit(seq, pending)
        return seq

    def _transmit(self, pending: _Pending, dst: Ipv6Address,
                  encoded: bytes) -> None:
        pending.message = encoded
        pending.dst = dst
        self.stack.sendto(dst, UPNP_PORT, encoded, src_port=UPNP_PORT)

    def _arm_timeout(self, seq: int, timeout_s: Optional[float]) -> EventHandle:
        duration = self._default_timeout_s if timeout_s is None else timeout_s
        return self.sim.schedule(
            ns_from_s(duration * self.timer_scale),
            lambda: self._fire_timeout(seq),
            name="request-timeout",
        )

    def _arm_retransmit(self, seq: int, pending: _Pending) -> None:
        """Schedule the next retransmission, if the policy allows one."""
        policy = self._retry
        if pending.attempts >= policy.max_attempts:
            pending.retransmit = None
            return
        delay = policy.backoff_s(pending.attempts, self._rng) * self.timer_scale
        pending.retransmit = self.sim.schedule(
            ns_from_s(delay),
            lambda: self._retransmit(seq),
            name="client-retransmit",
        )

    def _retransmit(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None or pending.dst is None:
            return
        pending.attempts += 1
        self._log(f"{pending.kind}-retransmit",
                  detail=f"attempt {pending.attempts}")
        self.stack.sendto(pending.dst, UPNP_PORT, pending.message,
                          src_port=UPNP_PORT)
        self._arm_retransmit(seq, pending)

    def _fire_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending.cancel_timers()
            self._trace_end(pending, timeout=True)
            self._log(f"{pending.kind}-timeout",
                      latency_s=self._latency_of(pending),
                      detail=f"after {pending.attempts} attempts")
            pending.callback(None)

    def _cancel_stream(self, handle: StreamHandle) -> None:
        self._stream_callbacks.pop(handle.group.value, None)
        self._streams.pop(handle.group.value, None)
        self.stack.leave_group(handle.group)
        message = proto.StreamRequest(self._seq.next(), handle.device_id, 0xFFFF)
        self.stack.sendto(
            handle.thing, UPNP_PORT, message.encode(), src_port=UPNP_PORT
        )

    # ---------------------------------------------------------------- receive
    def _on_datagram(self, datagram: UdpDatagram) -> None:
        try:
            message = decode_message(datagram.payload)
        except proto.ProtocolError:
            self._log("bad-message")
            return
        if isinstance(message, (proto.UnsolicitedAdvertisement,
                                proto.SolicitedAdvertisement,
                                proto.StreamData)):
            # These fire callbacks without a pending-table pop, so a
            # re-delivered datagram (network duplicate, or a reply to a
            # retransmitted request) must be folded here.  The key
            # includes the device id because per-stream seq counters
            # restart from zero.
            key = (datagram.src.value, message.TYPE.value, message.seq,
                   getattr(message, "device_id", DeviceId(0)).value)
            if self._dups.seen(key):
                self._log("dup-suppressed",
                          detail=type(message).__name__)
                return
        if isinstance(message, proto.UnsolicitedAdvertisement):
            for listener in list(self._advertisement_listeners):
                listener(datagram.src, list(message.peripherals))
            return
        if isinstance(message, proto.SolicitedAdvertisement):
            pending = self._pending.get(message.seq)
            if pending is not None and pending.kind == "discover":
                if not pending.collected:
                    # Discovery latency proper: request to first answer
                    # (the collection window always runs to its timeout).
                    self._log("discover-first-response",
                              latency_s=self._latency_of(pending))
                pending.collected.extend(
                    DiscoveredPeripheral(datagram.src, entry)
                    for entry in message.peripherals
                )
            return
        if isinstance(message, proto.StreamData):
            callbacks = self._stream_callbacks.get(datagram.dst.value)
            if callbacks is not None:
                self._log("stream-data", detail=str(message.device_id))
                callbacks[0](
                    ReadResult(message.device_id, message.payload, message.is_array)
                )
            return
        if isinstance(message, proto.StreamClosed):
            callbacks = self._stream_callbacks.pop(datagram.dst.value, None)
            handle = self._streams.pop(datagram.dst.value, None)
            if handle is not None:
                handle.active = False
                self.stack.leave_group(handle.group)
            if callbacks is not None and callbacks[1] is not None:
                callbacks[1]()
            return
        # Sequence-matched unicast replies.  Duplicates self-suppress:
        # the second pop finds nothing.
        pending = self._pending.pop(message.seq, None)
        if pending is None:
            return
        pending.cancel_timers()
        self._trace_end(pending)
        if isinstance(message, proto.Data) and pending.kind == "read":
            self._log("read-reply", latency_s=self._latency_of(pending))
            pending.callback(
                ReadResult(message.device_id, message.payload, message.is_array)
            )
        elif isinstance(message, proto.WriteAck) and pending.kind == "write":
            self._log("write-ack", latency_s=self._latency_of(pending))
            pending.callback(message.status)
        elif isinstance(message, proto.StreamEstablished) and pending.kind == "stream":
            self._log("stream-established", latency_s=self._latency_of(pending))
            handle = StreamHandle(
                self, datagram.src, message.device_id, message.group
            )
            self._streams[message.group.value] = handle
            self.stack.join_group(
                message.group, lambda: pending.callback(handle)
            )
        else:
            # Unexpected reply type: treat as failure.
            pending.callback(None)


__all__ = ["Client", "ClientEvent", "DiscoveredPeripheral", "ReadResult",
           "StreamHandle"]
