"""The µPnP Manager (§5): driver deployment and remote configuration.

The manager "runs on a server-class device and manages the deployment
and remote configuration of device drivers on µPnP Things".  It serves
driver images from the global :class:`Registry` at an *anycast* IPv6
address, so any of several replicas can answer a Thing's install
request (network-level redundancy, [3]).

Reliability (lossy-mesh hardening): management requests are
retransmitted with exponential backoff until answered or expired, and
served install requests are memoised per ``(source, seq)`` so a
retransmitted :class:`~repro.protocol.messages.DriverInstallRequest`
re-sends the cached upload instead of double-counting a second serve —
at-most-once execution per request, per-mote state only, so one crashed
mote never blocks service to the healthy rest of the fleet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.registry import Registry
from repro.core.thing import DEFAULT_MANAGER_ANYCAST
from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.net.network import Network
from repro.net.packets import UPNP_PORT, UdpDatagram
from repro.net.stack import NetworkStack
from repro.protocol import messages as proto
from repro.protocol.messages import SequenceCounter, decode_message
from repro.protocol.reliability import (
    DEFAULT_RETRY,
    MISS,
    ReplyCache,
    RetryPolicy,
    request_key,
)
from repro.sim.kernel import EventHandle, Simulator, ns_from_s


@dataclass
class ManagerStats:
    install_requests: int = 0
    uploads: int = 0
    unknown_driver_requests: int = 0
    #: Retransmitted install requests answered from the reply cache
    #: (no second registry serve, no double upload count).
    duplicate_install_requests: int = 0
    #: Outbound management requests retransmitted after backoff.
    retransmits: int = 0
    #: Management requests that expired unanswered.
    timeouts: int = 0


@dataclass(frozen=True)
class ManagerEvent:
    """One observable manager-side operation (fleet metrics hook)."""

    time_s: float
    kind: str
    detail: str = ""


@dataclass
class _Pending:
    kind: str
    callback: Callable
    timeout: Optional[EventHandle] = None
    message: bytes = b""
    dst: Optional[Ipv6Address] = None
    attempts: int = 1
    retransmit: Optional[EventHandle] = None

    def cancel_timers(self) -> None:
        if self.timeout is not None:
            self.timeout.cancel()
        if self.retransmit is not None:
            self.retransmit.cancel()


class Manager:
    """A µPnP manager instance backed by the global registry."""

    SNAPSHOT_SCHEMA = {
        "layer": "core",
        "version": 1,
        "fields": ("sim", "registry", "stack", "_seq", "_retry", "_rng",
                   "timer_scale", "_pending", "_install_cache", "stats",
                   "events", "known_inventories"),
    }

    # ------------------------------------------------------------ checkpoint
    def snapshot_state(self) -> dict:
        state = dict(self.__dict__)
        state["_schema"] = self.SNAPSHOT_SCHEMA["version"]
        return state

    def restore_state(self, state: dict) -> None:
        from repro.snapshot.migrate import upgrade_state

        state = dict(upgrade_state(type(self), state))
        state.pop("_schema", None)
        self.__dict__.clear()
        self.__dict__.update(state)

    __getstate__ = snapshot_state
    __setstate__ = restore_state

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        registry: Registry,
        *,
        anycast: str = DEFAULT_MANAGER_ANYCAST,
        default_timeout_s: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.stack = NetworkStack(network, node_id)
        self.stack.bind(UPNP_PORT, self._on_datagram)
        self.anycast_address = Ipv6Address.parse(anycast)
        self.stack.join_anycast(self.anycast_address)
        self._seq = SequenceCounter(node_id * 7919)
        self._default_timeout_s = default_timeout_s
        self._retry = retry if retry is not None else DEFAULT_RETRY
        #: Backoff-jitter source; inject a registered stream when the
        #: deployment is checkpointable (see :mod:`repro.sim.rng`).
        self._rng = rng if rng is not None else random.Random(
            0x7F4A7C15 * (node_id + 1) & 0xFFFFFFFF)
        #: Protocol-timer scale (chaos clock-skew hook; 1.0 = nominal).
        self.timer_scale = 1.0
        self._pending: Dict[int, _Pending] = {}
        #: Served install requests: (src, port, seq) -> upload bytes.
        self._install_cache = ReplyCache(512)
        self.stats = ManagerStats()
        self.events: List[ManagerEvent] = []
        self._event_listeners: List[Callable[[ManagerEvent], None]] = []
        #: Last known driver inventory per Thing (from advertisements).
        self.known_inventories: Dict[int, Tuple[DeviceId, ...]] = {}

    @property
    def address(self) -> Ipv6Address:
        return self.stack.address

    def pending_count(self) -> int:
        """Outstanding requests (bounded: every entry expires by timeout)."""
        return len(self._pending)

    def set_timer_scale(self, scale: float) -> None:
        """Scale every future protocol timer (chaos clock-skew hook)."""
        if scale <= 0:
            raise ValueError("timer scale must be positive")
        self.timer_scale = scale

    def add_listener(self, listener: Callable[[ManagerEvent], None]) -> None:
        """Observe manager operations as they happen (fleet metrics hook)."""
        self._event_listeners.append(listener)

    def _log(self, kind: str, detail: str = "") -> None:
        event = ManagerEvent(self.sim.now_s, kind, detail)
        self.events.append(event)
        for listener in self._event_listeners:
            listener(event)

    # --------------------------------------------------------------- serving
    def _on_datagram(self, datagram: UdpDatagram) -> None:
        try:
            message = decode_message(datagram.payload)
        except proto.ProtocolError:
            self._log("bad-message")
            return
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled_for("core"):
            if tracer.current is None:
                tracer.current = tracer.trace_for_seq(message.seq)
            tracer.instant(
                f"manager.rx {type(message).__name__}", "core",
                tracer.track("manager core"),
                args={"seq": message.seq, "from": str(datagram.src)},
            )
        if isinstance(message, proto.DriverInstallRequest):
            self._serve_install(message, datagram)
            return
        if isinstance(message, proto.DriverAdvertisement):
            self.known_inventories[datagram.src.value] = tuple(message.device_ids)
        pending = self._pending.pop(message.seq, None)
        if pending is None:
            return
        pending.cancel_timers()
        if isinstance(message, proto.DriverAdvertisement):
            pending.callback(list(message.device_ids))
        elif isinstance(message, proto.DriverRemovalAck):
            pending.callback(message.status)
        else:
            pending.callback(None)

    def _serve_install(
        self, message: proto.DriverInstallRequest, datagram: UdpDatagram
    ) -> None:
        key = request_key(datagram.src.value, datagram.src_port, message.seq)
        cached = self._install_cache.lookup(key)
        if cached is not MISS:
            # A retransmitted request: the original serve either already
            # answered (re-send the cached upload — the first one was
            # probably lost) or is still in its lookup delay (drop).
            self.stats.duplicate_install_requests += 1
            self._log("duplicate-install-request",
                      detail=f"{message.device_id}")
            if cached is not None:
                address, port = datagram.reply_to()
                self.stack.sendto(address, port, cached, src_port=UPNP_PORT)
            return
        self.stats.install_requests += 1
        image = self.registry.driver_image(message.device_id)
        if image is None:
            self.stats.unknown_driver_requests += 1
            # Remember the miss: retransmissions of an unanswerable
            # request are absorbed instead of re-counted.
            self._install_cache.begin(key)
            return
        self._install_cache.begin(key)
        lookup = self.stack.network.timing.manager_lookup_cpu_s
        tracer = self.sim.tracer
        if tracer is not None and tracer.current is not None:
            # The upload reuses the request's seq; keep the binding so
            # the Thing can re-adopt the install trace on receipt.
            tracer.bind_seq(message.seq, tracer.current)

        def upload() -> None:
            reply = proto.DriverUpload(message.seq, message.device_id, image.pack())
            encoded = reply.encode()
            self._install_cache.complete(key, encoded)
            address, port = datagram.reply_to()
            self.stack.sendto(address, port, encoded, src_port=UPNP_PORT)
            self.stats.uploads += 1

        self.sim.schedule(ns_from_s(lookup), upload, name="manager-lookup")

    # ----------------------------------------------------- management actions
    def push_driver(self, thing: Ipv6Address, device_id: DeviceId) -> bool:
        """Proactively deploy a driver to a Thing (unsolicited upload)."""
        image = self.registry.driver_image(device_id)
        if image is None:
            return False
        message = proto.DriverUpload(self._seq.next(), device_id, image.pack())
        self.stack.sendto(thing, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        self.stats.uploads += 1
        return True

    def discover_drivers(
        self,
        thing: Ipv6Address,
        callback: Callable[[Optional[List[DeviceId]]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Explore a Thing's installed drivers (§5.3 messages 6/7)."""
        seq = self._seq.next()
        message = proto.DriverDiscovery(seq)
        self._track(seq, "driver-discovery", callback, thing,
                    message.encode(), timeout_s)

    def remove_driver(
        self,
        thing: Ipv6Address,
        device_id: DeviceId,
        callback: Callable[[Optional[int]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Remove a driver from a Thing (§5.3 messages 8/9)."""
        seq = self._seq.next()
        message = proto.DriverRemovalRequest(seq, device_id)
        self._track(seq, "driver-removal", callback, thing,
                    message.encode(), timeout_s)

    # --------------------------------------------------------------- plumbing
    def _track(self, seq: int, kind: str, callback: Callable,
               dst: Ipv6Address, encoded: bytes,
               timeout_s: Optional[float]) -> None:
        pending = _Pending(kind, callback, message=encoded, dst=dst)
        self._pending[seq] = pending
        self.stack.sendto(dst, UPNP_PORT, encoded, src_port=UPNP_PORT)
        pending.timeout = self._arm_timeout(seq, timeout_s)
        self._arm_retransmit(seq, pending)

    def _arm_timeout(self, seq: int, timeout_s: Optional[float]) -> EventHandle:
        duration = self._default_timeout_s if timeout_s is None else timeout_s
        return self.sim.schedule(
            ns_from_s(duration * self.timer_scale),
            lambda: self._fire_timeout(seq),
            name="manager-timeout",
        )

    def _arm_retransmit(self, seq: int, pending: _Pending) -> None:
        policy = self._retry
        if pending.attempts >= policy.max_attempts:
            pending.retransmit = None
            return
        delay = policy.backoff_s(pending.attempts, self._rng) * self.timer_scale
        pending.retransmit = self.sim.schedule(
            ns_from_s(delay),
            lambda: self._retransmit(seq),
            name="manager-retransmit",
        )

    def _retransmit(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None or pending.dst is None:
            return
        pending.attempts += 1
        self.stats.retransmits += 1
        self._log(f"{pending.kind}-retransmit",
                  detail=f"attempt {pending.attempts}")
        self.stack.sendto(pending.dst, UPNP_PORT, pending.message,
                          src_port=UPNP_PORT)
        self._arm_retransmit(seq, pending)

    def _fire_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending.cancel_timers()
            self.stats.timeouts += 1
            self._log(f"{pending.kind}-timeout",
                      detail=f"after {pending.attempts} attempts")
            pending.callback(None)


__all__ = ["Manager", "ManagerStats", "ManagerEvent"]
