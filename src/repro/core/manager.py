"""The µPnP Manager (§5): driver deployment and remote configuration.

The manager "runs on a server-class device and manages the deployment
and remote configuration of device drivers on µPnP Things".  It serves
driver images from the global :class:`Registry` at an *anycast* IPv6
address, so any of several replicas can answer a Thing's install
request (network-level redundancy, [3]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.registry import Registry
from repro.core.thing import DEFAULT_MANAGER_ANYCAST
from repro.hw.device_id import DeviceId
from repro.net.ipv6 import Ipv6Address
from repro.net.network import Network
from repro.net.packets import UPNP_PORT, UdpDatagram
from repro.net.stack import NetworkStack
from repro.protocol import messages as proto
from repro.protocol.messages import SequenceCounter, decode_message
from repro.sim.kernel import EventHandle, Simulator, ns_from_s


@dataclass
class ManagerStats:
    install_requests: int = 0
    uploads: int = 0
    unknown_driver_requests: int = 0


@dataclass
class _Pending:
    kind: str
    callback: Callable
    timeout: Optional[EventHandle] = None


class Manager:
    """A µPnP manager instance backed by the global registry."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        registry: Registry,
        *,
        anycast: str = DEFAULT_MANAGER_ANYCAST,
        default_timeout_s: float = 5.0,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.stack = NetworkStack(network, node_id)
        self.stack.bind(UPNP_PORT, self._on_datagram)
        self.anycast_address = Ipv6Address.parse(anycast)
        self.stack.join_anycast(self.anycast_address)
        self._seq = SequenceCounter(node_id * 7919)
        self._default_timeout_s = default_timeout_s
        self._pending: Dict[int, _Pending] = {}
        self.stats = ManagerStats()
        #: Last known driver inventory per Thing (from advertisements).
        self.known_inventories: Dict[int, Tuple[DeviceId, ...]] = {}

    @property
    def address(self) -> Ipv6Address:
        return self.stack.address

    # --------------------------------------------------------------- serving
    def _on_datagram(self, datagram: UdpDatagram) -> None:
        try:
            message = decode_message(datagram.payload)
        except proto.ProtocolError:
            return
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled_for("core"):
            if tracer.current is None:
                tracer.current = tracer.trace_for_seq(message.seq)
            tracer.instant(
                f"manager.rx {type(message).__name__}", "core",
                tracer.track("manager core"),
                args={"seq": message.seq, "from": str(datagram.src)},
            )
        if isinstance(message, proto.DriverInstallRequest):
            self._serve_install(message, datagram)
            return
        if isinstance(message, proto.DriverAdvertisement):
            self.known_inventories[datagram.src.value] = tuple(message.device_ids)
        pending = self._pending.pop(message.seq, None)
        if pending is None:
            return
        if pending.timeout is not None:
            pending.timeout.cancel()
        if isinstance(message, proto.DriverAdvertisement):
            pending.callback(list(message.device_ids))
        elif isinstance(message, proto.DriverRemovalAck):
            pending.callback(message.status)
        else:
            pending.callback(None)

    def _serve_install(
        self, message: proto.DriverInstallRequest, datagram: UdpDatagram
    ) -> None:
        self.stats.install_requests += 1
        image = self.registry.driver_image(message.device_id)
        if image is None:
            self.stats.unknown_driver_requests += 1
            return
        lookup = self.stack.network.timing.manager_lookup_cpu_s
        tracer = self.sim.tracer
        if tracer is not None and tracer.current is not None:
            # The upload reuses the request's seq; keep the binding so
            # the Thing can re-adopt the install trace on receipt.
            tracer.bind_seq(message.seq, tracer.current)

        def upload() -> None:
            reply = proto.DriverUpload(message.seq, message.device_id, image.pack())
            address, port = datagram.reply_to()
            self.stack.sendto(address, port, reply.encode(), src_port=UPNP_PORT)
            self.stats.uploads += 1

        self.sim.schedule(ns_from_s(lookup), upload, name="manager-lookup")

    # --------------------------------------------------------------------------------------------------------- management actions
    def push_driver(self, thing: Ipv6Address, device_id: DeviceId) -> bool:
        """Proactively deploy a driver to a Thing (unsolicited upload)."""
        image = self.registry.driver_image(device_id)
        if image is None:
            return False
        message = proto.DriverUpload(self._seq.next(), device_id, image.pack())
        self.stack.sendto(thing, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        self.stats.uploads += 1
        return True

    def discover_drivers(
        self,
        thing: Ipv6Address,
        callback: Callable[[Optional[List[DeviceId]]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Explore a Thing's installed drivers (§5.3 messages 6/7)."""
        seq = self._seq.next()
        pending = _Pending("driver-discovery", callback)
        self._pending[seq] = pending
        message = proto.DriverDiscovery(seq)
        self.stack.sendto(thing, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        pending.timeout = self._arm_timeout(seq, timeout_s)

    def remove_driver(
        self,
        thing: Ipv6Address,
        device_id: DeviceId,
        callback: Callable[[Optional[int]], None],
        *,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Remove a driver from a Thing (§5.3 messages 8/9)."""
        seq = self._seq.next()
        pending = _Pending("driver-removal", callback)
        self._pending[seq] = pending
        message = proto.DriverRemovalRequest(seq, device_id)
        self.stack.sendto(thing, UPNP_PORT, message.encode(), src_port=UPNP_PORT)
        pending.timeout = self._arm_timeout(seq, timeout_s)

    def _arm_timeout(self, seq: int, timeout_s: Optional[float]) -> EventHandle:
        duration = self._default_timeout_s if timeout_s is None else timeout_s
        return self.sim.schedule(
            ns_from_s(duration),
            lambda: self._fire_timeout(seq),
            name="manager-timeout",
        )

    def _fire_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending.callback(None)


__all__ = ["Manager", "ManagerStats"]
