"""CLI for fleet telemetry: ``python -m repro.telemetry``.

Examples::

    python -m repro.telemetry run --scenario smoke --workers 2
    python -m repro.telemetry run --scenario metro \\
        --openmetrics metrics.om --rule "duty: radio_duty_cycle.p95 < 8%"
    python -m repro.telemetry sentinel BENCH_fleet.json --ref HEAD~1
    python -m repro.telemetry --smoke      # the CI gate

The smoke gate runs a telemetry-enabled scenario on one and two
workers, checks the merged documents are byte-identical, validates the
OpenMetrics exposition against the grammar, evaluates the default
health rules, and writes the artifacts (OpenMetrics text, health JSON,
JSONL samples) for CI to upload.  Exit status is non-zero on any
failure, so CI gates directly on the run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _cmd_run(args) -> int:
    from repro.fleet.runner import run_scenario
    from repro.fleet.scenario import SCENARIOS
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.export import to_csv, to_jsonl, to_openmetrics
    from repro.telemetry.health import DEFAULT_RULES, SloRule, evaluate
    from repro.telemetry.report import dashboard, health_table

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario '{args.scenario}'", file=sys.stderr)
        return 2
    scenario = SCENARIOS[args.scenario]
    overrides = {
        "telemetry": TelemetryConfig(
            cadence_s=args.cadence, per_node=args.per_node,
        ),
    }
    if args.nodes is not None:
        overrides["things"] = args.nodes
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    scenario = scenario.scaled(**overrides)

    rules = list(DEFAULT_RULES)
    if args.rule:
        try:
            rules = [SloRule.parse(text) for text in args.rule]
        except ValueError as exc:
            print(f"bad --rule: {exc}", file=sys.stderr)
            return 2

    result = run_scenario(scenario, workers=args.workers)
    document = result.telemetry_document()
    print(dashboard(document))
    report = evaluate(rules, document)
    print()
    print(health_table(report.as_dict()))

    writers = (
        (args.openmetrics,
         lambda: to_openmetrics(document, history=True)),
        (args.jsonl, lambda: to_jsonl(document)),
        (args.csv, lambda: to_csv(document)),
        (args.json, lambda: json.dumps(
            {"telemetry": document, "health": report.as_dict()},
            sort_keys=True, indent=2) + "\n"),
    )
    for path, render in writers:
        if not path:
            continue
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(render())
        except OSError as exc:
            print(f"cannot write {path}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {path}")
    return 0 if report.status in ("ok", "recovered", "no-data") else 1


def _cmd_smoke(args) -> int:
    from repro.fleet.runner import run_scenario
    from repro.fleet.scenario import SCENARIOS
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.export import (
        to_jsonl,
        to_openmetrics,
        validate_openmetrics,
    )
    from repro.telemetry.health import DEFAULT_RULES, evaluate
    from repro.telemetry.report import dashboard, health_table

    failures = []
    scenario = SCENARIOS["smoke"].scaled(
        telemetry=TelemetryConfig(cadence_s=1.0))

    documents = {}
    for workers in (1, 2):
        result = run_scenario(scenario, workers=workers)
        documents[workers] = result.telemetry_document()
    blobs = {
        w: json.dumps(d, sort_keys=True) for w, d in documents.items()
    }
    if blobs[1] == blobs[2]:
        print("merge determinism: ok (workers 1 == workers 2)")
    else:
        failures.append("merged telemetry differs across worker counts")
    document = documents[1]
    series_count = len(document.get("series", ()))
    print(f"series collected : {series_count}")
    if series_count == 0:
        failures.append("no series collected")

    text = to_openmetrics(document, history=True)
    errors = validate_openmetrics(text)
    if errors:
        failures.append(f"OpenMetrics validation: {len(errors)} errors")
        for error in errors[:10]:
            print(f"  {error}")
    else:
        print(f"openmetrics      : valid "
              f"({len(text.splitlines())} lines)")

    report = evaluate(DEFAULT_RULES, document)
    print()
    print(dashboard(document))
    print()
    print(health_table(report.as_dict()))
    if report.status == "degraded":
        failures.append("smoke scenario health degraded")

    out_dir = args.out_dir
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        artifacts = (
            ("telemetry.om", text),
            ("health.json", json.dumps(report.as_dict(), sort_keys=True,
                                       indent=2) + "\n"),
            ("telemetry.jsonl", to_jsonl(document)),
        )
        for name, content in artifacts:
            path = os.path.join(out_dir, name)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
        print(f"\nartifacts in {out_dir}/: "
              + ", ".join(name for name, _ in artifacts))

    if failures:
        print("\nsmoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nsmoke passed")
    return 0


def _cmd_sentinel(args) -> int:
    from repro.telemetry.sentinel import (
        DEFAULT_SENTINEL_RULES,
        SentinelRule,
        compare,
        load_baseline,
        load_baseline_status,
        report_lines,
    )

    rules = list(DEFAULT_SENTINEL_RULES)
    for text in args.watch or ():
        try:
            pattern, direction = text.rsplit(":", 1)
            rules.insert(0, SentinelRule(pattern, direction=direction,
                                         tolerance=args.tolerance))
        except ValueError as exc:
            print(f"bad --watch '{text}': {exc}", file=sys.stderr)
            return 2

    regressions = 0
    for path in args.scorecards:
        try:
            current = load_baseline(path)
        except (OSError, FileNotFoundError, json.JSONDecodeError) as exc:
            # The *current* scorecard is this run's own output — if it
            # is unreadable, the invocation itself is broken.
            print(f"{path}: cannot load current scorecard: {exc}",
                  file=sys.stderr)
            return 2
        if args.ref:
            status, baseline = load_baseline_status(path, ref=args.ref)
            origin = f"{args.ref}:{path}"
        else:
            status, baseline = load_baseline_status(args.baseline)
            origin = args.baseline
        if status != "ok":
            # First run on a branch (or a mangled baseline): nothing to
            # judge against is a status, not a crash.
            print(f"== {path}: no baseline ({status}: {origin}) — "
                  f"nothing to compare, treating as clean")
            continue
        findings = compare(baseline, current, rules)
        flagged = [f for f in findings if f.regression]
        regressions += len(flagged)
        print(f"== {path} ({len(findings)} judged, "
              f"{len(flagged)} regressions)")
        for line in report_lines(findings if args.verbose else flagged):
            print(f"  {line}")
    if regressions:
        print(f"\nsentinel: {regressions} regressions")
        return 1
    print("\nsentinel: no regressions")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # CI invokes the gate as ``python -m repro.telemetry --smoke`` —
    # accept the flag spelling for the subcommand.
    argv = ["smoke" if arg == "--smoke" else arg for arg in argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="fleet time-series telemetry, health and sentinels",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run a scenario with telemetry")
    run_p.add_argument("--scenario", default="smoke")
    run_p.add_argument("--nodes", type=int, default=None)
    run_p.add_argument("--duration", type=float, default=None)
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument("--cadence", type=float, default=1.0,
                       help="sim-time sampling cadence, seconds")
    run_p.add_argument("--per-node", action="store_true",
                       help="also record per-Thing series")
    run_p.add_argument("--rule", action="append", metavar="RULE",
                       help="health rule, e.g. "
                            "'duty: radio_duty_cycle.p95 < 8%% window=10' "
                            "(repeatable; replaces the defaults)")
    run_p.add_argument("--openmetrics", metavar="PATH")
    run_p.add_argument("--jsonl", metavar="PATH")
    run_p.add_argument("--csv", metavar="PATH")
    run_p.add_argument("--json", metavar="PATH",
                       help="full telemetry + health JSON document")

    smoke_p = sub.add_parser("smoke", help="CI gate: determinism, "
                                           "grammar, health")
    smoke_p.add_argument("--out-dir", default="telemetry-artifacts",
                         help="artifact directory ('' to skip writing)")

    sent_p = sub.add_parser("sentinel",
                            help="diff BENCH_*.json scorecards")
    sent_p.add_argument("scorecards", nargs="+",
                        help="current scorecard path(s)")
    sent_p.add_argument("--ref", default=None,
                        help="git ref holding the baselines "
                             "(e.g. HEAD~1)")
    sent_p.add_argument("--baseline", default=None,
                        help="explicit baseline file (alternative "
                             "to --ref)")
    sent_p.add_argument("--watch", action="append", metavar="PAT:DIR",
                        help="extra rule, e.g. '*events_per_s:higher'")
    sent_p.add_argument("--tolerance", type=float, default=0.05)
    sent_p.add_argument("--verbose", action="store_true",
                        help="also print non-regressed leaves")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    if args.command == "sentinel":
        if not args.ref and not args.baseline:
            sent_p.error("one of --ref or --baseline is required")
        return _cmd_sentinel(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
