"""Terminal rendering of telemetry documents and health reports.

Pure text generation — callers print the returned strings.  The
dashboard shows each series as a unicode sparkline of its trajectory
plus the latest value, and the health table shows per-rule status with
the degraded-window count, so a chaos run reads at a glance as
"degraded between t=10s and t=20s, recovered by the end".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.series import iter_series

_SPARK = "▁▂▃▄▅▆▇█"

_STATUS_BADGE = {
    "ok": "OK ",
    "recovered": "REC",
    "degraded": "BAD",
    "no-data": "---",
}


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Map *values* onto ▁..█ glyphs, downsampled to *width* columns."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket means keep the shape without aliasing single spikes.
        step = len(values) / width
        values = [
            sum(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))])
            / max(1, int((i + 1) * step) - int(i * step))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def dashboard(document: dict, *, width: int = 24,
              names: Optional[Sequence[str]] = None) -> str:
    """Render every series (or the *names* subset) as sparkline rows."""
    rows: List[Tuple[str, str, str]] = []
    for data in iter_series(document):
        if names is not None and data["name"] not in names:
            continue
        samples = data.get("samples", [])
        if not samples:
            continue
        label = data["name"] + _label_suffix(data.get("labels", {}))
        spark = sparkline([v for _, v in samples], width)
        rows.append((label, spark, _format_number(samples[-1][1])))
    if not rows:
        return "(no telemetry series)"
    name_w = max(len(r[0]) for r in rows)
    value_w = max(len(r[2]) for r in rows)
    lines = [
        f"{label:<{name_w}}  {spark:<{width}}  {value:>{value_w}}"
        for label, spark, value in rows
    ]
    return "\n".join(lines)


def health_table(report_dict: dict) -> str:
    """Render an ``evaluate(...)``/``HealthReport.as_dict()`` result."""
    rules = report_dict.get("rules", {})
    if not rules:
        return "(no health rules evaluated)"
    lines = [f"health: {report_dict.get('status', '?')}"]
    name_w = max(len(name) for name in rules)
    for name in rules:
        rule = rules[name]
        badge = _STATUS_BADGE.get(rule.get("status", ""), "?? ")
        windows = rule.get("windows", [])
        degraded = rule.get("degraded", 0)
        detail = f"{len(windows)} windows"
        if degraded:
            bad = [w for w in windows if not w["ok"]]
            detail += (f", {degraded} degraded "
                       f"(t={bad[0]['t0_s']:.0f}s..{bad[-1]['t1_s']:.0f}s)")
        last = windows[-1]["value"] if windows else float("nan")
        lines.append(
            f"  [{badge}] {name:<{name_w}}  "
            f"{rule.get('series', '')}"
            f"{'/' + rule['ratio_to'] if rule.get('ratio_to') else ''}"
            f" {rule.get('op', '')} {rule.get('threshold', '')}"
            f"  last={_format_number(last)}  ({detail})"
        )
    return "\n".join(lines)


__all__ = ["dashboard", "health_table", "sparkline"]
