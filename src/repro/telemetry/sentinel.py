"""Regression sentinel: diff BENCH_*.json documents across commits.

The repo's benchmark harnesses each publish a ``BENCH_<name>.json``
scorecard.  The sentinel flattens two such documents (baseline vs
current) into dotted numeric paths, matches paths against a small rule
table (fnmatch patterns with a direction and a tolerance), and reports
regressions — "events_per_s dropped 12%" — without anyone eyeballing
JSON diffs.  Baselines come from a file or straight out of git history
(``--baseline-ref HEAD~1``), so CI can gate a PR against its parent
commit.

Non-numeric leaves (digests, booleans, strings) are compared for
equality only when a rule asks (``mode="equal"``) — useful for the
determinism digests, which must never change silently.
"""

from __future__ import annotations

import fnmatch
import json
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def flatten(document: object, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into ``a.b.0.c`` → leaf paths."""
    out: Dict[str, object] = {}
    if isinstance(document, dict):
        for key in sorted(document):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(document[key], path))
    elif isinstance(document, list):
        for index, item in enumerate(document):
            path = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten(item, path))
    else:
        out[prefix] = document
    return out


@dataclass(frozen=True)
class SentinelRule:
    """How leaves matching *pattern* are judged.

    ``direction`` is which way is *better*: ``higher`` (throughput),
    ``lower`` (wall time, energy), or ``equal`` (digests, gate booleans
    — any change is a regression).  ``tolerance`` is the allowed
    fractional change in the *worse* direction before flagging.
    """

    pattern: str
    direction: str = "lower"
    tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "equal"):
            raise ValueError(f"unknown direction: {self.direction!r}")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")

    def matches(self, path: str) -> bool:
        return fnmatch.fnmatch(path, self.pattern)


#: Defaults tuned to the repo's scorecards: throughput up is good,
#: wall time down is good, determinism digests and gates must not move.
DEFAULT_SENTINEL_RULES: Tuple[SentinelRule, ...] = (
    SentinelRule("*events_per_s", direction="higher", tolerance=0.15),
    SentinelRule("*wall_s", direction="lower", tolerance=0.25),
    SentinelRule("*digest", direction="equal"),
    SentinelRule("*gate_passed", direction="equal"),
    SentinelRule("*read_completion", direction="higher", tolerance=0.02),
    SentinelRule("*overhead*ratio", direction="lower", tolerance=0.05),
    SentinelRule("*bytes_per_node", direction="lower", tolerance=0.25),
    SentinelRule("*resume_speedup", direction="higher", tolerance=0.25),
    SentinelRule("*parity", direction="equal"),
    SentinelRule("*deterministic", direction="equal"),
    SentinelRule("*idle_fraction", direction="higher", tolerance=0.25),
    SentinelRule("*skippable_fraction", direction="higher", tolerance=0.25),
    # Fast-forward / trace-compilation tier: more analytically skipped
    # work and more compiled traces are better; events_per_s_ff is the
    # FF-on throughput headline.
    SentinelRule("*events_per_s_ff", direction="higher", tolerance=0.15),
    SentinelRule("*ff_windows_skipped", direction="higher", tolerance=0.25),
    SentinelRule("*ff_events_skipped", direction="higher", tolerance=0.25),
    SentinelRule("*traces_compiled", direction="higher", tolerance=0.25),
    # Gateway service tier: user-facing request throughput up is good,
    # tail latency and error rate down are good.
    SentinelRule("*requests_per_s", direction="higher", tolerance=0.20),
    SentinelRule("*p99_latency_ms", direction="lower", tolerance=0.50),
    SentinelRule("*p95_latency_ms", direction="lower", tolerance=0.50),
    SentinelRule("*error_rate", direction="lower", tolerance=0.50),
    # Request-obs decomposition: per-kind queue wait and sim execution
    # p95s out of the gateway latency decomposition (DESIGN.md §12).
    SentinelRule("*queue_wait_p95_ms", direction="lower", tolerance=0.50),
    SentinelRule("*sim_exec_p95_ms", direction="lower", tolerance=0.50),
)


@dataclass(frozen=True)
class Finding:
    """One judged leaf."""

    path: str
    baseline: object
    current: object
    change: Optional[float]  # fractional, None for equality checks
    regression: bool
    rule: str

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "baseline": self.baseline,
            "current": self.current,
            "change": (None if self.change is None
                       else round(self.change, 6)),
            "regression": self.regression,
            "rule": self.rule,
        }


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(
    baseline: dict,
    current: dict,
    rules: Sequence[SentinelRule] = DEFAULT_SENTINEL_RULES,
) -> List[Finding]:
    """Judge every ruled leaf present in both documents.

    First matching rule wins (callers put specific patterns first).
    Leaves present on only one side are skipped — scorecards grow
    fields across PRs and that is not a regression.
    """
    base_flat = flatten(baseline)
    cur_flat = flatten(current)
    findings: List[Finding] = []
    for path in sorted(set(base_flat) & set(cur_flat)):
        rule = next((r for r in rules if r.matches(path)), None)
        if rule is None:
            continue
        before, after = base_flat[path], cur_flat[path]
        if rule.direction == "equal":
            findings.append(Finding(
                path, before, after, None, before != after,
                rule.pattern,
            ))
            continue
        if not (_is_number(before) and _is_number(after)):
            continue
        if before == 0:
            change = 0.0 if after == 0 else float("inf")
        else:
            change = (after - before) / abs(before)
        worse = change < -rule.tolerance if rule.direction == "higher" \
            else change > rule.tolerance
        findings.append(Finding(path, before, after, change, worse,
                                rule.pattern))
    return findings


def load_baseline(path: str, ref: Optional[str] = None,
                  repo_root: Optional[str] = None) -> dict:
    """Load a scorecard from disk, or from ``git show ref:path``."""
    if ref is None:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    out = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        capture_output=True, text=True, cwd=repo_root,
    )
    if out.returncode != 0:
        raise FileNotFoundError(
            f"git show {ref}:{path} failed: {out.stderr.strip()}")
    return json.loads(out.stdout)


def load_baseline_status(
    path: str, ref: Optional[str] = None,
    repo_root: Optional[str] = None,
) -> Tuple[str, Optional[dict]]:
    """Like :func:`load_baseline`, but first-run friendly.

    Returns ``(status, document)`` where status is ``"ok"`` (document
    loaded), ``"missing"`` (no baseline at that path/ref — the normal
    state of a fresh branch) or ``"malformed"`` (the file exists but is
    not valid JSON, or is JSON that is not an object).  Never raises
    for those cases, so callers can report "no baseline" instead of a
    stack trace.
    """
    try:
        document = load_baseline(path, ref, repo_root)
    except (FileNotFoundError, OSError):
        return "missing", None
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return "malformed", None
    if not isinstance(document, dict):
        return "malformed", None
    return "ok", document


def report_lines(findings: Sequence[Finding]) -> List[str]:
    """Human-readable one-liners, regressions first."""
    lines: List[str] = []
    for finding in sorted(findings,
                          key=lambda f: (not f.regression, f.path)):
        if finding.change is None:
            verdict = "CHANGED" if finding.regression else "ok"
            lines.append(
                f"[{verdict:>7}] {finding.path}: "
                f"{finding.baseline!r} -> {finding.current!r}")
        else:
            verdict = "REGRESS" if finding.regression else "ok"
            lines.append(
                f"[{verdict:>7}] {finding.path}: "
                f"{finding.baseline} -> {finding.current} "
                f"({finding.change:+.1%})")
    return lines


__all__ = ["SentinelRule", "Finding", "compare", "flatten",
           "load_baseline", "load_baseline_status", "report_lines",
           "DEFAULT_SENTINEL_RULES"]
